file(REMOVE_RECURSE
  "libbj_harness.a"
)
