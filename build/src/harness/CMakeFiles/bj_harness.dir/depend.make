# Empty dependencies file for bj_harness.
# This may be replaced when dependencies are built.
