file(REMOVE_RECURSE
  "CMakeFiles/bj_harness.dir/campaign.cc.o"
  "CMakeFiles/bj_harness.dir/campaign.cc.o.d"
  "CMakeFiles/bj_harness.dir/diagnosis.cc.o"
  "CMakeFiles/bj_harness.dir/diagnosis.cc.o.d"
  "CMakeFiles/bj_harness.dir/driver.cc.o"
  "CMakeFiles/bj_harness.dir/driver.cc.o.d"
  "libbj_harness.a"
  "libbj_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
