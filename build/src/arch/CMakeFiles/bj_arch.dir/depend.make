# Empty dependencies file for bj_arch.
# This may be replaced when dependencies are built.
