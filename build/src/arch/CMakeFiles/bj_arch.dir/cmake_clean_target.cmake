file(REMOVE_RECURSE
  "libbj_arch.a"
)
