file(REMOVE_RECURSE
  "CMakeFiles/bj_arch.dir/emulator.cc.o"
  "CMakeFiles/bj_arch.dir/emulator.cc.o.d"
  "libbj_arch.a"
  "libbj_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
