file(REMOVE_RECURSE
  "libbj_workload.a"
)
