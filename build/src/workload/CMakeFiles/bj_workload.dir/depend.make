# Empty dependencies file for bj_workload.
# This may be replaced when dependencies are built.
