file(REMOVE_RECURSE
  "CMakeFiles/bj_workload.dir/generator.cc.o"
  "CMakeFiles/bj_workload.dir/generator.cc.o.d"
  "CMakeFiles/bj_workload.dir/microkernels.cc.o"
  "CMakeFiles/bj_workload.dir/microkernels.cc.o.d"
  "libbj_workload.a"
  "libbj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
