file(REMOVE_RECURSE
  "libbj_branch.a"
)
