# Empty dependencies file for bj_branch.
# This may be replaced when dependencies are built.
