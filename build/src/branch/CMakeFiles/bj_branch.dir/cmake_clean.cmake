file(REMOVE_RECURSE
  "CMakeFiles/bj_branch.dir/predictor.cc.o"
  "CMakeFiles/bj_branch.dir/predictor.cc.o.d"
  "libbj_branch.a"
  "libbj_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
