file(REMOVE_RECURSE
  "libbj_fault.a"
)
