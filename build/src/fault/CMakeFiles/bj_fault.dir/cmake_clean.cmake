file(REMOVE_RECURSE
  "CMakeFiles/bj_fault.dir/fault_model.cc.o"
  "CMakeFiles/bj_fault.dir/fault_model.cc.o.d"
  "libbj_fault.a"
  "libbj_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
