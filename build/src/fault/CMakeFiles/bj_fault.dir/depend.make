# Empty dependencies file for bj_fault.
# This may be replaced when dependencies are built.
