file(REMOVE_RECURSE
  "CMakeFiles/bj_blackjack.dir/checker.cc.o"
  "CMakeFiles/bj_blackjack.dir/checker.cc.o.d"
  "CMakeFiles/bj_blackjack.dir/shuffle.cc.o"
  "CMakeFiles/bj_blackjack.dir/shuffle.cc.o.d"
  "libbj_blackjack.a"
  "libbj_blackjack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_blackjack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
