# Empty compiler generated dependencies file for bj_blackjack.
# This may be replaced when dependencies are built.
