file(REMOVE_RECURSE
  "libbj_blackjack.a"
)
