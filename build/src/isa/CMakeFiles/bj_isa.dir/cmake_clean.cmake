file(REMOVE_RECURSE
  "CMakeFiles/bj_isa.dir/assembler.cc.o"
  "CMakeFiles/bj_isa.dir/assembler.cc.o.d"
  "CMakeFiles/bj_isa.dir/builder.cc.o"
  "CMakeFiles/bj_isa.dir/builder.cc.o.d"
  "CMakeFiles/bj_isa.dir/exec.cc.o"
  "CMakeFiles/bj_isa.dir/exec.cc.o.d"
  "CMakeFiles/bj_isa.dir/instruction.cc.o"
  "CMakeFiles/bj_isa.dir/instruction.cc.o.d"
  "CMakeFiles/bj_isa.dir/opcode.cc.o"
  "CMakeFiles/bj_isa.dir/opcode.cc.o.d"
  "libbj_isa.a"
  "libbj_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
