file(REMOVE_RECURSE
  "libbj_isa.a"
)
