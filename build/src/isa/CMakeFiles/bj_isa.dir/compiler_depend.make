# Empty compiler generated dependencies file for bj_isa.
# This may be replaced when dependencies are built.
