file(REMOVE_RECURSE
  "CMakeFiles/bj_mem.dir/cache.cc.o"
  "CMakeFiles/bj_mem.dir/cache.cc.o.d"
  "libbj_mem.a"
  "libbj_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
