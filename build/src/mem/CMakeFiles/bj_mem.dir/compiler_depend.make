# Empty compiler generated dependencies file for bj_mem.
# This may be replaced when dependencies are built.
