file(REMOVE_RECURSE
  "libbj_mem.a"
)
