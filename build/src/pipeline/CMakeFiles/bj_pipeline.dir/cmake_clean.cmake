file(REMOVE_RECURSE
  "CMakeFiles/bj_pipeline.dir/core.cc.o"
  "CMakeFiles/bj_pipeline.dir/core.cc.o.d"
  "CMakeFiles/bj_pipeline.dir/core_commit.cc.o"
  "CMakeFiles/bj_pipeline.dir/core_commit.cc.o.d"
  "CMakeFiles/bj_pipeline.dir/core_issue.cc.o"
  "CMakeFiles/bj_pipeline.dir/core_issue.cc.o.d"
  "libbj_pipeline.a"
  "libbj_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
