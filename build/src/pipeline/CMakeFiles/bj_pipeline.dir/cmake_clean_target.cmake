file(REMOVE_RECURSE
  "libbj_pipeline.a"
)
