
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/core.cc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core.cc.o" "gcc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core.cc.o.d"
  "/root/repo/src/pipeline/core_commit.cc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core_commit.cc.o" "gcc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core_commit.cc.o.d"
  "/root/repo/src/pipeline/core_issue.cc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core_issue.cc.o" "gcc" "src/pipeline/CMakeFiles/bj_pipeline.dir/core_issue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/bj_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/blackjack/CMakeFiles/bj_blackjack.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/bj_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/bj_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bj_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
