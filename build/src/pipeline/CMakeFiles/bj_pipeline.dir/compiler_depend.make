# Empty compiler generated dependencies file for bj_pipeline.
# This may be replaced when dependencies are built.
