# Empty compiler generated dependencies file for bj_common.
# This may be replaced when dependencies are built.
