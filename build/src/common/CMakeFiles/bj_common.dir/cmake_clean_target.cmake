file(REMOVE_RECURSE
  "libbj_common.a"
)
