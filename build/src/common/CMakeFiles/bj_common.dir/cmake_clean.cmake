file(REMOVE_RECURSE
  "CMakeFiles/bj_common.dir/env.cc.o"
  "CMakeFiles/bj_common.dir/env.cc.o.d"
  "CMakeFiles/bj_common.dir/flags.cc.o"
  "CMakeFiles/bj_common.dir/flags.cc.o.d"
  "CMakeFiles/bj_common.dir/table.cc.o"
  "CMakeFiles/bj_common.dir/table.cc.o.d"
  "libbj_common.a"
  "libbj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
