# Empty dependencies file for bjsim.
# This may be replaced when dependencies are built.
