file(REMOVE_RECURSE
  "CMakeFiles/bjsim.dir/bjsim.cc.o"
  "CMakeFiles/bjsim.dir/bjsim.cc.o.d"
  "bjsim"
  "bjsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bjsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
