file(REMOVE_RECURSE
  "../bench/bench_fig5_interference"
  "../bench/bench_fig5_interference.pdb"
  "CMakeFiles/bench_fig5_interference.dir/bench_fig5_interference.cc.o"
  "CMakeFiles/bench_fig5_interference.dir/bench_fig5_interference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
