file(REMOVE_RECURSE
  "../bench/bench_fig4_coverage"
  "../bench/bench_fig4_coverage.pdb"
  "CMakeFiles/bench_fig4_coverage.dir/bench_fig4_coverage.cc.o"
  "CMakeFiles/bench_fig4_coverage.dir/bench_fig4_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
