file(REMOVE_RECURSE
  "../bench/bench_fig7_performance"
  "../bench/bench_fig7_performance.pdb"
  "CMakeFiles/bench_fig7_performance.dir/bench_fig7_performance.cc.o"
  "CMakeFiles/bench_fig7_performance.dir/bench_fig7_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
