
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_seed_stability.cc" "bench-build/CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cc.o" "gcc" "bench-build/CMakeFiles/bench_seed_stability.dir/bench_seed_stability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bj_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/bj_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/blackjack/CMakeFiles/bj_blackjack.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/bj_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/bj_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bj_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bj_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bj_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
