# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_emulator[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_single[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_srt[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_blackjack[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_shuffle[1]_include.cmake")
include("/root/repo/build/tests/test_structures[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_mem_branch[1]_include.cmake")
include("/root/repo/build/tests/test_fault_model[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_core_properties[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_mechanics[1]_include.cmake")
