# Empty dependencies file for test_mem_branch.
# This may be replaced when dependencies are built.
