file(REMOVE_RECURSE
  "CMakeFiles/test_mem_branch.dir/test_mem_branch.cc.o"
  "CMakeFiles/test_mem_branch.dir/test_mem_branch.cc.o.d"
  "test_mem_branch"
  "test_mem_branch.pdb"
  "test_mem_branch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
