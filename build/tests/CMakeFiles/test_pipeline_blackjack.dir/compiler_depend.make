# Empty compiler generated dependencies file for test_pipeline_blackjack.
# This may be replaced when dependencies are built.
