file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_blackjack.dir/test_pipeline_blackjack.cc.o"
  "CMakeFiles/test_pipeline_blackjack.dir/test_pipeline_blackjack.cc.o.d"
  "test_pipeline_blackjack"
  "test_pipeline_blackjack.pdb"
  "test_pipeline_blackjack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_blackjack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
