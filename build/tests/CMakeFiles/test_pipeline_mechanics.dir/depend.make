# Empty dependencies file for test_pipeline_mechanics.
# This may be replaced when dependencies are built.
