file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_mechanics.dir/test_pipeline_mechanics.cc.o"
  "CMakeFiles/test_pipeline_mechanics.dir/test_pipeline_mechanics.cc.o.d"
  "test_pipeline_mechanics"
  "test_pipeline_mechanics.pdb"
  "test_pipeline_mechanics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_mechanics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
