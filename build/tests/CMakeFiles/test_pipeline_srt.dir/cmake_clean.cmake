file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_srt.dir/test_pipeline_srt.cc.o"
  "CMakeFiles/test_pipeline_srt.dir/test_pipeline_srt.cc.o.d"
  "test_pipeline_srt"
  "test_pipeline_srt.pdb"
  "test_pipeline_srt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
