# Empty compiler generated dependencies file for test_pipeline_single.
# This may be replaced when dependencies are built.
