file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_single.dir/test_pipeline_single.cc.o"
  "CMakeFiles/test_pipeline_single.dir/test_pipeline_single.cc.o.d"
  "test_pipeline_single"
  "test_pipeline_single.pdb"
  "test_pipeline_single[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
