// Property tests for the per-Core instruction arena (src/pipeline/inst_pool.h).
//
// The pool replaces shared_ptr ownership with index+generation handles, so
// the safety argument moves from the type system into three invariants:
//   1. a recycled slot never aliases a live InstRef (generations differ);
//   2. stale handles are *detected*, not silently dereferenced — get()
//      BJ_CHECK-aborts, try_get() returns nullptr;
//   3. every allocation is matched by exactly one release, so the pool
//      drains to empty after squash storms and full-window commit sweeps.
// These are exercised both directly (randomized alloc/release storms with a
// fixed-seed PRNG) and end-to-end (a mispredict-heavy Core run must leave
// the arena bounded by the pipeline's architectural window).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "pipeline/core.h"
#include "pipeline/inst_pool.h"
#include "workload/profile.h"

namespace bj {
namespace {

TEST(InstPool, AllocateHandsOutFreshSelfConsistentSlots) {
  InstPool pool;
  DynInst* a = pool.allocate();
  DynInst* b = pool.allocate();
  ASSERT_NE(a, b);
  EXPECT_TRUE(a->self.valid());
  EXPECT_TRUE(b->self.valid());
  EXPECT_NE(a->self, b->self);
  EXPECT_EQ(&pool.get(a->self), a);
  EXPECT_EQ(&pool.get(b->self), b);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.high_water(), 2u);
}

TEST(InstPool, DefaultRefIsNeverLive) {
  InstPool pool;
  pool.allocate();
  EXPECT_FALSE(InstRef{}.valid());
  EXPECT_FALSE(pool.live(InstRef{}));
  EXPECT_EQ(pool.try_get(InstRef{}), nullptr);
}

TEST(InstPool, SlotReuseNeverAliasesLiveRefs) {
  // Fixed-seed storm: interleaved allocates and releases. At every step the
  // set of handles the test believes live must be exactly the set the pool
  // believes live, and every released handle must have gone stale even when
  // its slot index was recycled.
  InstPool pool;
  Rng rng(0xB1ACC0DE);
  std::vector<InstRef> live;
  std::vector<InstRef> stale;
  for (int step = 0; step < 20000; ++step) {
    const bool do_release = !live.empty() && rng.chance(0.48);
    if (do_release) {
      const std::size_t victim = rng.next_below(live.size());
      pool.release(live[victim]);
      stale.push_back(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    } else {
      const DynInst* inst = pool.allocate();
      // The new handle must not compare equal to anything still tracked.
      for (const InstRef& ref : live) EXPECT_NE(inst->self, ref);
      live.push_back(inst->self);
    }
  }
  EXPECT_EQ(pool.in_use(), live.size());
  for (const InstRef& ref : live) {
    EXPECT_TRUE(pool.live(ref));
    EXPECT_EQ(pool.try_get(ref), &pool.get(ref));
  }
  // Recycling bumped generations: every historical handle is detectably
  // stale, including ones whose slot index is live again under a newer gen.
  for (const InstRef& ref : stale) {
    EXPECT_FALSE(pool.live(ref));
    EXPECT_EQ(pool.try_get(ref), nullptr);
  }
}

TEST(InstPool, DrainsToEmptyAfterSquashStormsAndFullWindowCommits) {
  InstPool pool;
  Rng rng(20070625);
  constexpr std::size_t kWindow = 192;  // a full BJ active-list worth
  for (int storm = 0; storm < 50; ++storm) {
    std::vector<InstRef> window;
    while (window.size() < kWindow) window.push_back(pool.allocate()->self);
    if (rng.chance(0.5)) {
      // Commit sweep: release oldest-first, the retirement order.
      for (const InstRef& ref : window) pool.release(ref);
    } else {
      // Squash storm: release youngest-first, the active-list walk order.
      for (std::size_t i = window.size(); i-- > 0;) pool.release(window[i]);
    }
    EXPECT_EQ(pool.in_use(), 0u) << "storm " << storm;
  }
  // Matched alloc/release traffic must not grow the arena past its first
  // high-water mark (rounded up to whole chunks).
  EXPECT_EQ(pool.high_water(), kWindow);
  EXPECT_LE(pool.capacity(),
            ((kWindow + InstPool::kChunkSize - 1) / InstPool::kChunkSize) *
                InstPool::kChunkSize);
}

TEST(InstPool, LifoRecyclingKeepsHotSlots) {
  InstPool pool;
  DynInst* a = pool.allocate();
  const InstRef first = a->self;
  pool.release(first);
  DynInst* b = pool.allocate();
  // Same slot, newer generation: the hottest slot is reused first.
  EXPECT_EQ(b->self.index, first.index);
  EXPECT_NE(b->self.gen, first.gen);
  EXPECT_FALSE(pool.live(first));
}

TEST(InstPool, ColdSidecarFollowsTheSlotThroughRecycling) {
  // Every hot slot has a parallel DynInstCold at the same index. The sidecar
  // is deliberately not reset on allocate, so the property to defend is
  // addressing, not freshness: cold(ref) must resolve to the same sidecar as
  // the hot slot across growth and recycling, and values written through one
  // live handle must never show up under a different slot's handle.
  InstPool pool;
  Rng rng(0xC01DCAFE);
  std::vector<InstRef> live;
  for (int step = 0; step < 20000; ++step) {
    const bool do_release = !live.empty() && rng.chance(0.48);
    if (do_release) {
      const std::size_t victim = rng.next_below(live.size());
      // The sentinel written at allocation must still be intact: no other
      // slot's cold writes aliased this sidecar.
      const DynInstCold& c = pool.cold(live[victim]);
      EXPECT_EQ(c.fetch_cycle, live[victim].index);
      EXPECT_EQ(c.lead_seq, live[victim].gen);
      pool.release(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    } else {
      const InstRef ref = pool.allocate()->self;
      DynInstCold& c = pool.cold(ref);
      c.fetch_cycle = ref.index;  // slot-unique sentinel pair
      c.lead_seq = ref.gen;
      live.push_back(ref);
    }
  }
  for (const InstRef& ref : live) {
    EXPECT_EQ(pool.cold(ref).fetch_cycle, ref.index);
    EXPECT_EQ(pool.cold(ref).lead_seq, ref.gen);
  }
}

TEST(InstPoolDeathTest, ColdAccessCatchesStaleHandle) {
  // Trace/provenance reads go through the same liveness gate as get(): a
  // recycled slot's cold state is unreachable through an old handle.
  InstPool pool;
  const InstRef ref = pool.allocate()->self;
  pool.cold(ref).fetch_cycle = 7;
  pool.release(ref);
  EXPECT_DEATH((void)pool.cold(ref), "BJ_CHECK failed.*stale InstRef");
  pool.allocate();  // recycles the slot under a newer generation
  EXPECT_DEATH((void)pool.cold(ref), "BJ_CHECK failed.*stale InstRef");
}

TEST(InstPoolDeathTest, GetCatchesStaleHandle) {
  InstPool pool;
  const InstRef ref = pool.allocate()->self;
  pool.release(ref);
  EXPECT_DEATH((void)pool.get(ref), "BJ_CHECK failed.*stale InstRef");
}

TEST(InstPoolDeathTest, GetCatchesRecycledSlot) {
  InstPool pool;
  const InstRef ref = pool.allocate()->self;
  pool.release(ref);
  pool.allocate();  // recycles the same slot under a newer generation
  EXPECT_DEATH((void)pool.get(ref), "BJ_CHECK failed.*stale InstRef");
}

TEST(InstPoolDeathTest, DoubleReleaseAborts) {
  InstPool pool;
  const InstRef ref = pool.allocate()->self;
  pool.release(ref);
  EXPECT_DEATH(pool.release(ref), "BJ_CHECK failed.*stale InstRef");
}

// End-to-end leak check: a long mispredict-heavy run (gcc has the highest
// branch rate of the SPEC profiles) exercises squash release paths millions
// of times. If any path leaked a slot, in_use would ratchet upward and the
// arena would balloon past the architectural window; instead the live count
// stays bounded by what the pipeline can physically hold and the capacity by
// the high-water mark.
TEST(InstPool, CoreArenaStaysBoundedUnderSquashHeavyWorkload) {
  for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
    const Program program = generate_workload(profile_by_name("gcc"));
    Core core(program, mode);
    core.run(30000, 8000000);
    EXPECT_GT(core.stats().branch_mispredicts, 100u) << mode_name(mode);
    // Live instructions are only those still in flight inside the windows:
    // two active lists, the leading fetch buffer, the (huge) decoupled
    // trailing fetch queue, and the shared issue queue. Double counting
    // (IQ entries are also active-list members) only loosens the bound.
    const CoreParams params;
    const std::size_t architectural_bound =
        2 * static_cast<std::size_t>(params.active_list_entries) +
        static_cast<std::size_t>(params.fetch_buffer_entries) +
        static_cast<std::size_t>(params.trailing_fetch_queue_entries) +
        static_cast<std::size_t>(params.issue_queue_entries);
    EXPECT_LE(core.inst_pool_live(), architectural_bound) << mode_name(mode);
    EXPECT_LE(core.inst_pool_live(), core.inst_pool_high_water());
    EXPECT_EQ(core.stats().pool_high_water, core.inst_pool_high_water())
        << mode_name(mode);
    // high_water is a pipeline-occupancy figure, not a leak ratchet: it too
    // must sit within the architectural window.
    EXPECT_LE(core.inst_pool_high_water(), architectural_bound)
        << mode_name(mode);
  }
}

}  // namespace
}  // namespace bj
