// Unit and property tests for the lock-free MPMC ring queue that backs the
// harness worker pool (common/mpmc_queue.h): single-thread degenerate paths,
// wrap-around at capacity, auto-grow, concurrent push/pop storms with
// per-producer FIFO checks, drain-after-close, and exception-propagation
// parity between the queue-backed pool and the old mutex pool's contract.
#include "common/mpmc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/worker_pool.h"

namespace bj {
namespace {

TEST(MpmcQueue, SingleThreadFifoAndEmptiness) {
  MpmcQueue<int> q(8);
  int out = -1;
  EXPECT_FALSE(q.try_pop(&out));
  EXPECT_EQ(q.approx_size(), 0u);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.approx_size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(&out));
  EXPECT_EQ(q.grows(), 0u);
}

// Push/pop far more items than the ring holds, interleaved so the occupancy
// never exceeds capacity: the sequence counters must recycle slots across
// many laps without corrupting FIFO order or growing.
TEST(MpmcQueue, WrapAroundAtCapacityPreservesFifo) {
  MpmcQueue<int> q(4);
  const std::size_t cap = q.capacity();
  int next_push = 0;
  int next_pop = 0;
  for (int lap = 0; lap < 100; ++lap) {
    for (std::size_t i = 0; i < cap; ++i) EXPECT_TRUE(q.push(next_push++));
    for (std::size_t i = 0; i < cap; ++i) {
      int out = -1;
      ASSERT_TRUE(q.try_pop(&out));
      EXPECT_EQ(out, next_pop++);
    }
  }
  EXPECT_EQ(q.grows(), 0u) << "interleaved laps never fill past capacity";
}

// Filling past capacity without popping must grow (possibly repeatedly) and
// keep every item, still in FIFO order for the single producer.
TEST(MpmcQueue, GrowsWhenFullAndKeepsOrder) {
  MpmcQueue<int> q(4);
  const int n = 1000;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_GE(q.grows(), 1u);
  EXPECT_EQ(q.approx_size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    int out = -1;
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(q.try_pop(&out));
  EXPECT_TRUE(q.drained());
}

TEST(MpmcQueue, DrainAfterCloseDeliversEverythingThenStops) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(q.push(i));
  q.close();
  EXPECT_FALSE(q.push(99)) << "push after close must fail";
  int out = -1;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(&out)) << "closed and drained";
  EXPECT_TRUE(q.drained());
}

TEST(MpmcQueue, CloseOnEmptyUnblocksPop) {
  MpmcQueue<int> q(4);
  std::thread closer([&q] { q.close(); });
  int out = -1;
  EXPECT_FALSE(q.pop(&out));
  closer.join();
}

// Multi-producer/multi-consumer storm through a deliberately tiny initial
// ring, so growth happens mid-run. Checks: every value delivered exactly
// once, and per-producer FIFO (values from one producer arrive at any given
// consumer in increasing sequence — the queue never reorders one producer's
// pushes, though it interleaves producers freely).
TEST(MpmcQueue, ConcurrentStormDeliversExactlyOnceInProducerOrder) {
  const int producers = 4;
  const int consumers = 4;
  const int per_producer = 5000;
  MpmcQueue<std::uint64_t> q(4);  // tiny: forces growth under load

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(q.push((static_cast<std::uint64_t>(p) << 32) |
                           static_cast<std::uint64_t>(i)));
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> consumed(consumers);
  std::atomic<int> remaining{producers * per_producer};
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&q, &consumed, &remaining, c] {
      std::uint64_t v;
      while (remaining.load(std::memory_order_relaxed) > 0) {
        if (q.try_pop(&v)) {
          consumed[c].push_back(v);
          remaining.fetch_sub(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Per-producer FIFO within each consumer's stream.
  for (int c = 0; c < consumers; ++c) {
    std::vector<std::int64_t> last_seq(producers, -1);
    for (const std::uint64_t v : consumed[c]) {
      const int p = static_cast<int>(v >> 32);
      const auto seq = static_cast<std::int64_t>(v & 0xffffffffu);
      EXPECT_GT(seq, last_seq[p]) << "producer " << p << " reordered";
      last_seq[p] = seq;
    }
  }
  // Exactly-once delivery across all consumers.
  std::vector<std::uint64_t> all;
  for (const auto& chunk : consumed) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(producers) * per_producer);
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "duplicate delivery";
  EXPECT_GE(q.grows(), 1u) << "storm through a 4-slot ring must have grown";
  EXPECT_TRUE(q.drained());
}

// Blocking-pop variant of the storm: consumers use pop() and exit on the
// closed-and-drained signal, mirroring how the worker pool drains.
TEST(MpmcQueue, BlockingPopsDrainClosedQueueUnderContention) {
  const int producers = 3;
  const int consumers = 5;
  const int per_producer = 3000;
  MpmcQueue<std::uint64_t> q(8);

  std::vector<std::thread> prod;
  for (int p = 0; p < producers; ++p) {
    prod.emplace_back([&q, p] {
      for (int i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(q.push((static_cast<std::uint64_t>(p) << 32) |
                           static_cast<std::uint64_t>(i)));
      }
    });
  }
  for (std::thread& t : prod) t.join();
  q.close();  // every push happens-before close, per the queue contract

  std::atomic<std::size_t> popped{0};
  std::vector<std::thread> cons;
  for (int c = 0; c < consumers; ++c) {
    cons.emplace_back([&q, &popped] {
      std::uint64_t v;
      while (q.pop(&v)) popped.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : cons) t.join();
  EXPECT_EQ(popped.load(),
            static_cast<std::size_t>(producers) * per_producer);
  EXPECT_TRUE(q.drained());
}

// The queue-backed worker pool must keep the old mutex pool's exception
// contract: the first exception is rethrown on the calling thread after all
// workers have joined cleanly, and remaining work is abandoned (not run to
// completion) once a worker has failed.
TEST(MpmcQueue, WorkerPoolPropagatesFirstExceptionAndJoins) {
  const std::size_t count = 257;
  std::vector<std::atomic<int>> seen(count);
  for (auto& s : seen) s.store(0);

  EXPECT_THROW(
      parallel_for(4, count,
                   [&seen](std::size_t i) {
                     if (i == 40) throw std::runtime_error("boom");
                     seen[i].fetch_add(1);
                   }),
      std::runtime_error);

  std::size_t ran = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LE(seen[i].load(), 1) << "index " << i << " ran twice";
    ran += static_cast<std::size_t>(seen[i].load());
  }
  EXPECT_LT(ran, count) << "a failed run must abandon remaining work";
}

// Degenerate paths of the pool itself: zero items spawn nothing; one worker
// runs inline with exceptions surfacing directly.
TEST(MpmcQueue, WorkerPoolDegeneratePaths) {
  int calls = 0;
  EXPECT_EQ(parallel_for_workers(
                8, 0, [&](std::size_t, std::size_t) { ++calls; }),
            0u);
  EXPECT_EQ(calls, 0);

  std::vector<std::size_t> order;
  EXPECT_EQ(parallel_for_workers(1, 5,
                                 [&](std::size_t worker, std::size_t i) {
                                   EXPECT_EQ(worker, 0u);
                                   order.push_back(i);
                                 }),
            1u);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}))
      << "serial path runs inline and in order";

  EXPECT_THROW(parallel_for(1, 3,
                            [](std::size_t i) {
                              if (i == 1) throw std::logic_error("inline");
                            }),
               std::logic_error);
}

}  // namespace
}  // namespace bj
