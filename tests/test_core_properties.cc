// Cross-module properties of the core, parameterized over modes and
// parameter corners: the released-store stream (what actually reaches
// memory after all checking) must equal the architectural oracle's store
// stream exactly, for every workload, mode, and structure size.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/emulator.h"
#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

std::vector<std::pair<std::uint64_t, std::uint64_t>> oracle_stores(
    const Program& p, std::uint64_t max_instructions = 4000000) {
  Emulator emu(p);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
  while (!emu.halted()) {
    const auto rec = emu.step();
    if (!rec.has_value() || emu.retired() > max_instructions) break;
    if (rec->store.has_value()) stores.push_back(*rec->store);
  }
  return stores;
}

void expect_store_stream_matches(const Program& p, Mode mode,
                                 const CoreParams& params = {}) {
  Core core(p, mode, params);
  const RunOutcome outcome = core.run(~0ull / 2, 30000000);
  ASSERT_TRUE(outcome.program_finished)
      << p.name << '/' << mode_name(mode) << " did not finish";
  ASSERT_FALSE(outcome.detected) << p.name << '/' << mode_name(mode);
  ASSERT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();

  const auto golden = oracle_stores(p);
  const auto& released = core.released_stores();
  ASSERT_EQ(released.size(), golden.size())
      << p.name << '/' << mode_name(mode);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(released[i].addr, golden[i].first) << p.name << " store " << i;
    EXPECT_EQ(released[i].data, golden[i].second) << p.name << " store " << i;
    EXPECT_EQ(released[i].ordinal, i) << p.name << " store " << i;
  }
}

class StoreStreamEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, Mode>> {};

TEST_P(StoreStreamEquivalence, ReleasedStoresEqualOracle) {
  WorkloadProfile profile = profile_by_name(std::get<0>(GetParam()));
  profile.iterations = 60;
  const Program p = generate_workload(profile);
  expect_store_stream_matches(p, std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoreStreamEquivalence,
    ::testing::Combine(::testing::Values("equake", "gcc", "bzip", "sixtrack",
                                         "swim", "vortex"),
                       ::testing::Values(Mode::kSingle, Mode::kSrt,
                                         Mode::kBlackjackNs,
                                         Mode::kBlackjack)),
    [](const auto& info) {
      const char* mode = "";
      switch (std::get<1>(info.param)) {
        case Mode::kSingle: mode = "single"; break;
        case Mode::kSrt: mode = "srt"; break;
        case Mode::kBlackjackNs: mode = "bjns"; break;
        case Mode::kBlackjack: mode = "bj"; break;
      }
      return std::string(std::get<0>(info.param)) + "_" + mode;
    });

TEST(CoreProperties, MicrokernelsMatchInAllModes) {
  for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjackNs,
                    Mode::kBlackjack}) {
    expect_store_stream_matches(kernels::memcopy(48), mode);
    expect_store_stream_matches(kernels::branchy(400), mode);
    expect_store_stream_matches(kernels::matmul(3), mode);
  }
}

TEST(CoreProperties, TinyStructuresPreserveStoreStream) {
  CoreParams params;
  params.issue_queue_entries = 12;
  params.active_list_entries = 24;
  params.lsq_entries = 6;
  params.store_buffer_entries = 4;
  params.lvq_entries = 8;
  params.boq_entries = 6;
  params.dtq_entries = 48;
  params.trailing_fetch_queue_entries = 96;
  params.slack = 8;
  params.fetch_buffer_entries = 6;
  for (Mode mode : {Mode::kSrt, Mode::kBlackjack}) {
    expect_store_stream_matches(kernels::memcopy(40), mode, params);
    WorkloadProfile profile = profile_by_name("crafty");
    profile.iterations = 40;
    expect_store_stream_matches(generate_workload(profile), mode, params);
  }
}

TEST(CoreProperties, GatingAblationsPreserveStoreStream) {
  WorkloadProfile profile = profile_by_name("fma3d");
  profile.iterations = 50;
  const Program p = generate_workload(profile);
  for (const bool one_packet : {true, false}) {
    for (const bool serial : {true, false}) {
      CoreParams params;
      params.one_packet_per_cycle = one_packet;
      params.packet_serial_dispatch = serial;
      expect_store_stream_matches(p, Mode::kBlackjack, params);
    }
  }
}

TEST(CoreProperties, WideCommitNarrowFetchCorners) {
  CoreParams narrow;
  narrow.fetch_width = 4;
  narrow.commit_width = 1;
  expect_store_stream_matches(kernels::branchy(200), Mode::kBlackjack,
                              narrow);

  CoreParams wide;
  wide.commit_width = 8;
  expect_store_stream_matches(kernels::branchy(200), Mode::kBlackjack, wide);
}

TEST(CoreProperties, TrailingNeverOvertakesLeading) {
  WorkloadProfile profile = profile_by_name("gzip");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kBlackjack);
  for (int i = 0; i < 20000 && core.tick(); ++i) {
    ASSERT_GE(core.leading_commits(), core.trailing_commits());
  }
}


TEST(CoreProperties, PacketCombiningPreservesStoreStream) {
  // The future-work extension merges register-independent adjacent packets;
  // it must not change architectural behaviour, and coverage must stay high.
  CoreParams params;
  params.combine_packets = true;
  for (const char* name : {"gzip", "equake", "sixtrack"}) {
    WorkloadProfile profile = profile_by_name(name);
    profile.iterations = 60;
    expect_store_stream_matches(generate_workload(profile), Mode::kBlackjack,
                                params);
  }
}

TEST(CoreProperties, PacketCombiningActuallyCombines) {
  const Program p = generate_workload(profile_by_name("gzip"));
  CoreParams params;
  params.combine_packets = true;
  Core core(p, Mode::kBlackjack, params);
  core.run(20000, 4000000);
  EXPECT_GT(core.stats().packets_combined, 100u);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_TRUE(core.detections().empty());
}


TEST(CoreProperties, QuicksortRecursionInAllModes) {
  // Deep speculative call chains through jal/jr stress the return-address
  // stack and mispredict recovery; the sorted-flag store is the end-to-end
  // check.
  const Program p = kernels::quicksort(48);
  for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
    Core core(p, mode);
    const RunOutcome outcome = core.run(~0ull / 2, 30000000);
    ASSERT_TRUE(outcome.program_finished) << mode_name(mode);
    ASSERT_FALSE(outcome.detected) << mode_name(mode);
    ASSERT_FALSE(core.oracle_violated())
        << mode_name(mode) << ": " << core.oracle_violation_detail();
    std::uint64_t sorted_flag = 0;
    for (const auto& s : core.released_stores()) {
      if (s.addr == 0x1000) sorted_flag = s.data;
    }
    EXPECT_EQ(sorted_flag, 1u) << mode_name(mode);
  }
}


TEST(CoreProperties, CoresAreIsolatedObjects) {
  // Two cores stepped in lockstep must not influence each other (no hidden
  // global state) and must agree cycle-for-cycle on identical inputs.
  const Program p = generate_workload(profile_by_name("crafty"));
  Core a(p, Mode::kBlackjack);
  Core b(p, Mode::kBlackjack);
  Core other(p, Mode::kSrt);  // a bystander stepping in between
  for (int i = 0; i < 30000; ++i) {
    const bool ra = a.tick();
    other.tick();
    const bool rb = b.tick();
    ASSERT_EQ(ra, rb);
    ASSERT_EQ(a.leading_commits(), b.leading_commits()) << "cycle " << i;
    ASSERT_EQ(a.trailing_commits(), b.trailing_commits()) << "cycle " << i;
  }
  EXPECT_EQ(a.stats().coverage.pairs(), b.stats().coverage.pairs());
  EXPECT_EQ(a.stats().shuffle_nops, b.stats().shuffle_nops);
}

TEST(CoreProperties, ShuffleBeatsNoShuffleOnCoverageEverywhere) {
  for (const char* name : {"equake", "gcc", "vortex", "sixtrack"}) {
    const Program p = generate_workload(profile_by_name(name));
    Core ns(p, Mode::kBlackjackNs);
    ns.run(12000, 4000000);
    Core bj(p, Mode::kBlackjack);
    bj.run(12000, 4000000);
    EXPECT_GT(bj.stats().coverage.total_coverage(),
              ns.stats().coverage.total_coverage() + 0.3)
        << name << ": safe-shuffle is the whole point";
    EXPECT_EQ(ns.stats().coverage.frontend_coverage() == 1.0, false)
        << name << ": no-shuffle packets keep accidental frontend overlap";
  }
}

}  // namespace
}  // namespace bj
