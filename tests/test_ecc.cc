// ECC codec correctness sweep, plus the campaign-level proof that a
// SEC-protected storage array converts would-be silent data corruption into
// corrected (benign) runs.
//
// The codec contracts under test:
//   - clean words always decode with a zero syndrome (no correction, no flag)
//   - every single-bit error — data or check bit — is corrected, and the
//     decoded data equals the original word
//   - Hsiao SEC-DED flags every double-bit error (any pair among the 72
//     data+check bits) as uncorrectable instead of miscorrecting it, the
//     property plain Hamming SEC cannot offer
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/ecc.h"
#include "harness/campaign.h"
#include "workload/profile.h"

namespace bj {
namespace {

const std::vector<std::uint64_t>& sample_words() {
  static const std::vector<std::uint64_t> words = {
      0x0000000000000000ull, 0xffffffffffffffffull, 0x0000000000000001ull,
      0x8000000000000000ull, 0xdeadbeefcafebabeull, 0x0123456789abcdefull,
      0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull, 0x00000000ffff0000ull,
  };
  return words;
}

TEST(Ecc, CheckBitCountsAndNames) {
  EXPECT_EQ(ecc_check_bits(EccCodec::kNone), 0);
  EXPECT_EQ(ecc_check_bits(EccCodec::kHamming), 7);
  EXPECT_EQ(ecc_check_bits(EccCodec::kHsiao), 8);
  for (EccCodec codec :
       {EccCodec::kNone, EccCodec::kHamming, EccCodec::kHsiao}) {
    EccCodec parsed = EccCodec::kNone;
    ASSERT_TRUE(parse_ecc_codec(ecc_codec_name(codec), &parsed));
    EXPECT_EQ(parsed, codec);
  }
  EccCodec parsed = EccCodec::kNone;
  EXPECT_FALSE(parse_ecc_codec("secded", &parsed));
  EXPECT_FALSE(parse_ecc_codec("", &parsed));
}

TEST(Ecc, CleanWordsDecodeWithZeroSyndrome) {
  for (EccCodec codec : {EccCodec::kHamming, EccCodec::kHsiao}) {
    for (std::uint64_t word : sample_words()) {
      const std::uint32_t check = ecc_encode(codec, word);
      const EccDecode decode = ecc_decode(codec, word, check);
      EXPECT_FALSE(decode.corrected);
      EXPECT_FALSE(decode.uncorrectable);
      EXPECT_EQ(decode.data, word);
    }
  }
}

TEST(Ecc, EverySingleDataBitErrorIsCorrected) {
  for (EccCodec codec : {EccCodec::kHamming, EccCodec::kHsiao}) {
    for (std::uint64_t word : sample_words()) {
      const std::uint32_t check = ecc_encode(codec, word);
      for (int bit = 0; bit < 64; ++bit) {
        const EccDecode decode =
            ecc_decode(codec, word ^ (1ull << bit), check);
        EXPECT_TRUE(decode.corrected)
            << ecc_codec_name(codec) << " data bit " << bit;
        EXPECT_FALSE(decode.uncorrectable);
        EXPECT_EQ(decode.data, word)
            << ecc_codec_name(codec) << " data bit " << bit;
      }
    }
  }
}

TEST(Ecc, EverySingleCheckBitErrorIsCorrected) {
  for (EccCodec codec : {EccCodec::kHamming, EccCodec::kHsiao}) {
    for (std::uint64_t word : sample_words()) {
      const std::uint32_t check = ecc_encode(codec, word);
      for (int bit = 0; bit < ecc_check_bits(codec); ++bit) {
        const EccDecode decode =
            ecc_decode(codec, word, check ^ (1u << bit));
        EXPECT_TRUE(decode.corrected)
            << ecc_codec_name(codec) << " check bit " << bit;
        EXPECT_FALSE(decode.uncorrectable);
        // A corrupted check bit never touches the data.
        EXPECT_EQ(decode.data, word);
      }
    }
  }
}

// The SEC-DED property: every possible double-bit error — data+data,
// data+check, or check+check — is flagged, never silently miscorrected.
TEST(Ecc, HsiaoFlagsEveryDoubleBitError) {
  for (std::uint64_t word : sample_words()) {
    const std::uint32_t check = ecc_encode(EccCodec::kHsiao, word);
    // Flip bit i and bit j of the 72-bit codeword (data bits 0..63, check
    // bits 64..71).
    for (int i = 0; i < 72; ++i) {
      for (int j = i + 1; j < 72; ++j) {
        std::uint64_t data = word;
        std::uint32_t stored_check = check;
        if (i < 64) data ^= 1ull << i; else stored_check ^= 1u << (i - 64);
        if (j < 64) data ^= 1ull << j; else stored_check ^= 1u << (j - 64);
        const EccDecode decode =
            ecc_decode(EccCodec::kHsiao, data, stored_check);
        EXPECT_TRUE(decode.uncorrectable) << "bits " << i << "," << j;
        EXPECT_FALSE(decode.corrected) << "bits " << i << "," << j;
      }
    }
  }
}

TEST(Ecc, ProtectedReadRepairsAndCounts) {
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  const std::uint64_t clean = 0xfeedface12345678ull;

  // codec none: the stored (possibly corrupt) word passes through untouched.
  EXPECT_EQ(ecc_protected_read(EccCodec::kNone, clean ^ 4u, clean, &corrected,
                               &uncorrectable),
            clean ^ 4u);
  EXPECT_EQ(corrected, 0u);
  EXPECT_EQ(uncorrectable, 0u);

  // A clean read never touches the counters.
  EXPECT_EQ(ecc_protected_read(EccCodec::kHamming, clean, clean, &corrected,
                               &uncorrectable),
            clean);
  EXPECT_EQ(corrected, 0u);

  // Single-bit corruption: repaired, counted.
  EXPECT_EQ(ecc_protected_read(EccCodec::kHamming, clean ^ (1ull << 63),
                               clean, &corrected, &uncorrectable),
            clean);
  EXPECT_EQ(corrected, 1u);
  EXPECT_EQ(uncorrectable, 0u);

  // Double-bit corruption under Hsiao: flagged, data handed back as-is.
  const std::uint64_t doubly = clean ^ (1ull << 3) ^ (1ull << 40);
  EXPECT_EQ(ecc_protected_read(EccCodec::kHsiao, doubly, clean, &corrected,
                               &uncorrectable),
            doubly);
  EXPECT_EQ(corrected, 1u);
  EXPECT_EQ(uncorrectable, 1u);
}

// Campaign-level acceptance: the same sampled single-bit stuck-at faults on
// physical register file rows that corrupt data (or trip checks) on the bare
// machine all become corrected/benign once the array is SEC-protected.
TEST(EccCampaign, HammingConvertsRegfileStorageFaultsToBenign) {
  const Program program = generate_workload(profile_by_name("gcc"));
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.sites = {FaultSite::kRegfileEntry};
  config.exhaustive = true;
  config.test_count = 40;  // seed-derived sample of the row x bit x stuck space
  config.seed = 99;
  config.budget_commits = 3000;

  const CampaignResult bare = run_campaign(program, config);
  int bare_affected = 0;
  for (const FaultRun& run : bare.runs) {
    if (run.outcome != FaultOutcome::kBenign) ++bare_affected;
    // No codec configured: the ECC layer must stay silent.
    EXPECT_EQ(run.ecc_corrected, 0u);
    EXPECT_EQ(run.ecc_detected, 0u);
  }
  // The sample must actually bite on the bare machine, or the protected
  // rerun below proves nothing.
  ASSERT_GT(bare_affected, 0);

  CampaignConfig repaired_config = config;
  repaired_config.params.regfile_ecc = EccCodec::kHamming;
  const CampaignResult repaired = run_campaign(program, repaired_config);
  ASSERT_EQ(repaired.runs.size(), bare.runs.size());
  std::uint64_t corrected = 0;
  for (const FaultRun& run : repaired.runs) {
    // SEC repairs every read of the stuck row before the value enters the
    // pipeline: nothing is left to corrupt stores or trip a checker.
    EXPECT_EQ(run.outcome, FaultOutcome::kBenign) << run.fault.describe();
    EXPECT_EQ(run.ecc_detected, 0u);  // SEC never flags a single-bit error
    corrected += run.ecc_corrected;
  }
  EXPECT_GT(corrected, 0u);
}

}  // namespace
}  // namespace bj
