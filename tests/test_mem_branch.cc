// Unit tests for the memory hierarchy timing model and the branch predictor.
#include <gtest/gtest.h>

#include "branch/predictor.h"
#include "common/rng.h"
#include "mem/cache.h"

namespace bj {
namespace {

TEST(Cache, HitsAfterFill) {
  Cache cache(CacheParams{1024, 2, 64, 2, "t"});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1038)) << "same 64-byte line";
  EXPECT_FALSE(cache.access(0x1040)) << "next line";
}

TEST(Cache, LruEvictsOldest) {
  // 1 KiB, 2-way, 64B lines -> 8 sets. Three lines mapping to one set.
  Cache cache(CacheParams{1024, 2, 64, 2, "t"});
  const std::uint64_t a = 0x0000, b = 0x2000, c = 0x4000;  // same set
  cache.access(a);
  cache.access(b);
  cache.access(a);        // a is now MRU
  cache.access(c);        // evicts b
  EXPECT_TRUE(cache.probe(a));
  EXPECT_FALSE(cache.probe(b));
  EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache cache(CacheParams{1024, 2, 64, 2, "t"});
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST(Cache, AssociativityKeepsWaysResident) {
  Cache cache(CacheParams{4096, 4, 64, 2, "t"});
  // Four lines in one set of a 4-way cache all stay resident.
  for (std::uint64_t i = 0; i < 4; ++i) cache.access(i * 1024);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.probe(i * 1024));
}

TEST(Hierarchy, LatenciesStack) {
  HierarchyParams params;
  MemoryHierarchy mem(params);
  // Cold: L1 miss + L2 miss + memory.
  const std::uint64_t cold = mem.load(0x10000, 1000);
  EXPECT_EQ(cold, 1000u + 2 + 12 + 350);
  // Warm: L1 hit.
  const std::uint64_t warm = mem.load(0x10000, 2000);
  EXPECT_EQ(warm, 2000u + 2);
}

TEST(Hierarchy, L2CatchesL1Evictions) {
  HierarchyParams params;
  params.l1d = CacheParams{1024, 2, 64, 2, "small-l1"};
  MemoryHierarchy mem(params);
  mem.load(0x0000, 0);
  // Evict from the tiny L1 by filling its set, then reload: L2 hit.
  mem.load(0x2000, 400);
  mem.load(0x4000, 800);
  const std::uint64_t reload = mem.load(0x0000, 1200);
  EXPECT_EQ(reload, 1200u + 2 + 12) << "should hit in L2, not memory";
}

TEST(Hierarchy, MshrsBoundOutstandingMisses) {
  HierarchyParams params;
  params.mshrs = 2;
  MemoryHierarchy mem(params);
  EXPECT_NE(mem.load(0x100000, 10), 0u);
  EXPECT_NE(mem.load(0x200000, 10), 0u);
  EXPECT_EQ(mem.load(0x300000, 10), 0u) << "third concurrent miss rejected";
  // After the misses complete, capacity returns.
  EXPECT_NE(mem.load(0x300000, 10 + 400), 0u);
}

TEST(Predictor, LearnsAlwaysTakenBranch) {
  BranchPredictor pred;
  DecodedInst beq;
  beq.op = Opcode::kBeq;
  beq.src1 = {RegClass::kInt, 1};
  beq.src2 = {RegClass::kInt, 2};
  beq.imm = -5;
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const BranchPrediction p = pred.predict(100, beq);
    if (p.taken) ++correct;
    pred.resolve(100, beq, p, /*taken=*/true, /*target=*/95);
    if (!p.taken) pred.restore_history(p.ghr_snapshot, true);
  }
  EXPECT_GT(correct, 80) << "an always-taken branch must be learned";
}

TEST(Predictor, LearnsShortPeriodicPattern) {
  BranchPredictor pred;
  DecodedInst bne;
  bne.op = Opcode::kBne;
  bne.src1 = {RegClass::kInt, 1};
  bne.src2 = {RegClass::kInt, 2};
  bne.imm = 3;
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    const bool actual = (i % 4) != 0;  // TTTN repeating
    const BranchPrediction p = pred.predict(200, bne);
    if (p.taken == actual) ++correct;
    pred.resolve(200, bne, p, actual, actual ? 203 : 201);
    if (p.taken != actual) {
      pred.restore_history(p.ghr_snapshot, actual);
    }
  }
  EXPECT_GT(correct, 300) << "gshare should learn a period-4 pattern";
}

TEST(Predictor, DirectJumpsAlwaysHitTarget) {
  BranchPredictor pred;
  DecodedInst jmp;
  jmp.op = Opcode::kJmp;
  jmp.imm = 777;
  const BranchPrediction p = pred.predict(10, jmp);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 777u);
}

TEST(Predictor, RasPairsCallsAndReturns) {
  BranchPredictor pred;
  DecodedInst jal;
  jal.op = Opcode::kJal;
  jal.dst = {RegClass::kInt, kLinkReg};
  jal.imm = 500;
  DecodedInst jr;
  jr.op = Opcode::kJr;
  jr.src1 = {RegClass::kInt, kLinkReg};

  pred.predict(10, jal);  // pushes 11
  pred.predict(20, jal);  // pushes 21
  EXPECT_EQ(pred.predict(600, jr).target, 21u);
  EXPECT_EQ(pred.predict(601, jr).target, 11u);
}

TEST(Predictor, IndirectJumpLearnsThroughBtb) {
  BranchPredictor btb_pred(BranchPredictorParams{14, 2048, 4, 0});  // no RAS
  DecodedInst jr;
  jr.op = Opcode::kJr;
  jr.src1 = {RegClass::kInt, 9};
  const BranchPrediction miss = btb_pred.predict(30, jr);
  btb_pred.resolve(30, jr, miss, true, 1234);
  const BranchPrediction hit = btb_pred.predict(30, jr);
  EXPECT_EQ(hit.target, 1234u);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.next_below(17), 17u);
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NameHashingIsStable) {
  EXPECT_EQ(hash_name("equake"), hash_name("equake"));
  EXPECT_NE(hash_name("equake"), hash_name("swim"));
}

}  // namespace
}  // namespace bj
