// Unit tests for the ISA layer: encode/decode round trips, operand classes,
// immediates, disassembly, and the shared eval() semantics.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/exec.h"
#include "isa/instruction.h"

namespace bj {
namespace {

DecodedInst rrr(Opcode op, int rd, int rs1, int rs2) {
  DecodedInst inst;
  inst.op = op;
  const OpTraits& t = traits(op);
  if (t.dst_cls != RegClass::kNone)
    inst.dst = {t.dst_cls, static_cast<std::uint8_t>(rd)};
  if (t.src1_cls != RegClass::kNone)
    inst.src1 = {t.src1_cls, static_cast<std::uint8_t>(rs1)};
  if (t.src2_cls != RegClass::kNone)
    inst.src2 = {t.src2_cls, static_cast<std::uint8_t>(rs2)};
  return inst;
}

TEST(IsaEncoding, RoundTripsRegisterRegister) {
  for (Opcode op : {Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kFadd,
                    Opcode::kFmul, Opcode::kSlt}) {
    const DecodedInst inst = rrr(op, 3, 7, 21);
    const DecodedInst back = decode(encode(inst));
    EXPECT_EQ(inst, back) << disassemble(inst);
  }
}

TEST(IsaEncoding, RoundTripsImmediates) {
  for (std::int64_t imm : {0ll, 1ll, -1ll, 32767ll, -32768ll, 1234ll}) {
    DecodedInst inst;
    inst.op = Opcode::kAddi;
    inst.dst = {RegClass::kInt, 5};
    inst.src1 = {RegClass::kInt, 6};
    inst.imm = imm & 0xffff;
    const DecodedInst back = decode(encode(inst));
    EXPECT_EQ(back.imm, static_cast<std::int16_t>(imm))
        << "imm " << imm << " should sign-extend";
  }
}

TEST(IsaEncoding, ZeroExtendsLogicalImmediates) {
  DecodedInst inst;
  inst.op = Opcode::kOri;
  inst.dst = {RegClass::kInt, 1};
  inst.src1 = {RegClass::kInt, 0};
  inst.imm = 0xffff;
  const DecodedInst back = decode(encode(inst));
  EXPECT_EQ(back.imm, 0xffff);
}

TEST(IsaEncoding, StoreCarriesDataInRdSlot) {
  DecodedInst inst;
  inst.op = Opcode::kSt;
  inst.src1 = {RegClass::kInt, 4};   // base
  inst.src2 = {RegClass::kInt, 17};  // data
  inst.imm = 8;
  const DecodedInst back = decode(encode(inst));
  EXPECT_EQ(back.src1.idx, 4);
  EXPECT_EQ(back.src2.idx, 17);
  EXPECT_EQ(back.imm, 8);
}

TEST(IsaEncoding, UnknownOpcodeDecodesInvalid) {
  const std::uint32_t bogus = 0x3fu << 26;
  const DecodedInst inst = decode(bogus);
  EXPECT_FALSE(inst.valid);
  EXPECT_EQ(inst.op, Opcode::kNop);
}

TEST(IsaEncoding, EveryOpcodeRoundTrips) {
  for (int o = 0; o < kNumOpcodes; ++o) {
    const auto op = static_cast<Opcode>(o);
    DecodedInst inst = rrr(op, 2, 3, 4);
    const OpTraits& t = traits(op);
    if (t.format == Format::kI || t.format == Format::kStore ||
        t.format == Format::kBranch) {
      inst.imm = 12;
    }
    if (t.format == Format::kBranch) {
      inst.src1 = {RegClass::kInt, 2};
      inst.src2 = {RegClass::kInt, 3};
    }
    if (t.format == Format::kStore) {
      inst.src1 = {t.src1_cls, 3};
      inst.src2 = {t.src2_cls, 2};
    }
    if (t.format == Format::kJ) {
      inst.imm = 1000;
      if (op == Opcode::kJal) inst.dst = {RegClass::kInt, kLinkReg};
    }
    if (t.format == Format::kJr) inst.src1 = {RegClass::kInt, 2};
    const DecodedInst back = decode(encode(inst));
    EXPECT_EQ(inst.op, back.op);
    EXPECT_EQ(inst.dst, back.dst) << disassemble(inst);
    EXPECT_EQ(inst.src1, back.src1) << disassemble(inst);
    EXPECT_EQ(inst.src2, back.src2) << disassemble(inst);
  }
}

TEST(IsaEval, IntegerArithmetic) {
  auto run = [](Opcode op, std::uint64_t a, std::uint64_t b) {
    return eval(rrr(op, 1, 2, 3), a, b, 0).value;
  };
  EXPECT_EQ(run(Opcode::kAdd, 2, 3), 5u);
  EXPECT_EQ(run(Opcode::kSub, 2, 3), static_cast<std::uint64_t>(-1));
  EXPECT_EQ(run(Opcode::kMul, 7, 6), 42u);
  EXPECT_EQ(run(Opcode::kDiv, 42, 6), 7u);
  EXPECT_EQ(run(Opcode::kDiv, 42, 0), ~0ull) << "div by zero is all ones";
  EXPECT_EQ(run(Opcode::kRem, 42, 0), 42u);
  EXPECT_EQ(run(Opcode::kSlt, static_cast<std::uint64_t>(-5), 3), 1u);
  EXPECT_EQ(run(Opcode::kSltu, static_cast<std::uint64_t>(-5), 3), 0u);
  EXPECT_EQ(run(Opcode::kSra, static_cast<std::uint64_t>(-8), 1),
            static_cast<std::uint64_t>(-4));
}

TEST(IsaEval, FloatingPoint) {
  auto f = [](double d) { return std::bit_cast<std::uint64_t>(d); };
  auto d = [](std::uint64_t u) { return std::bit_cast<double>(u); };
  EXPECT_DOUBLE_EQ(d(eval(rrr(Opcode::kFadd, 1, 2, 3), f(1.5), f(2.5), 0).value),
                   4.0);
  EXPECT_DOUBLE_EQ(d(eval(rrr(Opcode::kFmul, 1, 2, 3), f(3.0), f(4.0), 0).value),
                   12.0);
  EXPECT_DOUBLE_EQ(d(eval(rrr(Opcode::kFdiv, 1, 2, 3), f(1.0), f(4.0), 0).value),
                   0.25);
  EXPECT_DOUBLE_EQ(d(eval(rrr(Opcode::kFsqrt, 1, 2, 0), f(9.0), 0, 0).value),
                   3.0);
  EXPECT_EQ(eval(rrr(Opcode::kFlt, 1, 2, 3), f(1.0), f(2.0), 0).value, 1u);
  EXPECT_EQ(eval(rrr(Opcode::kFeq, 1, 2, 3), f(2.0), f(2.0), 0).value, 1u);
  EXPECT_DOUBLE_EQ(d(eval(rrr(Opcode::kItof, 1, 2, 0), 7, 0, 0).value), 7.0);
  EXPECT_EQ(eval(rrr(Opcode::kFtoi, 1, 2, 0), f(7.9), 0, 0).value, 7u);
}

TEST(IsaEval, BranchesAndTargets) {
  DecodedInst beq;
  beq.op = Opcode::kBeq;
  beq.src1 = {RegClass::kInt, 1};
  beq.src2 = {RegClass::kInt, 2};
  beq.imm = -3;
  ExecOutcome taken = eval(beq, 5, 5, 100);
  EXPECT_TRUE(taken.taken);
  EXPECT_EQ(taken.target, 97u);
  ExecOutcome not_taken = eval(beq, 5, 6, 100);
  EXPECT_FALSE(not_taken.taken);
  EXPECT_EQ(not_taken.target, 101u);
}

TEST(IsaEval, JumpsAndLink) {
  DecodedInst jal;
  jal.op = Opcode::kJal;
  jal.dst = {RegClass::kInt, kLinkReg};
  jal.imm = 42;
  const ExecOutcome out = eval(jal, 0, 0, 10);
  EXPECT_TRUE(out.taken);
  EXPECT_EQ(out.target, 42u);
  EXPECT_EQ(out.value, 11u);

  DecodedInst jr;
  jr.op = Opcode::kJr;
  jr.src1 = {RegClass::kInt, 5};
  const ExecOutcome out2 = eval(jr, 77, 0, 10);
  EXPECT_EQ(out2.target, 77u);
}

TEST(IsaEval, MemoryAddressing) {
  DecodedInst ld;
  ld.op = Opcode::kLd;
  ld.dst = {RegClass::kInt, 1};
  ld.src1 = {RegClass::kInt, 2};
  ld.imm = 16;
  EXPECT_EQ(eval(ld, 1000, 0, 0).mem_addr, 1016u);
  // Addresses are aligned down to 8 bytes.
  ld.imm = 3;
  EXPECT_EQ(eval(ld, 1000, 0, 0).mem_addr, 1000u);
}

TEST(IsaEval, InvalidActsAsNop) {
  DecodedInst inst = decode(0x3fu << 26);
  const ExecOutcome out = eval(inst, 1, 2, 5);
  EXPECT_FALSE(out.taken);
  EXPECT_EQ(out.target, 6u);
  EXPECT_EQ(out.value, 0u);
}

TEST(IsaBuilder, ResolvesLabelsForwardAndBackward) {
  ProgramBuilder b("labels");
  b.li(1, 0);
  b.label("top");
  b.addi(1, 1, 1);
  b.slti(2, 1, 3);
  b.bne(2, 0, "top");
  b.jmp("end");
  b.addi(1, 1, 100);  // skipped
  b.label("end");
  b.halt();
  const Program p = b.build();
  EXPECT_GT(p.size(), 5u);
}

TEST(IsaBuilder, ThrowsOnUnresolvedLabel) {
  ProgramBuilder b("bad");
  b.jmp("nowhere");
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(IsaBuilder, ThrowsOnDuplicateLabel) {
  ProgramBuilder b("dup");
  b.label("x");
  EXPECT_THROW(b.label("x"), std::runtime_error);
}

TEST(IsaBuilder, LoadsLargeConstants) {
  for (std::uint64_t v :
       {0ull, 1ull, 0xffffull, 0x12345678ull, 0xdeadbeefcafebabeull,
        ~0ull}) {
    ProgramBuilder b("li");
    b.li(1, v);
    b.li(2, 0x1000);
    b.st(1, 2, 0);
    b.halt();
    // The emulator test validates values; here we just check it encodes.
    EXPECT_NO_THROW(b.build());
  }
}

TEST(IsaDisasm, ProducesReadableText) {
  DecodedInst add = rrr(Opcode::kAdd, 3, 1, 2);
  EXPECT_EQ(disassemble(add), "add r3, r1, r2");
  DecodedInst fmul = rrr(Opcode::kFmul, 4, 5, 6);
  EXPECT_EQ(disassemble(fmul), "fmul f4, f5, f6");
}


TEST(IsaRoundTrip, FuzzedInstructionsSurviveDisasmAssemble) {
  // Random well-formed instructions must round-trip through
  // disassemble() -> assemble() bit-exactly (J-format targets are labels in
  // text form, so jumps/branches are exercised separately by the builder
  // tests).
  Rng rng(31415);
  ProgramBuilder builder("fuzz");
  std::vector<Opcode> ops;
  for (int o = 0; o < kNumOpcodes; ++o) {
    const auto op = static_cast<Opcode>(o);
    const OpTraits& t = traits(op);
    if (t.format == Format::kR || t.format == Format::kI ||
        t.format == Format::kStore || t.format == Format::kNone) {
      ops.push_back(op);
    }
  }
  std::string text;
  std::vector<std::uint32_t> expected;
  for (int trial = 0; trial < 500; ++trial) {
    const Opcode op = ops[rng.next_below(ops.size())];
    const OpTraits& t = traits(op);
    DecodedInst inst;
    inst.op = op;
    auto reg = [&](RegClass cls) {
      return RegRef{cls, static_cast<std::uint8_t>(rng.next_below(32))};
    };
    switch (t.format) {
      case Format::kNone:
        break;
      case Format::kR:
        if (t.dst_cls != RegClass::kNone) inst.dst = reg(t.dst_cls);
        if (t.src1_cls != RegClass::kNone) inst.src1 = reg(t.src1_cls);
        if (t.src2_cls != RegClass::kNone) inst.src2 = reg(t.src2_cls);
        break;
      case Format::kI:
        inst.dst = reg(t.dst_cls);
        if (t.src1_cls != RegClass::kNone) inst.src1 = reg(t.src1_cls);
        inst.imm = static_cast<std::int64_t>(rng.next_below(1 << 16));
        break;
      case Format::kStore:
        inst.src1 = reg(t.src1_cls);
        inst.src2 = reg(t.src2_cls);
        inst.imm = static_cast<std::int64_t>(rng.next_below(1 << 15));
        break;
      default:
        continue;
    }
    // Normalize through one encode/decode so sign extension matches what
    // the disassembler will print.
    inst = decode(encode(inst));
    text += disassemble(inst) + "\n";
    expected.push_back(encode(inst));
  }
  const Program p = assemble(text);
  ASSERT_EQ(p.code.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(p.code[i], expected[i]) << disassemble(expected[i]);
  }
}

}  // namespace
}  // namespace bj
