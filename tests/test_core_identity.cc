// Bit-identicality regression tests for the hot-path data-structure rewrite.
//
// The flat-array/ring/wheel core and the shuffle memoization cache are pure
// performance changes: every CoreStats counter (including the event-counter
// map) and every campaign outcome must match the pre-rewrite implementation
// exactly. The golden FNV-1a fingerprints below were captured from the seed
// std::map/std::set/std::deque implementation on this exact run recipe; any
// divergence — one cycle, one counter, one event-map entry — changes the
// hash. If a deliberate timing-model change invalidates them, recapture with
// the recipe in stats_fingerprint() and say so in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "blackjack/shuffle.h"
#include "harness/campaign.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

// FNV-1a over uint64 values, each hashed as 8 little-endian bytes.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

// 5000 warm-up commits, stats reset, 20000 measured commits, then a hash of
// every scalar CoreStats field plus the full event-counter map (names and
// counts). Must stay in lockstep with the goldens below. Note the hash does
// NOT include wakeup_events/select_pool_peak: those count implementation
// events of the wakeup-list select and legitimately differ between the
// default and BJ_LEGACY_SCAN builds, while everything hashed here must not.
std::uint64_t stats_fingerprint(const char* workload, Mode mode,
                                const CoreParams& params = CoreParams{}) {
  const Program program = generate_workload(profile_by_name(workload));
  Core core(program, mode, params);
  core.set_oracle_check(true);
  core.run(5000, 4000000);
  core.reset_stats();
  core.run(20000, 8000000);
  const CoreStats& s = core.stats();
  Fnv f;
  f.add(s.cycles);
  f.add(s.leading_commits);
  f.add(s.trailing_commits);
  f.add(s.issue_cycles);
  f.add(s.single_context_issue_cycles);
  f.add(s.lt_interference_cycles);
  f.add(s.tt_interference_cycles);
  f.add(s.tt_sibling_cycles);
  f.add(s.other_diversity_loss_cycles);
  f.add(s.instructions_issued);
  f.add(s.packets_shuffled);
  f.add(s.shuffle_nops);
  f.add(s.packet_splits);
  f.add(s.shuffle_forced_places);
  f.add(s.packets_combined);
  f.add(s.payload_corrupted_leading);
  f.add(s.payload_corrupted_both);
  f.add(s.branch_lookups);
  f.add(s.branch_mispredicts);
  f.add(s.coverage.pairs());
  f.add(static_cast<std::uint64_t>(1e9 * s.coverage.frontend_coverage()));
  f.add(static_cast<std::uint64_t>(1e9 * s.coverage.backend_coverage()));
  for (const auto& [name, count] : s.events.all()) {
    Fnv fe;
    for (char c : name) fe.add(static_cast<std::uint64_t>(c));
    f.add(fe.h);
    f.add(count);
  }
  return f.h;
}

struct Golden {
  Mode mode;
  std::uint64_t fingerprint;
};

void expect_goldens(const char* workload, const std::vector<Golden>& goldens) {
  for (const Golden& g : goldens) {
    EXPECT_EQ(stats_fingerprint(workload, g.mode), g.fingerprint)
        << workload << " / " << mode_name(g.mode);
  }
}

TEST(CoreIdentity, StatsFingerprintGcc) {
  expect_goldens("gcc", {{Mode::kSingle, 0x891b08e2335fb743ull},
                         {Mode::kSrt, 0x05ac1c5f7f79a7e6ull},
                         {Mode::kBlackjackNs, 0x6bd25b101af00a4eull},
                         {Mode::kBlackjack, 0x285a1a3f92abbee0ull}});
}

TEST(CoreIdentity, StatsFingerprintGzip) {
  expect_goldens("gzip", {{Mode::kSingle, 0x4aef996dfe7376f5ull},
                          {Mode::kSrt, 0xab6b5dca57305e1aull},
                          {Mode::kBlackjackNs, 0xac2e5fff8b53626full},
                          {Mode::kBlackjack, 0xf9cd167fff1e6cf2ull}});
}

TEST(CoreIdentity, StatsFingerprintArt) {
  expect_goldens("art", {{Mode::kSingle, 0x1fa15e4c587be018ull},
                         {Mode::kSrt, 0x3a823cdbfa6e3ef3ull},
                         {Mode::kBlackjackNs, 0x94c41d1ac5f72487ull},
                         {Mode::kBlackjack, 0x0362e0717e7f1a24ull}});
}

TEST(CoreIdentity, StatsFingerprintCrafty) {
  expect_goldens("crafty", {{Mode::kSingle, 0xba575ba16a62cee5ull},
                            {Mode::kSrt, 0xbda4df22ee27ceb1ull},
                            {Mode::kBlackjackNs, 0xc36d96c9498a4226ull},
                            {Mode::kBlackjack, 0x5118d729f2471700ull}});
}

// Differential mode: check_issue_equivalence re-runs the legacy full-IQ
// readiness scan every cycle next to the wakeup-list select and aborts on
// the first cycle where the two candidate sets differ (core_issue.cc,
// check_issue_sets). Running the four golden workloads through the full
// fingerprint recipe with the check enabled proves (a) the two selects agree
// on every one of the ~25k-commit runs' cycles and (b) the check itself is a
// pure observer — the fingerprints still equal the goldens above. Under
// BJ_LEGACY_SCAN the flag is a no-op and this reduces to the plain golden
// test.
TEST(CoreIdentity, DifferentialScanVsWakeupMatchesGoldens) {
  CoreParams params;
  params.check_issue_equivalence = true;
  const struct {
    const char* workload;
    std::uint64_t fingerprints[4];  // single, srt, blackjack-ns, blackjack
  } kGoldens[] = {
      {"gcc", {0x891b08e2335fb743ull, 0x05ac1c5f7f79a7e6ull,
               0x6bd25b101af00a4eull, 0x285a1a3f92abbee0ull}},
      {"gzip", {0x4aef996dfe7376f5ull, 0xab6b5dca57305e1aull,
                0xac2e5fff8b53626full, 0xf9cd167fff1e6cf2ull}},
      {"art", {0x1fa15e4c587be018ull, 0x3a823cdbfa6e3ef3ull,
               0x94c41d1ac5f72487ull, 0x0362e0717e7f1a24ull}},
      {"crafty", {0xba575ba16a62cee5ull, 0xbda4df22ee27ceb1ull,
                  0xc36d96c9498a4226ull, 0x5118d729f2471700ull}},
  };
  const Mode kModes[] = {Mode::kSingle, Mode::kSrt, Mode::kBlackjackNs,
                         Mode::kBlackjack};
  for (const auto& g : kGoldens) {
    for (int m = 0; m < 4; ++m) {
      EXPECT_EQ(stats_fingerprint(g.workload, kModes[m], params),
                g.fingerprints[m])
          << g.workload << " / " << mode_name(kModes[m])
          << " with check_issue_equivalence";
    }
  }
}

// The same side-by-side check across every one of the 16 SPEC2000 stand-in
// profiles (shorter runs; the four above already get the full recipe), in
// the mode with the most select-time machinery (BlackJack: two contexts,
// LVQ, DTQ, shuffle nops). Any scan/wakeup divergence aborts via BJ_CHECK;
// the assertions here pin that every profile actually makes progress.
TEST(CoreIdentity, DifferentialScanVsWakeupAllProfiles) {
  CoreParams params;
  params.check_issue_equivalence = true;
  for (const WorkloadProfile& profile : spec2000_profiles()) {
    const Program program = generate_workload(profile);
    Core core(program, Mode::kBlackjack, params);
    core.set_oracle_check(true);
    core.run(6000, 2000000);
    EXPECT_GT(core.stats().leading_commits, 0u) << profile.name;
    EXPECT_FALSE(core.oracle_violated())
        << profile.name << ": " << core.oracle_violation_detail();
  }
}

// Campaign outcomes (classification, activation counts, detection cycles and
// kinds, corruption counts) across SRT and BlackJack on the seed classifier
// defaults — oracle_check off, so this also pins that the new oracle outcome
// is opt-in and does not disturb historical classifications.
TEST(CoreIdentity, CampaignOutcomeFingerprint) {
  Fnv f;
  for (Mode mode : {Mode::kSrt, Mode::kBlackjack}) {
    CampaignConfig config;
    config.mode = mode;
    config.num_faults = 40;
    config.seed = 99;
    config.budget_commits = 6000;
    const Program program = generate_workload(profile_by_name("gcc"));
    const CampaignResult r = run_campaign(program, config);
    for (const FaultRun& run : r.runs) {
      EXPECT_NE(run.outcome, FaultOutcome::kOracleDivergence);
      EXPECT_FALSE(run.oracle_violated);
      f.add(static_cast<std::uint64_t>(run.outcome));
      f.add(run.activations);
      f.add(run.detection_cycle);
      f.add(static_cast<std::uint64_t>(run.detection_kind));
      f.add(run.corrupt_stores_released);
    }
  }
  EXPECT_EQ(f.h, 0x17be1bee321ad996ull);
}

// --- shuffle memoization ---------------------------------------------------

void expect_same_result(const ShuffleResult& a, const ShuffleResult& b) {
  EXPECT_EQ(a.nops_inserted, b.nops_inserted);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_EQ(a.forced_places, b.forced_places);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t p = 0; p < a.packets.size(); ++p) {
    ASSERT_EQ(a.packets[p].size(), b.packets[p].size());
    for (std::size_t s = 0; s < a.packets[p].size(); ++s) {
      EXPECT_EQ(a.packets[p][s].is_nop, b.packets[p][s].is_nop);
      EXPECT_EQ(a.packets[p][s].cls, b.packets[p][s].cls);
      EXPECT_EQ(a.packets[p][s].input_index, b.packets[p][s].input_index);
    }
  }
}

// Property: for any packet, the cached shuffle is byte-identical to a direct
// safe_shuffle — on the miss that populates the entry AND on every later hit
// of the same shape. Randomized over the full signature space the pipeline
// can produce (deterministic LCG, so failures reproduce).
TEST(ShuffleCache, MatchesDirectShuffle) {
  ShuffleCache cache;
  std::uint64_t x = 0x243f6a8885a308d3ull;
  auto next = [&](std::uint64_t bound) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return (x >> 33) % bound;
  };
  int hits = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const int width = 2 + static_cast<int>(next(3));  // 2..4
    const std::size_t count = 1 + next(static_cast<std::uint64_t>(width));
    std::vector<ShuffleInst> packet(count);
    for (ShuffleInst& inst : packet) {
      inst.fu = static_cast<FuClass>(next(kNumFuClasses));
      inst.lead_frontend_way = static_cast<int>(next(
          static_cast<std::uint64_t>(width)));
      inst.lead_backend_way = static_cast<int>(next(4));
    }
    bool hit = false;
    const ShuffleResult& cached = cache.shuffle(packet, width, &hit);
    if (hit) ++hits;
    expect_same_result(cached, safe_shuffle(packet, width));
  }
  // The signature space above is small enough that repeats must occur;
  // a zero hit count would mean the cache never actually memoizes.
  EXPECT_GT(hits, 0);
  EXPECT_GT(cache.size(), 0u);
}

// Past the entry cap the cache must keep answering correctly (compute
// without inserting) rather than evict or grow without bound.
TEST(ShuffleCache, CapComputesWithoutInserting) {
  ShuffleCache cache(4);
  for (int i = 0; i < 16; ++i) {
    std::vector<ShuffleInst> packet(1);
    packet[0].fu = FuClass::kIntAlu;
    packet[0].lead_frontend_way = i % 4;
    packet[0].lead_backend_way = i / 4;
    bool hit = false;
    const ShuffleResult& cached = cache.shuffle(packet, 4, &hit);
    expect_same_result(cached, safe_shuffle(packet, 4));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.size(), 4u);
}

// Packets outside the packable signature range (here: width > 16) bypass the
// cache entirely and still return the exact direct result.
TEST(ShuffleCache, UnpackableInputFallsBackToDirect) {
  ShuffleCache cache;
  std::vector<ShuffleInst> packet(2);
  packet[0] = {FuClass::kIntAlu, 0, 0};
  packet[1] = {FuClass::kFpAlu, 1, 0};
  bool hit = true;
  const ShuffleResult& cached = cache.shuffle(packet, 17, &hit);
  EXPECT_FALSE(hit);
  expect_same_result(cached, safe_shuffle(packet, 17));
  EXPECT_EQ(cache.size(), 0u);
}

// --- stats reset -----------------------------------------------------------

// reset_stats() must zero every counter family together: the warm-up /
// measured-window split in every driver depends on it. The shuffle-cache
// hit/miss counters ride in CoreStats precisely so this holds by
// construction — this test keeps them (and the interference and shuffle
// counters) from drifting out of the reset path.
TEST(CoreIdentity, ResetStatsCoversAllCounterFamilies) {
  const Program program = generate_workload(profile_by_name("gzip"));
  Core core(program, Mode::kBlackjack);
  core.run(4000, 1000000);
  const CoreStats& s = core.stats();
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.packets_shuffled, 0u);
  EXPECT_GT(s.shuffle_cache_hits + s.shuffle_cache_misses, 0u);
  EXPECT_GT(s.instructions_issued, 0u);
  if constexpr (kUseWakeupLists) {
    EXPECT_GT(s.wakeup_events, 0u);
    EXPECT_GT(s.select_pool_peak, 0u);
  }
  EXPECT_FALSE(s.events.all().empty());

  core.reset_stats();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.leading_commits, 0u);
  EXPECT_EQ(s.trailing_commits, 0u);
  EXPECT_EQ(s.issue_cycles, 0u);
  EXPECT_EQ(s.lt_interference_cycles, 0u);
  EXPECT_EQ(s.tt_interference_cycles, 0u);
  EXPECT_EQ(s.other_diversity_loss_cycles, 0u);
  EXPECT_EQ(s.instructions_issued, 0u);
  EXPECT_EQ(s.packets_shuffled, 0u);
  EXPECT_EQ(s.shuffle_nops, 0u);
  EXPECT_EQ(s.packet_splits, 0u);
  EXPECT_EQ(s.shuffle_cache_hits, 0u);
  EXPECT_EQ(s.shuffle_cache_misses, 0u);
  EXPECT_EQ(s.wakeup_events, 0u);
  EXPECT_EQ(s.select_pool_peak, 0u);
  EXPECT_EQ(s.coverage.pairs(), 0u);
  EXPECT_TRUE(s.events.all().empty());

  // The core keeps running and re-accumulating after a reset.
  core.run(2000, 2000000);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.shuffle_cache_hits + s.shuffle_cache_misses, 0u);
}

// --- oracle campaign outcome -----------------------------------------------

// Enabling the oracle may only RECLASSIFY benign runs as oracle-divergence;
// the simulation itself is unperturbed (the oracle is a read-only side-car),
// so every other outcome, activation count, and corruption count must be
// unchanged run-for-run.
TEST(CampaignOracle, ReclassifiesOnlySilentDivergences) {
  const Program program = generate_workload(profile_by_name("gzip"));
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 25;
  config.seed = 7;
  config.budget_commits = 3000;

  const CampaignResult off = run_campaign(program, config);
  config.oracle_check = true;
  const CampaignResult on = run_campaign(program, config);

  ASSERT_EQ(off.runs.size(), on.runs.size());
  int reclassified = 0;
  for (std::size_t i = 0; i < off.runs.size(); ++i) {
    EXPECT_EQ(off.runs[i].activations, on.runs[i].activations);
    EXPECT_EQ(off.runs[i].corrupt_stores_released,
              on.runs[i].corrupt_stores_released);
    EXPECT_FALSE(off.runs[i].oracle_violated);
    EXPECT_NE(off.runs[i].outcome, FaultOutcome::kOracleDivergence);
    if (on.runs[i].outcome != off.runs[i].outcome) {
      EXPECT_EQ(off.runs[i].outcome, FaultOutcome::kBenign);
      EXPECT_EQ(on.runs[i].outcome, FaultOutcome::kOracleDivergence);
      EXPECT_TRUE(on.runs[i].oracle_violated);
      ++reclassified;
    }
    if (on.runs[i].outcome == FaultOutcome::kOracleDivergence) {
      // Divergence without activation would mean the oracle itself drifted.
      EXPECT_GT(on.runs[i].activations, 0u);
    }
  }
  EXPECT_EQ(on.count(FaultOutcome::kOracleDivergence), reclassified);
  EXPECT_EQ(std::string(fault_outcome_name(FaultOutcome::kOracleDivergence)),
            "oracle-divergence");
}

}  // namespace
}  // namespace bj
