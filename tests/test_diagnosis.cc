// Tests for the diagnosis-by-deconfiguration extension: localizing a
// detected hard fault to a backend way and running degraded.
#include <gtest/gtest.h>

#include "harness/diagnosis.h"
#include "workload/microkernels.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

Program workload() {
  WorkloadProfile p = profile_by_name("eon");
  return generate_workload(p);
}

HardFault backend_fault(FuClass fu, int way, int bit = 3) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = fu;
  f.backend_way = way;
  f.bit = bit;
  f.stuck_value = true;
  return f;
}

TEST(WayDisabling, IssueNeverUsesDisabledWay) {
  CoreParams params;
  params.disabled_backend_ways[static_cast<int>(FuClass::kIntAlu)] = 1u << 2;
  // A fault on the disabled way can never activate.
  FaultInjector injector(backend_fault(FuClass::kIntAlu, 2));
  Core core(workload(), Mode::kBlackjack, params, &injector);
  core.set_oracle_check(true);
  const RunOutcome outcome = core.run(15000, 4000000);
  EXPECT_EQ(injector.activations(), 0u);
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
}

TEST(WayDisabling, MachineStaysCorrectWithOneWayPerClassDisabled) {
  CoreParams params;
  params.disabled_backend_ways[static_cast<int>(FuClass::kIntAlu)] = 1u << 0;
  params.disabled_backend_ways[static_cast<int>(FuClass::kFpMul)] = 1u << 1;
  params.disabled_backend_ways[static_cast<int>(FuClass::kMem)] = 1u << 0;
  WorkloadProfile p = profile_by_name("sixtrack");
  p.iterations = 60;
  Core core(generate_workload(p), Mode::kBlackjack, params);
  const RunOutcome outcome = core.run(~0ull / 2, 30000000);
  EXPECT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
}

TEST(WayDisabling, DegradedModeIsSlower) {
  // vortex is cache-resident with ~1.3 memory ops per cycle at its natural
  // IPC: losing one of the two memory ports binds.
  const Program p = generate_workload(profile_by_name("vortex"));
  Core healthy(p, Mode::kSingle);
  healthy.run(20000, 4000000);
  CoreParams degraded_params;
  degraded_params.disabled_backend_ways[static_cast<int>(FuClass::kMem)] =
      1u << 0;
  Core degraded(p, Mode::kSingle, degraded_params);
  degraded.run(20000, 4000000);
  EXPECT_GT(degraded.cycle(), healthy.cycle());
}

TEST(Diagnosis, LocalizesIntAluFault) {
  const DiagnosisResult r = diagnose_backend_fault(
      workload(), Mode::kBlackjack, CoreParams{},
      backend_fault(FuClass::kIntAlu, 2), 12000);
  ASSERT_TRUE(r.baseline_detected);
  ASSERT_TRUE(r.suspect.has_value());
  EXPECT_EQ(r.suspect->first, FuClass::kIntAlu);
  EXPECT_EQ(r.suspect->second, 2);
  EXPECT_GT(r.degraded_performance, 0.5);
  EXPECT_LE(r.degraded_performance, 1.001);
}

TEST(Diagnosis, LocalizesMemPortFault) {
  const DiagnosisResult r = diagnose_backend_fault(
      workload(), Mode::kBlackjack, CoreParams{},
      backend_fault(FuClass::kMem, 1, /*bit=*/4), 12000);
  ASSERT_TRUE(r.baseline_detected);
  ASSERT_TRUE(r.suspect.has_value());
  EXPECT_EQ(r.suspect->first, FuClass::kMem);
  EXPECT_EQ(r.suspect->second, 1);
}

TEST(Diagnosis, FrontendFaultIsNotMisattributed) {
  HardFault f;
  f.site = FaultSite::kFrontendDecoder;
  f.frontend_way = 1;
  f.bit = 16;
  f.stuck_value = true;
  const DiagnosisResult r = diagnose_backend_fault(
      workload(), Mode::kBlackjack, CoreParams{}, f, 12000);
  ASSERT_TRUE(r.baseline_detected);
  EXPECT_FALSE(r.suspect.has_value())
      << "a decoder-lane fault must not be pinned on a backend way";
}

TEST(Diagnosis, CleanMachineReportsNothing) {
  HardFault f = backend_fault(FuClass::kFpMul, 1);
  // Integer-only microkernel never exercises the FP multiplier.
  WorkloadProfile p = profile_by_name("gzip");
  const DiagnosisResult r = diagnose_backend_fault(
      generate_workload(p), Mode::kBlackjack, CoreParams{}, f, 8000);
  EXPECT_FALSE(r.baseline_detected);
  EXPECT_FALSE(r.suspect.has_value());
  EXPECT_TRUE(r.trials.empty());
}

}  // namespace
}  // namespace bj
