// Tests for the observability layer: the metrics registry and its two
// writers, the pipeline tracer and its exporters, the stage profiler's
// bucket accounting, CounterSet::slot() aliasing, fault-propagation
// provenance in campaign records, and the batched-reporting ETA fix.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/stats.h"
#include "common/trace.h"
#include "harness/campaign.h"
#include "harness/driver.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesAndSummary) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0.0);

  h.add(0);
  h.add(1);
  h.add(2);
  h.add(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 103u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  // Bucket i holds v with 2^i <= v+1 < 2^(i+1): 0 -> bucket 0, 1..2 ->
  // bucket 1, 100 -> bucket 6 (101 in [64,128)).
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(6), 1u);
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 1);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(6), 63u);
  // Every value lands in the bucket whose floor is <= value.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 63ull, 64ull, 1ull << 30}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_LE(Histogram::bucket_floor(b), v) << v;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_floor(b + 1), v) << v;
    }
  }
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a;
  a.add(4);
  a.add(8);
  Histogram b;
  b.add(1);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1013u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, JsonWriterEmitsEveryKind) {
  MetricsRegistry reg;
  reg.counter("core.cycles", 1234);
  reg.gauge("core.ipc", 1.5);
  reg.ratio("shuffle.cache.hit_rate", 3, 4);
  RunningStat rs;
  rs.add(1.0);
  rs.add(3.0);
  reg.stat("run.seconds", rs);
  Histogram h;
  h.add(7);
  reg.histogram("campaign.latency", h);
  reg.text("core.mode", "blackjack");
  EXPECT_EQ(reg.size(), 6u);
  EXPECT_TRUE(reg.has("core.cycles"));
  EXPECT_EQ(reg.counter_value("core.cycles"), 1234u);
  EXPECT_EQ(reg.gauge_value("core.ipc"), 1.5);
  EXPECT_EQ(reg.text_value("core.mode"), "blackjack");

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"core.cycles\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"core.mode\":\"blackjack\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fraction\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[7,1]]"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":2"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusWriterMapsNamesAndExpandsKinds) {
  MetricsRegistry reg;
  reg.counter("core.events.dtq-full", 9);
  reg.ratio("branch.mispredict_rate", 1, 10);
  Histogram h;
  h.add(0);
  h.add(5);
  reg.histogram("campaign.latency", h);
  reg.text("campaign.mode", "srt");

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("bj_core_events_dtq_full 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bj_core_events_dtq_full counter"),
            std::string::npos);
  EXPECT_NE(text.find("bj_branch_mispredict_rate_hits 1"), std::string::npos);
  EXPECT_NE(text.find("bj_branch_mispredict_rate_total 10"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bj_campaign_latency histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("bj_campaign_latency_sum 5"), std::string::npos);
  EXPECT_NE(text.find("bj_campaign_mode_info{value=\"srt\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonStringsAreEscaped) {
  MetricsRegistry reg;
  reg.text("weird", "a\"b\\c\nd");
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// StageProfiler (satellite c: bucket accounting + reset)
// ---------------------------------------------------------------------------

TEST(StageProfiler, BucketsAccumulateIndependentlyAndReset) {
  StageProfiler prof;
  prof.add(SimStage::kFetch, 100);
  prof.add(SimStage::kFetch, 50);
  prof.add(SimStage::kCommit, 30);
  prof.note_cycle();
  prof.note_cycle();
  EXPECT_EQ(prof.ns(SimStage::kFetch), 150u);
  EXPECT_EQ(prof.ns(SimStage::kCommit), 30u);
  EXPECT_EQ(prof.ns(SimStage::kIssue), 0u);
  EXPECT_EQ(prof.total_ns(), 180u);
  EXPECT_EQ(prof.cycles(), 2u);

  prof.reset();
  EXPECT_EQ(prof.total_ns(), 0u);
  EXPECT_EQ(prof.cycles(), 0u);
  for (int i = 0; i < kNumSimStages; ++i) {
    EXPECT_EQ(prof.ns(static_cast<SimStage>(i)), 0u);
  }
}

TEST(StageProfiler, JsonReportSharesMetricsSchema) {
  StageProfiler prof;
  prof.add(SimStage::kIssue, 500);
  prof.note_cycle();
  const std::string json = prof.report_json();
  EXPECT_NE(json.find("\"schema_version\":" +
                      std::to_string(kMetricsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"issue\":{\"ns\":500"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":1"), std::string::npos);
  // Every stage appears, even the zero ones.
  for (int i = 0; i < kNumSimStages; ++i) {
    EXPECT_NE(json.find(std::string("\"") +
                        sim_stage_name(static_cast<SimStage>(i)) + "\":"),
              std::string::npos);
  }

  MetricsRegistry reg;
  prof.export_metrics(reg);
  EXPECT_EQ(reg.counter_value("profiler.stage.issue.ns"), 500u);
  EXPECT_EQ(reg.counter_value("profiler.cycles"), 1u);
}

// ---------------------------------------------------------------------------
// CounterSet::slot() aliasing (satellite c)
// ---------------------------------------------------------------------------

TEST(CounterSet, SlotPointersStaySableAcrossGrowth) {
  CounterSet counters;
  std::uint64_t& first = counters.slot("first");
  first = 7;
  // Grow the map by two orders of magnitude; the node-based map must not
  // move the slot.
  std::vector<std::uint64_t*> slots;
  for (int i = 0; i < 500; ++i) {
    slots.push_back(&counters.slot("ctr" + std::to_string(i)));
  }
  EXPECT_EQ(counters.get("first"), 7u);
  first += 1;
  EXPECT_EQ(counters.get("first"), 8u);
  for (int i = 0; i < 500; ++i) {
    *slots[static_cast<std::size_t>(i)] += static_cast<std::uint64_t>(i);
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(counters.get("ctr" + std::to_string(i)),
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(&counters.slot("ctr" + std::to_string(i)),
              slots[static_cast<std::size_t>(i)]);
  }
}

TEST(CounterSet, SlotAndBumpAliasTheSameStorage) {
  CounterSet counters;
  counters.bump("x", 3);
  std::uint64_t& slot = counters.slot("x");
  EXPECT_EQ(slot, 3u);
  counters.bump("x", 2);
  EXPECT_EQ(slot, 5u);
  slot += 5;
  EXPECT_EQ(counters.get("x"), 10u);
  // slot() on a fresh name creates it at zero, exactly like a first bump.
  EXPECT_EQ(counters.slot("fresh"), 0u);
  EXPECT_EQ(counters.all().count("fresh"), 1u);
}

// ---------------------------------------------------------------------------
// PipelineTracer
// ---------------------------------------------------------------------------

TraceRecord make_record(std::uint64_t seq, std::uint64_t fetch,
                        std::uint64_t end) {
  TraceRecord r;
  r.seq = seq;
  r.pc = 4096 + seq * 4;
  r.fetch_cycle = fetch;
  r.dispatch_cycle = fetch + 2;
  r.issue_cycle = fetch + 4;
  r.complete_cycle = fetch + 5;
  r.end_cycle = end;
  r.set_label("add r1, r2, r3");
  return r;
}

TEST(PipelineTracer, RingEvictsOldestAndCountsDrops) {
  PipelineTracer tracer(4, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record(make_record(i, i * 10, i * 10 + 8));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first: sequences 6..9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].seq, 6 + i);
  }
}

TEST(PipelineTracer, CycleWindowDropsStaleRecords) {
  PipelineTracer tracer(64, 25);
  tracer.record(make_record(0, 0, 10));     // newest(90) - 25 = 65: dropped
  tracer.record(make_record(1, 50, 70));    // kept
  tracer.record(make_record(2, 80, 90));    // kept
  const auto snap = tracer.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].seq, 1u);
  EXPECT_EQ(snap[1].seq, 2u);
}

TEST(PipelineTracer, KonataExportIsWellFormed) {
  PipelineTracer tracer(64, 0);
  tracer.record(make_record(0, 5, 12));
  TraceRecord squashed = make_record(1, 6, 9);
  squashed.dispatch_cycle = kNoCycle;
  squashed.issue_cycle = kNoCycle;
  squashed.complete_cycle = kNoCycle;
  squashed.end = TraceEndKind::kSquash;
  squashed.cause = SquashCause::kBranchMispredict;
  tracer.record(squashed);

  std::ostringstream os;
  tracer.write_konata(os);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "Kanata\t0004");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 3), "C=\t");
  int opens = 0;
  int closes = 0;
  int flushes = 0;
  std::uint64_t last_delta_ok = 1;
  while (std::getline(in, line)) {
    if (line.rfind("I\t", 0) == 0) ++opens;
    if (line.rfind("R\t", 0) == 0) {
      ++closes;
      if (line.back() == '1') ++flushes;
    }
    if (line.rfind("C\t", 0) == 0) {
      last_delta_ok = std::stoull(line.substr(2));
      EXPECT_GE(last_delta_ok, 1u);
    }
  }
  EXPECT_EQ(opens, 2);
  EXPECT_EQ(closes, 2);
  EXPECT_EQ(flushes, 1);
  EXPECT_NE(os.str().find("cause=branch-mispredict"), std::string::npos);
}

TEST(PipelineTracer, ChromeExportCarriesStageArgs) {
  PipelineTracer tracer(64, 0);
  tracer.record(make_record(0, 5, 12));
  std::ostringstream os;
  tracer.write_chrome(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":" +
                      std::to_string(kMetricsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"leading\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"fetch\":5"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);
}

TEST(CampaignTraceLogTest, SpansAndLaneNamesRoundTrip) {
  CampaignTraceLog log;
  log.set_lane_name(0, "worker 0");
  log.set_lane_name(CampaignTraceLog::kSharedLane, "golden-trace-cache");
  log.add_span("run 3", "detected", 0, 10.0, 250.0, "\"index\":3");
  log.add_span("golden-fill", "cache", CampaignTraceLog::kSharedLane, 12.0,
               40.0);
  EXPECT_EQ(log.size(), 2u);
  std::ostringstream os;
  log.write_chrome(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"run 3\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"index\":3}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Traced simulation end-to-end: every leading commit produces a record.
// ---------------------------------------------------------------------------

TEST(TracedSimulation, RecordsFollowCommitsAndTracingIsInert) {
  SimRequest request;
  request.mode = Mode::kBlackjack;
  request.warmup_commits = 200;
  request.budget_commits = 1500;

  const SimResult untraced = run_workload(profile_by_name("gcc"), request);

  PipelineTracer tracer(1u << 16, 0);
  request.tracer = &tracer;
  const SimResult traced = run_workload(profile_by_name("gcc"), request);

  // Tracing must not perturb the simulation.
  EXPECT_EQ(traced.cycles, untraced.cycles);
  EXPECT_EQ(traced.commits, untraced.commits);
  EXPECT_EQ(traced.coverage_pairs, untraced.coverage_pairs);
  EXPECT_EQ(traced.branch_mispredicts, untraced.branch_mispredicts);

  // Both threads commit, so the tracer sees at least two records per leading
  // commit (leading + trailing), plus squashes and shuffle NOPs.
  EXPECT_GE(tracer.total_recorded(),
            2 * (request.warmup_commits + request.budget_commits));
  std::uint64_t commits = 0;
  std::uint64_t nops = 0;
  bool saw_trailing = false;
  for (const TraceRecord& r : tracer.snapshot()) {
    if (r.end == TraceEndKind::kCommit) ++commits;
    if (r.end == TraceEndKind::kNopRetire) ++nops;
    if (r.tid == 1) saw_trailing = true;
    EXPECT_GE(r.end_cycle, r.fetch_cycle);
  }
  EXPECT_GT(commits, 0u);
  EXPECT_TRUE(saw_trailing);
  // BlackJack inserts shuffle NOPs on this workload.
  EXPECT_GT(nops, 0u);
}

// ---------------------------------------------------------------------------
// Campaign provenance + JSONL header + batched ETA
// ---------------------------------------------------------------------------

Program campaign_program() {
  WorkloadProfile p = profile_by_name("eon");
  p.iterations = 0;  // endless; the commit budget bounds each run
  return generate_workload(p);
}

TEST(CampaignProvenance, DetectedRunsCarryTheChain) {
  const Program p = campaign_program();
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 12;
  config.seed = 90125;
  config.budget_commits = 3000;
  config.sites = {FaultSite::kFrontendDecoder, FaultSite::kBackendResult};

  std::ostringstream jsonl;
  ParallelCampaignOptions options;
  options.jobs = 2;
  options.jsonl = &jsonl;
  CampaignStats stats;
  const CampaignResult result =
      run_campaign_parallel(p, config, options, &stats);

  int detected = 0;
  for (const FaultRun& run : result.runs) {
    if (run.activations > 0) {
      EXPECT_GT(run.first_activation_cycle, 0u) << run.fault.describe();
    } else {
      EXPECT_EQ(run.first_activation_cycle, 0u);
      EXPECT_EQ(run.detection_latency, 0u);
    }
    if (run.corrupt_stores_released > 0) {
      EXPECT_GT(run.first_corruption_cycle, 0u);
    }
    if ((run.outcome == FaultOutcome::kDetected ||
         run.outcome == FaultOutcome::kDetectedLate) &&
        run.activations > 0) {
      ++detected;
      // The chain is ordered: activation <= detection.
      EXPECT_GE(run.detection_cycle, run.first_activation_cycle);
      EXPECT_EQ(run.detection_latency,
                run.detection_cycle - run.first_activation_cycle);
    }
  }
  ASSERT_GT(detected, 0) << "campaign config no longer detects anything";

  // The per-outcome latency histograms cover exactly the detected+wedged
  // activated runs.
  std::uint64_t hist_count = 0;
  for (const auto& [outcome, hist] : stats.detection_latency) {
    hist_count += hist.count();
  }
  std::uint64_t expect_count = 0;
  for (const FaultRun& run : result.runs) {
    if (run.activations == 0) continue;
    if (run.outcome == FaultOutcome::kDetected ||
        run.outcome == FaultOutcome::kDetectedLate ||
        run.outcome == FaultOutcome::kWedged) {
      ++expect_count;
    }
  }
  EXPECT_EQ(hist_count, expect_count);

  // JSONL: detected records carry the latency field.
  EXPECT_NE(jsonl.str().find("\"detection_latency\":"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"first_activation_cycle\":"),
            std::string::npos);
}

TEST(CampaignProvenance, JsonlHeaderIdentifiesTheCampaign) {
  const Program p = campaign_program();
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 4;
  config.seed = 7;
  config.budget_commits = 1500;
  config.soft_errors = true;

  std::ostringstream jsonl;
  ParallelCampaignOptions options;
  options.jobs = 1;
  options.jsonl = &jsonl;
  run_campaign_parallel(p, config, options);

  const std::string text = jsonl.str();
  const std::string header = text.substr(0, text.find('\n'));
  EXPECT_NE(header.find("\"record\":\"header\""), std::string::npos);
  EXPECT_NE(header.find("\"schema_version\":" +
                        std::to_string(kMetricsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(header.find("\"bjsim_version\":\""), std::string::npos);
  EXPECT_NE(header.find("\"mode\":\"srt\""), std::string::npos);
  EXPECT_NE(header.find("\"seed\":7"), std::string::npos);
  EXPECT_NE(header.find("\"num_faults\":4"), std::string::npos);
  EXPECT_NE(header.find("\"soft_errors\":true"), std::string::npos);
  EXPECT_NE(header.find("\"config_digest\":\""), std::string::npos);

  // The digest moves when the configuration (or the workload) does.
  CampaignConfig other = config;
  other.seed = 8;
  EXPECT_NE(campaign_config_digest(config, p),
            campaign_config_digest(other, p));
  other = config;
  other.params.slack += 1;
  EXPECT_NE(campaign_config_digest(config, p),
            campaign_config_digest(other, p));
  EXPECT_EQ(campaign_config_digest(config, p),
            campaign_config_digest(config, p));
  Program other_program = p;
  other_program.name += "-variant";
  EXPECT_NE(campaign_config_digest(config, p),
            campaign_config_digest(config, other_program));
}

TEST(CampaignProgressTest, BatchedEtaTracksFinishedRuns) {
  const Program p = campaign_program();
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 10;
  config.seed = 11;
  config.budget_commits = 1500;
  config.soft_errors = true;

  // Whether a flush observes runs finished ahead of the flushed count is
  // scheduling-dependent (a worker can be starved), so retry a few times;
  // the invariants inside the callback are checked on every attempt.
  bool finished_led_completed = false;
  for (int attempt = 0; attempt < 10 && !finished_led_completed; ++attempt) {
    ParallelCampaignOptions options;
    options.jobs = 2;
    options.report_batch = 4;  // flushes lag completions
    int last_finished = 0;
    int last_completed = 0;
    options.progress = [&](const CampaignProgress& progress) {
      // `finished` counts runs done simulating; it must never trail the
      // flushed count and is what the ETA is computed from.
      EXPECT_GE(progress.finished, progress.completed);
      EXPECT_LE(progress.finished, progress.total);
      if (progress.finished > progress.completed) {
        finished_led_completed = true;
      }
      if (progress.finished < progress.total) {
        EXPECT_GT(progress.eta_seconds, 0.0);
      } else {
        // Everything has finished simulating: the ETA must say "no work
        // left" even while records are still buffered — the exact staleness
        // the completed-based estimate used to have.
        EXPECT_EQ(progress.eta_seconds, 0.0);
      }
      last_finished = progress.finished;
      last_completed = progress.completed;
    };
    run_campaign_parallel(p, config, options);
    EXPECT_EQ(last_completed, config.num_faults);
    EXPECT_EQ(last_finished, config.num_faults);
  }
  // With batch 4 over 10 runs on 2 workers, some flush should observe runs
  // that finished ahead of the flushed count — the drain flush alone
  // guarantees it whenever both workers got work.
  EXPECT_TRUE(finished_led_completed);
}

TEST(CampaignMetrics, ExportCoversOutcomesAndLatency) {
  const Program p = campaign_program();
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 8;
  config.seed = 90125;
  config.budget_commits = 3000;
  config.sites = {FaultSite::kBackendResult};

  CampaignStats stats;
  const CampaignResult result =
      run_campaign_parallel(p, config, {}, &stats);

  MetricsRegistry reg;
  export_campaign_metrics(reg, result, &stats);
  EXPECT_EQ(reg.text_value("campaign.mode"), "blackjack");
  EXPECT_EQ(reg.counter_value("campaign.runs"), 8u);
  EXPECT_TRUE(reg.has("campaign.detection_rate_of_activated"));
  std::uint64_t outcome_total = 0;
  for (const auto& [name, metric] : reg.all()) {
    if (name.rfind("campaign.outcome.", 0) == 0) outcome_total += metric.value;
  }
  EXPECT_EQ(outcome_total, 8u);

  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_NE(os.str().find("bj_campaign_runs 8"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Core metrics export
// ---------------------------------------------------------------------------

TEST(CoreMetrics, ExportMirrorsCoreStats) {
  SimRequest request;
  request.mode = Mode::kBlackjack;
  request.warmup_commits = 200;
  request.budget_commits = 1500;
  const Program program = generate_workload(profile_by_name("gcc"));
  FaultInjector injector;
  Core core(program, request.mode, request.params, &injector);
  core.run(request.budget_commits, request.budget_commits * 64 + 400000);

  MetricsRegistry reg;
  core.export_metrics(reg);
  EXPECT_EQ(reg.text_value("core.mode"), "blackjack");
  EXPECT_EQ(reg.counter_value("core.cycles"), core.cycle());
  EXPECT_EQ(reg.counter_value("core.commits.leading"),
            core.stats().leading_commits);
  EXPECT_EQ(reg.counter_value("core.commits.trailing"),
            core.stats().trailing_commits);
  EXPECT_TRUE(reg.has("shuffle.cache.hit_rate"));
  EXPECT_TRUE(reg.has("core.coverage.total"));
  // Event counters ride along under core.events.*.
  for (const auto& [name, value] : core.stats().events.all()) {
    EXPECT_EQ(reg.counter_value("core.events." + name), value) << name;
  }

  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"core.ipc\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram quantiles + the campaign latency quantile gauges
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBucketsAndClamps) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // A single repeated value: every quantile clamps to it exactly.
  Histogram point;
  for (int i = 0; i < 10; ++i) point.add(100);
  EXPECT_EQ(point.quantile(0.0), 100.0);
  EXPECT_EQ(point.quantile(0.5), 100.0);
  EXPECT_EQ(point.quantile(0.99), 100.0);

  // Uniform 1..1000: the estimate's error is bounded by the log2 bucket
  // span, the extremes are exact, and quantiles are monotone in q.
  Histogram uniform;
  for (std::uint64_t v = 1; v <= 1000; ++v) uniform.add(v);
  EXPECT_EQ(uniform.quantile(0.0), 1.0);
  EXPECT_EQ(uniform.quantile(1.0), 1000.0);
  const double p50 = uniform.quantile(0.50);
  const double p90 = uniform.quantile(0.90);
  const double p99 = uniform.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Rank 500 lands in the [256, 512) bucket; one bucket span of error.
  EXPECT_NEAR(p50, 500.0, 256.0);
  EXPECT_NEAR(p90, 900.0, 512.0);
}

TEST(CampaignMetrics, LatencyQuantileGaugesRideEveryPopulatedHistogram) {
  const Program p = campaign_program();
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 12;
  config.seed = 90125;
  config.budget_commits = 3000;
  config.sites = {FaultSite::kBackendResult};

  CampaignStats stats;
  const CampaignResult result = run_campaign_parallel(p, config, {}, &stats);

  MetricsRegistry reg;
  export_campaign_metrics(reg, result, &stats);

  std::size_t populated = 0;
  for (const auto& [outcome, hist] : stats.detection_latency) {
    const std::string base = std::string("campaign.detection_latency.") +
                             fault_outcome_name(outcome);
    if (hist.count() == 0) {
      EXPECT_FALSE(reg.has(base + ".p50")) << base;
      continue;
    }
    ++populated;
    ASSERT_TRUE(reg.has(base + ".p50")) << base;
    ASSERT_TRUE(reg.has(base + ".p90")) << base;
    ASSERT_TRUE(reg.has(base + ".p99")) << base;
    const double p50 = reg.gauge_value(base + ".p50");
    const double p90 = reg.gauge_value(base + ".p90");
    const double p99 = reg.gauge_value(base + ".p99");
    EXPECT_LE(p50, p90) << base;
    EXPECT_LE(p90, p99) << base;
    EXPECT_GE(p50, static_cast<double>(hist.min())) << base;
    EXPECT_LE(p99, static_cast<double>(hist.max())) << base;
  }
  ASSERT_GT(populated, 0u) << "campaign config no longer detects anything";
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

Program flight_program() {
  WorkloadProfile p = profile_by_name("eon");
  p.iterations = 400;
  return generate_workload(p);
}

HardFault flight_fault() {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = FuClass::kIntAlu;
  f.backend_way = 0;
  f.bit = 3;
  f.stuck_value = true;
  return f;
}

std::string flight_prefix(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return (dir / "flight").string();
}

// The acceptance bar for arming: a recorder that never dumps must leave the
// simulation bit-identical to an untraced run — it only swings the core's
// existing `if (tracer_)` branches.
TEST(FlightRecorderTest, ArmedButNeverDumpingLeavesCoreStatsIdentical) {
  namespace fs = std::filesystem;
  const Program program = flight_program();

  Core plain(program, Mode::kBlackjack);
  const RunOutcome plain_outcome = plain.run(3000, 2000000);

  const std::string prefix = flight_prefix("flight_inert");
  FlightRecorder recorder(512, prefix);
  Core armed(program, Mode::kBlackjack);
  armed.set_flight_recorder(&recorder);
  const RunOutcome armed_outcome = armed.run(3000, 2000000);

  EXPECT_EQ(recorder.dumps(), 0);
  EXPECT_FALSE(fs::exists(prefix + "-detection.kanata"));

  const CoreStats& a = plain.stats();
  const CoreStats& b = armed.stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.leading_commits, b.leading_commits);
  EXPECT_EQ(a.trailing_commits, b.trailing_commits);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.instructions_issued, b.instructions_issued);
  EXPECT_EQ(a.packets_shuffled, b.packets_shuffled);
  EXPECT_EQ(a.shuffle_nops, b.shuffle_nops);
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
  EXPECT_EQ(a.coverage.pairs(), b.coverage.pairs());
  EXPECT_EQ(a.events.all(), b.events.all());
  EXPECT_EQ(plain_outcome.detections.size(), armed_outcome.detections.size());
  // The ring must actually have been recording all along.
  EXPECT_GT(recorder.tracer().total_recorded(), 0u);
}

TEST(FlightRecorderTest, DetectionDumpsTheRingExactlyOnce) {
  namespace fs = std::filesystem;
  const Program program = flight_program();
  const std::string prefix = flight_prefix("flight_detect");

  FaultInjector injector(flight_fault());
  Core core(program, Mode::kBlackjack, CoreParams{}, &injector);
  core.set_oracle_check(false);  // isolate the detection dump reason
  FlightRecorder recorder(2000, prefix);
  core.set_flight_recorder(&recorder);
  const RunOutcome outcome = core.run(~0ull / 2, 8000000);

  ASSERT_FALSE(outcome.detections.empty())
      << "the injected fault must be detected for this test to bite";
  // One dump per reason, regardless of how many checks fired after the
  // first: a detection storm must not rewrite the ring file.
  EXPECT_EQ(recorder.dumps(), 1);
  const std::string path = prefix + "-detection.kanata";
  ASSERT_TRUE(fs::exists(path));
  std::ifstream in(path);
  std::string first_line;
  ASSERT_TRUE(std::getline(in, first_line));
  EXPECT_EQ(first_line.rfind("Kanata", 0), 0u) << first_line;
  // Re-dumping the same reason is refused.
  EXPECT_TRUE(recorder.dump("detection").empty());
}

TEST(FlightRecorderTest, ChromeFormatAndOracleDivergenceDumpSeparately) {
  namespace fs = std::filesystem;
  const Program program = flight_program();
  const std::string prefix = flight_prefix("flight_chrome");

  // Oracle check left ON: with this fault the architectural oracle observes
  // the divergence as well, so "detection" and "oracle-divergence" each get
  // their own dump — distinct reasons are not deduplicated against each
  // other.
  FaultInjector injector(flight_fault());
  Core core(program, Mode::kBlackjack, CoreParams{}, &injector);
  FlightRecorder recorder(2000, prefix, FlightRecorder::Format::kChrome);
  core.set_flight_recorder(&recorder);
  const RunOutcome outcome = core.run(~0ull / 2, 8000000);
  ASSERT_FALSE(outcome.detections.empty());
  EXPECT_EQ(recorder.dumps(), 2);
  EXPECT_TRUE(fs::exists(prefix + "-detection.json"));
  EXPECT_TRUE(fs::exists(prefix + "-oracle-divergence.json"));
}

TEST(FlightRecorderDeath, CheckAbortDumpsTheRingBeforeAborting) {
  namespace fs = std::filesystem;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string prefix = flight_prefix("flight_abort");
  const std::string dump_path = prefix + "-check-abort.kanata";

  EXPECT_DEATH(
      {
        FlightRecorder recorder(128, prefix);
        FlightRecorder::arm_on_check_abort(&recorder);
        BJ_CHECK(false, "flight-recorder-death-test");
      },
      "BJ_CHECK failed");
  // The child dumped the ring on its way down; the file outlives it.
  EXPECT_TRUE(fs::exists(dump_path));
}

}  // namespace
}  // namespace bj
