// White-box checks of pipeline mechanics through the per-commit trace: way
// assignment policies (the two policies safe-shuffle depends on), trace
// well-formedness, and stage-timestamp sanity.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "isa/assembler.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

struct TraceLine {
  char tag = '?';
  std::map<std::string, std::int64_t> fields;
  std::string disasm;
};

std::vector<TraceLine> parse_trace(const std::string& text) {
  std::vector<TraceLine> lines;
  std::istringstream stream(text);
  std::string raw;
  while (std::getline(stream, raw)) {
    if (raw.empty()) continue;
    TraceLine line;
    line.tag = raw[0];
    std::istringstream fields(raw.substr(1));
    std::string token;
    while (fields >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        line.disasm += (line.disasm.empty() ? "" : " ") + token;
      } else {
        line.fields[token.substr(0, eq)] =
            std::stoll(token.substr(eq + 1));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<TraceLine> run_traced(const Program& p, Mode mode,
                                  std::uint64_t commits) {
  Core core(p, mode);
  std::ostringstream trace;
  core.set_trace(&trace);
  core.run(commits, 4000000);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_TRUE(core.detections().empty());
  return parse_trace(trace.str());
}

TEST(Mechanics, LeadingFrontendWayIsPcAlignment) {
  // The paper: "execution in which frontend way is determined solely on the
  // instruction's cache block location" — way == pc mod fetch width.
  const Program p = assemble(R"(
      li r1, 0
  top:
      addi r1, r1, 1
      addi r1, r1, 2
      addi r1, r1, 3
      jmp top
  )");
  const auto trace = run_traced(p, Mode::kSingle, 2000);
  int checked = 0;
  for (const TraceLine& line : trace) {
    if (line.tag != 'L') continue;
    EXPECT_EQ(line.fields.at("fe"), line.fields.at("pc") % 4)
        << "pc " << line.fields.at("pc");
    ++checked;
  }
  EXPECT_GT(checked, 1000);
}

TEST(Mechanics, OldestFirstMappingFillsWaysInOrder) {
  // Four independent adds co-issue: int-alu ways 0..3 in age order.
  const Program p = assemble(R"(
      li r1, 1
      li r2, 2
      li r3, 3
      li r4, 4
  top:
      addi r10, r1, 1
      addi r11, r2, 1
      addi r12, r3, 1
      addi r13, r4, 1
      jmp top
  )");
  const auto trace = run_traced(p, Mode::kSingle, 4000);
  // Collect backend ways of the four adds per loop iteration (they are the
  // only int-alu ops apart from the jmp).
  std::map<std::int64_t, std::int64_t> ways_by_pc;
  int full_width_iterations = 0;
  for (std::size_t i = 0; i + 3 < trace.size(); ++i) {
    if (trace[i].disasm.rfind("addi r10", 0) != 0) continue;
    // Did all four issue in the same cycle?
    bool same_cycle = true;
    for (int k = 1; k < 4; ++k) {
      same_cycle &= trace[i + k].fields.at("issue") ==
                    trace[i].fields.at("issue");
    }
    if (!same_cycle) continue;
    ++full_width_iterations;
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(trace[i + k].fields.at("be"), k)
          << "oldest-first mapping must hand out ways in age order";
    }
  }
  EXPECT_GT(full_width_iterations, 100);
}

TEST(Mechanics, TraceStageTimestampsAreOrdered) {
  const Program p = generate_workload(profile_by_name("crafty"));
  const auto trace = run_traced(p, Mode::kBlackjack, 5000);
  ASSERT_GT(trace.size(), 5000u);
  std::int64_t last_commit_l = -1, last_commit_t = -1;
  for (const TraceLine& line : trace) {
    EXPECT_LE(line.fields.at("fetch"), line.fields.at("dispatch"));
    EXPECT_LT(line.fields.at("dispatch"), line.fields.at("issue"));
    EXPECT_LE(line.fields.at("issue"), line.fields.at("done"));
    EXPECT_LE(line.fields.at("done"), line.fields.at("commit"));
    if (line.tag == 'L') {
      EXPECT_GE(line.fields.at("commit"), last_commit_l);
      last_commit_l = line.fields.at("commit");
    } else if (line.tag == 'T') {
      EXPECT_GE(line.fields.at("commit"), last_commit_t);
      last_commit_t = line.fields.at("commit");
    }
  }
}

TEST(Mechanics, TrailingPairsMirrorLeadingStream) {
  // In BlackJack, every leading commit is eventually matched by a trailing
  // commit of the same pc, in the same program order.
  const Program p = generate_workload(profile_by_name("eon"));
  const auto trace = run_traced(p, Mode::kBlackjack, 4000);
  std::vector<std::int64_t> lead_pcs, trail_pcs;
  for (const TraceLine& line : trace) {
    (line.tag == 'L' ? lead_pcs : trail_pcs).push_back(line.fields.at("pc"));
  }
  ASSERT_GT(trail_pcs.size(), 3000u);
  for (std::size_t i = 0; i < trail_pcs.size(); ++i) {
    ASSERT_LT(i, lead_pcs.size());
    EXPECT_EQ(trail_pcs[i], lead_pcs[i]) << "pair " << i;
  }
}

TEST(Mechanics, BlackjackTrailingFrontendWaysDiffer) {
  // The headline invariant end-to-end: pair trailing commits with leading
  // commits; their frontend ways must never match (fe diversity is 100%).
  const Program p = generate_workload(profile_by_name("gzip"));
  const auto trace = run_traced(p, Mode::kBlackjack, 4000);
  std::vector<const TraceLine*> lead, trail;
  for (const TraceLine& line : trace) {
    (line.tag == 'L' ? lead : trail).push_back(&line);
  }
  ASSERT_GT(trail.size(), 3000u);
  for (std::size_t i = 0; i < trail.size() && i < lead.size(); ++i) {
    EXPECT_NE(trail[i]->fields.at("fe"), lead[i]->fields.at("fe"))
        << "pair " << i << " pc " << trail[i]->fields.at("pc");
  }
}


TEST(Mechanics, SrtTrailingSharesFrontendWays) {
  // SRT's frontend ways are pc-alignment-determined for BOTH threads: the
  // trace must show identical fe for every pair — the zero-frontend-coverage
  // signature of Figure 4a.
  const Program p = generate_workload(profile_by_name("gzip"));
  const auto trace = run_traced(p, Mode::kSrt, 4000);
  std::vector<const TraceLine*> lead, trail;
  for (const TraceLine& line : trace) {
    (line.tag == 'L' ? lead : trail).push_back(&line);
  }
  ASSERT_GT(trail.size(), 3000u);
  for (std::size_t i = 0; i < trail.size() && i < lead.size(); ++i) {
    EXPECT_EQ(trail[i]->fields.at("pc"), lead[i]->fields.at("pc"));
    EXPECT_EQ(trail[i]->fields.at("fe"), lead[i]->fields.at("fe"))
        << "pair " << i;
  }
}

TEST(Mechanics, TrailingCommitLagsLeadingBySlackish) {
  // The trailing copy of an instruction commits after its leading copy, and
  // the lag reflects the slack plus pipeline depth.
  const Program p = generate_workload(profile_by_name("crafty"));
  const auto trace = run_traced(p, Mode::kBlackjack, 6000);
  std::vector<std::int64_t> lead_commit, trail_commit;
  for (const TraceLine& line : trace) {
    (line.tag == 'L' ? lead_commit : trail_commit)
        .push_back(line.fields.at("commit"));
  }
  ASSERT_GT(trail_commit.size(), 4000u);
  for (std::size_t i = 0; i < trail_commit.size() && i < lead_commit.size();
       ++i) {
    EXPECT_GT(trail_commit[i], lead_commit[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace bj
