// SRT-mode pipeline tests: both threads must finish, the leading thread must
// match the oracle, no redundancy check may fire on a fault-free machine,
// stores must be released only after the trailing thread agrees, and the
// coverage accounting must show SRT's signature (zero frontend diversity).
#include <gtest/gtest.h>

#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

RunOutcome run_to_halt(const Program& p, const CoreParams& params = {},
                       std::uint64_t max_cycles = 20000000) {
  Core core(p, Mode::kSrt, params);
  const RunOutcome outcome = core.run(~0ull / 2, max_cycles);
  EXPECT_TRUE(outcome.program_finished) << p.name << " did not finish";
  EXPECT_FALSE(outcome.wedged) << p.name << " wedged";
  EXPECT_FALSE(outcome.detected) << p.name << ": spurious detection "
      << detection_kind_name(outcome.detections.empty()
                                 ? DetectionKind::kWatchdogTimeout
                                 : outcome.detections.front().kind);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_EQ(outcome.leading_commits, outcome.trailing_commits)
      << p.name << ": threads retired different instruction counts";
  return outcome;
}

std::uint64_t final_store_value(const std::vector<StoreBufferEntry>& stores,
                                std::uint64_t addr) {
  std::uint64_t value = 0;
  for (const auto& s : stores) {
    if (s.addr == addr) value = s.data;
  }
  return value;
}

TEST(PipelineSrt, SumToN) {
  const Program p = kernels::sum_to_n(100);
  Core core(p, Mode::kSrt);
  const RunOutcome outcome = core.run(~0ull / 2, 2000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(final_store_value(core.released_stores(), 0x1000), 5050u);
}

TEST(PipelineSrt, Fibonacci) {
  const Program p = kernels::fibonacci(30);
  Core core(p, Mode::kSrt);
  const RunOutcome outcome = core.run(~0ull / 2, 2000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(final_store_value(core.released_stores(), 0x1000), 832040u);
}

TEST(PipelineSrt, StoresReleasedExactlyOncePerProgramStore) {
  const Program p = kernels::memcopy(64);
  Core core(p, Mode::kSrt);
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(core.released_stores().size(), 64u);
  // Released in program order with consecutive ordinals.
  for (std::size_t i = 0; i < core.released_stores().size(); ++i) {
    EXPECT_EQ(core.released_stores()[i].ordinal, i);
  }
}

TEST(PipelineSrt, BranchyWithMispredictions) {
  const Program p = kernels::branchy(1000);
  const RunOutcome outcome = run_to_halt(p);
  EXPECT_GT(outcome.cycles, 0u);
}

TEST(PipelineSrt, MatmulAndFpMix) {
  run_to_halt(kernels::matmul(4));
  run_to_halt(kernels::fp_mix(32));
}

TEST(PipelineSrt, PointerChase) {
  run_to_halt(kernels::pointer_chase(64, 200));
}

class SrtWorkloadEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(SrtWorkloadEquivalence, FaultFreeRunIsClean) {
  WorkloadProfile profile = profile_by_name(GetParam());
  profile.iterations = 80;
  const Program p = generate_workload(profile);
  run_to_halt(p);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SrtWorkloadEquivalence,
    ::testing::Values("equake", "swim", "art", "mgrid", "applu", "fma3d",
                      "gcc", "facerec", "wupwise", "bzip", "apsi", "crafty",
                      "eon", "gzip", "vortex", "sixtrack"));

TEST(PipelineSrt, FrontendCoverageIsZero) {
  // SRT's frontend way is determined solely by the instruction's cache-block
  // alignment, identical for both threads -> zero frontend diversity.
  WorkloadProfile profile = profile_by_name("vortex");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kSrt);
  core.run(20000, 8000000);
  ASSERT_GT(core.stats().coverage.pairs(), 1000u);
  EXPECT_EQ(core.stats().coverage.frontend_coverage(), 0.0);
}

TEST(PipelineSrt, BackendCoverageIsPartial) {
  WorkloadProfile profile = profile_by_name("gcc");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kSrt);
  core.run(20000, 8000000);
  ASSERT_GT(core.stats().coverage.pairs(), 1000u);
  const double be = core.stats().coverage.backend_coverage();
  EXPECT_GT(be, 0.05) << "some accidental backend diversity expected";
  EXPECT_LT(be, 0.95) << "SRT should not achieve near-full backend coverage";
}

TEST(PipelineSrt, SlowerThanSingleThread) {
  WorkloadProfile profile = profile_by_name("gzip");
  const Program p = generate_workload(profile);
  Core single(p, Mode::kSingle);
  single.run(20000, 8000000);
  Core srt(p, Mode::kSrt);
  srt.run(20000, 8000000);
  EXPECT_FALSE(srt.oracle_violated());
  EXPECT_GT(srt.cycle(), single.cycle())
      << "running two copies cannot be free";
  EXPECT_LT(srt.cycle(), single.cycle() * 3) << "but should be well under 3x";
}

TEST(PipelineSrt, TrailingLagsByRoughlySlack) {
  WorkloadProfile profile = profile_by_name("crafty");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kSrt);
  core.run(30000, 8000000);
  const std::uint64_t lead = core.leading_commits();
  const std::uint64_t trail = core.trailing_commits();
  EXPECT_GT(trail, 0u);
  EXPECT_GE(lead, trail);
  EXPECT_LT(lead - trail, 2000u) << "trailing thread fell too far behind";
}

TEST(PipelineSrt, HaltsCleanlyWithTinyQueues) {
  CoreParams params;
  params.store_buffer_entries = 4;
  params.lvq_entries = 8;
  params.boq_entries = 4;
  params.slack = 16;
  const Program p = kernels::memcopy(32);
  run_to_halt(p, params, 4000000);
}

}  // namespace
}  // namespace bj
