// Differential replay: the arena-pooled core vs. the reference campaign
// implementation, across every SPEC2000 workload profile.
//
// The InstPool/SoA-regfile rewrite is a pure representation change, so the
// strongest possible statement is differential: the same (program, config)
// must produce byte-identical results through the pre-pool reference path
// (run_campaign_reference replays the emulator per run), the serial engine
// (jobs=1), and the parallel engine at jobs=4 and jobs=16 — both of which
// exercise the lock-free work queue, the shared shuffle table, and batched
// reporting (jobs=16 oversubscribes the CI VM's cores, maximizing
// interleavings). Classifications, detection events, deterministic
// CampaignStats, and JSONL records must all agree — including the
// soft-error and oracle configurations, whose extra machinery rides the
// same pooled data path. A kill-and-resume test drives the same contract
// through the campaign store's checkpoint while the queue is mid-drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness/autopsy.h"
#include "harness/campaign.h"
#include "harness/campaign_store.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

std::vector<std::string> all_profile_names() {
  std::vector<std::string> names;
  for (const WorkloadProfile& p : spec2000_profiles()) names.push_back(p.name);
  return names;
}

Program endless_program(const std::string& profile) {
  WorkloadProfile p = profile_by_name(profile);
  p.iterations = 0;  // endless; the commit budget bounds each run
  return generate_workload(p);
}

// Small budgets keep the per-profile reference replay affordable: the point
// is agreement, not statistical coverage (test_fault_injection owns that).
CampaignConfig small_hard_config() {
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 4;
  config.seed = 424242;
  config.budget_commits = 1500;
  return config;
}

CampaignConfig small_soft_oracle_config() {
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 4;
  config.seed = 777;
  config.budget_commits = 1500;
  config.soft_errors = true;
  config.oracle_check = true;
  return config;
}

void expect_identical_runs(const CampaignResult& a, const CampaignResult& b,
                           const std::string& what) {
  ASSERT_EQ(a.runs.size(), b.runs.size()) << what;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const FaultRun& x = a.runs[i];
    const FaultRun& y = b.runs[i];
    EXPECT_EQ(x.outcome, y.outcome) << what << " run " << i;
    EXPECT_EQ(x.activations, y.activations) << what << " run " << i;
    EXPECT_EQ(x.detection_cycle, y.detection_cycle) << what << " run " << i;
    EXPECT_EQ(x.detection_kind, y.detection_kind) << what << " run " << i;
    EXPECT_EQ(x.corrupt_stores_released, y.corrupt_stores_released)
        << what << " run " << i;
    EXPECT_EQ(x.oracle_violated, y.oracle_violated) << what << " run " << i;
  }
}

// JSONL stripped of the wall-clock "seconds" field and sorted by fault
// index: the canonical form that must agree across jobs counts.
std::vector<std::string> canonical_jsonl(const std::string& raw) {
  std::vector<std::pair<long, std::string>> keyed;
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    // The leading header record has no fault index; it is compared verbatim
    // by the header-specific tests, not here.
    if (line.find("\"record\":\"header\"") != std::string::npos) continue;
    const auto sec = line.find(",\"seconds\":");
    if (sec != std::string::npos) {
      line.erase(sec, line.find('}', sec) - sec);
    }
    const auto idx = line.find("\"index\":");
    keyed.emplace_back(std::stol(line.substr(idx + 8)), line);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> lines;
  for (auto& [index, text] : keyed) lines.push_back(std::move(text));
  return lines;
}

// The scheduling-independent CampaignStats fields must agree across jobs
// counts; the wall-clock ones (wall_seconds, runs_per_second, ...) are
// excluded by construction.
void expect_deterministic_stats_equal(const CampaignStats& a,
                                      const CampaignStats& b,
                                      const std::string& what) {
  EXPECT_EQ(a.executed_runs, b.executed_runs) << what;
  EXPECT_EQ(a.resumed_runs, b.resumed_runs) << what;
  EXPECT_EQ(a.golden_steps, b.golden_steps) << what;
  EXPECT_EQ(a.golden_preloaded_stores, b.golden_preloaded_stores) << what;
  EXPECT_EQ(a.shuffle_preloaded_entries, b.shuffle_preloaded_entries) << what;
  ASSERT_EQ(a.detection_latency.size(), b.detection_latency.size()) << what;
  for (const auto& [outcome, ha] : a.detection_latency) {
    const auto it = b.detection_latency.find(outcome);
    ASSERT_NE(it, b.detection_latency.end()) << what;
    EXPECT_EQ(ha.count(), it->second.count()) << what;
    EXPECT_EQ(ha.sum(), it->second.sum()) << what;
    EXPECT_EQ(ha.min(), it->second.min()) << what;
    EXPECT_EQ(ha.max(), it->second.max()) << what;
  }
}

void run_differential(const Program& program, const CampaignConfig& config,
                      const std::string& what) {
  const CampaignResult reference = run_campaign_reference(program, config);

  std::ostringstream serial_jsonl;
  ParallelCampaignOptions serial;
  serial.jobs = 1;
  serial.jsonl = &serial_jsonl;
  CampaignStats serial_stats;
  const CampaignResult one =
      run_campaign_parallel(program, config, serial, &serial_stats);

  std::ostringstream four_jsonl;
  ParallelCampaignOptions four;
  four.jobs = 4;
  four.jsonl = &four_jsonl;
  CampaignStats four_stats;
  const CampaignResult par4 =
      run_campaign_parallel(program, config, four, &four_stats);

  // jobs=16 on the 1–4-core CI VM oversubscribes hard: 16 threads racing a
  // 4-item-deep queue per worker is the adversarial schedule for the
  // lock-free distribution path.
  std::ostringstream sixteen_jsonl;
  ParallelCampaignOptions sixteen;
  sixteen.jobs = 16;
  sixteen.jsonl = &sixteen_jsonl;
  CampaignStats sixteen_stats;
  const CampaignResult par16 =
      run_campaign_parallel(program, config, sixteen, &sixteen_stats);

  expect_identical_runs(reference, one, what + " reference vs jobs=1");
  expect_identical_runs(one, par4, what + " jobs=1 vs jobs=4");
  expect_identical_runs(one, par16, what + " jobs=1 vs jobs=16");
  expect_deterministic_stats_equal(serial_stats, four_stats,
                                   what + " stats jobs=1 vs jobs=4");
  expect_deterministic_stats_equal(serial_stats, sixteen_stats,
                                   what + " stats jobs=1 vs jobs=16");

  const auto a = canonical_jsonl(serial_jsonl.str());
  const auto b = canonical_jsonl(four_jsonl.str());
  const auto c = canonical_jsonl(sixteen_jsonl.str());
  ASSERT_EQ(a.size(), static_cast<std::size_t>(config.num_faults)) << what;
  ASSERT_EQ(b.size(), a.size()) << what;
  ASSERT_EQ(c.size(), a.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " JSONL record " << i << " (jobs=4)";
    EXPECT_EQ(a[i], c[i]) << what << " JSONL record " << i << " (jobs=16)";
  }
}

class DifferentialReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialReplay, HardFaultCampaignMatchesReference) {
  run_differential(endless_program(GetParam()), small_hard_config(),
                   GetParam() + " hard");
}

TEST_P(DifferentialReplay, SoftErrorOracleCampaignMatchesReference) {
  run_differential(endless_program(GetParam()), small_soft_oracle_config(),
                   GetParam() + " soft+oracle");
}

// Full CoreStats agreement between a cold core and a warm-started core on a
// fault-free run. The warm shuffle table is pure memoization, so every
// simulated-behaviour counter must match exactly; only the cache's own
// hit/miss bookkeeping may differ (a warm hit replaces a local miss).
TEST_P(DifferentialReplay, WarmShuffleStartLeavesCoreStatsIdentical) {
  const Program program = endless_program(GetParam());

  Core cold(program, Mode::kBlackjack);
  const RunOutcome cold_outcome = cold.run(4000, 2000000);

  Core warm(program, Mode::kBlackjack);
  warm.warm_start_shuffle(
      ShuffleSnapshot(cold.shuffle_cache().local_entries()));
  const RunOutcome warm_outcome = warm.run(4000, 2000000);

  const CoreStats& c = cold.stats();
  const CoreStats& w = warm.stats();
  EXPECT_EQ(c.cycles, w.cycles);
  EXPECT_EQ(c.leading_commits, w.leading_commits);
  EXPECT_EQ(c.trailing_commits, w.trailing_commits);
  EXPECT_EQ(c.issue_cycles, w.issue_cycles);
  EXPECT_EQ(c.single_context_issue_cycles, w.single_context_issue_cycles);
  EXPECT_EQ(c.lt_interference_cycles, w.lt_interference_cycles);
  EXPECT_EQ(c.tt_interference_cycles, w.tt_interference_cycles);
  EXPECT_EQ(c.tt_sibling_cycles, w.tt_sibling_cycles);
  EXPECT_EQ(c.other_diversity_loss_cycles, w.other_diversity_loss_cycles);
  EXPECT_EQ(c.instructions_issued, w.instructions_issued);
  EXPECT_EQ(c.packets_shuffled, w.packets_shuffled);
  EXPECT_EQ(c.shuffle_nops, w.shuffle_nops);
  EXPECT_EQ(c.packet_splits, w.packet_splits);
  EXPECT_EQ(c.shuffle_forced_places, w.shuffle_forced_places);
  EXPECT_EQ(c.packets_combined, w.packets_combined);
  EXPECT_EQ(c.pool_high_water, w.pool_high_water);
  EXPECT_EQ(c.payload_corrupted_leading, w.payload_corrupted_leading);
  EXPECT_EQ(c.payload_corrupted_both, w.payload_corrupted_both);
  EXPECT_EQ(c.branch_lookups, w.branch_lookups);
  EXPECT_EQ(c.branch_mispredicts, w.branch_mispredicts);
  EXPECT_EQ(c.coverage.pairs(), w.coverage.pairs());
  EXPECT_EQ(c.coverage.frontend_coverage(), w.coverage.frontend_coverage());
  EXPECT_EQ(c.coverage.backend_coverage(), w.coverage.backend_coverage());
  EXPECT_EQ(c.events.all(), w.events.all());

  // Detection events (none expected fault-free, but they must still agree).
  ASSERT_EQ(cold_outcome.detections.size(), warm_outcome.detections.size());
  for (std::size_t i = 0; i < cold_outcome.detections.size(); ++i) {
    EXPECT_EQ(cold_outcome.detections[i].kind,
              warm_outcome.detections[i].kind);
    EXPECT_EQ(cold_outcome.detections[i].cycle,
              warm_outcome.detections[i].cycle);
    EXPECT_EQ(cold_outcome.detections[i].seq, warm_outcome.detections[i].seq);
  }

  // The warm start must actually have been exercised, not silently ignored.
  if (c.shuffle_cache_misses > 0) {
    EXPECT_GT(w.shuffle_cache_warm_hits, 0u) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, DifferentialReplay,
                         ::testing::ValuesIn(all_profile_names()),
                         [](const auto& info) { return info.param; });

// Autopsy replays fan out over the same worker pool as the campaign, so
// they get the same determinism statement: the canonical autopsy.jsonl
// image must be byte-identical for every jobs count. Oversubscription
// (jobs=16 on the CI VM) again maximizes scheduling interleavings.
TEST(DifferentialReplayAutopsy, AutopsyJsonlIsByteIdenticalAcrossJobs) {
  const Program program = endless_program("gzip");
  CampaignConfig config = small_hard_config();
  config.num_faults = 12;
  const CampaignResult result = run_campaign(program, config);

  std::string images[3];
  const int jobs[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    AutopsyOptions options;
    options.select = AutopsySelect::kAll;
    options.jobs = jobs[i];
    const AutopsyResult autopsy =
        run_campaign_autopsy(program, config, result, options);
    images[i] = autopsy_jsonl(program, config, autopsy);
  }
  ASSERT_FALSE(images[0].empty());
  EXPECT_GT(std::count(images[0].begin(), images[0].end(), '\n'), 2)
      << "campaign must yield autopsied runs for the identity to bite";
  EXPECT_EQ(images[0], images[1]) << "jobs=1 vs jobs=4";
  EXPECT_EQ(images[0], images[2]) << "jobs=1 vs jobs=16";
}

// Kill-and-resume while the work queue is mid-drain: a progress callback
// that throws aborts the campaign through the pool's first-error path with
// unexecuted fault indices still queued; the store's checkpoint (written by
// on_flush before the poisoned delivery) must then resume to output
// byte-identical to an uninterrupted campaign. This is the end-to-end
// pairing of the queue's exception contract with the store's atomic
// checkpoints — one run per flushed record (checkpoint_every=1) makes the
// kill land between checkpoints, never inside one.
TEST(DifferentialReplayResume, KilledMidQueueCampaignResumesByteIdentical) {
  namespace fs = std::filesystem;
  const Program program = endless_program("eon");
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 40;  // > 2 workers x 16-run batches: a kill at the
                           // first flush always leaves indices queued
  config.seed = 161616;
  config.budget_commits = 800;

  const auto fresh_dir = [](const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  };
  const auto read_file = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  // Uninterrupted baseline through the same store machinery; the autopsy
  // rides along so its byte-identity is proven through the same kill.
  CampaignServiceOptions options;
  options.jobs = 2;
  options.checkpoint_every = 1;
  options.autopsy = true;
  options.autopsy_select = AutopsySelect::kAll;
  options.store_root = fresh_dir("diff_uninterrupted").string();
  const CampaignServiceReport full =
      run_campaign_service(program, config, options);
  const std::string full_bytes =
      read_file(fs::path(full.store_dir) / "runs.jsonl");
  const std::string full_autopsy =
      read_file(fs::path(full.store_dir) / "autopsy.jsonl");
  ASSERT_GT(full.autopsy_records, 0u);

  // Killed pass: the first progress delivery throws. Flushes happen at
  // 16-run batches under jobs=2, so the abort fires with ~24 of the 40
  // indices still in (or abandoned from) the queue.
  options.store_root = fresh_dir("diff_killed").string();
  options.progress = [](const CampaignProgress&) {
    throw std::runtime_error("simulated kill");
  };
  EXPECT_THROW(run_campaign_service(program, config, options),
               std::runtime_error);
  options.progress = nullptr;

  // The checkpoint must exist, hold a strict subset of the records (the
  // kill was genuinely mid-queue), and carry no completion footer.
  const fs::path killed_dir =
      campaign_store_dir(options.store_root, config, program, options.shard);
  const std::string killed_bytes = read_file(killed_dir / "runs.jsonl");
  const long killed_records =
      std::count(killed_bytes.begin(), killed_bytes.end(), '\n') - 1;
  EXPECT_GT(killed_records, 0) << "at least one batch must have checkpointed";
  EXPECT_LT(killed_records, config.num_faults)
      << "the kill must leave work unexecuted";
  EXPECT_EQ(killed_bytes.find("\"record\":\"footer\""), std::string::npos);
  // The autopsy only runs over a *finished* campaign, so the kill must not
  // have left a partial autopsy.jsonl behind.
  EXPECT_FALSE(fs::exists(killed_dir / "autopsy.jsonl"));

  // Resume completes the remainder and reproduces the baseline exactly.
  const CampaignServiceReport resumed =
      run_campaign_service(program, config, options);
  EXPECT_FALSE(resumed.complete_on_entry);
  EXPECT_EQ(resumed.stats.resumed_runs, static_cast<int>(killed_records));
  EXPECT_EQ(resumed.stats.executed_runs,
            config.num_faults - static_cast<int>(killed_records));
  EXPECT_EQ(full_bytes, read_file(killed_dir / "runs.jsonl"));
  // The resumed campaign's forensics are regenerated from scratch and must
  // land byte-identical to the uninterrupted campaign's autopsy.jsonl.
  EXPECT_FALSE(resumed.autopsy_adopted);
  EXPECT_EQ(full_autopsy, read_file(killed_dir / "autopsy.jsonl"));
  EXPECT_EQ(full.result.totals(), resumed.result.totals());
  // Latency distributions span adopted + re-executed runs alike, so they
  // must match the uninterrupted campaign's exactly (executed/resumed run
  // counts intentionally differ — that's what resuming means).
  ASSERT_EQ(full.stats.detection_latency.size(),
            resumed.stats.detection_latency.size());
  for (const auto& [outcome, ha] : full.stats.detection_latency) {
    const auto it = resumed.stats.detection_latency.find(outcome);
    ASSERT_NE(it, resumed.stats.detection_latency.end());
    EXPECT_EQ(ha.count(), it->second.count());
    EXPECT_EQ(ha.sum(), it->second.sum());
  }
}

}  // namespace
}  // namespace bj
