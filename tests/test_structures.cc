// Unit tests for the hardware queue structures: CircularBuffer, BOQ, LVQ,
// checking store buffer, and the DTQ.
#include <gtest/gtest.h>

#include "blackjack/dtq.h"
#include "common/circular_buffer.h"
#include "srt/boq.h"
#include "srt/lvq.h"
#include "srt/store_buffer.h"

namespace bj {
namespace {

TEST(CircularBuffer, FifoOrderAndCapacity) {
  CircularBuffer<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) q.push(i);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.free_slots(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_TRUE(q.empty());
}

TEST(CircularBuffer, WrapsAround) {
  CircularBuffer<int> q(3);
  for (int round = 0; round < 10; ++round) {
    q.push(round * 2);
    q.push(round * 2 + 1);
    EXPECT_EQ(q.pop(), round * 2);
    EXPECT_EQ(q.pop(), round * 2 + 1);
  }
}

TEST(CircularBuffer, RandomAccessFromHead) {
  CircularBuffer<int> q(8);
  for (int i = 0; i < 5; ++i) q.push(100 + i);
  q.pop();
  q.pop();
  EXPECT_EQ(q.at(0), 102);
  EXPECT_EQ(q.at(2), 104);
  EXPECT_EQ(q.size(), 3u);
}

TEST(Boq, PeekAheadWithoutFreeing) {
  BranchOutcomeQueue boq(8);
  boq.push({10, 0, true, 42});
  boq.push({20, 1, false, 21});
  ASSERT_TRUE(boq.peek(0).has_value());
  ASSERT_TRUE(boq.peek(1).has_value());
  EXPECT_FALSE(boq.peek(2).has_value());
  EXPECT_EQ(boq.peek(0)->pc, 10u);
  EXPECT_EQ(boq.peek(1)->pc, 20u);
  EXPECT_EQ(boq.size(), 2u);  // peek does not free
  EXPECT_EQ(boq.pop().pc, 10u);
  EXPECT_EQ(boq.peek(0)->pc, 20u);
}

TEST(Lvq, LookupByOrdinalOutOfOrder) {
  LoadValueQueue lvq(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    lvq.push({i, 0x1000 + i * 8, 100 + i});
  }
  // The BlackJack trailing thread executes loads out of program order.
  EXPECT_EQ(lvq.lookup(3)->value, 103u);
  EXPECT_EQ(lvq.lookup(0)->value, 100u);
  EXPECT_EQ(lvq.lookup(4)->addr, 0x1020u);
  EXPECT_FALSE(lvq.lookup(5).has_value());
  // Commits free in program order.
  EXPECT_EQ(lvq.pop().ordinal, 0u);
  EXPECT_FALSE(lvq.lookup(0).has_value()) << "popped entries are gone";
  EXPECT_EQ(lvq.lookup(1)->value, 101u);
}

TEST(StoreBuffer, MatchReleasesInOrder) {
  CheckingStoreBuffer sb(4);
  sb.push({0, 0x100, 7});
  sb.push({1, 0x108, 9});
  StoreBufferEntry released;
  EXPECT_EQ(sb.check_and_release(0, 0x100, 7, &released), StoreCheck::kMatch);
  EXPECT_EQ(released.data, 7u);
  EXPECT_EQ(sb.check_and_release(1, 0x108, 9, &released), StoreCheck::kMatch);
  EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, DetectsEveryMismatchKind) {
  CheckingStoreBuffer sb(4);
  sb.push({0, 0x100, 7});
  StoreBufferEntry released;
  EXPECT_EQ(sb.check_and_release(0, 0x108, 7, &released),
            StoreCheck::kAddressMismatch);
  EXPECT_EQ(sb.check_and_release(0, 0x100, 8, &released),
            StoreCheck::kDataMismatch);
  EXPECT_EQ(sb.check_and_release(1, 0x100, 7, &released),
            StoreCheck::kOrdinalMismatch);
  EXPECT_EQ(sb.size(), 1u) << "mismatches must not release";
  EXPECT_EQ(sb.check_and_release(0, 0x100, 7, &released), StoreCheck::kMatch);
  EXPECT_EQ(sb.check_and_release(1, 0x100, 7, &released), StoreCheck::kEmpty);
}

TEST(StoreBuffer, ForwardsYoungestMatch) {
  CheckingStoreBuffer sb(4);
  sb.push({0, 0x100, 1});
  sb.push({1, 0x200, 2});
  sb.push({2, 0x100, 3});  // younger store to the same address
  EXPECT_EQ(sb.forward(0x100).value(), 3u);
  EXPECT_EQ(sb.forward(0x200).value(), 2u);
  EXPECT_FALSE(sb.forward(0x300).has_value());
}

DtqEntry entry(std::uint64_t seq, std::uint64_t cycle) {
  DtqEntry e;
  e.lead_seq = seq;
  e.issue_cycle = cycle;
  return e;
}

TEST(Dtq, PacketsGroupByIssueCycle) {
  DependenceTraceQueue dtq(16);
  dtq.allocate(entry(0, 100));
  dtq.allocate(entry(1, 100));
  dtq.allocate(entry(2, 101));
  EXPECT_EQ(dtq.head_packet_size(), 0u) << "uncommitted packets are not ready";
  EXPECT_TRUE(dtq.fill_at_commit(0, 0, 0, false, 0));
  EXPECT_EQ(dtq.head_packet_size(), 0u) << "partially committed";
  EXPECT_TRUE(dtq.fill_at_commit(1, 1, 0, false, 0));
  EXPECT_EQ(dtq.head_packet_size(), 2u);
  dtq.pop_front(2);
  EXPECT_EQ(dtq.head_packet_size(), 0u);
  EXPECT_TRUE(dtq.fill_at_commit(2, 2, 0, false, 0));
  EXPECT_EQ(dtq.head_packet_size(), 1u);
}

TEST(Dtq, SquashRemovesUncommittedYoung) {
  DependenceTraceQueue dtq(16);
  dtq.allocate(entry(5, 100));
  dtq.allocate(entry(9, 100));  // younger, issued same cycle
  dtq.allocate(entry(7, 101));
  dtq.squash_younger_than(6);  // squash everything after seq 6
  EXPECT_EQ(dtq.size(), 1u);
  EXPECT_TRUE(dtq.fill_at_commit(5, 0, 0, false, 0));
  EXPECT_EQ(dtq.head_packet_size(), 1u);
  EXPECT_FALSE(dtq.fill_at_commit(9, 1, 0, false, 0)) << "squashed entry gone";
}

TEST(Dtq, CommittedEntriesSurviveSquash) {
  DependenceTraceQueue dtq(16);
  dtq.allocate(entry(3, 50));
  ASSERT_TRUE(dtq.fill_at_commit(3, 0, 0, false, 0));
  dtq.squash_younger_than(0);
  EXPECT_EQ(dtq.size(), 1u);
}

TEST(Dtq, CapacityIsEnforcedBySize) {
  DependenceTraceQueue dtq(2);
  dtq.allocate(entry(0, 1));
  dtq.allocate(entry(1, 1));
  EXPECT_TRUE(dtq.full());
}

}  // namespace
}  // namespace bj
