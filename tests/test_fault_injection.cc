// End-to-end hard-error detection tests: inject specific stuck-at faults and
// verify the redundancy machinery catches them — or, where the paper says a
// configuration cannot catch them, verify the miss. These tests are the
// ground truth behind the coverage numbers.
#include <gtest/gtest.h>

#include "harness/campaign.h"
#include "harness/driver.h"
#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

// A kernel whose every computed value reaches stores, with all backend-way
// classes exercised.
Program detection_workload(std::uint64_t iterations = 400) {
  WorkloadProfile p = profile_by_name("eon");
  p.iterations = iterations;
  return generate_workload(p);
}

RunOutcome run_with_fault(const Program& p, Mode mode, const HardFault& fault,
                          std::uint64_t max_cycles = 8000000) {
  FaultInjector injector(fault);
  Core core(p, mode, CoreParams{}, &injector);
  core.set_oracle_check(false);
  return core.run(~0ull / 2, max_cycles);
}

HardFault backend_fault(FuClass fu, int way, int bit = 3) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = fu;
  f.backend_way = way;
  f.bit = bit;
  f.stuck_value = true;
  return f;
}

HardFault frontend_fault(int way, int bit) {
  HardFault f;
  f.site = FaultSite::kFrontendDecoder;
  f.frontend_way = way;
  f.bit = bit;
  f.stuck_value = true;
  return f;
}

TEST(FaultInjection, SingleThreadCannotDetect) {
  // A stuck result bit on int ALU way 0 silently corrupts a single-threaded
  // run: no detection machinery exists.
  const Program p = detection_workload();
  const RunOutcome outcome =
      run_with_fault(p, Mode::kSingle, backend_fault(FuClass::kIntAlu, 0));
  EXPECT_TRUE(outcome.detections.empty());
}

TEST(FaultInjection, BlackjackDetectsBackendFault) {
  const Program p = detection_workload();
  for (int way = 0; way < 4; ++way) {
    const RunOutcome outcome = run_with_fault(
        p, Mode::kBlackjack, backend_fault(FuClass::kIntAlu, way));
    EXPECT_TRUE(outcome.detected) << "int-alu way " << way << " escaped";
  }
}

TEST(FaultInjection, BlackjackDetectsFpUnitFault) {
  const Program p = detection_workload();
  const RunOutcome outcome =
      run_with_fault(p, Mode::kBlackjack, backend_fault(FuClass::kFpAlu, 1));
  EXPECT_TRUE(outcome.detected);
}

TEST(FaultInjection, BlackjackDetectsMemPortAddressFault) {
  const Program p = detection_workload();
  const RunOutcome outcome = run_with_fault(
      p, Mode::kBlackjack, backend_fault(FuClass::kMem, 0, /*bit=*/4));
  EXPECT_TRUE(outcome.detected);
  // Address-path faults surface as load-address or store-address mismatches.
  bool addr_related = false;
  for (const DetectionEvent& d : outcome.detections) {
    addr_related |= d.kind == DetectionKind::kLoadAddressMismatch ||
                    d.kind == DetectionKind::kStoreAddressMismatch ||
                    d.kind == DetectionKind::kStoreOrdinalMismatch;
  }
  EXPECT_TRUE(addr_related);
}

TEST(FaultInjection, BlackjackDetectsFrontendDecoderFault) {
  const Program p = detection_workload();
  int detected_ways = 0;
  for (int way = 0; way < 4; ++way) {
    // Bit 27 sits in the opcode field: decoding on the faulty lane yields a
    // different instruction.
    const RunOutcome outcome =
        run_with_fault(p, Mode::kBlackjack, frontend_fault(way, 27));
    if (outcome.detected) ++detected_ways;
  }
  EXPECT_EQ(detected_ways, 4)
      << "safe-shuffle guarantees the two copies decode on different lanes";
}

TEST(FaultInjection, SrtMissesFrontendDecoderFault) {
  // SRT's frontend ways are alignment-determined and identical for both
  // threads: both copies decode on the same faulty lane and agree on the
  // corrupted result. Exceptions exist (a corrupted instruction may change
  // control flow or store counts enough to trip the BOQ/store ordinal
  // checks), so assert the *aggregate*: SRT misses at least one decoder
  // fault that BlackJack catches.
  const Program p = detection_workload(120);
  int srt_missed_bj_caught = 0;
  for (int way = 0; way < 4; ++way) {
    for (int bit : {0, 11}) {  // operand/immediate field bits
      const HardFault fault = frontend_fault(way, bit);
      const RunOutcome srt = run_with_fault(p, Mode::kSrt, fault, 1500000);
      const RunOutcome blackjack =
          run_with_fault(p, Mode::kBlackjack, fault, 1500000);
      if (!srt.detected && blackjack.detected) ++srt_missed_bj_caught;
    }
  }
  EXPECT_GT(srt_missed_bj_caught, 0);
}

TEST(FaultInjection, UnexercisedFaultIsBenign) {
  // An FP-multiplier fault cannot matter to a pure-integer kernel.
  const Program p = kernels::fibonacci(2000);
  FaultInjector injector(backend_fault(FuClass::kFpMul, 1));
  Core core(p, Mode::kBlackjack, CoreParams{}, &injector);
  const RunOutcome outcome = core.run(~0ull / 2, 8000000);
  EXPECT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(injector.activations(), 0u);
  EXPECT_FALSE(core.oracle_violated());
}

TEST(FaultInjection, SeparatePayloadRamsCoverIqPayloadFault) {
  HardFault fault;
  fault.site = FaultSite::kIqPayload;
  fault.iq_entry = 5;
  fault.bit = 2;
  fault.stuck_value = true;

  const Program p = detection_workload();
  CoreParams params;
  params.separate_payload_rams = true;  // the paper's recommended fix
  FaultInjector injector(fault);
  Core core(p, Mode::kBlackjack, params, &injector);
  core.set_oracle_check(false);
  const RunOutcome outcome = core.run(~0ull / 2, 8000000);
  if (injector.activations() > 0) {
    EXPECT_TRUE(outcome.detected)
        << "leading-only payload corruption must disagree with the trailing "
           "copy";
  }
}

TEST(FaultInjection, DetectionKindsAreMeaningful) {
  const Program p = detection_workload();
  const RunOutcome outcome =
      run_with_fault(p, Mode::kBlackjack, backend_fault(FuClass::kIntAlu, 1));
  ASSERT_TRUE(outcome.detected);
  const DetectionEvent& first = outcome.detections.front();
  EXPECT_NE(first.kind, DetectionKind::kWatchdogTimeout);
  EXPECT_GT(first.cycle, 0u);
}

TEST(FaultCampaign, GeneratesDeterministicFaults) {
  const CoreParams params;
  const auto a = generate_faults(params, 50, 99, {});
  const auto b = generate_faults(params, 50, 99, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].describe(), b[i].describe());
  }
}

TEST(FaultCampaign, FaultSitesRespectStructureBounds) {
  const CoreParams params;
  for (const HardFault& f : generate_faults(params, 200, 7, {})) {
    switch (f.site) {
      case FaultSite::kFrontendDecoder:
        EXPECT_LT(f.frontend_way, params.fetch_width);
        break;
      case FaultSite::kBackendResult:
        EXPECT_LT(f.backend_way, params.fu_count(f.fu));
        break;
      case FaultSite::kIqPayload:
        EXPECT_LT(f.iq_entry, params.issue_queue_entries);
        break;
    }
  }
}

TEST(FaultCampaign, BlackjackBeatsSrtOnDetectionAndCorruption) {
  const Program p = detection_workload(0);  // endless; budget-bounded
  CampaignConfig config;
  config.num_faults = 24;
  config.seed = 4242;
  config.budget_commits = 8000;
  config.sites = {FaultSite::kFrontendDecoder, FaultSite::kBackendResult};

  config.mode = Mode::kSrt;
  const CampaignResult srt = run_campaign(p, config);
  config.mode = Mode::kBlackjack;
  const CampaignResult blackjack = run_campaign(p, config);

  EXPECT_GE(blackjack.detection_rate_of_activated(),
            srt.detection_rate_of_activated());
  EXPECT_LE(blackjack.sdc_rate_of_activated(),
            srt.sdc_rate_of_activated());
  // The campaign must actually exercise faults for the comparison to mean
  // anything.
  int activated = 0;
  for (const FaultRun& run : blackjack.runs) activated += run.activations > 0;
  EXPECT_GT(activated, 5);
}


TEST(SoftErrors, RedundantModesDetectTransientFlips) {
  // Soft errors need only temporal redundancy: both SRT and BlackJack must
  // detect a one-shot bit flip that reaches architectural state.
  const Program p = detection_workload(0);
  int srt_detected = 0;
  int bj_detected = 0;
  int activated = 0;
  // Past the kernel's init/cache-warm prologue (whose values are dead).
  for (std::uint64_t trigger : {30000ull, 36000ull, 42000ull, 48000ull}) {
    TransientFault t;
    t.trigger_execution = trigger;
    t.bit = 5;
    {
      FaultInjector injector(t);
      Core core(p, Mode::kSrt, CoreParams{}, &injector);
      core.set_oracle_check(false);
      const RunOutcome outcome = core.run(60000, 12000000);
      if (injector.activations() > 0) ++activated;
      if (outcome.detected) ++srt_detected;
    }
    {
      FaultInjector injector(t);
      Core core(p, Mode::kBlackjack, CoreParams{}, &injector);
      core.set_oracle_check(false);
      const RunOutcome outcome = core.run(60000, 12000000);
      if (outcome.detected) ++bj_detected;
    }
  }
  // Execution numbering differs per mode, so a given trigger can land on an
  // architecturally dead value in one mode and a live one in another; most
  // triggers must be caught in each mode.
  EXPECT_EQ(activated, 4) << "every trigger should fire";
  EXPECT_GE(srt_detected, 2) << "SRT detects soft errors";
  EXPECT_GE(bj_detected, 2) << "BlackJack detects soft errors too";
  EXPECT_GE(srt_detected + bj_detected, 5);
}

TEST(SoftErrors, SingleThreadStaysSilent) {
  const Program p = detection_workload(0);
  TransientFault t;
  t.trigger_execution = 2000;
  t.bit = 4;
  FaultInjector injector(t);
  Core core(p, Mode::kSingle, CoreParams{}, &injector);
  core.set_oracle_check(false);
  const RunOutcome outcome = core.run(10000, 2000000);
  EXPECT_TRUE(outcome.detections.empty());
}

TEST(SoftErrors, CampaignClassifiesOutcomes) {
  const Program p = detection_workload(0);
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 10;
  config.seed = 777;
  config.budget_commits = 6000;
  config.soft_errors = true;
  const CampaignResult result = run_campaign(p, config);
  EXPECT_EQ(result.runs.size(), 10u);
  EXPECT_EQ(result.count(FaultOutcome::kSdc), 0)
      << "no transient flip may silently corrupt a BlackJack machine";
}

}  // namespace
}  // namespace bj
