// Tests for the workload generator: profile knobs must actually control the
// generated kernels' instruction mix and behaviour (these are the levers the
// whole evaluation stands on).
#include <gtest/gtest.h>

#include <map>

#include "arch/emulator.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

// Executes `instructions` dynamic instructions and histograms opcode classes.
struct MixHistogram {
  std::uint64_t total = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t fp = 0;
  std::uint64_t int_muldiv = 0;
  std::uint64_t fp_muldiv = 0;
};

MixHistogram run_mix(const WorkloadProfile& profile,
                     std::uint64_t instructions = 60000) {
  const Program p = generate_workload(profile);
  Emulator emu(p);
  MixHistogram h;
  // Skip the init/warm prologue: run until the loop body dominates.
  emu.run(20000);
  for (std::uint64_t i = 0; i < instructions && !emu.halted(); ++i) {
    const auto rec = emu.step();
    if (!rec.has_value()) break;
    const DecodedInst& inst = rec->inst;
    ++h.total;
    if (inst.is_load()) ++h.loads;
    if (inst.is_store()) ++h.stores;
    if (inst.is_branch()) ++h.branches;
    if (inst.fu() == FuClass::kFpAlu || inst.fu() == FuClass::kFpMul) ++h.fp;
    if (inst.fu() == FuClass::kIntMul) ++h.int_muldiv;
    if (inst.fu() == FuClass::kFpMul) ++h.fp_muldiv;
  }
  return h;
}

double frac(std::uint64_t part, std::uint64_t total) {
  return total ? static_cast<double>(part) / static_cast<double>(total) : 0.0;
}

TEST(Workload, LoadFractionTracksProfile) {
  WorkloadProfile lo = profile_by_name("sixtrack");  // loads 0.22
  WorkloadProfile hi = profile_by_name("mgrid");     // loads 0.40
  const MixHistogram a = run_mix(lo);
  const MixHistogram b = run_mix(hi);
  EXPECT_LT(frac(a.loads, a.total), frac(b.loads, b.total));
  EXPECT_GT(frac(b.loads, b.total), 0.2);
}

TEST(Workload, FpFractionTracksProfile) {
  const MixHistogram int_only = run_mix(profile_by_name("gzip"));   // fp 0
  const MixHistogram fp_heavy = run_mix(profile_by_name("mgrid"));  // fp .8
  EXPECT_EQ(int_only.fp, 0u);
  EXPECT_GT(frac(fp_heavy.fp, fp_heavy.total), 0.2);
}

TEST(Workload, IntMulKnobEngagesUnpipelinedUnit) {
  // Every kernel carries one LCG multiply per iteration as a baseline; a
  // heavy int_mul knob must clearly raise the mul/div-unit share above it.
  WorkloadProfile base = profile_by_name("gzip");
  base.name = "knob-base";
  base.int_mul_fraction = 0.0;
  WorkloadProfile heavy = base;
  heavy.name = "knob-heavy";
  heavy.int_mul_fraction = 0.4;
  heavy.int_div_fraction = 0.3;
  const MixHistogram a = run_mix(base);
  const MixHistogram b = run_mix(heavy);
  EXPECT_GT(frac(b.int_muldiv, b.total),
            2.0 * frac(a.int_muldiv, a.total) + 0.02);
}

TEST(Workload, EveryProfileTouchesStores) {
  // Detection lives on the store stream; every profile must produce stores
  // whose data comes from computed chains.
  for (const WorkloadProfile& profile : spec2000_profiles()) {
    const MixHistogram h = run_mix(profile, 30000);
    EXPECT_GT(frac(h.stores, h.total), 0.01) << profile.name;
  }
}

TEST(Workload, BranchRegularityControlsMispredictability) {
  // Same branch fraction, different regularity: the regular variant's
  // counter-pattern branches are gshare-learnable, the irregular one's
  // LCG-driven branches are not. Measured where it matters — pipeline
  // misprediction rates.
  WorkloadProfile regular = profile_by_name("vortex");
  regular.branch_regularity = 1.0;
  WorkloadProfile irregular = regular;
  irregular.name = "vortex-irregular";
  irregular.branch_regularity = 0.0;

  auto mispredicts_per_1k = [](const WorkloadProfile& profile) {
    Core core(generate_workload(profile), Mode::kSingle);
    core.run(10000, 2000000);
    core.reset_stats();
    core.run(20000, 4000000);
    return 1000.0 * static_cast<double>(core.stats().branch_mispredicts) /
           static_cast<double>(core.stats().leading_commits);
  };
  EXPECT_GT(mispredicts_per_1k(irregular), 3.0 * mispredicts_per_1k(regular));
}

TEST(Workload, WorkingSetIsRespected) {
  // All data addresses must stay inside [heap, heap + working set).
  WorkloadProfile p = profile_by_name("crafty");  // 64 KiB
  p.iterations = 200;
  const Program prog = generate_workload(p);
  Emulator emu(prog);
  while (!emu.halted()) {
    const auto rec = emu.step();
    if (!rec.has_value()) break;
    const std::uint64_t heap = 1ull << 20;
    if (rec->load.has_value()) {
      EXPECT_GE(rec->load->first, heap);
      EXPECT_LT(rec->load->first, heap + p.working_set_bytes + 256);
    }
    if (rec->store.has_value()) {
      EXPECT_GE(rec->store->first, heap);
      EXPECT_LT(rec->store->first, heap + p.working_set_bytes + 256);
    }
  }
}

TEST(Workload, SeedOverrideChangesCodeDeterministically) {
  WorkloadProfile p = profile_by_name("eon");
  p.iterations = 10;
  const Program base = generate_workload(p);
  p.seed = 999;
  const Program seeded_a = generate_workload(p);
  const Program seeded_b = generate_workload(p);
  EXPECT_NE(base.code, seeded_a.code);
  EXPECT_EQ(seeded_a.code, seeded_b.code);
}

TEST(Workload, ProfilesAreSixteenAndNamed) {
  const auto& profiles = spec2000_profiles();
  EXPECT_EQ(profiles.size(), 16u);
  EXPECT_EQ(profiles.front().name, "equake");
  EXPECT_EQ(profiles.back().name, "sixtrack");
  EXPECT_THROW(profile_by_name("nonexistent"), std::out_of_range);
}

TEST(Workload, StreamingProfilesSkipWarmPrologue) {
  EXPECT_EQ(profile_by_name("swim").warm_prefix_bytes, 0u);
  EXPECT_EQ(profile_by_name("equake").warm_prefix_bytes, 0u);
  EXPECT_NE(profile_by_name("vortex").warm_prefix_bytes, 0u);
}

}  // namespace
}  // namespace bj
