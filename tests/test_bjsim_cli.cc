// Doc/flag drift guard for the bjsim driver: the usage text, the declared
// option inventory (common/bjsim_cli.cc), and the flags the driver source
// actually consumes must all describe the same command-line surface.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "common/bjsim_cli.h"

namespace bj {
namespace {

std::set<std::string> accepted_set() {
  const std::vector<std::string>& options = bjsim_accepted_options();
  std::set<std::string> set(options.begin(), options.end());
  EXPECT_EQ(set.size(), options.size()) << "duplicate accepted option";
  return set;
}

// Long-option tokens ("--foo-bar") appearing anywhere in a text.
std::set<std::string> long_options_in(const std::string& text) {
  std::set<std::string> found;
  static const std::regex option_re("--([a-z][a-z0-9-]*)");
  for (std::sregex_iterator it(text.begin(), text.end(), option_re), end;
       it != end; ++it) {
    found.insert((*it)[1].str());
  }
  return found;
}

TEST(BjsimCli, UsageMentionsEveryAcceptedOption) {
  const std::string usage = bjsim_usage_text();
  for (const std::string& option : bjsim_accepted_options()) {
    EXPECT_NE(usage.find("--" + option), std::string::npos)
        << "--" << option << " is accepted but undocumented in --help";
  }
}

TEST(BjsimCli, UsageAdvertisesOnlyAcceptedOptions) {
  const std::set<std::string> accepted = accepted_set();
  for (const std::string& option : long_options_in(bjsim_usage_text())) {
    EXPECT_TRUE(accepted.count(option))
        << "--" << option << " appears in --help but the parser ignores it";
  }
}

TEST(BjsimCli, DriverConsumesExactlyTheAcceptedOptions) {
  std::ifstream in(BJ_SOURCE_DIR "/tools/bjsim.cc");
  ASSERT_TRUE(in) << "cannot open tools/bjsim.cc";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  // Every flag name the driver passes to the Flags accessors.
  std::set<std::string> consumed;
  static const std::regex call_re(
      "flags\\.(?:has|get|get_int|get_bool)\\(\\s*\"([^\"]+)\"");
  for (std::sregex_iterator it(source.begin(), source.end(), call_re), end;
       it != end; ++it) {
    consumed.insert((*it)[1].str());
  }
  ASSERT_FALSE(consumed.empty());
  consumed.erase("h");  // documented short alias of --help

  const std::set<std::string> accepted = accepted_set();
  for (const std::string& option : consumed) {
    EXPECT_TRUE(accepted.count(option))
        << "driver reads --" << option
        << " but bjsim_accepted_options() does not declare it";
  }
  for (const std::string& option : accepted) {
    EXPECT_TRUE(consumed.count(option))
        << "--" << option << " is declared but the driver never reads it";
  }
}

// Satellite regression: --soft-errors implies --oracle. A soft-error
// campaign without the oracle systematically under-reports divergence (a
// transient that corrupts state but never reaches memory classifies as
// benign), so the default must be oracle-on with --no-oracle as the
// explicit opt-out.
TEST(BjsimCli, SoftErrorsImplyTheOracle) {
  // (oracle_flag, soft_errors, no_oracle) -> effective oracle_check
  EXPECT_FALSE(bjsim_campaign_oracle(false, false, false));  // hard default
  EXPECT_TRUE(bjsim_campaign_oracle(true, false, false));    // explicit on
  EXPECT_TRUE(bjsim_campaign_oracle(false, true, false));    // the implication
  EXPECT_FALSE(bjsim_campaign_oracle(false, true, true));    // explicit opt-out
  EXPECT_TRUE(bjsim_campaign_oracle(true, true, true));      // --oracle wins
  EXPECT_FALSE(bjsim_campaign_oracle(false, false, true));   // no-op opt-out
}

}  // namespace
}  // namespace bj
