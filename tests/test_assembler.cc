// Tests for the text assembler: round trips with the disassembler, label
// resolution, memory operands, pseudo-instructions, directives, and error
// reporting — and end-to-end execution of assembled programs on the
// emulator and the BlackJack core.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <tuple>

#include "arch/emulator.h"
#include "isa/assembler.h"
#include "pipeline/core.h"

namespace bj {
namespace {

TEST(Assembler, BasicArithmetic) {
  const Program p = assemble(R"(
      addi r1, r0, 40
      addi r2, r0, 2
      add  r3, r1, r2
      li   r4, 0x1000
      st   r3, [r4]
      halt
  )");
  Emulator emu(p);
  emu.run(100);
  EXPECT_TRUE(emu.halted());
  EXPECT_EQ(emu.memory().load(0x1000), 42u);
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
      li r1, 0          ; sum
      li r2, 1          ; i
      li r3, 10
  loop:
      add  r1, r1, r2
      addi r2, r2, 1
      bge  r3, r2, loop
      li   r4, 0x2000
      st   r1, [r4 + 8]
      halt
  )");
  Emulator emu(p);
  emu.run(1000);
  EXPECT_EQ(emu.memory().load(0x2008), 55u);
}

TEST(Assembler, MemoryOperandForms) {
  const Program p = assemble(R"(
      li r1, 0x1000
      li r2, 7
      st r2, [r1]
      st r2, [r1 + 8]
      ld r3, [r1+8]
      st r3, [r1 - 8]      ; negative offsets wrap via two's complement
      halt
  )");
  Emulator emu(p);
  emu.run(100);
  EXPECT_EQ(emu.memory().load(0x1000), 7u);
  EXPECT_EQ(emu.memory().load(0x1008), 7u);
  EXPECT_EQ(emu.memory().load(0xff8), 7u);
}

TEST(Assembler, FloatingPoint) {
  const Program p = assemble(R"(
      lfi f1, 1.5, r6
      lfi f2, 2.5, r6
      fadd f3, f1, f2
      fmul f4, f3, f3
      li r1, 0x1000
      fst f4, [r1]
      halt
  )");
  Emulator emu(p);
  emu.run(200);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(emu.memory().load(0x1000)), 16.0);
}

TEST(Assembler, CallsAndReturns) {
  const Program p = assemble(R"(
      li  r1, 5
      jal double_it
      jal double_it
      li  r4, 0x1000
      st  r1, [r4]
      halt
  double_it:
      add r1, r1, r1
      jr  r31
  )");
  Emulator emu(p);
  emu.run(200);
  EXPECT_EQ(emu.memory().load(0x1000), 20u);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
      .data 0x1000 0x1234
      .word 0x1008 2.5
      li r1, 0x1000
      ld r2, [r1]
      fld f1, [r1 + 8]
      halt
  )");
  Emulator emu(p);
  emu.run(100);
  EXPECT_EQ(emu.state().int_regs[2], 0x1234u);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(emu.state().fp_regs[1]), 2.5);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
      # hash comment
      ; semicolon comment

      li r1, 1    ; trailing comment
      halt        # another
  )");
  EXPECT_GT(p.size(), 1u);
}

TEST(Assembler, MovPseudo) {
  const Program p = assemble(R"(
      li  r1, 99
      mov r2, r1
      li  r3, 0x1000
      st  r2, [r3]
      halt
  )");
  Emulator emu(p);
  emu.run(100);
  EXPECT_EQ(emu.memory().load(0x1000), 99u);
}

TEST(Assembler, RoundTripsDisassembly) {
  // Disassemble a few instructions and re-assemble them.
  const Program p = assemble(R"(
      add r3, r1, r2
      sub r4, r3, r1
      fmul f2, f1, f1
      mul r5, r4, r4
      halt
  )");
  std::string source;
  for (std::uint64_t pc = 0; pc < p.size(); ++pc) {
    source += disassemble(p.fetch(pc)) + "\n";
  }
  const Program q = assemble(source);
  EXPECT_EQ(p.code, q.code);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("addi r1, r0, 1\nbogus r1, r2\n");
    FAIL() << "expected AssemblerError";
  } catch (const AssemblerError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadOperands) {
  EXPECT_THROW(assemble("add r1, r2\n"), AssemblerError);       // missing
  EXPECT_THROW(assemble("add r1, r2, f3\n"), AssemblerError);   // wrong class
  EXPECT_THROW(assemble("addi r1, r0, 99999999\n"), AssemblerError);  // range
  EXPECT_THROW(assemble("ld r1, r2\n"), AssemblerError);        // not [mem]
  EXPECT_THROW(assemble("jmp\n"), AssemblerError);              // no label
  EXPECT_THROW(assemble("add r1, r2, r99\n"), AssemblerError);  // bad reg
  EXPECT_THROW(assemble(".bogus 1 2\n"), AssemblerError);
}

TEST(Assembler, RejectsUnresolvedAndDuplicateLabels) {
  EXPECT_THROW(assemble("jmp nowhere\nhalt\n"), AssemblerError);
  EXPECT_THROW(assemble("x:\nx:\nhalt\n"), AssemblerError);
}

TEST(Assembler, AssembledProgramRunsOnBlackjackCore) {
  const Program p = assemble(R"(
      li r1, 0
      li r2, 1
      li r3, 100
  loop:
      add  r1, r1, r2
      addi r2, r2, 1
      bge  r3, r2, loop
      li   r4, 0x1000
      st   r1, [r4]
      halt
  )");
  Core core(p, Mode::kBlackjack);
  const RunOutcome outcome = core.run(~0ull / 2, 1000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  std::uint64_t result = 0;
  for (const auto& s : core.released_stores()) {
    if (s.addr == 0x1000) result = s.data;
  }
  EXPECT_EQ(result, 5050u);
}


TEST(Assembler, ShippedExamplePrograms) {
  // The .s files under examples/programs must assemble and compute their
  // documented answers.
  for (const auto& [path, addr, expected] :
       std::vector<std::tuple<const char*, std::uint64_t, std::uint64_t>>{
           {"examples/programs/gcd.s", 0x1000, 21},
           {"examples/programs/collatz.s", 0x1000, 111}}) {
    std::ifstream in(std::string(BJ_SOURCE_DIR) + "/" + path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Program p = assemble(buffer.str(), path);
    Emulator emu(p);
    emu.run(100000);
    ASSERT_TRUE(emu.halted()) << path;
    EXPECT_EQ(emu.memory().load(addr), expected) << path;
  }
}

}  // namespace
}  // namespace bj
