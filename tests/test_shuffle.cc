// Property tests for safe-shuffle. The invariants here are the heart of
// BlackJack's frontend+backend coverage guarantee:
//   P1 every input instruction appears in exactly one output slot;
//   P2 for every real instruction, slot index != lead frontend way;
//   P3 for every real instruction, its backend rank within its output packet
//      != lead backend way;
//   P4 backend ranks never exceed the number of ways of the class;
//   P5 the result is deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blackjack/shuffle.h"
#include "common/rng.h"
#include "harness/worker_pool.h"
#include "pipeline/params.h"

namespace bj {
namespace {

constexpr int kWidth = 4;

void check_invariants(const std::vector<ShuffleInst>& packet,
                      const ShuffleResult& result, int width,
                      const std::string& context) {
  std::map<int, int> seen;  // input index -> count
  for (const ShuffledPacket& out : result.packets) {
    EXPECT_LE(out.size(), static_cast<std::size_t>(width)) << context;
    for (std::size_t slot = 0; slot < out.size(); ++slot) {
      const ShuffleSlot& s = out[slot];
      if (s.is_nop) continue;
      ASSERT_GE(s.input_index, 0) << context;
      ASSERT_LT(s.input_index, static_cast<int>(packet.size())) << context;
      ++seen[s.input_index];
      const ShuffleInst& inst = packet[static_cast<std::size_t>(s.input_index)];
      EXPECT_EQ(s.cls, inst.fu) << context;
      if (result.forced_places == 0) {
        // P2: frontend diversity.
        EXPECT_NE(static_cast<int>(slot), inst.lead_frontend_way)
            << context << " slot " << slot;
        // P3: backend diversity under whole-and-alone issue.
        EXPECT_NE(backend_way_in_packet(out, slot), inst.lead_backend_way)
            << context << " slot " << slot;
      }
    }
  }
  // P1: permutation.
  EXPECT_EQ(seen.size(), packet.size()) << context;
  for (const auto& [idx, count] : seen) {
    EXPECT_EQ(count, 1) << context << " input " << idx;
  }
}

ShuffleInst make(FuClass fu, int fe, int be) { return ShuffleInst{fu, fe, be}; }

TEST(Shuffle, EmptyPacket) {
  const ShuffleResult r = safe_shuffle({}, kWidth);
  EXPECT_TRUE(r.packets.empty());
}

TEST(Shuffle, SingleInstructionAvoidsBothWays) {
  for (int fe = 0; fe < kWidth; ++fe) {
    for (int be = 0; be < 4; ++be) {
      const std::vector<ShuffleInst> packet = {make(FuClass::kIntAlu, fe, be)};
      const ShuffleResult r = safe_shuffle(packet, kWidth);
      check_invariants(packet, r, kWidth,
                       "single fe=" + std::to_string(fe) +
                           " be=" + std::to_string(be));
      EXPECT_EQ(r.forced_places, 0);
    }
  }
}

TEST(Shuffle, PaperFigure2Swap) {
  // Two like instructions swap backend ways via NOP replacement: A(fe0,be0)
  // and B(fe1,be1) both int-alu.
  const std::vector<ShuffleInst> packet = {make(FuClass::kIntAlu, 0, 0),
                                           make(FuClass::kIntAlu, 1, 1)};
  const ShuffleResult r = safe_shuffle(packet, kWidth);
  check_invariants(packet, r, kWidth, "figure2");
  EXPECT_EQ(r.splits, 0) << "two like instructions must fit one packet";
}

TEST(Shuffle, FullIntPacketPermutes) {
  // A full-width int packet with distinct frontend ways has a clean
  // derangement-style solution.
  const std::vector<ShuffleInst> packet = {
      make(FuClass::kIntAlu, 0, 0), make(FuClass::kIntAlu, 1, 1),
      make(FuClass::kIntAlu, 2, 2), make(FuClass::kIntAlu, 3, 3)};
  const ShuffleResult r = safe_shuffle(packet, kWidth);
  check_invariants(packet, r, kWidth, "full int");
  EXPECT_EQ(r.splits, 0);
  EXPECT_EQ(r.nops_inserted, 0);
}

TEST(Shuffle, TwoWayClassesSwap) {
  // Two memory ops must swap their two ports.
  const std::vector<ShuffleInst> packet = {make(FuClass::kMem, 0, 0),
                                           make(FuClass::kMem, 1, 1)};
  const ShuffleResult r = safe_shuffle(packet, kWidth);
  check_invariants(packet, r, kWidth, "mem swap");
  EXPECT_EQ(r.splits, 0);
}

TEST(Shuffle, DuplicateFrontendWaysStillDiverse) {
  // Co-issued instructions fetched from the same block offset share a
  // frontend way; shuffle must still find diverse placements (possibly
  // splitting).
  const std::vector<ShuffleInst> packet = {
      make(FuClass::kIntAlu, 1, 0), make(FuClass::kIntAlu, 1, 1),
      make(FuClass::kIntAlu, 1, 2), make(FuClass::kIntAlu, 1, 3)};
  const ShuffleResult r = safe_shuffle(packet, kWidth);
  check_invariants(packet, r, kWidth, "dup fe");
}

TEST(Shuffle, MixedClassesRespectTypedNops) {
  const std::vector<ShuffleInst> packet = {
      make(FuClass::kMem, 0, 0), make(FuClass::kIntAlu, 1, 0),
      make(FuClass::kFpMul, 2, 1), make(FuClass::kIntAlu, 3, 1)};
  const ShuffleResult r = safe_shuffle(packet, kWidth);
  check_invariants(packet, r, kWidth, "mixed");
}

TEST(Shuffle, PropertySweepRandomPackets) {
  // Randomized sweep over realistic packets: class mix weighted like a
  // leading thread's issue stream; way assignments consistent with the
  // oldest-first mapping (same-class leading ways are distinct and dense).
  Rng rng(0xb1ac4acc);
  const CoreParams params;
  for (int trial = 0; trial < 5000; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(4));
    std::vector<ShuffleInst> packet;
    int used[kNumFuClasses] = {};
    for (int i = 0; i < n; ++i) {
      FuClass fu;
      const double pick = rng.next_double();
      if (pick < 0.45) {
        fu = FuClass::kIntAlu;
      } else if (pick < 0.70) {
        fu = FuClass::kMem;
      } else if (pick < 0.85) {
        fu = FuClass::kFpAlu;
      } else if (pick < 0.95) {
        fu = FuClass::kFpMul;
      } else {
        fu = FuClass::kIntMul;
      }
      const int ways = params.fu_count(fu);
      if (used[static_cast<int>(fu)] >= ways) {
        fu = FuClass::kIntAlu;  // class exhausted in this packet
        if (used[static_cast<int>(FuClass::kIntAlu)] >= 4) break;
      }
      const int be = used[static_cast<int>(fu)]++;
      const int fe = static_cast<int>(rng.next_below(kWidth));
      packet.push_back(make(fu, fe, be));
    }
    if (packet.empty()) continue;
    const ShuffleResult r = safe_shuffle(packet, kWidth);
    check_invariants(packet, r, kWidth, "trial " + std::to_string(trial));
    EXPECT_EQ(r.forced_places, 0) << "trial " << trial;
  }
}

TEST(Shuffle, Deterministic) {
  const std::vector<ShuffleInst> packet = {
      make(FuClass::kMem, 3, 1), make(FuClass::kIntAlu, 3, 0),
      make(FuClass::kFpAlu, 0, 0), make(FuClass::kIntAlu, 2, 1)};
  const ShuffleResult a = safe_shuffle(packet, kWidth);
  const ShuffleResult b = safe_shuffle(packet, kWidth);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t p = 0; p < a.packets.size(); ++p) {
    ASSERT_EQ(a.packets[p].size(), b.packets[p].size());
    for (std::size_t s = 0; s < a.packets[p].size(); ++s) {
      EXPECT_EQ(a.packets[p][s].is_nop, b.packets[p][s].is_nop);
      EXPECT_EQ(a.packets[p][s].input_index, b.packets[p][s].input_index);
      EXPECT_EQ(a.packets[p][s].cls, b.packets[p][s].cls);
    }
  }
}

TEST(Shuffle, DegenerateWidthOneForcesPlacement) {
  // Width 1 cannot be spatially diverse; the algorithm must still terminate.
  const std::vector<ShuffleInst> packet = {make(FuClass::kIntAlu, 0, 0)};
  const ShuffleResult r = safe_shuffle(packet, 1);
  EXPECT_EQ(r.forced_places, 1);
  ASSERT_EQ(r.packets.size(), 1u);
}

TEST(Shuffle, BackendRankHelperCountsSameClassOnly) {
  ShuffledPacket packet = {
      ShuffleSlot{false, FuClass::kIntAlu, 0},
      ShuffleSlot{true, FuClass::kMem, -1},
      ShuffleSlot{false, FuClass::kIntAlu, 1},
      ShuffleSlot{false, FuClass::kMem, 2},
  };
  EXPECT_EQ(backend_way_in_packet(packet, 0), 0);
  EXPECT_EQ(backend_way_in_packet(packet, 1), 0);  // first mem occupant
  EXPECT_EQ(backend_way_in_packet(packet, 2), 1);  // second int
  EXPECT_EQ(backend_way_in_packet(packet, 3), 1);  // second mem
}

// ---------------------------------------------------------------------------
// Shared shuffle table (SharedShuffleTable + ShuffleCache warm start): the
// read-mostly table campaign workers share. These tests are also the payload
// of the tier-2 ThreadSanitizer run (tests/CMakeLists registers this binary
// under -DBJ_SANITIZE=thread), so the concurrent test below doubles as the
// race check for the copy-on-write merge.

// Same weighted generator as PropertySweepRandomPackets, factored so the
// warm-start tests draw from an identical packet population.
std::vector<ShuffleInst> random_packet(Rng& rng, const CoreParams& params) {
  const int n = 1 + static_cast<int>(rng.next_below(4));
  std::vector<ShuffleInst> packet;
  int used[kNumFuClasses] = {};
  for (int i = 0; i < n; ++i) {
    FuClass fu;
    const double pick = rng.next_double();
    if (pick < 0.45) {
      fu = FuClass::kIntAlu;
    } else if (pick < 0.70) {
      fu = FuClass::kMem;
    } else if (pick < 0.85) {
      fu = FuClass::kFpAlu;
    } else if (pick < 0.95) {
      fu = FuClass::kFpMul;
    } else {
      fu = FuClass::kIntMul;
    }
    const int ways = params.fu_count(fu);
    if (used[static_cast<int>(fu)] >= ways) {
      fu = FuClass::kIntAlu;
      if (used[static_cast<int>(FuClass::kIntAlu)] >= 4) break;
    }
    const int be = used[static_cast<int>(fu)]++;
    const int fe = static_cast<int>(rng.next_below(kWidth));
    packet.push_back(make(fu, fe, be));
  }
  return packet;
}

void expect_same_result(const ShuffleResult& a, const ShuffleResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.packets.size(), b.packets.size()) << context;
  EXPECT_EQ(a.nops_inserted, b.nops_inserted) << context;
  EXPECT_EQ(a.splits, b.splits) << context;
  EXPECT_EQ(a.forced_places, b.forced_places) << context;
  for (std::size_t p = 0; p < a.packets.size(); ++p) {
    ASSERT_EQ(a.packets[p].size(), b.packets[p].size()) << context;
    for (std::size_t s = 0; s < a.packets[p].size(); ++s) {
      EXPECT_EQ(a.packets[p][s].is_nop, b.packets[p][s].is_nop) << context;
      EXPECT_EQ(a.packets[p][s].input_index, b.packets[p][s].input_index)
          << context;
      EXPECT_EQ(a.packets[p][s].cls, b.packets[p][s].cls) << context;
    }
  }
}

TEST(SharedShuffle, WarmStartMatchesColdComputation) {
  // ~1k random packets, fixed seed. A cold cache computes everything; a
  // second cache warm-started from the first's published entries must return
  // bit-identical results for the same stream while serving (almost) all of
  // it from the warm table.
  const CoreParams params;
  Rng rng(0x5a4ed5EED);
  std::vector<std::vector<ShuffleInst>> packets;
  for (int i = 0; i < 1000; ++i) {
    std::vector<ShuffleInst> p = random_packet(rng, params);
    if (!p.empty()) packets.push_back(std::move(p));
  }

  ShuffleCache cold;
  std::vector<ShuffleResult> cold_results;
  for (const auto& p : packets) {
    bool hit = false;
    cold_results.push_back(cold.shuffle(p, kWidth, &hit));
  }

  SharedShuffleTable table;
  table.merge(cold.local_entries());
  EXPECT_EQ(table.size(), cold.local_entries().size());

  ShuffleCache warm;
  warm.warm_start(table.snapshot());
  EXPECT_TRUE(warm.has_warm_table());
  std::size_t warm_hits = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    bool hit = false;
    bool warm_hit = false;
    const ShuffleResult& r = warm.shuffle(packets[i], kWidth, &hit, &warm_hit);
    expect_same_result(cold_results[i], r, "packet " + std::to_string(i));
    warm_hits += warm_hit;
  }
  // Every cacheable shape was published, so the warm cache never had to
  // compute one locally.
  EXPECT_EQ(warm.local_entries().size(), 0u);
  EXPECT_EQ(warm_hits, packets.size());
}

TEST(SharedShuffle, MergeIsIdempotentAndMonotonic) {
  const CoreParams params;
  Rng rng(0xfeedbeef);
  ShuffleCache cache;
  for (int i = 0; i < 200; ++i) {
    const std::vector<ShuffleInst> p = random_packet(rng, params);
    if (p.empty()) continue;
    bool hit = false;
    cache.shuffle(p, kWidth, &hit);
  }
  SharedShuffleTable table;
  table.merge(cache.local_entries());
  const std::size_t after_first = table.size();
  EXPECT_EQ(after_first, cache.local_entries().size());
  // Re-merging the same entries publishes nothing new — and crucially does
  // not invalidate snapshots handed out earlier.
  const auto snapshot = table.snapshot();
  table.merge(cache.local_entries());
  EXPECT_EQ(table.size(), after_first);
  EXPECT_EQ(snapshot->size(), after_first);
}

TEST(SharedShuffle, ConcurrentMergeOnRetireIsRaceFree) {
  // The campaign pattern under maximum contention: workers snapshot, compute
  // a disjoint-ish local set, merge back, and read through old snapshots
  // while other workers merge. Run under -DBJ_SANITIZE=thread (tier-2) this
  // is the race check for the copy-on-write publish.
  const CoreParams params;
  SharedShuffleTable table;
  constexpr int kWorkers = 4;
  constexpr int kRounds = 25;
  parallel_for(kWorkers, kWorkers, [&](std::size_t worker) {
    Rng rng(0x900d5eed + worker);
    for (int round = 0; round < kRounds; ++round) {
      ShuffleCache cache;
      cache.warm_start(table.snapshot());
      std::size_t computed = 0;
      for (int i = 0; i < 10; ++i) {
        const std::vector<ShuffleInst> p = random_packet(rng, params);
        if (p.empty()) continue;
        bool hit = false;
        const ShuffleResult& r = cache.shuffle(p, kWidth, &hit);
        check_invariants(p, r, kWidth,
                         "worker " + std::to_string(worker) + " round " +
                             std::to_string(round));
        computed += !hit;
      }
      EXPECT_EQ(cache.local_entries().size(), computed);
      table.merge(cache.local_entries());
    }
  });
  EXPECT_GT(table.size(), 0u);

  // Post-merge, the table's results agree with direct computation: the
  // concurrent publishes lost nothing and corrupted nothing.
  ShuffleCache verify;
  verify.warm_start(table.snapshot());
  Rng rng(0x900d5eed);
  for (int i = 0; i < 10; ++i) {
    const std::vector<ShuffleInst> p = random_packet(rng, params);
    if (p.empty()) continue;
    bool hit = false;
    bool warm_hit = false;
    const ShuffleResult& r = verify.shuffle(p, kWidth, &hit, &warm_hit);
    expect_same_result(safe_shuffle(p, kWidth), r,
                       "verify packet " + std::to_string(i));
    EXPECT_TRUE(warm_hit) << "worker 0's first-round packets were merged";
  }
}

TEST(SharedShuffle, PinnedReadersSurviveMergeRetireStorm) {
  // The hazard-pointer protocol's worst case: readers hold snapshots PINNED
  // ACROSS many merges (not the campaign's snapshot-then-release pattern),
  // while a writer thread publishes new versions and retires old ones.
  // Every pinned snapshot must keep reading its exact map version — same
  // address, same size, same entries — no matter how many versions retire
  // behind it; and once the pins drop, reclamation must actually free the
  // backlog. Under -DBJ_SANITIZE=thread this is tier2_tsan_shuffle_merge.
  const CoreParams params;
  SharedShuffleTable table;

  // Seed one version so the first snapshots pin something non-empty.
  {
    Rng rng(0x12345);
    ShuffleCache seed;
    for (int i = 0; i < 20; ++i) {
      const std::vector<ShuffleInst> p = random_packet(rng, params);
      if (p.empty()) continue;
      bool hit = false;
      seed.shuffle(p, kWidth, &hit);
    }
    table.merge(seed.local_entries());
  }

  constexpr int kReaders = 3;
  constexpr int kMerges = 40;
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> threads;
  // Writer: keeps merging fresh entry sets, retiring a version each time.
  threads.emplace_back([&] {
    Rng rng(0xabcdef);
    for (int m = 0; m < kMerges; ++m) {
      ShuffleCache cache;
      for (int i = 0; i < 6; ++i) {
        const std::vector<ShuffleInst> p = random_packet(rng, params);
        if (p.empty()) continue;
        bool hit = false;
        cache.shuffle(p, kWidth, &hit);
      }
      table.merge(cache.local_entries());
      std::this_thread::yield();
    }
    writer_done.store(true, std::memory_order_release);
  });

  for (int rdr = 0; rdr < kReaders; ++rdr) {
    threads.emplace_back([&, rdr] {
      Rng rng(0x5eed + rdr);
      while (!writer_done.load(std::memory_order_acquire)) {
        // Pin a snapshot, remember its identity, and hold it across a few
        // merge opportunities; the view must be frozen the whole time.
        ShuffleSnapshot snap = table.snapshot();
        EXPECT_TRUE(snap.pinned()) << "slots must not be exhausted here";
        const ShuffleMap* addr = snap.get();
        const std::size_t size_at_pin = snap->size();
        for (int hold = 0; hold < 5; ++hold) {
          std::this_thread::yield();
          EXPECT_EQ(snap.get(), addr) << "snapshot address changed mid-pin";
          EXPECT_EQ(snap->size(), size_at_pin)
              << "pinned map mutated by a concurrent merge";
          for (const auto& [key, result] : *snap) {
            EXPECT_GE(result.packets.size(), 1u);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The writer retired versions while readers were pinned; reclamation must
  // have freed everything not pinned at scan time, and a final merge (all
  // pins now released) clears any remainder.
  EXPECT_GT(table.retired(), 0u) << "storm must have retired versions";
  {
    Rng rng(0xf1a1);
    ShuffleCache last;
    for (int i = 0; i < 30; ++i) {
      const std::vector<ShuffleInst> p = random_packet(rng, params);
      if (p.empty()) continue;
      bool hit = false;
      last.shuffle(p, kWidth, &hit);
    }
    table.merge(last.local_entries());
  }
  EXPECT_EQ(table.reclaimed(), table.retired())
      << "with no pins left, every retired version must be freed";
  EXPECT_EQ(table.copy_fallbacks(), 0u)
      << "3 readers can never exhaust 128 hazard slots";

  // And the surviving table still agrees with direct computation.
  ShuffleCache verify;
  verify.warm_start(table.snapshot());
  Rng rng(0xabcdef);
  for (int i = 0; i < 6; ++i) {
    const std::vector<ShuffleInst> p = random_packet(rng, params);
    if (p.empty()) continue;
    bool hit = false;
    const ShuffleResult& r = verify.shuffle(p, kWidth, &hit);
    expect_same_result(safe_shuffle(p, kWidth), r,
                       "post-storm packet " + std::to_string(i));
  }
}

TEST(SharedShuffle, SnapshotFallsBackToCopyWhenAllSlotsPinned) {
  // Pin every hazard slot, then take one more snapshot: it must come back
  // as a private deep copy (not pinned), still readable, and counted.
  SharedShuffleTable table;
  {
    ShuffleCache seed;
    Rng rng(0x777);
    const CoreParams params;
    for (int i = 0; i < 10; ++i) {
      const std::vector<ShuffleInst> p = random_packet(rng, params);
      if (p.empty()) continue;
      bool hit = false;
      seed.shuffle(p, kWidth, &hit);
    }
    table.merge(seed.local_entries());
  }
  const std::size_t expected_size = table.size();

  std::vector<ShuffleSnapshot> pins;
  pins.reserve(SharedShuffleTable::kHazardSlots);
  for (std::size_t i = 0; i < SharedShuffleTable::kHazardSlots; ++i) {
    pins.push_back(table.snapshot());
    ASSERT_TRUE(pins.back().pinned());
  }
  const ShuffleSnapshot overflow = table.snapshot();
  EXPECT_FALSE(overflow.pinned());
  EXPECT_EQ(overflow->size(), expected_size);
  EXPECT_EQ(table.copy_fallbacks(), 1u);

  pins.clear();  // release every pin; the next snapshot pins again
  EXPECT_TRUE(table.snapshot().pinned());
}

}  // namespace
}  // namespace bj
