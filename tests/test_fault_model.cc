// Unit tests for the fault model hooks and coverage accounting.
#include <gtest/gtest.h>

#include "fault/coverage.h"
#include "fault/fault_model.h"

namespace bj {
namespace {

TEST(FaultModel, DecodeHookForcesOnlyItsLane) {
  HardFault f;
  f.site = FaultSite::kFrontendDecoder;
  f.frontend_way = 2;
  f.bit = 5;
  f.stuck_value = true;
  FaultInjector inj(f);
  const std::uint32_t raw = 0;
  EXPECT_EQ(inj.on_decode(raw, 0), raw);
  EXPECT_EQ(inj.on_decode(raw, 1), raw);
  EXPECT_EQ(inj.on_decode(raw, 2), raw | (1u << 5));
  EXPECT_EQ(inj.activations(), 1u);
  // Stuck-at does not activate when the bit already has the stuck value.
  EXPECT_EQ(inj.on_decode(1u << 5, 2), 1u << 5);
  EXPECT_EQ(inj.activations(), 1u);
}

TEST(FaultModel, ExecuteHookTargetsUnitAndWay) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = FuClass::kIntAlu;
  f.backend_way = 1;
  f.bit = 0;
  f.stuck_value = true;
  FaultInjector inj(f);

  DecodedInst add;
  add.op = Opcode::kAdd;
  add.dst = {RegClass::kInt, 1};
  ExecOutcome out;
  out.value = 2;  // bit 0 clear
  inj.on_execute(out, add, FuClass::kIntAlu, 0);
  EXPECT_EQ(out.value, 2u) << "wrong way";
  inj.on_execute(out, add, FuClass::kFpAlu, 1);
  EXPECT_EQ(out.value, 2u) << "wrong unit class";
  inj.on_execute(out, add, FuClass::kIntAlu, 1);
  EXPECT_EQ(out.value, 3u);
}

TEST(FaultModel, BranchComparatorFault) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = FuClass::kIntAlu;
  f.backend_way = 0;
  f.stuck_value = false;  // stuck not-taken
  FaultInjector inj(f);
  DecodedInst beq;
  beq.op = Opcode::kBeq;
  beq.src1 = {RegClass::kInt, 1};
  beq.src2 = {RegClass::kInt, 1};
  ExecOutcome out;
  out.taken = true;
  inj.on_execute(out, beq, FuClass::kIntAlu, 0);
  EXPECT_FALSE(out.taken);
  EXPECT_EQ(inj.activations(), 1u);
}

TEST(FaultModel, MemPortFaultHitsAddressPath) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = FuClass::kMem;
  f.backend_way = 0;
  f.bit = 8;
  f.stuck_value = true;
  FaultInjector inj(f);
  DecodedInst ld;
  ld.op = Opcode::kLd;
  ld.dst = {RegClass::kInt, 1};
  ld.src1 = {RegClass::kInt, 2};
  ExecOutcome out;
  out.mem_addr = 0x1000;
  inj.on_execute(out, ld, FuClass::kMem, 0);
  EXPECT_EQ(out.mem_addr, 0x1100u);
  EXPECT_EQ(out.mem_addr % 8, 0u) << "addresses stay aligned";
}

TEST(FaultModel, UnarmedInjectorIsTransparent) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.on_decode(0xdead, 1), 0xdeadu);
  EXPECT_EQ(inj.on_payload(42, 3), 42);
  EXPECT_EQ(inj.activations(), 0u);
}

TEST(FaultModel, DescribeNamesTheSite) {
  HardFault f;
  f.site = FaultSite::kBackendResult;
  f.fu = FuClass::kFpMul;
  f.backend_way = 1;
  f.bit = 17;
  f.stuck_value = false;
  EXPECT_EQ(f.describe(), "backend-result fp-mul way 1 bit 17 stuck-at-0");
}

TEST(Coverage, WeighsFrontendAndBackendByArea) {
  CoverageAccounting cov;
  cov.add_pair(true, true);
  cov.add_pair(true, false);
  cov.add_pair(false, false);
  cov.add_pair(false, true);
  EXPECT_DOUBLE_EQ(cov.frontend_coverage(), 0.5);
  EXPECT_DOUBLE_EQ(cov.backend_coverage(), 0.5);
  EXPECT_DOUBLE_EQ(cov.total_coverage(), 0.34 * 0.5 + 0.66 * 0.5);
  EXPECT_EQ(cov.pairs(), 4u);
}

TEST(Coverage, SrtSignature) {
  // SRT: zero frontend diversity, ~50% backend -> ~33% total.
  CoverageAccounting cov;
  for (int i = 0; i < 100; ++i) cov.add_pair(false, i % 2 == 0);
  EXPECT_DOUBLE_EQ(cov.frontend_coverage(), 0.0);
  EXPECT_NEAR(cov.total_coverage(), 0.33, 0.01);
}

TEST(Coverage, BlackjackSignature) {
  // BlackJack: full frontend diversity, high backend -> ~0.97 total.
  CoverageAccounting cov;
  for (int i = 0; i < 100; ++i) cov.add_pair(true, i % 20 != 0);
  EXPECT_DOUBLE_EQ(cov.frontend_coverage(), 1.0);
  EXPECT_NEAR(cov.total_coverage(), 0.34 + 0.66 * 0.95, 0.01);
}

TEST(Coverage, CustomAreaModel) {
  CoverageAccounting cov(AreaModel{0.5, 0.5});
  cov.add_pair(true, false);
  EXPECT_DOUBLE_EQ(cov.total_coverage(), 0.5);
}

}  // namespace
}  // namespace bj
