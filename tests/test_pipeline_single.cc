// Single-thread (non-redundant) pipeline correctness: every leading commit
// is checked against the architectural emulator by the built-in oracle, and
// final memory contents must match known-by-construction results.
#include <gtest/gtest.h>

#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

// Runs a halting program to completion in the given mode; asserts the oracle
// never fired and the machine did not wedge.
RunOutcome run_to_halt(const Program& p, Mode mode, Core* out_core = nullptr,
                       const CoreParams& params = {}) {
  Core core(p, mode, params);
  const RunOutcome outcome = core.run(~0ull / 2, 20000000);
  EXPECT_TRUE(outcome.program_finished) << p.name << " did not finish";
  EXPECT_FALSE(outcome.wedged) << p.name << " wedged";
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  (void)out_core;
  return outcome;
}

std::uint64_t final_store_value(const Core& core, std::uint64_t addr) {
  std::uint64_t value = 0;
  for (const auto& s : core.released_stores()) {
    if (s.addr == addr) value = s.data;
  }
  return value;
}

TEST(PipelineSingle, SumToN) {
  const Program p = kernels::sum_to_n(100);
  Core core(p, Mode::kSingle);
  const RunOutcome outcome = core.run(~0ull / 2, 1000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_EQ(final_store_value(core, 0x1000), 5050u);
}

TEST(PipelineSingle, Fibonacci) {
  const Program p = kernels::fibonacci(30);
  Core core(p, Mode::kSingle);
  const RunOutcome outcome = core.run(~0ull / 2, 1000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_EQ(final_store_value(core, 0x1000), 832040u);
}

TEST(PipelineSingle, MemcopyReleasesAllStores) {
  const Program p = kernels::memcopy(64);
  Core core(p, Mode::kSingle);
  const RunOutcome outcome = core.run(~0ull / 2, 1000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_EQ(core.released_stores().size(), 64u);
}

TEST(PipelineSingle, BranchyMatchesEmulator) {
  const Program p = kernels::branchy(500);
  Core core(p, Mode::kSingle);
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  const std::uint64_t even = final_store_value(core, 0x1000);
  const std::uint64_t odd = final_store_value(core, 0x1008);
  EXPECT_EQ(even + odd, 500u);
}

TEST(PipelineSingle, MatmulAgainstOracle) {
  const Program p = kernels::matmul(4);
  run_to_halt(p, Mode::kSingle);
}

TEST(PipelineSingle, FpMixAgainstOracle) {
  const Program p = kernels::fp_mix(32);
  run_to_halt(p, Mode::kSingle);
}

TEST(PipelineSingle, PointerChaseAgainstOracle) {
  const Program p = kernels::pointer_chase(64, 300);
  run_to_halt(p, Mode::kSingle);
}

// Parameterized sweep: every generated workload, bounded, must finish with
// the oracle silent — this is the broad pipeline-vs-emulator equivalence
// property over randomized (but deterministic) programs.
class PipelineWorkloadEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineWorkloadEquivalence, OracleSilent) {
  WorkloadProfile profile = profile_by_name(GetParam());
  profile.iterations = 120;
  const Program p = generate_workload(profile);
  run_to_halt(p, Mode::kSingle);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PipelineWorkloadEquivalence,
    ::testing::Values("equake", "swim", "art", "mgrid", "applu", "fma3d",
                      "gcc", "facerec", "wupwise", "bzip", "apsi", "crafty",
                      "eon", "gzip", "vortex", "sixtrack"));

TEST(PipelineSingle, IpcIsPositiveAndBounded) {
  WorkloadProfile profile = profile_by_name("vortex");
  profile.iterations = 0;
  const Program p = generate_workload(profile);
  Core core(p, Mode::kSingle);
  core.run(20000, 4000000);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  const double ipc = static_cast<double>(core.leading_commits()) /
                     static_cast<double>(core.cycle());
  EXPECT_GT(ipc, 0.1);
  EXPECT_LE(ipc, 4.0);
}

TEST(PipelineSingle, MispredictRecoveryKeepsArchitectureConsistent) {
  // branchy() has data-dependent branches -> many mispredictions; the oracle
  // check proves squash/recovery preserves architectural state.
  const Program p = kernels::branchy(2000);
  Core core(p, Mode::kSingle);
  const RunOutcome outcome = core.run(~0ull / 2, 8000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_GT(core.stats().branch_mispredicts, 100u);
}

TEST(PipelineSingle, SmallStructuresStillCorrect) {
  CoreParams params;
  params.active_list_entries = 16;
  params.lsq_entries = 4;
  params.issue_queue_entries = 8;
  params.fetch_buffer_entries = 4;
  const Program p = kernels::fibonacci(25);
  Core core(p, Mode::kSingle, params);
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
}

}  // namespace
}  // namespace bj
