// Fault autopsy engine tests: lockstep-replay forensics must agree with the
// campaign's own classification (the autopsy explains the stored run, it
// never contradicts it), the divergence/corruption/detection timeline must
// be internally consistent with the provenance chain the campaign already
// records, the service's autopsy.jsonl must follow the store's
// adopt-or-quarantine contract, and the offline report builder must
// regenerate the same coverage aggregates from the stored files that the
// in-memory campaign produces — the "no re-simulation" promise bj_report is
// built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/autopsy.h"
#include "harness/campaign.h"
#include "harness/campaign_store.h"
#include "harness/report.h"
#include "pipeline/params.h"
#include "workload/microkernels.h"

namespace bj {
namespace {

namespace fs = std::filesystem;

Program autopsy_program() { return kernels::pointer_chase(512, 30000); }

CampaignConfig autopsy_config(Mode mode) {
  CampaignConfig config;
  config.mode = mode;
  config.num_faults = 24;
  config.seed = 4242;
  config.budget_commits = 3000;
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

constexpr FaultOutcome kAllOutcomes[] = {
    FaultOutcome::kDetected, FaultOutcome::kDetectedLate,
    FaultOutcome::kWedged,   FaultOutcome::kSdc,
    FaultOutcome::kBenign,   FaultOutcome::kOracleDivergence,
};

TEST(AutopsySelect, NamesRoundTripAndRejectUnknown) {
  for (const AutopsySelect select :
       {AutopsySelect::kEscapes, AutopsySelect::kDetected,
        AutopsySelect::kAll}) {
    AutopsySelect parsed = AutopsySelect::kAll;
    ASSERT_TRUE(parse_autopsy_select(autopsy_select_name(select), &parsed))
        << autopsy_select_name(select);
    EXPECT_EQ(parsed, select);
  }
  AutopsySelect parsed = AutopsySelect::kDetected;
  EXPECT_FALSE(parse_autopsy_select("everything", &parsed));
  EXPECT_EQ(parsed, AutopsySelect::kDetected) << "*out must stay untouched";
}

TEST(AutopsySelect, FilterTruthTable) {
  // Benign runs are never autopsied; escapes = corruption past the checks;
  // detected = a check (or watchdog) fired; all = their union.
  for (const FaultOutcome outcome : kAllOutcomes) {
    const bool escape = outcome == FaultOutcome::kSdc ||
                        outcome == FaultOutcome::kDetectedLate ||
                        outcome == FaultOutcome::kOracleDivergence;
    const bool caught = outcome == FaultOutcome::kDetected ||
                        outcome == FaultOutcome::kDetectedLate ||
                        outcome == FaultOutcome::kWedged;
    EXPECT_EQ(autopsy_selects(AutopsySelect::kEscapes, outcome), escape)
        << fault_outcome_name(outcome);
    EXPECT_EQ(autopsy_selects(AutopsySelect::kDetected, outcome), caught)
        << fault_outcome_name(outcome);
    EXPECT_EQ(autopsy_selects(AutopsySelect::kAll, outcome), escape || caught)
        << fault_outcome_name(outcome);
  }
}

// The core contract: every autopsy re-derives its run's classification, and
// its forensic timeline is consistent with the provenance fields the
// campaign recorded for the same index.
TEST(AutopsyEngine, RecordsAgreeWithTheCampaignTimeline) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);
  const CampaignResult result = run_campaign(program, config);

  AutopsyOptions options;
  options.select = AutopsySelect::kAll;
  options.jobs = 2;
  const AutopsyResult autopsy =
      run_campaign_autopsy(program, config, result, options);
  EXPECT_EQ(autopsy.select, AutopsySelect::kAll);

  // Exactly the selected indices, in ascending order.
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (autopsy_selects(AutopsySelect::kAll, result.runs[i].outcome)) {
      expected.push_back(i);
    }
  }
  ASSERT_FALSE(expected.empty())
      << "the campaign must produce non-benign runs for this test to bite";
  ASSERT_EQ(autopsy.records.size(), expected.size());

  for (std::size_t r = 0; r < autopsy.records.size(); ++r) {
    const AutopsyRecord& rec = autopsy.records[r];
    ASSERT_EQ(rec.index, expected[r]);
    const FaultRun& run = result.runs[rec.index];
    SCOPED_TRACE("fault index " + std::to_string(rec.index));

    // Replay agreement with the stored run.
    EXPECT_EQ(rec.outcome, run.outcome);
    EXPECT_EQ(rec.activated, run.activated);
    if (run.activated) {
      EXPECT_EQ(rec.first_activation_cycle, run.first_activation_cycle);
    }
    EXPECT_EQ(rec.corrupt_store_released, run.corrupted);
    if (run.corrupted) {
      EXPECT_EQ(rec.first_corrupt_store_cycle, run.first_corruption_cycle);
    }
    const bool run_detected = run.outcome == FaultOutcome::kDetected ||
                              run.outcome == FaultOutcome::kDetectedLate ||
                              run.outcome == FaultOutcome::kWedged;
    EXPECT_EQ(rec.detected, run_detected);
    if (run_detected) {
      EXPECT_EQ(rec.detection_cycle, run.detection_cycle);
      EXPECT_EQ(rec.detection_kind, run.detection_kind);
      EXPECT_EQ(rec.detection_latency, run.detection_latency);
    }

    // Internal timeline consistency: nothing diverges before the fault
    // first activates, the chain stays inside the propagation window, and
    // the exact divergent-commit count accounts for the capped chain.
    if (rec.diverged) {
      EXPECT_TRUE(rec.activated);
      EXPECT_GE(rec.first.cycle, rec.first_activation_cycle);
      EXPECT_GE(rec.divergent_commits, 1u + rec.chain.size());
      EXPECT_LE(rec.chain.size(), kAutopsyChainCap);
      if (rec.chain_truncated) {
        EXPECT_GT(rec.divergent_commits, 1u + rec.chain.size());
      }
      std::uint64_t window_end = ~0ull;
      if (rec.corrupt_store_released) {
        window_end = std::min(window_end, rec.first_corrupt_store_cycle);
      }
      if (rec.detected) {
        window_end = std::min(window_end, rec.detection_cycle);
      }
      std::uint64_t prev_seq = rec.first.seq;
      for (const DivergenceEvent& event : rec.chain) {
        EXPECT_GT(event.seq, prev_seq);
        prev_seq = event.seq;
        EXPECT_GE(event.cycle, rec.first.cycle);
        EXPECT_LE(event.cycle, window_end);
      }
    } else {
      EXPECT_TRUE(rec.chain.empty());
      EXPECT_EQ(rec.divergent_commits, 0u);
    }
  }
}

TEST(AutopsyEngine, SelectsPartitionConsistently) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kSrt);
  const CampaignResult result = run_campaign(program, config);

  for (const AutopsySelect select :
       {AutopsySelect::kEscapes, AutopsySelect::kDetected,
        AutopsySelect::kAll}) {
    AutopsyOptions options;
    options.select = select;
    options.jobs = 1;
    const AutopsyResult autopsy =
        run_campaign_autopsy(program, config, result, options);
    std::size_t expected = 0;
    for (const FaultRun& run : result.runs) {
      if (autopsy_selects(select, run.outcome)) ++expected;
    }
    EXPECT_EQ(autopsy.records.size(), expected)
        << autopsy_select_name(select);
    for (const AutopsyRecord& rec : autopsy.records) {
      EXPECT_TRUE(autopsy_selects(select, rec.outcome))
          << autopsy_select_name(select) << " picked a "
          << fault_outcome_name(rec.outcome) << " run";
    }
  }
}

// The single-run entry point (bjsim --fault ... --autopsy) must produce the
// same post-mortem as the campaign path when handed the campaign's own
// injector for that index — it is the same replay with a different caller.
TEST(AutopsyEngine, SingleRunMatchesTheCampaignPath) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);
  const CampaignResult result = run_campaign(program, config);

  const std::vector<HardFault> labels = campaign_fault_labels(config);
  const std::vector<FaultInjector> injectors =
      campaign_fault_injectors(config);
  ASSERT_EQ(labels.size(), result.runs.size());
  ASSERT_EQ(injectors.size(), result.runs.size());

  std::size_t index = result.runs.size();
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (result.runs[i].outcome != FaultOutcome::kBenign) {
      index = i;
      break;
    }
  }
  ASSERT_LT(index, result.runs.size()) << "need one non-benign run";

  const AutopsyRecord via_campaign =
      autopsy_fault_run(program, config, index);
  const AutopsyRecord via_single =
      autopsy_single_run(program, config, injectors[index], labels[index]);

  EXPECT_EQ(via_single.outcome, via_campaign.outcome);
  EXPECT_EQ(via_single.activated, via_campaign.activated);
  EXPECT_EQ(via_single.first_activation_cycle,
            via_campaign.first_activation_cycle);
  EXPECT_EQ(via_single.diverged, via_campaign.diverged);
  if (via_campaign.diverged) {
    EXPECT_EQ(via_single.first.seq, via_campaign.first.seq);
    EXPECT_EQ(via_single.first.cycle, via_campaign.first.cycle);
    EXPECT_EQ(via_single.first.kind, via_campaign.first.kind);
    EXPECT_EQ(via_single.first.expected, via_campaign.first.expected);
    EXPECT_EQ(via_single.first.actual, via_campaign.first.actual);
  }
  EXPECT_EQ(via_single.divergent_commits, via_campaign.divergent_commits);
  EXPECT_EQ(via_single.detected, via_campaign.detected);
  EXPECT_EQ(via_single.detection_cycle, via_campaign.detection_cycle);
  // Only the caller-assigned index may differ (single runs are index 0).
  EXPECT_EQ(via_single.index, 0u);
  EXPECT_EQ(via_campaign.index, index);
}

TEST(AutopsyJsonl, ImageSharesTheCampaignHeaderAndFootsItsRecords) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);
  const CampaignResult result = run_campaign(program, config);
  AutopsyOptions options;
  options.select = AutopsySelect::kEscapes;
  const AutopsyResult autopsy =
      run_campaign_autopsy(program, config, result, options);

  const std::string image = autopsy_jsonl(program, config, autopsy);
  std::vector<std::string> lines;
  std::istringstream in(image);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 2u);

  // First line: byte-identical to the runs.jsonl header — one parser serves
  // both files, and the digest ties the autopsy to its campaign.
  std::ostringstream header;
  write_campaign_jsonl_header(header, program, config);
  EXPECT_EQ(lines.front() + "\n", header.str());
  std::string error;
  EXPECT_TRUE(validate_campaign_jsonl_header(lines.front(), &error)) << error;

  // Footer accounts for every record line between header and footer.
  EXPECT_NE(lines.back().find("\"record\":\"footer\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"complete\":true"), std::string::npos);
  EXPECT_NE(lines.back().find("\"select\":\"escapes\""), std::string::npos);
  EXPECT_NE(lines.back().find(
                "\"autopsies\":" + std::to_string(autopsy.records.size())),
            std::string::npos);
  EXPECT_EQ(lines.size(), autopsy.records.size() + 2);
  for (std::size_t i = 0; i < autopsy.records.size(); ++i) {
    EXPECT_NE(lines[i + 1].find("\"record\":\"autopsy\""), std::string::npos);
    EXPECT_EQ(lines[i + 1],
              canonical_autopsy_record(result.workload, config,
                                       autopsy.records[i]));
  }
}

TEST(AutopsyMetrics, ExportRegistersAggregates) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);
  const CampaignResult result = run_campaign(program, config);
  AutopsyOptions options;
  options.select = AutopsySelect::kAll;
  const AutopsyResult autopsy =
      run_campaign_autopsy(program, config, result, options);
  ASSERT_FALSE(autopsy.records.empty());

  MetricsRegistry registry;
  export_autopsy_metrics(registry, config, autopsy);
  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("campaign.autopsy.select"), std::string::npos);
  EXPECT_NE(json.find("campaign.autopsy.records"), std::string::npos);
  // At least one divergence-kind counter must have materialized (a
  // non-benign replay that never diverges architecturally would mean the
  // lockstep observer is blind).
  EXPECT_NE(json.find("campaign.autopsy.divergence."), std::string::npos);
}

// Store contract: the service writes autopsy.jsonl next to runs.jsonl, a
// rerun adopts the complete file without replaying, and a file that fails
// adoption (here: a different select) is quarantined and regenerated.
TEST(AutopsyService, WritesAdoptsAndQuarantines) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);

  CampaignServiceOptions options;
  options.jobs = 2;
  options.store_root = fresh_dir("autopsy_service").string();
  options.autopsy = true;
  options.autopsy_select = AutopsySelect::kAll;

  const CampaignServiceReport first =
      run_campaign_service(program, config, options);
  ASSERT_FALSE(first.autopsy_path.empty());
  const fs::path path = first.autopsy_path;
  ASSERT_TRUE(fs::exists(path));
  EXPECT_FALSE(first.autopsy_adopted);
  EXPECT_GT(first.autopsy_records, 0u);
  EXPECT_EQ(first.autopsy.records.size(), first.autopsy_records);
  const std::string bytes = read_file(path);

  // Rerun: the campaign resumes complete and the autopsy is adopted as-is.
  const CampaignServiceReport second =
      run_campaign_service(program, config, options);
  EXPECT_TRUE(second.complete_on_entry);
  EXPECT_TRUE(second.autopsy_adopted);
  EXPECT_EQ(second.autopsy_records, first.autopsy_records);
  EXPECT_TRUE(second.autopsy.records.empty())
      << "adoption must skip the replays";
  EXPECT_EQ(read_file(path), bytes);

  // A matching-header file with the wrong select is stale output from a
  // different invocation: quarantine it and regenerate.
  options.autopsy_select = AutopsySelect::kEscapes;
  const CampaignServiceReport third =
      run_campaign_service(program, config, options);
  EXPECT_FALSE(third.autopsy_adopted);
  EXPECT_GE(third.quarantined, 1);
  EXPECT_TRUE(fs::exists(path.string() + ".corrupt"));
  const std::string escapes_bytes = read_file(path);
  EXPECT_NE(escapes_bytes, bytes);
  EXPECT_NE(escapes_bytes.find("\"select\":\"escapes\""), std::string::npos);

  // Truncation (no footer) must also fail adoption on the next pass.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::size_t cut = escapes_bytes.rfind("{\"record\":\"footer\"");
    ASSERT_NE(cut, std::string::npos);
    out << escapes_bytes.substr(0, cut);
  }
  const CampaignServiceReport fourth =
      run_campaign_service(program, config, options);
  EXPECT_FALSE(fourth.autopsy_adopted);
  EXPECT_EQ(read_file(path), escapes_bytes);
}

void expect_reports_agree(const CampaignReport& from_files,
                          const CampaignReport& from_memory) {
  EXPECT_TRUE(from_files.ok())
      << (from_files.errors.empty() ? "" : from_files.errors.front());
  EXPECT_EQ(from_files.runs, from_memory.runs);
  EXPECT_EQ(from_files.autopsies, from_memory.autopsies);

  ASSERT_EQ(from_files.coverage.size(), from_memory.coverage.size());
  for (const auto& [key, cell] : from_memory.coverage) {
    const auto it = from_files.coverage.find(key);
    ASSERT_NE(it, from_files.coverage.end())
        << key.workload << "/" << key.mode << "/" << key.site;
    EXPECT_EQ(it->second.runs, cell.runs);
    EXPECT_EQ(it->second.activated, cell.activated);
    EXPECT_EQ(it->second.detected_of_activated, cell.detected_of_activated);
    EXPECT_EQ(it->second.corrupt_of_activated, cell.corrupt_of_activated);
    EXPECT_EQ(it->second.sdc_of_activated, cell.sdc_of_activated);
    EXPECT_EQ(it->second.outcomes, cell.outcomes);
  }

  ASSERT_EQ(from_files.detection_latency.size(),
            from_memory.detection_latency.size());
  for (const auto& [name, hist] : from_memory.detection_latency) {
    const auto it = from_files.detection_latency.find(name);
    ASSERT_NE(it, from_files.detection_latency.end()) << name;
    EXPECT_EQ(it->second.count(), hist.count()) << name;
    EXPECT_EQ(it->second.sum(), hist.sum()) << name;
    EXPECT_EQ(it->second.min(), hist.min()) << name;
    EXPECT_EQ(it->second.max(), hist.max()) << name;
  }

  ASSERT_EQ(from_files.escapes.size(), from_memory.escapes.size());
  for (std::size_t i = 0; i < from_memory.escapes.size(); ++i) {
    const EscapeRow& a = from_files.escapes[i];
    const EscapeRow& b = from_memory.escapes[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.fault, b.fault);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.corrupt_stores, b.corrupt_stores);
    EXPECT_EQ(a.has_first_corruption, b.has_first_corruption);
    EXPECT_EQ(a.first_corruption_cycle, b.first_corruption_cycle);
    EXPECT_EQ(a.has_autopsy, b.has_autopsy);
    EXPECT_EQ(a.divergence_kind, b.divergence_kind);
    EXPECT_EQ(a.divergence_cycle, b.divergence_cycle);
    EXPECT_EQ(a.divergent_commits, b.divergent_commits);
  }

  EXPECT_EQ(from_files.divergence_kinds, from_memory.divergence_kinds);
  EXPECT_EQ(from_files.divergence_to_detection.count(),
            from_memory.divergence_to_detection.count());
  EXPECT_EQ(from_files.divergence_to_detection.sum(),
            from_memory.divergence_to_detection.sum());
}

// The regeneration promise: bj_report over the stored files must equal the
// aggregation computed directly from the in-memory CampaignResult the store
// was written from — byte round-tripping through JSONL loses nothing the
// report uses, and nothing is re-simulated to get it back.
TEST(AutopsyReport, StoredFilesRegenerateTheInMemoryAggregates) {
  const Program program = autopsy_program();
  const CampaignConfig config = autopsy_config(Mode::kBlackjack);

  CampaignServiceOptions options;
  options.jobs = 2;
  options.store_root = fresh_dir("autopsy_report").string();
  options.autopsy = true;
  options.autopsy_select = AutopsySelect::kAll;
  const CampaignServiceReport service =
      run_campaign_service(program, config, options);
  ASSERT_GT(service.autopsy_records, 0u);

  const CampaignReport from_files = build_campaign_report({service.store_dir});
  EXPECT_EQ(from_files.files, 2u) << "runs.jsonl + autopsy.jsonl";
  const CampaignReport from_memory =
      report_from_result(service.result, config, &service.autopsy);
  expect_reports_agree(from_files, from_memory);

  // Ingesting via the store ROOT (parent of the digest directory) must find
  // the same campaign — the shard-aggregation path.
  const CampaignReport from_root = build_campaign_report({options.store_root});
  expect_reports_agree(from_root, from_memory);

  // Renderers accept the result.
  const std::string json = campaign_report_json(from_files);
  EXPECT_NE(json.find("\"record\":\"bj_report\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\":["), std::string::npos);
  const std::string html = campaign_report_html(from_files);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
}

// Figure-4 shape from storage alone: an exhaustive frontend-decoder
// mini-campaign run under SRT and under BlackJack, reported offline from
// the two stores. BlackJack's space shuffling forces decoder-way diversity
// between the redundant threads, so its detection coverage of activated
// frontend faults must beat SRT's, whose threads can sail through the same
// broken decoder lane — the paper's central Figure-4 contrast, recovered
// without re-simulating anything.
TEST(AutopsyReport, StoredExhaustiveCampaignShowsTheFigure4Contrast) {
  const Program program = autopsy_program();
  const fs::path root = fresh_dir("autopsy_fig4");

  CampaignConfig config;
  config.seed = 99;
  config.budget_commits = 2500;
  config.sites = {FaultSite::kFrontendDecoder};
  config.exhaustive = true;
  const std::uint64_t space = fault_space_size(config.params, config.sites);
  ASSERT_GT(space, 0u);
  // Cap the sampled draw so the test stays cheap on wide decoders; the draw
  // is seed-deterministic and identical for both modes, so the contrast is
  // still like-for-like.
  config.test_count = space > 48 ? 48 : 0;

  std::map<Mode, CampaignResult> results;
  for (const Mode mode : {Mode::kSrt, Mode::kBlackjack}) {
    config.mode = mode;
    CampaignServiceOptions options;
    options.jobs = 2;
    options.store_root = root.string();
    options.autopsy = true;
    options.autopsy_select = AutopsySelect::kAll;
    results[mode] = run_campaign_service(program, config, options).result;
  }

  const CampaignReport report = build_campaign_report({root.string()});
  ASSERT_TRUE(report.ok()) << report.errors.front();
  EXPECT_EQ(report.runs, results[Mode::kSrt].runs.size() +
                             results[Mode::kBlackjack].runs.size());

  const auto cell = [&](Mode mode) {
    const CoverageKey key{program.name, mode_name(mode), "frontend-decoder"};
    const auto it = report.coverage.find(key);
    EXPECT_NE(it, report.coverage.end()) << mode_name(mode);
    return it != report.coverage.end() ? it->second : CoverageCell{};
  };
  const CoverageCell srt = cell(Mode::kSrt);
  const CoverageCell bj = cell(Mode::kBlackjack);
  ASSERT_GT(srt.activated, 0u);
  ASSERT_GT(bj.activated, 0u);

  // The offline cells must agree with the in-memory campaign rates...
  EXPECT_DOUBLE_EQ(srt.detection_coverage(),
                   results[Mode::kSrt].detection_rate_of_activated());
  EXPECT_DOUBLE_EQ(bj.detection_coverage(),
                   results[Mode::kBlackjack].detection_rate_of_activated());
  // ...and reproduce the paper's contrast: BlackJack catches activated
  // frontend hard faults that SRT cannot.
  EXPECT_GT(bj.detection_coverage(), srt.detection_coverage());
}

}  // namespace
}  // namespace bj
