// Campaign persistence + distribution layer tests: the config-digest
// length-prefix collision regression, canonical record round-trips,
// warm-start / kill-and-resume / shard-merge byte-identity, exhaustive
// fault-space enumeration, store fsck, and the Prometheus HTTP tap.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "blackjack/shuffle.h"
#include "common/metrics_http.h"
#include "harness/campaign.h"
#include "harness/campaign_store.h"
#include "workload/microkernels.h"

namespace bj {
namespace {

namespace fs = std::filesystem;

Program service_program() { return kernels::pointer_chase(512, 30000); }

CampaignConfig hard_config() {
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 16;
  config.seed = 77;
  config.budget_commits = 4000;
  return config;
}

CampaignConfig soft_oracle_config() {
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 12;
  config.seed = 99;
  config.budget_commits = 2500;
  config.soft_errors = true;
  config.oracle_check = true;
  return config;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expect_histograms_equal(const std::map<FaultOutcome, Histogram>& a,
                             const std::map<FaultOutcome, Histogram>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [outcome, ha] : a) {
    const auto it = b.find(outcome);
    ASSERT_NE(it, b.end()) << fault_outcome_name(outcome);
    const Histogram& hb = it->second;
    EXPECT_EQ(ha.count(), hb.count());
    EXPECT_EQ(ha.sum(), hb.sum());
    EXPECT_EQ(ha.min(), hb.min());
    EXPECT_EQ(ha.max(), hb.max());
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      EXPECT_EQ(ha.bucket(i), hb.bucket(i)) << "bucket " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Digest bugfix regression.

// Replica of the digest as it mixed before variable-length sequences were
// length-prefixed: config scalars, then the site values, the CoreParams
// fields, the disabled-way masks, and the watchdog — with nothing marking
// where `sites` ends and the parameter block begins.
std::uint64_t unprefixed_digest_replica(const CampaignConfig& config) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(config.mode));
  mix(static_cast<std::uint64_t>(config.num_faults));
  mix(config.seed);
  mix(config.budget_commits);
  mix(config.soft_errors ? 1 : 0);
  mix(config.oracle_check ? 1 : 0);
  for (const FaultSite site : config.sites) {
    mix(static_cast<std::uint64_t>(site));
  }
  const CoreParams& p = config.params;
  const auto mi = [&](int v) { mix(static_cast<std::uint64_t>(v)); };
  mi(p.fetch_width);
  mi(p.issue_width);
  mi(p.commit_width);
  mi(p.active_list_entries);
  mi(p.lsq_entries);
  mi(p.issue_queue_entries);
  mi(p.fetch_buffer_entries);
  mi(p.int_alu_units);
  mi(p.int_mul_units);
  mi(p.fp_alu_units);
  mi(p.fp_mul_units);
  mi(p.mem_ports);
  mi(p.frontend_stages);
  mi(p.slack);
  mi(p.dtq_entries);
  mi(p.store_buffer_entries);
  mi(p.lvq_entries);
  mi(p.boq_entries);
  mi(p.separate_payload_rams ? 1 : 0);
  mi(p.one_packet_per_cycle ? 1 : 0);
  mi(p.packet_serial_dispatch ? 1 : 0);
  mi(p.combine_packets ? 1 : 0);
  for (const std::uint32_t mask : p.disabled_backend_ways) mix(mask);
  mix(p.watchdog_cycles);
  return h;
}

// Replica of how workload identity would hash without length prefixes: the
// name's bytes and the code words concatenate into one undelimited stream,
// so nothing marks where the name ends and the code image begins.
std::uint64_t unprefixed_program_replica(const Program& program) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (const char c : program.name) mix_byte(static_cast<unsigned char>(c));
  for (const std::uint32_t word : program.code) {
    const auto v = static_cast<std::uint64_t>(word);
    for (int b = 0; b < 8; ++b) mix_byte((v >> (8 * b)) & 0xFF);
  }
  return h;
}

TEST(CampaignDigest, LengthPrefixBreaksSequenceBoundaryCollisions) {
  // Slide the first code word across the unmarked name/code boundary: its
  // eight little-endian stream bytes become trailing name characters.  The
  // two programs are genuinely different, but their unprefixed streams are
  // byte-for-byte identical — a real collision class for a digest that
  // concatenates variable-length sequences without length markers.
  Program p1 = service_program();
  ASSERT_FALSE(p1.code.empty());
  Program p2 = p1;
  const auto word = static_cast<std::uint64_t>(p1.code.front());
  p2.code.erase(p2.code.begin());
  for (int b = 0; b < 8; ++b) {
    p2.name.push_back(static_cast<char>((word >> (8 * b)) & 0xFF));
  }
  EXPECT_EQ(unprefixed_program_replica(p1), unprefixed_program_replica(p2));
  // The fixed digest length-prefixes the name and the code image, so the
  // same pair now keys two distinct store entries.
  const CampaignConfig config = hard_config();
  EXPECT_NE(campaign_config_digest(config, p1),
            campaign_config_digest(config, p2));

  // The old config layout also predates exhaustive mode: a sampled and an
  // exhaustive campaign with identical scalars hash identically under the
  // replica, and would have silently shared one store entry.
  CampaignConfig sampled = hard_config();
  CampaignConfig exhaustive = sampled;
  exhaustive.exhaustive = true;
  exhaustive.test_count = 5;
  EXPECT_EQ(unprefixed_digest_replica(sampled),
            unprefixed_digest_replica(exhaustive));
  EXPECT_NE(campaign_config_digest(sampled, p1),
            campaign_config_digest(exhaustive, p1));
}

TEST(CampaignDigest, WorkloadIdentityIsPartOfTheKey) {
  const CampaignConfig config = hard_config();
  const Program p1 = kernels::fibonacci(40);
  Program p2 = p1;
  p2.name = "fibonacci-renamed";
  Program p3 = p1;
  p3.code.push_back(0);
  Program p4 = p1;
  p4.entry += 4;
  const std::uint64_t d1 = campaign_config_digest(config, p1);
  EXPECT_NE(d1, campaign_config_digest(config, p2));
  EXPECT_NE(d1, campaign_config_digest(config, p3));
  EXPECT_NE(d1, campaign_config_digest(config, p4));
  EXPECT_EQ(d1, campaign_config_digest(config, p1));
}

// ---------------------------------------------------------------------------
// Canonical records.

TEST(CanonicalRecords, RoundTripThroughTheSelfVerifyingParser) {
  const Program program = service_program();
  for (const CampaignConfig& config : {hard_config(), soft_oracle_config()}) {
    const std::vector<HardFault> labels = campaign_fault_labels(config);
    const CampaignResult result = run_campaign(program, config);
    ASSERT_EQ(result.runs.size(), labels.size());
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
      std::string line =
          canonical_jsonl_record(program.name, config, i, result.runs[i]);
      ASSERT_FALSE(line.empty());
      line.pop_back();  // parser takes lines without the newline

      std::size_t index = 0;
      FaultRun run;
      ASSERT_TRUE(parse_canonical_record(line, config, labels, program.name,
                                         &index, &run))
          << line;
      EXPECT_EQ(index, i);
      EXPECT_EQ(run.outcome, result.runs[i].outcome);
      EXPECT_EQ(run.activations, result.runs[i].activations);
      EXPECT_EQ(run.detection_latency, result.runs[i].detection_latency);
      EXPECT_EQ(run.oracle_violated, result.runs[i].oracle_violated);
      // Canonical records never carry wall-clock fields.
      EXPECT_EQ(line.find("\"seconds\""), std::string::npos);
    }
  }
}

TEST(FaultOutcomeNames, RoundTripThroughTheParserAndRejectUnknown) {
  // Every enumerator must survive name -> parse; the parser is how stored
  // JSONL is read back, so a missing case silently reclassifies runs.
  const FaultOutcome all[] = {
      FaultOutcome::kDetected, FaultOutcome::kDetectedLate,
      FaultOutcome::kWedged,   FaultOutcome::kSdc,
      FaultOutcome::kBenign,   FaultOutcome::kOracleDivergence,
  };
  for (const FaultOutcome outcome : all) {
    FaultOutcome parsed = FaultOutcome::kBenign;
    ASSERT_TRUE(parse_fault_outcome(fault_outcome_name(outcome), &parsed))
        << fault_outcome_name(outcome);
    EXPECT_EQ(parsed, outcome) << fault_outcome_name(outcome);
  }
  // Unknown strings are tampering: rejected, *out untouched. Case and
  // whitespace variants of real names are just as unknown.
  for (const char* bogus :
       {"", "mystery", "Detected", "detected ", "detected-later", "sdc2"}) {
    FaultOutcome parsed = FaultOutcome::kWedged;
    EXPECT_FALSE(parse_fault_outcome(bogus, &parsed)) << '"' << bogus << '"';
    EXPECT_EQ(parsed, FaultOutcome::kWedged) << '"' << bogus << '"';
  }
}

TEST(CampaignJsonlHeader, ValidatorAcceptsRealHeadersRejectsTampering) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  std::ostringstream os;
  write_campaign_jsonl_header(os, program, config);
  std::string header = os.str();
  ASSERT_FALSE(header.empty());

  std::string error;
  EXPECT_TRUE(validate_campaign_jsonl_header(header, &error)) << error;

  // A schema_version from a different build generation must be rejected
  // loudly, naming the field — never skipped as an unknown line.
  const std::size_t pos = header.find("\"schema_version\":");
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = header;
  tampered[pos + std::string("\"schema_version\":").size()] = '9';
  error.clear();
  EXPECT_FALSE(validate_campaign_jsonl_header(tampered, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;

  // A header with the version field stripped is equally invalid.
  std::string stripped = header;
  const std::size_t comma = stripped.find(',', pos);
  ASSERT_NE(comma, std::string::npos);
  stripped.erase(pos, comma - pos + 1);
  EXPECT_FALSE(validate_campaign_jsonl_header(stripped, nullptr));

  // A run record is not a header, however well-formed.
  const std::string record = canonical_jsonl_record(
      program.name, config, 0, FaultRun{});
  EXPECT_FALSE(validate_campaign_jsonl_header(record, nullptr));
}

TEST(CanonicalRecords, ParserRejectsTamperedRecords) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  const std::vector<HardFault> labels = campaign_fault_labels(config);
  const CampaignResult result = run_campaign(program, config);
  std::string line =
      canonical_jsonl_record(program.name, config, 0, result.runs[0]);
  line.pop_back();

  std::size_t index = 0;
  FaultRun run;
  // A flipped activation count, a truncation, and a foreign workload name
  // must all fail the re-serialization check.
  std::string tampered = line;
  const std::size_t at = tampered.find("\"activations\":");
  ASSERT_NE(at, std::string::npos);
  tampered[at + 14] = tampered[at + 14] == '9' ? '8' : '9';
  EXPECT_FALSE(parse_canonical_record(tampered, config, labels, program.name,
                                      &index, &run));
  EXPECT_FALSE(parse_canonical_record(line.substr(0, line.size() / 2), config,
                                      labels, program.name, &index, &run));
  EXPECT_FALSE(parse_canonical_record(line, config, labels, "other-workload",
                                      &index, &run));
}

TEST(CanonicalRecords, CycleZeroProvenanceIsNotNeverHappened) {
  // A fault that bit on the very first cycle serializes its timestamps as 0.
  // The record must still parse back as activated/corrupted — the field's
  // presence, not its value, carries the boolean — and a genuinely
  // never-activated record must stay distinguishable from it.
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  const std::vector<HardFault> labels = campaign_fault_labels(config);

  FaultRun zero;
  zero.fault = labels[0];
  zero.outcome = FaultOutcome::kSdc;
  zero.activations = 2;
  zero.corrupt_stores_released = 1;
  zero.activated = true;
  zero.first_activation_cycle = 0;  // legitimate cycle-0 activation
  zero.corrupted = true;
  zero.first_corruption_cycle = 0;
  std::string line = canonical_jsonl_record(program.name, config, 0, zero);
  line.pop_back();
  EXPECT_NE(line.find("\"first_activation_cycle\":0"), std::string::npos);
  EXPECT_NE(line.find("\"first_corruption_cycle\":0"), std::string::npos);

  std::size_t index = 0;
  FaultRun parsed;
  ASSERT_TRUE(parse_canonical_record(line, config, labels, program.name,
                                     &index, &parsed))
      << line;
  EXPECT_TRUE(parsed.activated);
  EXPECT_EQ(parsed.first_activation_cycle, 0u);
  EXPECT_TRUE(parsed.corrupted);
  EXPECT_EQ(parsed.first_corruption_cycle, 0u);

  FaultRun never;
  never.fault = labels[0];
  never.outcome = FaultOutcome::kBenign;
  std::string benign = canonical_jsonl_record(program.name, config, 0, never);
  benign.pop_back();
  EXPECT_EQ(benign.find("first_activation_cycle"), std::string::npos);
  EXPECT_EQ(benign.find("first_corruption_cycle"), std::string::npos);
  ASSERT_TRUE(parse_canonical_record(benign, config, labels, program.name,
                                     &index, &parsed));
  EXPECT_FALSE(parsed.activated);
  EXPECT_FALSE(parsed.corrupted);
}

// ---------------------------------------------------------------------------
// Warm starts and resume.

TEST(CampaignService, ColdThenWarmAreIdenticalAndWarmSkipsRegeneration) {
  // memcopy releases a store per copied word, so the cold run provably fills
  // the golden store-trace cache and the warm run provably adopts it.
  const Program program = kernels::memcopy(48);
  const CampaignConfig config = hard_config();
  const fs::path root = fresh_dir("warm_start_store");

  CampaignServiceOptions options;
  options.store_root = root.string();
  options.jobs = 2;
  const CampaignServiceReport cold =
      run_campaign_service(program, config, options);
  EXPECT_FALSE(cold.complete_on_entry);
  EXPECT_EQ(cold.stats.executed_runs, config.num_faults);
  EXPECT_GT(cold.stats.golden_steps, 0u) << "cold run must fill the cache";
  const std::string cold_bytes = read_file(fs::path(cold.store_dir) /
                                           "runs.jsonl");

  const CampaignServiceReport warm =
      run_campaign_service(program, config, options);
  EXPECT_TRUE(warm.complete_on_entry);
  EXPECT_EQ(warm.stats.executed_runs, 0);
  EXPECT_EQ(warm.stats.resumed_runs, config.num_faults);
  // The observable warm-start signal: the golden trace was adopted from the
  // store and the live emulator never executed an instruction.
  EXPECT_EQ(warm.stats.golden_steps, 0u);
  EXPECT_GT(warm.stats.golden_preloaded_stores, 0u);

  EXPECT_EQ(cold.result.totals(), warm.result.totals());
  expect_histograms_equal(cold.stats.detection_latency,
                          warm.stats.detection_latency);
  EXPECT_EQ(cold_bytes, read_file(fs::path(warm.store_dir) / "runs.jsonl"));
}

TEST(CampaignService, BlackjackWarmStartAdoptsTheShuffleTable) {
  const Program program = kernels::fibonacci(60);
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 6;
  config.seed = 5;
  config.budget_commits = 1500;
  const fs::path root = fresh_dir("shuffle_store");

  CampaignServiceOptions options;
  options.store_root = root.string();
  options.jobs = 2;
  const CampaignServiceReport cold =
      run_campaign_service(program, config, options);
  EXPECT_EQ(cold.stats.shuffle_preloaded_entries, 0u);
  EXPECT_TRUE(fs::exists(fs::path(cold.store_dir) / "shuffle.bin"));

  const CampaignServiceReport warm =
      run_campaign_service(program, config, options);
  EXPECT_GT(warm.stats.shuffle_preloaded_entries, 0u);
  EXPECT_EQ(cold.result.totals(), warm.result.totals());
}

TEST(CampaignService, KillAndResumeProducesByteIdenticalOutput) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();

  CampaignServiceOptions options;
  options.jobs = 2;
  options.store_root = fresh_dir("uninterrupted_store").string();
  const CampaignServiceReport full =
      run_campaign_service(program, config, options);
  const std::string full_bytes =
      read_file(fs::path(full.store_dir) / "runs.jsonl");

  // Simulate a kill: rewind the second store's runs.jsonl to a checkpoint
  // holding only the first 5 records (header, no footer).
  options.store_root = fresh_dir("killed_store").string();
  const CampaignServiceReport first_pass =
      run_campaign_service(program, config, options);
  const fs::path killed = fs::path(first_pass.store_dir) / "runs.jsonl";
  {
    std::istringstream in(read_file(killed));
    std::ostringstream checkpoint;
    std::string line;
    for (int kept = 0; std::getline(in, line) && kept < 6; ++kept) {
      checkpoint << line << '\n';  // header + 5 records
    }
    std::ofstream out(killed, std::ios::binary | std::ios::trunc);
    out << checkpoint.str();
  }

  const CampaignServiceReport resumed =
      run_campaign_service(program, config, options);
  EXPECT_FALSE(resumed.complete_on_entry);
  EXPECT_EQ(resumed.stats.resumed_runs, 5);
  EXPECT_EQ(resumed.stats.executed_runs, config.num_faults - 5);
  EXPECT_EQ(full_bytes,
            read_file(fs::path(resumed.store_dir) / "runs.jsonl"));
  EXPECT_EQ(full.result.totals(), resumed.result.totals());
  expect_histograms_equal(full.stats.detection_latency,
                          resumed.stats.detection_latency);
}

TEST(CampaignService, ResumeQuarantinesAForeignConfigurationFile) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  CampaignServiceOptions options;
  options.jobs = 2;
  options.store_root = fresh_dir("foreign_store").string();
  const CampaignServiceReport first =
      run_campaign_service(program, config, options);

  // Overwrite the canonical file with one whose header does not match (a
  // different seed's campaign) — resume must quarantine it, not adopt it.
  CampaignConfig other = config;
  other.seed += 1;
  const fs::path runs = fs::path(first.store_dir) / "runs.jsonl";
  {
    std::ofstream out(runs, std::ios::binary | std::ios::trunc);
    write_campaign_jsonl_header(out, program, other);
  }
  const CampaignServiceReport second =
      run_campaign_service(program, config, options);
  EXPECT_GE(second.quarantined, 1);
  EXPECT_EQ(second.stats.resumed_runs, 0);
  EXPECT_EQ(second.result.totals(), first.result.totals());
  EXPECT_TRUE(fs::exists(fs::path(first.store_dir) / "runs.jsonl.corrupt"));
}

// ---------------------------------------------------------------------------
// Sharding and merge.

void shard_merge_bit_identity(const CampaignConfig& config,
                              const std::string& tag) {
  const Program program = service_program();
  const fs::path root = fresh_dir("shard_store_" + tag);

  CampaignServiceOptions options;
  options.store_root = root.string();
  options.jobs = 2;
  const CampaignServiceReport unsharded =
      run_campaign_service(program, config, options);
  const std::string unsharded_bytes =
      read_file(fs::path(unsharded.store_dir) / "runs.jsonl");

  std::vector<std::string> shard_files;
  for (int i = 1; i <= 4; ++i) {
    CampaignServiceOptions shard_options = options;
    shard_options.shard = ShardSpec{i, 4};
    const CampaignServiceReport shard =
        run_campaign_service(program, config, shard_options);
    shard_files.push_back((fs::path(shard.store_dir) / "runs.jsonl").string());
  }

  const ShardMergeResult merged = merge_campaign_shards(shard_files);
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.runs, static_cast<std::size_t>(config.num_faults));
  EXPECT_EQ(merged.jsonl, unsharded_bytes);
  EXPECT_EQ(merged.totals, unsharded.result.totals());
  expect_histograms_equal(merged.detection_latency,
                          unsharded.stats.detection_latency);
}

TEST(CampaignShards, FourWayMergeIsBitIdenticalHardFaults) {
  shard_merge_bit_identity(hard_config(), "hard");
}

TEST(CampaignShards, FourWayMergeIsBitIdenticalSoftOracle) {
  shard_merge_bit_identity(soft_oracle_config(), "soft");
}

TEST(CampaignShards, MergeRejectsDuplicatesAndIncompleteShards) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  CampaignServiceOptions options;
  options.store_root = fresh_dir("merge_reject_store").string();
  options.jobs = 2;
  options.shard = ShardSpec{1, 2};
  const CampaignServiceReport s1 =
      run_campaign_service(program, config, options);
  const std::string f1 = (fs::path(s1.store_dir) / "runs.jsonl").string();

  // The same shard twice: every index collides.
  const ShardMergeResult dup = merge_campaign_shards({f1, f1});
  EXPECT_FALSE(dup.ok);
  EXPECT_NE(dup.error.find("duplicate"), std::string::npos);

  // One shard alone: the index space has holes.
  const ShardMergeResult holes = merge_campaign_shards({f1});
  EXPECT_FALSE(holes.ok);
  EXPECT_NE(holes.error.find("missing"), std::string::npos);

  // A footer-less (still running / killed) shard is rejected outright.
  std::string text = read_file(f1);
  const std::size_t footer = text.rfind("{\"record\":\"footer\"");
  ASSERT_NE(footer, std::string::npos);
  const fs::path truncated =
      fs::path(options.store_root) / "incomplete.jsonl";
  {
    std::ofstream out(truncated, std::ios::binary);
    out << text.substr(0, footer);
  }
  const ShardMergeResult incomplete =
      merge_campaign_shards({truncated.string()});
  EXPECT_FALSE(incomplete.ok);
  EXPECT_NE(incomplete.error.find("incomplete"), std::string::npos);
}

TEST(CampaignShards, SpecParsingAndPartition) {
  const ShardSpec spec = parse_shard_spec("2/4");
  EXPECT_EQ(spec.index, 2);
  EXPECT_EQ(spec.count, 4);
  EXPECT_TRUE(spec.active());
  EXPECT_THROW(parse_shard_spec("0/4"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("5/4"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("nonsense"), std::runtime_error);
  EXPECT_THROW(parse_shard_spec("3"), std::runtime_error);

  // Disjoint + exhaustive over any index range, by construction.
  for (std::size_t i = 0; i < 1000; ++i) {
    int owners = 0;
    for (int s = 1; s <= 4; ++s) {
      owners += ShardSpec{s, 4}.owns(i) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1) << i;
  }
}

// ---------------------------------------------------------------------------
// Exhaustive fault space.

TEST(ExhaustiveCampaign, EnumerationCoversTheSpaceExactlyOnce) {
  CampaignConfig config;
  config.exhaustive = true;
  CoreParams& p = config.params;

  const std::uint64_t decoder = static_cast<std::uint64_t>(p.fetch_width) *
                                32 * 2;
  // Mem ports enumerate 61 bits, not 64: the injector's 8-byte re-alignment
  // erases address bits 0-2, so counting them would inflate every coverage
  // denominator with guaranteed no-op runs (they used to be enumerated --
  // that was the bug).
  std::uint64_t backend = 0;
  for (int c = 0; c < kNumFuClasses; ++c) {
    const auto cls = static_cast<FuClass>(c);
    const std::uint64_t bits = cls == FuClass::kMem ? 61 : 64;
    backend += static_cast<std::uint64_t>(p.fu_count(cls)) * bits * 2;
  }
  const std::uint64_t payload =
      static_cast<std::uint64_t>(p.issue_queue_entries) * 16 * 2;
  EXPECT_EQ(fault_space_size(p, config.sites), decoder + backend + payload);

  const std::vector<HardFault> labels = campaign_fault_labels(config);
  EXPECT_EQ(labels.size(), decoder + backend + payload);

  // Every combination appears exactly once.
  std::set<std::string> seen;
  for (const HardFault& f : labels) {
    EXPECT_TRUE(seen.insert(f.describe()).second) << f.describe();
  }
}

TEST(ExhaustiveCampaign, SampledDrawsAreSeedDeterministic) {
  CampaignConfig config;
  config.exhaustive = true;
  config.test_count = 25;
  config.seed = 31;
  const std::vector<HardFault> a = campaign_fault_labels(config);
  const std::vector<HardFault> b = campaign_fault_labels(config);
  ASSERT_EQ(a.size(), 25u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].describe(), b[i].describe()) << i;
  }
  config.seed = 32;
  const std::vector<HardFault> c = campaign_fault_labels(config);
  bool any_different = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_different |= a[i].describe() != c[i].describe();
  }
  EXPECT_TRUE(any_different) << "sample must depend on the seed";
}

TEST(ExhaustiveCampaign, RejectsSoftErrors) {
  CampaignConfig config;
  config.exhaustive = true;
  config.soft_errors = true;
  EXPECT_THROW(campaign_fault_labels(config), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Store integrity.

TEST(CampaignStoreFsck, CleanStorePassesCorruptArtifactFails) {
  const Program program = service_program();
  const CampaignConfig config = hard_config();
  CampaignServiceOptions options;
  options.store_root = fresh_dir("fsck_store").string();
  options.jobs = 2;
  const CampaignServiceReport report =
      run_campaign_service(program, config, options);

  std::ostringstream clean;
  EXPECT_TRUE(fsck_campaign_store(options.store_root, clean)) << clean.str();

  // Flip one payload byte in golden.bin: the container checksum must catch
  // it, and the next service run must quarantine + recompute, not adopt.
  const fs::path golden = fs::path(report.store_dir) / "golden.bin";
  {
    std::fstream f(golden,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    const char flipped = '\x5a';
    f.write(&flipped, 1);
  }
  std::ostringstream dirty;
  EXPECT_FALSE(fsck_campaign_store(options.store_root, dirty));
  EXPECT_NE(dirty.str().find("golden.bin"), std::string::npos);

  const CampaignServiceReport recovered =
      run_campaign_service(program, config, options);
  EXPECT_GE(recovered.quarantined, 1);
  EXPECT_EQ(recovered.result.totals(), report.result.totals());
  EXPECT_TRUE(fs::exists(fs::path(report.store_dir) / "golden.bin.corrupt"));

  // The recovery rewrote a valid artifact; only the informational
  // quarantine file remains.
  std::ostringstream after;
  EXPECT_TRUE(fsck_campaign_store(options.store_root, after)) << after.str();
  EXPECT_NE(after.str().find("quarantined"), std::string::npos);
}

TEST(ShuffleTableSerialization, ByteStableRoundTrip) {
  // Compute a few real shuffle results through the cache, round-trip them.
  ShuffleCache cache;
  std::vector<ShuffleInst> packet(4);
  for (int i = 0; i < 4; ++i) {
    packet[i].fu = static_cast<FuClass>(i % kNumFuClasses);
    packet[i].lead_frontend_way = i;
    packet[i].lead_backend_way = 0;
  }
  bool hit = false;
  cache.shuffle(packet, 4, &hit);
  packet.resize(2);
  cache.shuffle(packet, 4, &hit);
  ASSERT_GE(cache.local_entries().size(), 2u);

  const std::string bytes = serialize_shuffle_table(cache.local_entries());
  ShuffleCache::Map decoded;
  ASSERT_TRUE(deserialize_shuffle_table(bytes, &decoded));
  ASSERT_EQ(decoded.size(), cache.local_entries().size());
  for (const auto& [key, result] : cache.local_entries()) {
    const auto it = decoded.find(key);
    ASSERT_NE(it, decoded.end());
    EXPECT_EQ(it->second.nops_inserted, result.nops_inserted);
    EXPECT_EQ(it->second.splits, result.splits);
    ASSERT_EQ(it->second.packets.size(), result.packets.size());
    for (std::size_t pi = 0; pi < result.packets.size(); ++pi) {
      ASSERT_EQ(it->second.packets[pi].size(), result.packets[pi].size());
      for (std::size_t s = 0; s < result.packets[pi].size(); ++s) {
        EXPECT_EQ(it->second.packets[pi][s].is_nop,
                  result.packets[pi][s].is_nop);
        EXPECT_EQ(it->second.packets[pi][s].cls, result.packets[pi][s].cls);
        EXPECT_EQ(it->second.packets[pi][s].input_index,
                  result.packets[pi][s].input_index);
      }
    }
  }

  // Serialization is byte-stable (sorted by key) and rejects truncation.
  EXPECT_EQ(bytes, serialize_shuffle_table(decoded));
  ShuffleCache::Map reject;
  EXPECT_FALSE(
      deserialize_shuffle_table(std::string_view(bytes).substr(
                                    0, bytes.size() - 3),
                                &reject));
  EXPECT_TRUE(reject.empty());
}

// ---------------------------------------------------------------------------
// Prometheus HTTP tap.

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Splits an HTTP/1.1 response and checks the Content-Length header against
// the actual body size — the framing contract every response must keep so
// keep-alive-less scrapers and probes can trust what they read.
void expect_framed(const std::string& response, const std::string& what) {
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos) << what;
  const std::string head = response.substr(0, split);
  const std::string body = response.substr(split + 4);
  const std::size_t cl = head.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos) << what << " has no Content-Length";
  EXPECT_EQ(std::stoul(head.substr(cl + std::string("Content-Length: ").size())),
            body.size())
      << what;
}

TEST(MetricsHttp, ServesProducerTextOnMetricsPathOnly) {
  MetricsHttpServer server(0, [] {
    MetricsRegistry registry;
    registry.counter("campaign.progress.completed", 7);
    std::ostringstream os;
    registry.write_prometheus(os);
    return os.str();
  });
  ASSERT_TRUE(server.ok());
  ASSERT_GT(server.port(), 0);

  const std::string ok = http_get(server.port(), "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("bj_campaign_progress_completed 7"), std::string::npos);

  const std::string missing = http_get(server.port(), "/other");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // Every response — hit or miss — carries an accurate Content-Length.
  expect_framed(ok, "/metrics");
  expect_framed(missing, "/other (404)");
}

TEST(MetricsHttp, HealthzAnswersLivenessWithoutTheProducer) {
  // /healthz is the liveness probe: it must answer while the serve loop is
  // up, WITHOUT invoking the producer — a wedged campaign callback should
  // fail the scrape, never the liveness check that decides restarts.
  int producer_calls = 0;
  MetricsHttpServer server(0, [&producer_calls] {
    ++producer_calls;
    return std::string("metrics\n");
  });
  ASSERT_TRUE(server.ok());

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);
  EXPECT_EQ(producer_calls, 0);
  expect_framed(health, "/healthz");

  // The scrape path still works and does call the producer.
  const std::string ok = http_get(server.port(), "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_EQ(producer_calls, 1);
}

TEST(MetricsHttp, SurvivesMidScrapeDisconnect) {
  // A scraper that vanishes mid-response must not take the process down
  // (write_all used to ::write() without MSG_NOSIGNAL, so the second write
  // into a reset connection raised SIGPIPE) and must not wedge the serve
  // loop. The body is several MB so the response cannot fit in the socket
  // buffers: write_all is still mid-send when the client resets.
  const std::string big(4u << 20, 'x');
  MetricsHttpServer server(0, [&big] { return big; });
  ASSERT_TRUE(server.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: l\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // Abortive close: SO_LINGER(0) sends RST, so the server's in-flight sends
  // fail immediately instead of draining into a dead connection.
  const linger reset{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &reset, sizeof(reset));
  ::close(fd);

  // The follow-up scrape proves the serve loop survived and still answers,
  // with intact framing even for the multi-MB body; the liveness probe must
  // keep answering through the same episode.
  const std::string ok = http_get(server.port(), "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find(big), std::string::npos);
  expect_framed(ok, "/metrics after abortive close");
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  expect_framed(health, "/healthz after abortive close");
}

}  // namespace
}  // namespace bj
