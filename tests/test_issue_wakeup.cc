// Regression tests for the producer-indexed wakeup-list select
// (core_issue.cc): the store-data producer-issue event, waiter lifetime
// across squashes that shrink the LSQ, and the legacy-scan differential
// check. Every run here enables CoreParams::check_issue_equivalence, so a
// single cycle where the ready pool and the legacy full-IQ scan disagree
// aborts the process (BJ_CHECK) and fails the test.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

CoreParams checked_params() {
  CoreParams params;
  params.check_issue_equivalence = true;
  return params;
}

void run_checked(const Program& p, Mode mode) {
  Core core(p, mode, checked_params());
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  EXPECT_TRUE(outcome.program_finished) << p.name << " did not finish";
  EXPECT_FALSE(outcome.wedged) << p.name << " wedged";
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_TRUE(core.detections().empty());
}

// Satellite bugfix regression: a store whose data producer issues many
// cycles after the store dispatched. The store parks on the producer's
// ready_at == ~0ull sentinel; only the producer's *issue* event (write_dst)
// clears it. If wakeup lists keyed these waiters on writeback instead, the
// store would issue a full unpipelined-divide latency late every iteration —
// the per-cycle differential check catches the very first such cycle.
TEST(IssueWakeup, StoreDataProducerIssuesManyCyclesLate) {
  const Program p = assemble(R"(
      li   r1, 0x1000
      li   r2, 9973
      li   r5, 7
      li   r3, 0
      li   r4, 40
  loop:
      div  r6, r2, r5      ; 20-cycle unpipelined
      div  r6, r6, r5      ; chained: issues ~20 cycles into the iteration
      div  r6, r6, r5      ; chained again: issues ~40 cycles in
      st   r6, [r1]        ; dispatches immediately; data producer unissued
      ld   r7, [r1]        ; forwards from the store once it resolves
      add  r2, r2, r7
      addi r2, r2, 13
      addi r3, r3, 1
      blt  r3, r4, loop
      st   r2, [r1 + 8]
      halt
  )", "store-data-late");
  run_checked(p, Mode::kSingle);
  run_checked(p, Mode::kBlackjack);
}

// Converse lifetime case: the data producer issued, completed, and retired
// long before the store even dispatches. The ready_at sentinel was cleared
// ages ago, so the store must NOT park on the producer's register — there is
// no future issue or writeback event on it, and an unconditional subscribe
// would strand the store forever (wedge).
TEST(IssueWakeup, StoreDataProducerRetiredLongBeforeStoreDispatches) {
  const Program p = assemble(R"(
      li   r1, 0x1000
      li   r6, 4242        ; store data, final long before the store
      li   r3, 0
      li   r4, 200
  warm:
      addi r3, r3, 1       ; long busy loop between producer and store
      blt  r3, r4, warm
      st   r6, [r1]
      ld   r7, [r1]
      st   r7, [r1 + 8]
      halt
  )", "store-data-early");
  run_checked(p, Mode::kSingle);
  run_checked(p, Mode::kSrt);
}

// Satellite bugfix regression: squashes that shrink ctx.lsq_stores while
// loads are parked on (or pooled from) the LSQ-address waiter list. The
// branch condition and the guarded store's address both hang off 20-cycle
// rem chains, so the branch resolves long after younger stores and loads
// entered the machine: each mispredict pops stores mid-tick between the
// wakeup phase (writeback/commit) and select (issue), and the ready-prefix
// cache must be re-clamped at every such mutation. The BJ_CHECK inside
// lsq_older_stores_ready() aborts on any prefix overrun; the differential
// check aborts on any select divergence.
TEST(IssueWakeup, SquashShrinksLsqBetweenWakeupAndSelect) {
  const Program p = assemble(R"(
      li   r1, 0x2000
      li   r2, 7919        ; LCG state
      li   r5, 75
      li   r6, 8191
      li   r7, 2
      li   r3, 0
      li   r4, 150
      li   r11, 0
  loop:
      mul  r2, r2, r5
      rem  r2, r2, r6      ; 20-cycle unpipelined; feeds branch and address
      rem  r8, r2, r7      ; parity: data-dependent branch direction
      add  r9, r1, r8      ; guarded store's address (slow chain)
      bne  r8, r0, skip    ; frequently mispredicted
      st   r2, [r9 + 8]    ; squashed on about half the mispredicts
  skip:
      st   r3, [r1]
      ld   r10, [r1]       ; disambiguates against the slow older store
      add  r11, r11, r10
      addi r3, r3, 1
      blt  r3, r4, loop
      st   r11, [r1 + 16]
      halt
  )", "lsq-shrink");
  run_checked(p, Mode::kSingle);
  run_checked(p, Mode::kBlackjack);
  run_checked(p, Mode::kSrt);
}

// The wakeup counters move in wakeup-list builds and stay zero under
// BJ_LEGACY_SCAN (the legacy scan maintains no waiter lists), and
// reset_stats() clears both.
TEST(IssueWakeup, WakeupCountersTrackSelectImplementation) {
  const Program program = generate_workload(profile_by_name("gzip"));
  Core core(program, Mode::kBlackjack, checked_params());
  core.run(8000, 2000000);  // workloads never halt; run a commit budget
  EXPECT_FALSE(core.wedged());
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  if constexpr (kUseWakeupLists) {
    EXPECT_GT(core.stats().wakeup_events, 0u);
    EXPECT_GT(core.stats().select_pool_peak, 0u);
  } else {
    EXPECT_EQ(core.stats().wakeup_events, 0u);
    EXPECT_EQ(core.stats().select_pool_peak, 0u);
  }
  core.reset_stats();
  EXPECT_EQ(core.stats().wakeup_events, 0u);
  EXPECT_EQ(core.stats().select_pool_peak, 0u);
}

}  // namespace
}  // namespace bj
