// Tests for the architectural emulator using microkernels with
// known-by-construction results.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "arch/emulator.h"
#include "isa/builder.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

TEST(Emulator, SumToN) {
  const Program p = kernels::sum_to_n(100);
  Emulator emu(p);
  emu.run(100000);
  EXPECT_TRUE(emu.halted());
  EXPECT_EQ(emu.memory().load(0x1000), 5050u);
}

TEST(Emulator, Fibonacci) {
  const Program p = kernels::fibonacci(30);
  Emulator emu(p);
  emu.run(1000000);
  EXPECT_TRUE(emu.halted());
  EXPECT_EQ(emu.memory().load(0x1000), 832040u);
}

TEST(Emulator, Memcopy) {
  const Program p = kernels::memcopy(64);
  Emulator emu(p);
  emu.run(100000);
  EXPECT_TRUE(emu.halted());
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(emu.memory().load(0x200000 + i * 8),
              emu.memory().load(0x100000 + i * 8));
  }
}

TEST(Emulator, PointerChaseStaysInCycle) {
  const Program p = kernels::pointer_chase(32, 500);
  Emulator emu(p);
  emu.run(100000);
  EXPECT_TRUE(emu.halted());
  const std::uint64_t final_ptr = emu.memory().load(0x1000);
  EXPECT_GE(final_ptr, 0x100000u);
  EXPECT_LT(final_ptr, 0x100000u + 32 * 64);
  EXPECT_EQ(final_ptr % 64, 0u);
}

TEST(Emulator, MatmulMatchesReference) {
  constexpr std::uint64_t kDim = 4;
  const Program p = kernels::matmul(kDim);
  Emulator emu(p);
  emu.run(1000000);
  ASSERT_TRUE(emu.halted());
  // Compute the reference product from the program's own data image.
  double a[kDim][kDim], bm[kDim][kDim];
  for (const auto& [addr, bits] : p.data) {
    if (addr >= 0x10000 && addr < 0x10000 + kDim * kDim * 8) {
      const std::uint64_t i = (addr - 0x10000) / 8;
      a[i / kDim][i % kDim] = std::bit_cast<double>(bits);
    } else if (addr >= 0x30000 && addr < 0x30000 + kDim * kDim * 8) {
      const std::uint64_t i = (addr - 0x30000) / 8;
      bm[i / kDim][i % kDim] = std::bit_cast<double>(bits);
    }
  }
  for (std::uint64_t i = 0; i < kDim; ++i) {
    for (std::uint64_t j = 0; j < kDim; ++j) {
      double acc = 0.0;
      for (std::uint64_t k = 0; k < kDim; ++k) acc += a[i][k] * bm[k][j];
      const double got = std::bit_cast<double>(
          emu.memory().load(0x50000 + (i * kDim + j) * 8));
      EXPECT_DOUBLE_EQ(got, acc) << "C[" << i << "][" << j << "]";
    }
  }
}

TEST(Emulator, BranchyCountsParities) {
  const Program p = kernels::branchy(1000);
  Emulator emu(p);
  emu.run(1000000);
  ASSERT_TRUE(emu.halted());
  const std::uint64_t even = emu.memory().load(0x1000);
  const std::uint64_t odd = emu.memory().load(0x1008);
  EXPECT_EQ(even + odd, 1000u);
  EXPECT_GT(even, 300u);  // roughly balanced
  EXPECT_GT(odd, 300u);
}

TEST(Emulator, FpMixProducesFiniteResult) {
  const Program p = kernels::fp_mix(64);
  Emulator emu(p);
  emu.run(1000000);
  ASSERT_TRUE(emu.halted());
  const double result = std::bit_cast<double>(emu.memory().load(0x1000));
  EXPECT_TRUE(std::isfinite(result));
  EXPECT_GT(result, 0.0);
}

TEST(Emulator, GeneratedWorkloadsRunBounded) {
  for (const WorkloadProfile& base : spec2000_profiles()) {
    WorkloadProfile p = base;
    p.iterations = 50;  // bounded variant
    const Program prog = generate_workload(p);
    Emulator emu(prog);
    const std::uint64_t executed = emu.run(2000000);
    EXPECT_TRUE(emu.halted()) << p.name << " did not halt";
    EXPECT_GT(executed, 50u * static_cast<std::uint64_t>(p.body_ops) / 2)
        << p.name;
  }
}

TEST(Emulator, GeneratedWorkloadsAreDeterministic) {
  WorkloadProfile p = profile_by_name("gcc");
  p.iterations = 20;
  const Program a = generate_workload(p);
  const Program b = generate_workload(p);
  EXPECT_EQ(a.code, b.code);
  Emulator ea(a), eb(b);
  ea.run(1000000);
  eb.run(1000000);
  EXPECT_EQ(ea.retired(), eb.retired());
  for (int r = 1; r < kNumIntRegs; ++r) {
    EXPECT_EQ(ea.state().int_regs[r], eb.state().int_regs[r]);
  }
}

TEST(Emulator, ZeroRegisterStaysZero) {
  ProgramBuilder b("r0");
  b.addi(0, 0, 42);
  b.li(1, 0x1000);
  b.st(0, 1, 0);
  b.halt();
  Emulator emu(b.build());
  emu.run(100);
  EXPECT_EQ(emu.memory().load(0x1000), 0u);
}


TEST(Emulator, QuicksortSortsAndVerifies) {
  const Program p = kernels::quicksort(64);
  Emulator emu(p);
  emu.run(4000000);
  ASSERT_TRUE(emu.halted());
  EXPECT_EQ(emu.memory().load(0x1000), 1u) << "array must end up sorted";
  std::uint64_t prev = emu.memory().load(0x100000);
  for (std::uint64_t i = 1; i < 64; ++i) {
    const std::uint64_t cur = emu.memory().load(0x100000 + i * 8);
    EXPECT_LE(prev, cur) << "element " << i;
    prev = cur;
  }
}

}  // namespace
}  // namespace bj
