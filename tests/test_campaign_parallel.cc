// Tests for the parallel campaign engine: the worker pool, the golden
// store-trace cache, and the observability layer. The engine's contract is
// that a campaign's result is a pure function of (program, config) — the
// jobs count and scheduling order must never show through. These tests are
// also the payload of the tier-2 ThreadSanitizer run (see tests/CMakeLists).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blackjack/shuffle.h"
#include "harness/campaign.h"
#include "harness/diagnosis.h"
#include "harness/worker_pool.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {
namespace {

Program campaign_program() {
  WorkloadProfile p = profile_by_name("eon");
  p.iterations = 0;  // endless; the commit budget bounds each run
  return generate_workload(p);
}

void expect_same_runs(const CampaignResult& a, const CampaignResult& b,
                      const char* what) {
  ASSERT_EQ(a.runs.size(), b.runs.size()) << what;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const FaultRun& x = a.runs[i];
    const FaultRun& y = b.runs[i];
    EXPECT_EQ(x.fault.describe(), y.fault.describe()) << what << " run " << i;
    EXPECT_EQ(x.outcome, y.outcome) << what << " run " << i;
    EXPECT_EQ(x.activations, y.activations) << what << " run " << i;
    EXPECT_EQ(x.detection_cycle, y.detection_cycle) << what << " run " << i;
    EXPECT_EQ(x.detection_kind, y.detection_kind) << what << " run " << i;
    EXPECT_EQ(x.corrupt_stores_released, y.corrupt_stores_released)
        << what << " run " << i;
  }
}

CampaignConfig hard_config() {
  CampaignConfig config;
  config.mode = Mode::kBlackjack;
  config.num_faults = 12;
  config.seed = 90125;
  config.budget_commits = 3000;
  config.sites = {FaultSite::kFrontendDecoder, FaultSite::kBackendResult};
  return config;
}

CampaignConfig soft_config() {
  CampaignConfig config;
  config.mode = Mode::kSrt;
  config.num_faults = 10;
  config.seed = 555;
  config.budget_commits = 3000;
  config.soft_errors = true;
  return config;
}

TEST(CampaignParallel, HardFaultRunsAreIdenticalAcrossJobCounts) {
  const Program p = campaign_program();
  const CampaignConfig config = hard_config();

  const CampaignResult reference = run_campaign_reference(p, config);
  const CampaignResult serial = run_campaign(p, config);
  ParallelCampaignOptions four;
  four.jobs = 4;
  const CampaignResult parallel = run_campaign_parallel(p, config, four);

  // The cache must not change classification relative to the per-run
  // emulator replay, and the jobs count must not change anything at all.
  expect_same_runs(reference, serial, "reference vs serial");
  expect_same_runs(serial, parallel, "jobs=1 vs jobs=4");

  // The comparison is only meaningful if the campaign exercised faults.
  int activated = 0;
  for (const FaultRun& run : parallel.runs) activated += run.activations > 0;
  EXPECT_GT(activated, 3);
}

TEST(CampaignParallel, SoftErrorRunsAreIdenticalAcrossJobCounts) {
  const Program p = campaign_program();
  const CampaignConfig config = soft_config();

  const CampaignResult reference = run_campaign_reference(p, config);
  const CampaignResult serial = run_campaign(p, config);
  ParallelCampaignOptions four;
  four.jobs = 4;
  const CampaignResult parallel = run_campaign_parallel(p, config, four);

  expect_same_runs(reference, serial, "reference vs serial (soft)");
  expect_same_runs(serial, parallel, "jobs=1 vs jobs=4 (soft)");
}

TEST(CampaignParallel, SmallBudgetSoftCampaignStillActivates) {
  // Regression: the transient trigger used to be drawn from
  // 10000 + [0, budget_commits), so with a small budget every trigger fell
  // past the end of the run and the campaign reported nothing but benign
  // runs. The trigger window now scales with the mode's execution budget
  // and is clamped inside the run.
  const Program p = campaign_program();
  CampaignConfig config;
  config.num_faults = 8;
  config.seed = 20070625;
  config.budget_commits = 4000;  // well below the old fixed 10000 offset
  config.soft_errors = true;

  for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
    config.mode = mode;
    const CampaignResult result = run_campaign(p, config);
    std::uint64_t activations = 0;
    for (const FaultRun& run : result.runs) activations += run.activations;
    EXPECT_GT(activations, 0u)
        << mode_name(mode)
        << ": every trigger should land inside the run window";
  }
}

TEST(CampaignParallel, CountAgreesWithTotals) {
  const Program p = campaign_program();
  const CampaignResult result = run_campaign(p, hard_config());
  const auto totals = result.totals();
  int sum = 0;
  for (FaultOutcome outcome :
       {FaultOutcome::kDetected, FaultOutcome::kDetectedLate,
        FaultOutcome::kWedged, FaultOutcome::kSdc, FaultOutcome::kBenign}) {
    const auto it = totals.find(outcome);
    EXPECT_EQ(result.count(outcome), it == totals.end() ? 0 : it->second);
    sum += result.count(outcome);
  }
  EXPECT_EQ(sum, static_cast<int>(result.runs.size()));
}

TEST(CampaignParallel, ObservabilityStreamsRecordsAndProgress) {
  const Program p = campaign_program();
  const CampaignConfig config = soft_config();

  std::ostringstream jsonl;
  std::atomic<int> calls{0};
  int last_completed = 0;
  ParallelCampaignOptions options;
  options.jobs = 2;
  options.report_batch = 1;  // per-run streaming: one progress call per run
  options.jsonl = &jsonl;
  options.progress = [&](const CampaignProgress& progress) {
    ++calls;
    last_completed = progress.completed;  // serialized by the engine
    EXPECT_EQ(progress.total, config.num_faults);
    EXPECT_GE(progress.elapsed_seconds, 0.0);
  };
  CampaignStats stats;
  const CampaignResult result =
      run_campaign_parallel(p, config, options, &stats);

  EXPECT_EQ(calls.load(), config.num_faults);
  EXPECT_EQ(last_completed, config.num_faults);
  EXPECT_EQ(result.runs.size(), static_cast<std::size_t>(config.num_faults));

  // One leading header record, then one JSON record per run, each with the
  // core fields.
  int lines = 0;
  int headers = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"record\":\"header\"") != std::string::npos) {
      ++headers;
      EXPECT_EQ(lines + headers, 1) << "header must be the first record";
      EXPECT_NE(line.find("\"schema_version\":"), std::string::npos);
      EXPECT_NE(line.find("\"config_digest\":"), std::string::npos);
      continue;
    }
    ++lines;
    EXPECT_NE(line.find("\"outcome\":"), std::string::npos);
    EXPECT_NE(line.find("\"index\":"), std::string::npos);
    EXPECT_NE(line.find("\"workload\":\"eon\""), std::string::npos);
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(lines, config.num_faults);

  EXPECT_EQ(stats.jobs, 2);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.serial_estimate_seconds, 0.0);
  EXPECT_GT(stats.runs_per_second, 0.0);
}

// JSONL lines with the wall-clock-dependent "seconds" field removed, sorted
// by their embedded fault index — the canonical form in which batched and
// unbatched output must agree exactly.
std::vector<std::string> canonical_jsonl(const std::string& raw) {
  std::vector<std::pair<long, std::string>> keyed;
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"record\":\"header\"") != std::string::npos) continue;
    const auto sec = line.find(",\"seconds\":");
    if (sec != std::string::npos) {
      line.erase(sec, line.find('}', sec) - sec);
    }
    const auto idx = line.find("\"index\":");
    EXPECT_NE(idx, std::string::npos) << line;
    keyed.emplace_back(std::stol(line.substr(idx + 8)), line);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> lines;
  for (auto& [index, text] : keyed) lines.push_back(std::move(text));
  return lines;
}

TEST(CampaignParallel, BatchedReportingPreservesRecordsAndOrder) {
  const Program p = campaign_program();
  const CampaignConfig config = hard_config();

  std::ostringstream unbatched_jsonl;
  ParallelCampaignOptions unbatched;
  unbatched.jobs = 2;
  unbatched.report_batch = 1;
  unbatched.jsonl = &unbatched_jsonl;
  run_campaign_parallel(p, config, unbatched);

  std::ostringstream batched_jsonl;
  std::atomic<int> progress_calls{0};
  int last_completed = 0;
  ParallelCampaignOptions batched;
  batched.jobs = 2;
  batched.report_batch = 5;  // does not divide num_faults: partial flush
  batched.jsonl = &batched_jsonl;
  batched.progress = [&](const CampaignProgress& progress) {
    ++progress_calls;
    last_completed = progress.completed;
  };
  run_campaign_parallel(p, config, batched);

  // Batching changes when records reach the sink, never what gets written:
  // same record count, and sorted by fault index the records are identical
  // byte-for-byte once the timing field is stripped.
  const auto a = canonical_jsonl(unbatched_jsonl.str());
  const auto b = canonical_jsonl(batched_jsonl.str());
  ASSERT_EQ(a.size(), static_cast<std::size_t>(config.num_faults));
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "record " << i;
  }

  // Fewer progress calls than runs (that is the point of batching), but the
  // final drain still reports everything completed.
  EXPECT_GT(progress_calls.load(), 0);
  EXPECT_LT(progress_calls.load(), config.num_faults);
  EXPECT_EQ(last_completed, config.num_faults);
}

TEST(CampaignParallel, SlowProgressCallbackDoesNotStallWorkerFlushes) {
  // Regression for the flush-under-lock bug: the progress callback used to
  // run while holding the report mutex, so one slow observer serialized
  // every worker's flush (and the checkpoint hook) behind it. Now the
  // callback runs outside the lock; the witness is an on_flush invocation
  // (which always holds the report lock) landing while a callback is
  // mid-sleep — an interleaving the old code made impossible.
  const Program p = campaign_program();
  const CampaignConfig config = hard_config();

  std::atomic<bool> in_callback{false};
  std::atomic<bool> flushed_during_callback{false};
  std::atomic<int> calls{0};
  std::atomic<bool> reentered{false};
  int last_completed = 0;

  ParallelCampaignOptions options;
  options.jobs = 4;
  options.report_batch = 1;  // flush (and deliver) after every run
  options.progress = [&](const CampaignProgress& progress) {
    if (in_callback.exchange(true)) reentered.store(true);
    ++calls;
    last_completed = progress.completed;  // still serialized, still in order
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    in_callback.store(false);
  };
  options.on_flush =
      [&](const std::vector<std::pair<std::size_t, FaultRun>>&) {
        if (in_callback.load()) flushed_during_callback.store(true);
      };
  const CampaignResult result = run_campaign_parallel(p, config, options);

  EXPECT_EQ(result.runs.size(), static_cast<std::size_t>(config.num_faults));
  EXPECT_EQ(calls.load(), config.num_faults);
  EXPECT_EQ(last_completed, config.num_faults);
  EXPECT_FALSE(reentered.load()) << "callbacks must stay serialized";
  EXPECT_TRUE(flushed_during_callback.load())
      << "a worker must be able to flush while a callback sleeps — the "
         "callback is being invoked under the report lock again";
}

TEST(CampaignParallel, SharedShuffleTableWarmsAcrossRuns) {
  // In blackjack mode the campaign workers share computed shuffle results.
  // Sharing is pure memoization: hard_config()'s classifications are pinned
  // against the unshared reference path by the tests above; here we pin that
  // the table actually accumulates entries (the speedup is real, not a
  // silently disconnected code path).
  const Program p = campaign_program();
  const CampaignConfig config = hard_config();
  ASSERT_EQ(config.mode, Mode::kBlackjack);

  SharedShuffleTable table;
  EXPECT_EQ(table.size(), 0u);
  std::vector<HardFault> faults;
  std::vector<FaultInjector> injectors;
  for (const HardFault& f :
       generate_faults(config.params, 2, config.seed, config.sites)) {
    faults.push_back(f);
  }
  // Two cores run back-to-back against the table: the second must start warm.
  for (int i = 0; i < 2; ++i) {
    FaultInjector injector(faults[static_cast<std::size_t>(i)]);
    Core core(p, config.mode, config.params, &injector);
    core.warm_start_shuffle(table.snapshot());
    core.run(config.budget_commits, config.budget_commits * 64);
    table.merge(core.shuffle_cache().local_entries());
    if (i == 0) {
      EXPECT_FALSE(core.stats().shuffle_cache_warm_hits > 0)
          << "first run has an empty warm table";
      EXPECT_GT(table.size(), 0u) << "first run must publish entries";
    } else {
      EXPECT_GT(core.stats().shuffle_cache_warm_hits, 0u)
          << "second run should hit the warm table";
    }
  }
}

TEST(CampaignParallel, DiagnosisIsIdenticalAcrossJobCounts) {
  const Program p = campaign_program();
  HardFault fault;
  fault.site = FaultSite::kBackendResult;
  fault.fu = FuClass::kIntAlu;
  fault.backend_way = 2;
  fault.bit = 3;

  const DiagnosisResult serial =
      diagnose_backend_fault(p, Mode::kBlackjack, CoreParams{}, fault, 4000, 1);
  const DiagnosisResult parallel =
      diagnose_backend_fault(p, Mode::kBlackjack, CoreParams{}, fault, 4000, 4);

  EXPECT_EQ(serial.baseline_detected, parallel.baseline_detected);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].fu, parallel.trials[i].fu);
    EXPECT_EQ(serial.trials[i].way, parallel.trials[i].way);
    EXPECT_EQ(serial.trials[i].detected, parallel.trials[i].detected);
  }
  EXPECT_EQ(serial.suspect.has_value(), parallel.suspect.has_value());
  if (serial.suspect && parallel.suspect) {
    EXPECT_EQ(*serial.suspect, *parallel.suspect);
  }
}

TEST(WorkerPool, CoversEveryIndexExactlyOnceAndPropagatesErrors) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  parallel_for(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }

  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_GE(resolve_jobs(0), 1);

  EXPECT_THROW(
      parallel_for(4, 64,
                   [&](std::size_t i) {
                     if (i == 40) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace bj
