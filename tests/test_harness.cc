// Tests for the harness layer (driver, determinism), the rename/regfile
// helpers, and the common utilities (table formatting, env knobs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/env.h"
#include "common/flags.h"
#include "common/table.h"
#include "harness/driver.h"
#include "pipeline/regfile.h"
#include "workload/profile.h"

namespace bj {
namespace {

TEST(Driver, SimulationIsDeterministic) {
  const WorkloadProfile& profile = profile_by_name("crafty");
  SimRequest req;
  req.mode = Mode::kBlackjack;
  req.warmup_commits = 5000;
  req.budget_commits = 15000;
  const SimResult a = run_workload(profile, req);
  const SimResult b = run_workload(profile, req);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_DOUBLE_EQ(a.coverage_total, b.coverage_total);
  EXPECT_EQ(a.shuffle_nops, b.shuffle_nops);
  EXPECT_EQ(a.packet_splits, b.packet_splits);
}

TEST(Driver, WarmupIsExcludedFromStats) {
  const WorkloadProfile& profile = profile_by_name("gzip");
  SimRequest req;
  req.mode = Mode::kSingle;
  req.warmup_commits = 5000;
  req.budget_commits = 10000;
  const SimResult r = run_workload(profile, req);
  // Commit width is 4, so the run can overshoot the target by up to 3.
  EXPECT_GE(r.commits, 10000u);
  EXPECT_LE(r.commits, 10003u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_FALSE(r.oracle_violated) << r.oracle_detail;
}

TEST(Driver, AllModesCleanOnAllWorkloads) {
  // Smoke sweep at a small budget: every (workload, mode) pair must run
  // clean — no oracle violation, no detection, no wedge.
  for (const WorkloadProfile& profile : spec2000_profiles()) {
    for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjackNs,
                      Mode::kBlackjack}) {
      SimRequest req;
      req.mode = mode;
      req.warmup_commits = 2000;
      req.budget_commits = 4000;
      const SimResult r = run_workload(profile, req);
      EXPECT_FALSE(r.oracle_violated)
          << profile.name << '/' << mode_name(mode) << ": " << r.oracle_detail;
      EXPECT_FALSE(r.detected) << profile.name << '/' << mode_name(mode);
      EXPECT_FALSE(r.wedged) << profile.name << '/' << mode_name(mode);
      EXPECT_GE(r.commits, 4000u) << profile.name << '/' << mode_name(mode);
      EXPECT_LE(r.commits, 4003u) << profile.name << '/' << mode_name(mode);
    }
  }
}

TEST(Driver, CoveragePairsTrackTrailingCommits) {
  SimRequest req;
  req.mode = Mode::kBlackjack;
  req.warmup_commits = 3000;
  req.budget_commits = 9000;
  const SimResult r = run_workload(profile_by_name("eon"), req);
  // Every trailing commit contributes one pair; trailing lags by the slack.
  EXPECT_GT(r.coverage_pairs, 8000u);
  EXPECT_LE(r.coverage_pairs, 10000u);
}

TEST(Regfile, FreeListLifo) {
  FreeList fl(2, 6);  // 2..5 free
  EXPECT_EQ(fl.available(), 4u);
  const int a = fl.allocate();
  const int b = fl.allocate();
  EXPECT_NE(a, b);
  fl.release(a);
  EXPECT_EQ(fl.allocate(), a);
  EXPECT_EQ(fl.available(), 2u);
}

TEST(Regfile, SentinelReadsZeroAndIsAlwaysReady) {
  PhysRegFile prf(8, 8);
  EXPECT_EQ(prf.value(RegClass::kInt, kNoPhysReg), 0u);
  EXPECT_EQ(prf.ready_at(RegClass::kInt, kNoPhysReg), 0u);
  EXPECT_TRUE(prf.ready_now(RegClass::kInt, kNoPhysReg));
  prf.set_value(RegClass::kInt, 3, 42);
  prf.set_ready_at(RegClass::kInt, 3, 100);
  EXPECT_EQ(prf.value(RegClass::kInt, 3), 42u);
  EXPECT_EQ(prf.ready_at(RegClass::kInt, 3), 100u);
}

TEST(Regfile, SoaRowsKeepClassIndexSpacesDistinct) {
  // One backing file, two per-class index spaces: writing int reg k must
  // never alias fp reg k and vice versa.
  PhysRegFile prf(4, 4);
  prf.set_value(RegClass::kInt, 2, 11);
  prf.set_value(RegClass::kFp, 2, 22);
  EXPECT_EQ(prf.value(RegClass::kInt, 2), 11u);
  EXPECT_EQ(prf.value(RegClass::kFp, 2), 22u);
  EXPECT_EQ(prf.size(RegClass::kInt), 4);
  EXPECT_EQ(prf.size(RegClass::kFp), 4);
}

TEST(Regfile, ReadyBitmapTracksBusyAndReady) {
  PhysRegFile prf(70, 4);  // spans two 64-bit bitmap words
  for (int r = 0; r < 70; ++r) {
    EXPECT_TRUE(prf.ready_now(RegClass::kInt, r)) << r;
  }
  prf.mark_busy(RegClass::kInt, 65);
  EXPECT_FALSE(prf.ready_now(RegClass::kInt, 65));
  EXPECT_TRUE(prf.ready_now(RegClass::kInt, 64));
  EXPECT_TRUE(prf.ready_now(RegClass::kFp, 1));
  prf.mark_ready(RegClass::kInt, 65);
  EXPECT_TRUE(prf.ready_now(RegClass::kInt, 65));
}

TEST(Regfile, RenameMapPerClass) {
  RenameMap map;
  map.at(RegClass::kInt, 5) = 77;
  map.at(RegClass::kFp, 5) = 88;
  EXPECT_EQ(map.get(RegClass::kInt, 5), 77);
  EXPECT_EQ(map.get(RegClass::kFp, 5), 88);
}

TEST(Regfile, LeadPhysMapIsPhysIndexed) {
  LeadPhysMap map(16, 16);
  map.at(RegClass::kInt, 12) = 3;
  EXPECT_EQ(map.get(RegClass::kInt, 12), 3);
  EXPECT_EQ(map.get(RegClass::kInt, 11), kNoPhysReg);
}

TEST(Table, AlignsAndEmitsCsv) {
  Table t({"name", "value"});
  t.begin_row();
  t.add("alpha");
  t.add(1.5, 1);
  t.begin_row();
  t.add("b");
  t.add_percent(0.25);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("25.0"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1.5\nb,25.0\n");
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("BJ_TEST_KNOB");
  EXPECT_EQ(env_int("BJ_TEST_KNOB", 7), 7);
  ::setenv("BJ_TEST_KNOB", "123", 1);
  EXPECT_EQ(env_int("BJ_TEST_KNOB", 7), 123);
  ::setenv("BJ_TEST_KNOB", "bogus", 1);
  EXPECT_EQ(env_int("BJ_TEST_KNOB", 7), 7);
  ::unsetenv("BJ_TEST_KNOB");
  EXPECT_EQ(env_string("BJ_TEST_KNOB", "dflt"), "dflt");
}

TEST(Core, DumpStateIsReadable) {
  const Program p = generate_workload(profile_by_name("gcc"));
  Core core(p, Mode::kBlackjack);
  core.run(2000, 400000);
  std::ostringstream os;
  core.dump_state(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("leading:"), std::string::npos);
  EXPECT_NE(dump.find("trailing:"), std::string::npos);
  EXPECT_NE(dump.find("iq occupancy"), std::string::npos);
}


TEST(Flags, ParsesAllForms) {
  // Note: a bare switch followed by a non-flag token would consume it as a
  // value (the documented --key value form), so positionals come first.
  const char* argv[] = {"prog",   "positional", "--mode=blackjack",
                        "--slack", "128",       "--n=-5",
                        "--dump-state"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.get("mode"), "blackjack");
  EXPECT_EQ(flags.get_int("slack", 0), 128);
  EXPECT_TRUE(flags.get_bool("dump-state"));
  EXPECT_EQ(flags.get_int("n", 0), -5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_EQ(flags.get_int("absent", 42), 42);
}

TEST(Flags, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--unused=2"};
  Flags flags(3, const_cast<char**>(argv));
  (void)flags.get("used");
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Flags, SplitHelper) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}


TEST(Driver, MultiSeedAggregationIsStable) {
  // Seed-perturbed instances of a profile must agree on the qualitative
  // metrics: coverage varies by at most a few points, and the mean matches
  // the canonical instance's ballpark.
  SimRequest req;
  req.mode = Mode::kBlackjack;
  req.warmup_commits = 5000;
  req.budget_commits = 12000;
  const AggregateResult agg =
      run_workload_seeds(profile_by_name("crafty"), req, 4);
  EXPECT_EQ(agg.seeds, 4);
  EXPECT_EQ(agg.coverage_total.count(), 4u);
  EXPECT_GT(agg.coverage_total.mean(), 0.75);
  EXPECT_LT(agg.coverage_total.stddev(), 0.05)
      << "workload-instance noise should be small";
  EXPECT_GT(agg.ipc.mean(), 0.3);
}

}  // namespace
}  // namespace bj
