// Unit tests for BlackJack's commit-time checkers: the second rename table
// (dependence verification + program-order register freeing) and the pc
// chain checker.
#include <gtest/gtest.h>

#include "blackjack/checker.h"

namespace bj {
namespace {

DecodedInst int_op(int rd, int rs1, int rs2) {
  DecodedInst inst;
  inst.op = Opcode::kAdd;
  inst.dst = {RegClass::kInt, static_cast<std::uint8_t>(rd)};
  inst.src1 = {RegClass::kInt, static_cast<std::uint8_t>(rs1)};
  inst.src2 = {RegClass::kInt, static_cast<std::uint8_t>(rs2)};
  return inst;
}

TEST(SecondRenameTable, AcceptsConsistentStream) {
  SecondRenameTable table;
  table.initialize(RegClass::kInt, 1, 100);
  table.initialize(RegClass::kInt, 2, 101);
  table.initialize(RegClass::kInt, 3, 102);

  // r3 = r1 + r2 with trailing physical dst 200.
  DependenceCheckResult r =
      table.commit(int_op(3, 1, 2), /*src1=*/100, /*src2=*/101, /*dst=*/200);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.freed_phys, 102) << "previous mapping of r3 is freed";
  EXPECT_EQ(r.freed_cls, RegClass::kInt);

  // r1 = r3 + r3: r3 must now resolve to 200.
  r = table.commit(int_op(1, 3, 3), 200, 200, 201);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.freed_phys, 100);
  EXPECT_EQ(table.mismatches(), 0u);
}

TEST(SecondRenameTable, FlagsWrongSourceMapping) {
  SecondRenameTable table;
  table.initialize(RegClass::kInt, 1, 100);
  table.initialize(RegClass::kInt, 2, 101);
  table.initialize(RegClass::kInt, 3, 102);
  // The instruction executed with physical source 999 — a corrupted
  // dependence borrowed from the leading thread.
  const DependenceCheckResult r = table.commit(int_op(3, 1, 2), 999, 101, 200);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(table.mismatches(), 1u);
}

TEST(SecondRenameTable, ZeroRegisterIsExempt) {
  SecondRenameTable table;
  table.initialize(RegClass::kInt, 5, 100);
  // add r5, r0, r0: r0 is not renamed; sources carry the sentinel.
  const DependenceCheckResult r = table.commit(int_op(5, 0, 0), -1, -1, 200);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.freed_phys, 100);
}

TEST(SecondRenameTable, TracksFpClassIndependently) {
  SecondRenameTable table;
  table.initialize(RegClass::kInt, 4, 50);
  table.initialize(RegClass::kFp, 4, 60);
  DecodedInst fadd;
  fadd.op = Opcode::kFadd;
  fadd.dst = {RegClass::kFp, 4};
  fadd.src1 = {RegClass::kFp, 4};
  fadd.src2 = {RegClass::kFp, 4};
  const DependenceCheckResult r = table.commit(fadd, 60, 60, 61);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.freed_phys, 60);
  EXPECT_EQ(table.lookup(RegClass::kInt, 4), 50) << "int map untouched";
  EXPECT_EQ(table.lookup(RegClass::kFp, 4), 61);
}

TEST(SecondRenameTable, StoresAndBranchesFreeNothing) {
  SecondRenameTable table;
  table.initialize(RegClass::kInt, 1, 100);
  table.initialize(RegClass::kInt, 2, 101);
  DecodedInst st;
  st.op = Opcode::kSt;
  st.src1 = {RegClass::kInt, 1};
  st.src2 = {RegClass::kInt, 2};
  const DependenceCheckResult r = table.commit(st, 100, 101, -1);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.freed_phys, -1);
}

TEST(PcChainChecker, AcceptsStraightLineAndBranches) {
  PcChainChecker checker;
  EXPECT_TRUE(checker.commit(10, false, 0));  // first commit: no prior pc
  EXPECT_TRUE(checker.commit(11, false, 0));
  EXPECT_TRUE(checker.commit(12, true, 40));  // taken branch to 40
  EXPECT_TRUE(checker.commit(40, false, 0));
  EXPECT_TRUE(checker.commit(41, true, 10));  // back edge
  EXPECT_TRUE(checker.commit(10, false, 0));
  EXPECT_EQ(checker.mismatches(), 0u);
}

TEST(PcChainChecker, FlagsDroppedInstruction) {
  PcChainChecker checker;
  EXPECT_TRUE(checker.commit(10, false, 0));
  EXPECT_FALSE(checker.commit(12, false, 0)) << "pc 11 was dropped";
  EXPECT_EQ(checker.mismatches(), 1u);
}

TEST(PcChainChecker, FlagsWrongBranchTarget) {
  PcChainChecker checker;
  EXPECT_TRUE(checker.commit(10, true, 50));
  EXPECT_FALSE(checker.commit(51, false, 0));
}

TEST(PcChainChecker, FlagsSuppressedBranch) {
  PcChainChecker checker;
  // The branch executed taken, so fall-through is a program-order error.
  EXPECT_TRUE(checker.commit(10, true, 50));
  EXPECT_FALSE(checker.commit(11, false, 0));
}

}  // namespace
}  // namespace bj
