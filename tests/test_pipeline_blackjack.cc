// BlackJack-mode pipeline tests (full shuffle and no-shuffle variants):
// fault-free runs must be silent on every checker (dependence check, pc
// chain, store compare, load-address compare), both threads must retire the
// same stream, and the coverage signature must match the paper's claims —
// 100% frontend diversity and high backend diversity for full BlackJack.
#include <gtest/gtest.h>

#include "pipeline/core.h"
#include "workload/microkernels.h"
#include "workload/profile.h"

namespace bj {
namespace {

RunOutcome run_to_halt(const Program& p, Mode mode,
                       const CoreParams& params = {},
                       std::uint64_t max_cycles = 30000000) {
  Core core(p, mode, params);
  const RunOutcome outcome = core.run(~0ull / 2, max_cycles);
  EXPECT_TRUE(outcome.program_finished)
      << p.name << " did not finish under " << mode_name(mode);
  EXPECT_FALSE(outcome.wedged) << p.name << " wedged";
  EXPECT_FALSE(outcome.detected)
      << p.name << ": spurious detection "
      << (outcome.detections.empty()
              ? "?"
              : detection_kind_name(outcome.detections.front().kind));
  EXPECT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  EXPECT_EQ(outcome.leading_commits, outcome.trailing_commits) << p.name;
  return outcome;
}

std::uint64_t final_store_value(const std::vector<StoreBufferEntry>& stores,
                                std::uint64_t addr) {
  std::uint64_t value = 0;
  for (const auto& s : stores) {
    if (s.addr == addr) value = s.data;
  }
  return value;
}

TEST(PipelineBlackjack, SumToN) {
  const Program p = kernels::sum_to_n(100);
  Core core(p, Mode::kBlackjack);
  const RunOutcome outcome = core.run(~0ull / 2, 2000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected)
      << detection_kind_name(outcome.detections.front().kind);
  EXPECT_EQ(final_store_value(core.released_stores(), 0x1000), 5050u);
}

TEST(PipelineBlackjack, Fibonacci) {
  const Program p = kernels::fibonacci(30);
  Core core(p, Mode::kBlackjack);
  const RunOutcome outcome = core.run(~0ull / 2, 2000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  EXPECT_EQ(final_store_value(core.released_stores(), 0x1000), 832040u);
}

TEST(PipelineBlackjack, MemcopyStoresInOrder) {
  const Program p = kernels::memcopy(64);
  Core core(p, Mode::kBlackjack);
  const RunOutcome outcome = core.run(~0ull / 2, 4000000);
  ASSERT_TRUE(outcome.program_finished);
  EXPECT_FALSE(outcome.detected);
  ASSERT_EQ(core.released_stores().size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(core.released_stores()[i].ordinal, i);
  }
}

TEST(PipelineBlackjack, BranchyWithMispredictions) {
  run_to_halt(kernels::branchy(1000), Mode::kBlackjack);
}

TEST(PipelineBlackjack, MatmulFpMixPointerChase) {
  run_to_halt(kernels::matmul(4), Mode::kBlackjack);
  run_to_halt(kernels::fp_mix(32), Mode::kBlackjack);
  run_to_halt(kernels::pointer_chase(64, 200), Mode::kBlackjack);
}

struct BjCase {
  const char* workload;
  Mode mode;
};

class BlackjackWorkloads
    : public ::testing::TestWithParam<std::tuple<const char*, Mode>> {};

TEST_P(BlackjackWorkloads, FaultFreeRunIsClean) {
  WorkloadProfile profile = profile_by_name(std::get<0>(GetParam()));
  profile.iterations = 80;
  const Program p = generate_workload(profile);
  run_to_halt(p, std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, BlackjackWorkloads,
    ::testing::Combine(
        ::testing::Values("equake", "swim", "art", "mgrid", "applu", "fma3d",
                          "gcc", "facerec", "wupwise", "bzip", "apsi",
                          "crafty", "eon", "gzip", "vortex", "sixtrack"),
        ::testing::Values(Mode::kBlackjack, Mode::kBlackjackNs)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             (std::get<1>(info.param) == Mode::kBlackjack ? "bj" : "bjns");
    });

TEST(PipelineBlackjack, FrontendCoverageIsFull) {
  WorkloadProfile profile = profile_by_name("vortex");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kBlackjack);
  core.run(20000, 8000000);
  ASSERT_FALSE(core.oracle_violated()) << core.oracle_violation_detail();
  ASSERT_TRUE(core.detections().empty());
  ASSERT_GT(core.stats().coverage.pairs(), 1000u);
  EXPECT_EQ(core.stats().coverage.frontend_coverage(), 1.0)
      << "safe-shuffle guarantees a different frontend way for every pair";
}

TEST(PipelineBlackjack, BackendCoverageIsHigh) {
  WorkloadProfile profile = profile_by_name("vortex");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kBlackjack);
  core.run(20000, 8000000);
  ASSERT_GT(core.stats().coverage.pairs(), 1000u);
  EXPECT_GT(core.stats().coverage.backend_coverage(), 0.85)
      << "interference should be rare";
}

TEST(PipelineBlackjack, CoverageBeatsSrtEverywhere) {
  for (const char* name : {"equake", "gcc", "gzip", "sixtrack"}) {
    WorkloadProfile profile = profile_by_name(name);
    const Program p = generate_workload(profile);
    Core srt(p, Mode::kSrt);
    srt.run(15000, 8000000);
    Core bj(p, Mode::kBlackjack);
    bj.run(15000, 8000000);
    EXPECT_GT(bj.stats().coverage.total_coverage(),
              srt.stats().coverage.total_coverage() + 0.2)
        << name;
  }
}

TEST(PipelineBlackjack, ShuffleInsertsNopsAndSplitsPackets) {
  WorkloadProfile profile = profile_by_name("gcc");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kBlackjack);
  core.run(20000, 8000000);
  EXPECT_GT(core.stats().packets_shuffled, 1000u);
  EXPECT_GT(core.stats().shuffle_nops, 0u);
}

TEST(PipelineBlackjackNs, NoNopsNoSplits) {
  WorkloadProfile profile = profile_by_name("gcc");
  const Program p = generate_workload(profile);
  Core core(p, Mode::kBlackjackNs);
  core.run(20000, 8000000);
  EXPECT_GT(core.stats().packets_shuffled, 1000u);
  EXPECT_EQ(core.stats().shuffle_nops, 0u);
  EXPECT_EQ(core.stats().packet_splits, 0u);
}

TEST(PipelineBlackjack, SlowerThanSrtFasterThanThreeX) {
  WorkloadProfile profile = profile_by_name("gzip");
  const Program p = generate_workload(profile);
  Core single(p, Mode::kSingle);
  single.run(20000, 8000000);
  Core bj(p, Mode::kBlackjack);
  bj.run(20000, 8000000);
  EXPECT_FALSE(bj.oracle_violated());
  EXPECT_GT(bj.cycle(), single.cycle());
  EXPECT_LT(bj.cycle(), single.cycle() * 3);
}

TEST(PipelineBlackjack, DependenceAndPcCheckersActuallyRan) {
  const Program p = kernels::fibonacci(50);
  Core core(p, Mode::kBlackjack);
  const RunOutcome outcome = core.run(~0ull / 2, 2000000);
  ASSERT_TRUE(outcome.program_finished);
  // Every trailing commit goes through both checkers; pairs ~= commits.
  EXPECT_GT(core.stats().coverage.pairs(), 100u);
  EXPECT_FALSE(outcome.detected);
}

TEST(PipelineBlackjack, TinyWindowsStillCorrect) {
  CoreParams params;
  params.active_list_entries = 32;
  params.lsq_entries = 8;
  params.issue_queue_entries = 16;
  params.store_buffer_entries = 8;
  params.lvq_entries = 16;
  params.dtq_entries = 64;
  params.trailing_fetch_queue_entries = 32;
  params.slack = 16;
  run_to_halt(kernels::memcopy(48), Mode::kBlackjack, params, 8000000);
  run_to_halt(kernels::branchy(300), Mode::kBlackjack, params, 8000000);
}

TEST(PipelineBlackjack, MultiPacketFetchAblationStillCorrect) {
  CoreParams params;
  params.one_packet_per_cycle = false;  // ablation: more TT interference
  WorkloadProfile profile = profile_by_name("equake");
  profile.iterations = 60;
  const Program p = generate_workload(profile);
  run_to_halt(p, Mode::kBlackjack, params);
}

}  // namespace
}  // namespace bj
