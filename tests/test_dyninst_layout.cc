// Layout-regression tests for the hot/cold DynInst split (types.h).
//
// The tentpole invariant is structural, not behavioural: the hot slot must
// stay within two 64-byte cache lines, hot slots in an InstPool chunk must
// tile lines exactly (no slot straddles a third line), and line 1 must start
// exactly at the second line so the dispatch/wakeup fields of line 0 never
// share a line with the execute/commit values. types.h static_asserts the
// size cap at compile time; these tests pin the rest and print the numbers
// so a future field addition shows up as a reviewed diff, not silent bloat.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <iostream>

#include "pipeline/inst_pool.h"
#include "pipeline/types.h"

namespace bj {
namespace {

constexpr std::size_t kLine = 64;

TEST(DynInstLayout, HotSlotIsExactlyTwoAlignedCacheLines) {
  // Printed (not just asserted) so the size budget is visible in test logs.
  std::cout << "DynInst (hot):  sizeof=" << sizeof(DynInst)
            << " alignof=" << alignof(DynInst) << "\n"
            << "DynInstCold:    sizeof=" << sizeof(DynInstCold)
            << " alignof=" << alignof(DynInstCold) << "\n";
  EXPECT_LE(sizeof(DynInstHot), 2 * kLine);
  // alignas(64) + whole-line size: an array of slots tiles cache lines with
  // zero waste and no slot ever straddles into a neighbour's line.
  EXPECT_EQ(alignof(DynInst), kLine);
  EXPECT_EQ(sizeof(DynInst) % kLine, 0u);

  // Line 0 = dispatch/wakeup/select, line 1 = execute/writeback/commit. The
  // boundary field is pc; everything the wakeup loop reads sits below it.
  EXPECT_EQ(offsetof(DynInst, pc), kLine);
  EXPECT_LT(offsetof(DynInst, dec), kLine);
  EXPECT_LT(offsetof(DynInst, seq), kLine);
  EXPECT_LT(offsetof(DynInst, src1_phys), kLine);
  EXPECT_LT(offsetof(DynInst, mem_ordinal), kLine);
  EXPECT_GE(offsetof(DynInst, result), kLine);
  EXPECT_GE(offsetof(DynInst, packet_id), kLine);
}

TEST(DynInstLayout, InstPoolChunksTileLinesWithoutStraddling) {
  // Walk more than one chunk so chunk-boundary allocation is covered too.
  InstPool pool;
  constexpr std::uint32_t kSlots = InstPool::kChunkSize + 8;
  std::uintptr_t prev = 0;
  std::size_t lines_per_slot = sizeof(DynInst) / kLine;
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    const DynInst* slot = pool.allocate();
    const auto addr = reinterpret_cast<std::uintptr_t>(slot);
    // Every slot starts on a line boundary; combined with the whole-line
    // size this is the no-straddle guarantee.
    ASSERT_EQ(addr % kLine, 0u) << "slot " << i;
    // Within a chunk, slots are densely packed (index math in slot_ptr
    // depends on this).
    if (i % InstPool::kChunkSize != 0) {
      ASSERT_EQ(addr - prev, sizeof(DynInst)) << "slot " << i;
    }
    prev = addr;
  }
  std::cout << "InstPool chunk: " << InstPool::kChunkSize << " slots x "
            << sizeof(DynInst) << " B = "
            << InstPool::kChunkSize * sizeof(DynInst) / 1024 << " KiB hot, "
            << lines_per_slot << " lines/slot, "
            << InstPool::kChunkSize * sizeof(DynInstCold) / 1024
            << " KiB cold sidecar\n";
}

TEST(DynInstLayout, PerLineOccupancyIsAccountedFor) {
  // Occupancy report: how much of each line the current fields actually
  // use. Failing this means a field moved across the line boundary or dead
  // padding grew past a line's worth — re-audit types.h before bumping.
  const std::size_t line0_used = offsetof(DynInst, lead_backend_way) + 1;
  const std::size_t line1_used =
      offsetof(DynInst, origin_packet_id) + sizeof(std::uint32_t) - kLine;
  std::cout << "line 0: " << line0_used << "/" << kLine << " bytes used\n"
            << "line 1: " << line1_used << "/" << kLine << " bytes used\n";
  EXPECT_LE(line0_used, kLine);
  EXPECT_LE(line1_used, kLine);
  EXPECT_GT(line1_used, 0u);
}

}  // namespace
}  // namespace bj
