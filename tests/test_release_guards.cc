// Release-mode regression tests for the hardware-queue guard rails.
//
// The simulator's queues historically guarded overflow/underflow with
// `assert`, which NDEBUG compiles away — exactly the configuration
// (RelWithDebInfo / Release) every benchmark and campaign runs in. A wedged
// scheduler that overfilled a queue would then silently corrupt neighbouring
// slots instead of stopping. The guards are now BJ_CHECK, which stays armed
// in every build type and aborts naming the offending queue. These tests
// pin that behaviour: they deliberately overflow/underflow the structures
// and expect an abort whose message carries the queue's name, in this very
// build configuration (the suite runs under the default RelWithDebInfo,
// where NDEBUG is defined and a plain assert would pass straight through).
#include <gtest/gtest.h>

#include "common/circular_buffer.h"
#include "common/ring_deque.h"

namespace bj {
namespace {

TEST(ReleaseGuardsDeathTest, CircularBufferOverflowAbortsWithName) {
  CircularBuffer<int> q(2, "dtq-test");
  q.push(1);
  q.push(2);
  EXPECT_DEATH(q.push(3), "BJ_CHECK failed.*dtq-test");
}

TEST(ReleaseGuardsDeathTest, CircularBufferUnderflowAbortsWithName) {
  CircularBuffer<int> q(2, "lvq-test");
  EXPECT_DEATH(q.pop(), "BJ_CHECK failed.*lvq-test");
}

TEST(ReleaseGuardsDeathTest, CircularBufferOutOfRangeAtAborts) {
  CircularBuffer<int> q(4, "boq-test");
  q.push(7);
  EXPECT_DEATH(q.at(1), "BJ_CHECK failed.*boq-test");
}

TEST(ReleaseGuardsDeathTest, RingDequeOverflowAbortsWithName) {
  RingDeque<int> q(2, "lead.frontend-q");
  q.push_back(1);
  q.push_back(2);
  EXPECT_DEATH(q.push_back(3), "BJ_CHECK failed.*lead.frontend-q");
}

TEST(ReleaseGuardsDeathTest, RingDequeUnderflowAbortsWithName) {
  RingDeque<int> q(2, "trail.lsq");
  EXPECT_DEATH(q.pop_front(), "BJ_CHECK failed.*trail.lsq");
  q.push_back(1);
  q.pop_back();
  EXPECT_DEATH(q.pop_back(), "BJ_CHECK failed.*trail.lsq");
}

TEST(ReleaseGuardsDeathTest, RingDequeOutOfRangeAtAborts) {
  RingDeque<int> q(4, "active-list");
  q.push_back(1);
  q.push_back(2);
  EXPECT_DEATH(q.at(2), "BJ_CHECK failed.*active-list");
}

// The guards must be armed even when NDEBUG compiled `assert` away — that
// is the entire point of BJ_CHECK. If this build has asserts enabled too,
// the death tests above already cover the debug flavour.
#ifdef NDEBUG
TEST(ReleaseGuards, PlainAssertIsDisarmedInThisBuild) {
  // Documents the build precondition that makes this file a regression
  // test: NDEBUG is defined, so only BJ_CHECK stands between an overflow
  // and silent corruption.
  SUCCEED();
}
#endif

TEST(ReleaseGuards, NormalOperationUnaffected) {
  RingDeque<int> q(3, "scratch");
  for (int round = 0; round < 7; ++round) {
    q.push_back(round);
    q.push_back(round + 100);
    EXPECT_EQ(q.front(), round);
    EXPECT_EQ(q.back(), round + 100);
    EXPECT_EQ(q.size(), 2u);
    q.pop_front();
    q.pop_back();
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace bj
