// Environment-variable knobs shared by tests, benches, and examples.
// All knobs are read-once and deterministic defaults are used when unset.
#pragma once

#include <cstdint>
#include <string>

namespace bj {

// Tool/artifact version stamped into campaign JSONL headers and metric
// exports so downstream analysis can tell files from different builds
// apart. Bump alongside user-visible output format changes.
inline constexpr const char* kBjsimVersion = "0.4.0";

// Reads an integer environment variable, returning `fallback` when the
// variable is unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

// Number of committed leading-thread instructions simulated per benchmark
// run (BJ_SIM_INSTRUCTIONS, default 150000).
std::int64_t sim_instruction_budget();

// Warm-up commits excluded from statistics (BJ_SIM_WARMUP, default 20000 —
// enough to retire each generated kernel's cache-warming prologue).
std::int64_t sim_warmup_budget();

}  // namespace bj
