#include "common/env.h"

#include <cstdlib>

namespace bj {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

std::int64_t sim_instruction_budget() {
  return env_int("BJ_SIM_INSTRUCTIONS", 150000);
}

std::int64_t sim_warmup_budget() { return env_int("BJ_SIM_WARMUP", 20000); }

}  // namespace bj
