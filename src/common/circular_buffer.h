// Fixed-capacity FIFO used for the pipeline's hardware queues (fetch queues,
// DTQ, LVQ, BOQ, store buffer). Capacity is set at construction to model a
// hardware structure of a given size; push on a full queue is a programming
// error (callers must check full() first, the way hardware stalls).
//
// The guards are BJ_CHECK, not assert: they survive NDEBUG builds, so a
// missing full()/empty() check aborts with the queue's name instead of
// silently wrapping and corrupting in-flight state.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace bj {

template <typename T>
class CircularBuffer {
 public:
  explicit CircularBuffer(std::size_t capacity,
                          const char* name = "circular-buffer")
      : slots_(capacity + 1),  // one spare slot distinguishes full/empty
        name_(name) {}

  const char* name() const { return name_; }
  std::size_t capacity() const { return slots_.size() - 1; }
  std::size_t size() const {
    return tail_ >= head_ ? tail_ - head_ : tail_ + slots_.size() - head_;
  }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }
  std::size_t free_slots() const { return capacity() - size(); }

  void push(T value) {
    BJ_CHECK(!full(), name_);
    slots_[tail_] = std::move(value);
    tail_ = wrap(tail_ + 1);
  }

  T pop() {
    BJ_CHECK(!empty(), name_);
    T value = std::move(slots_[head_]);
    head_ = wrap(head_ + 1);
    return value;
  }

  T& front() {
    BJ_CHECK(!empty(), name_);
    return slots_[head_];
  }
  const T& front() const {
    BJ_CHECK(!empty(), name_);
    return slots_[head_];
  }

  // Random access from the head: at(0) == front().
  T& at(std::size_t i) {
    BJ_CHECK(i < size(), name_);
    return slots_[wrap(head_ + i)];
  }
  const T& at(std::size_t i) const {
    BJ_CHECK(i < size(), name_);
    return slots_[wrap(head_ + i)];
  }

  void clear() { head_ = tail_ = 0; }

 private:
  // Indices advance by at most one slot (or a size()-bounded offset in at()),
  // so a conditional subtract replaces the modulo of the original version.
  std::size_t wrap(std::size_t i) const {
    return i >= slots_.size() ? i - slots_.size() : i;
  }

  std::vector<T> slots_;
  const char* name_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace bj
