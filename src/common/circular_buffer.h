// Fixed-capacity FIFO used for the pipeline's hardware queues (fetch queues,
// DTQ, LVQ, BOQ, store buffer). Capacity is set at construction to model a
// hardware structure of a given size; push on a full queue is a programming
// error (callers must check full() first, the way hardware stalls).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace bj {

template <typename T>
class CircularBuffer {
 public:
  explicit CircularBuffer(std::size_t capacity)
      : slots_(capacity + 1) {}  // one spare slot distinguishes full/empty

  std::size_t capacity() const { return slots_.size() - 1; }
  std::size_t size() const {
    return (tail_ + slots_.size() - head_) % slots_.size();
  }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }
  std::size_t free_slots() const { return capacity() - size(); }

  void push(T value) {
    assert(!full() && "push on full CircularBuffer");
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % slots_.size();
  }

  T pop() {
    assert(!empty() && "pop on empty CircularBuffer");
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    return value;
  }

  T& front() {
    assert(!empty());
    return slots_[head_];
  }
  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  // Random access from the head: at(0) == front().
  T& at(std::size_t i) {
    assert(i < size());
    return slots_[(head_ + i) % slots_.size()];
  }
  const T& at(std::size_t i) const {
    assert(i < size());
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() { head_ = tail_ = 0; }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace bj
