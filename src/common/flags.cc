#include "common/flags.h"

#include <cstdlib>

namespace bj {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  touched_[name] = true;
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 0);
  return end == v.c_str() ? fallback : parsed;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const std::string v = get(name);
  if (v.empty()) return fallback;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!touched_.count(name)) out.push_back(name);
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace bj
