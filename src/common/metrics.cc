#include "common/metrics.h"

#include <cmath>
#include <ostream>

namespace bj {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

// JSON numbers must not be NaN/Inf; clamp to 0 (RunningStat on zero samples).
void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. We map '.' and '-' to
// '_' and drop anything else non-alphanumeric.
std::string prometheus_name(std::string_view dotted) {
  std::string out = "bj_";
  for (char c : dotted) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      out += c;
    } else if (c == '.' || c == '-' || c == '/') {
      out += '_';
    }
  }
  return out;
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::slot(std::string_view name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{}).first;
  }
  return it->second;
}

void MetricsRegistry::counter(std::string_view name, std::uint64_t value) {
  Metric& m = slot(name);
  m.kind = Kind::kCounter;
  m.value = value;
}

void MetricsRegistry::gauge(std::string_view name, double value) {
  Metric& m = slot(name);
  m.kind = Kind::kGauge;
  m.gauge = value;
}

void MetricsRegistry::ratio(std::string_view name, std::uint64_t hits,
                            std::uint64_t total) {
  Metric& m = slot(name);
  m.kind = Kind::kRatio;
  m.hits = hits;
  m.total = total;
}

void MetricsRegistry::stat(std::string_view name, const RunningStat& s) {
  Metric& m = slot(name);
  m.kind = Kind::kStat;
  m.stat = s;
}

void MetricsRegistry::histogram(std::string_view name, const Histogram& h) {
  Metric& m = slot(name);
  m.kind = Kind::kHistogram;
  m.histogram = h;
}

void MetricsRegistry::text(std::string_view name, std::string_view value) {
  Metric& m = slot(name);
  m.kind = Kind::kText;
  m.text = std::string(value);
}

bool MetricsRegistry::has(std::string_view name) const {
  return metrics_.find(name) != metrics_.end();
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kCounter) return 0;
  return it->second.value;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kGauge) return 0.0;
  return it->second.gauge;
}

std::string MetricsRegistry::text_value(std::string_view name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kText) return {};
  return it->second.text;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"schema_version\":" << kMetricsSchemaVersion << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
    write_json_string(os, name);
    os << ":";
    switch (m.kind) {
      case Kind::kCounter:
        os << m.value;
        break;
      case Kind::kGauge:
        write_json_double(os, m.gauge);
        break;
      case Kind::kRatio: {
        os << "{\"hits\":" << m.hits << ",\"total\":" << m.total
           << ",\"fraction\":";
        double frac = m.total ? static_cast<double>(m.hits) /
                                    static_cast<double>(m.total)
                              : 0.0;
        write_json_double(os, frac);
        os << "}";
        break;
      }
      case Kind::kStat:
        os << "{\"count\":" << m.stat.count() << ",\"mean\":";
        write_json_double(os, m.stat.mean());
        os << ",\"min\":";
        write_json_double(os, m.stat.min());
        os << ",\"max\":";
        write_json_double(os, m.stat.max());
        os << ",\"stddev\":";
        write_json_double(os, m.stat.stddev());
        os << "}";
        break;
      case Kind::kHistogram: {
        const Histogram& h = m.histogram;
        os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
           << ",\"min\":" << h.min() << ",\"max\":" << h.max()
           << ",\"mean\":";
        write_json_double(os, h.mean());
        os << ",\"buckets\":[";
        // Emit only occupied buckets as [floor, count] pairs to keep the
        // artifact small.
        bool bfirst = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) == 0) continue;
          if (!bfirst) os << ",";
          bfirst = false;
          os << "[" << Histogram::bucket_floor(i) << "," << h.bucket(i)
             << "]";
        }
        os << "]}";
        break;
      }
      case Kind::kText:
        write_json_string(os, m.text);
        break;
    }
  }
  os << "\n}}\n";
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const auto& [name, m] : metrics_) {
    std::string pn = prometheus_name(name);
    switch (m.kind) {
      case Kind::kCounter:
        os << "# TYPE " << pn << " counter\n";
        os << pn << " " << m.value << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << pn << " gauge\n";
        os << pn << " " << (std::isfinite(m.gauge) ? m.gauge : 0.0) << "\n";
        break;
      case Kind::kRatio:
        os << "# TYPE " << pn << "_hits counter\n";
        os << pn << "_hits " << m.hits << "\n";
        os << "# TYPE " << pn << "_total counter\n";
        os << pn << "_total " << m.total << "\n";
        break;
      case Kind::kStat:
        os << "# TYPE " << pn << " summary\n";
        os << pn << "_count " << m.stat.count() << "\n";
        os << pn << "_sum " << m.stat.sum() << "\n";
        os << pn << "_min " << m.stat.min() << "\n";
        os << pn << "_max " << m.stat.max() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = m.histogram;
        os << "# TYPE " << pn << " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          if (h.bucket(i) == 0) continue;
          cumulative += h.bucket(i);
          // Upper bound of bucket i (exclusive in our scheme, inclusive as
          // a Prometheus `le` once shifted to the last contained value).
          std::uint64_t le = (1ull << (i + 1)) - 2;
          os << pn << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
        }
        os << pn << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        os << pn << "_sum " << h.sum() << "\n";
        os << pn << "_count " << h.count() << "\n";
        break;
      }
      case Kind::kText:
        os << "# TYPE " << pn << "_info gauge\n";
        os << pn << "_info{value=\"";
        for (char c : m.text) {
          if (c == '"' || c == '\\') os << '\\';
          os << c;
        }
        os << "\"} 1\n";
        break;
    }
  }
}

}  // namespace bj
