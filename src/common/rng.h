// Deterministic pseudo-random number generation for simulation and workload
// synthesis. Everything in this project that needs randomness goes through
// Rng so that runs are reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <string_view>

namespace bj {

// splitmix64: used for seeding and hashing strings to seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Stable 64-bit hash of a string, for deriving per-workload seeds from names.
constexpr std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // Push it through one splitmix round to spread low-entropy names.
  return splitmix64(h);
}

// xoshiro256** — fast, high-quality, deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace bj
