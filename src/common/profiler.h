// Per-stage wall-clock attribution for the simulator's tick loop.
//
// The Core ticks six pipeline stages in a fixed order; when a StageProfiler
// is attached it accumulates the host-side nanoseconds each stage consumes so
// speedups can be measured per stage instead of guessed from aggregate
// numbers. When no profiler is attached the Core takes a branch-free path and
// pays nothing, so attaching one is strictly opt-in (`bjsim --profile`).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace bj {

class MetricsRegistry;

// One enumerator per Core stage, in tick order.
enum class SimStage : std::uint8_t {
  kWriteback = 0,
  kCommit,
  kShuffle,
  kIssue,
  kDispatch,
  kFetch,
  kCount
};

inline constexpr int kNumSimStages = static_cast<int>(SimStage::kCount);

const char* sim_stage_name(SimStage stage);

class StageProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  void add(SimStage stage, std::uint64_t ns) {
    ns_[static_cast<int>(stage)] += ns;
  }
  // Called once per profiled tick so the report can show ns/cycle.
  void note_cycle() { ++cycles_; }

  std::uint64_t ns(SimStage stage) const {
    return ns_[static_cast<int>(stage)];
  }
  std::uint64_t total_ns() const;
  std::uint64_t cycles() const { return cycles_; }

  void reset();

  // Aligned text table: stage, total ms, share of profiled time, ns/cycle.
  std::string report() const;
  void print(std::ostream& os) const;

  // Machine-readable form of report(), stamped with kMetricsSchemaVersion:
  // {"schema_version":N,"cycles":...,"total_ns":...,"stages":{...}}.
  std::string report_json() const;

  // Registers the buckets under "profiler.stage.<name>.ns" plus
  // "profiler.cycles" / "profiler.total_ns".
  void export_metrics(MetricsRegistry& registry) const;

 private:
  std::array<std::uint64_t, kNumSimStages> ns_{};
  std::uint64_t cycles_ = 0;
};

// RAII helper: times a scope and charges it to one stage.
class StageTimer {
 public:
  StageTimer(StageProfiler& profiler, SimStage stage)
      : profiler_(profiler), stage_(stage), start_(StageProfiler::Clock::now()) {}
  ~StageTimer() {
    const auto end = StageProfiler::Clock::now();
    profiler_.add(stage_, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  end - start_)
                                  .count()));
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageProfiler& profiler_;
  SimStage stage_;
  StageProfiler::Clock::time_point start_;
};

}  // namespace bj
