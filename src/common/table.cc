#include "common/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bj {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(const std::string& value) {
  assert(!rows_.empty());
  rows_.back().push_back(value);
}

void Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add(os.str());
}

void Table::add_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << 100.0 * fraction;
  add(os.str());
}

void Table::add_int(long long value) { add(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cell;
      os << std::right;
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = header_.size() - 1;
  for (std::size_t w : widths) total += w + 1;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

}  // namespace bj
