// Minimal command-line flag parsing for the tools: --key=value, --key value,
// and bare --switch forms. Because "--key value" is supported, a bare switch
// followed by a non-flag token consumes that token as its value — put
// positional arguments before switches, or use the --switch=true form.
// Unrecognized flags are collected so callers can report them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bj {

class Flags {
 public:
  // Parses argv; non-flag arguments are collected as positional.
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were consumed via get()/has(); anything else was unused.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

// Splits "a,b,c" / "a:b" style lists.
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace bj
