// Minimal embedded HTTP listener for Prometheus scrapes of long-running
// campaigns. One background thread accepts loopback connections and answers
// GET /metrics with whatever text the producer callback returns at scrape
// time — the producer snapshots live progress under its own lock, so the
// server itself carries no metrics state and costs the simulation nothing
// between scrapes.
//
// Scope is deliberately tiny: loopback only, one request per connection,
// GET only. This is an observability tap, not a web server.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace bj {

class MetricsHttpServer {
 public:
  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, reported by
  // port()) and starts serving. On bind failure ok() is false and the
  // server is inert.
  MetricsHttpServer(int port, std::function<std::string()> producer);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

 private:
  void serve();

  std::function<std::string()> producer_;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

}  // namespace bj
