// Fixed-capacity double-ended queue backed by one flat allocation.
//
// std::deque allocates/frees chunk blocks as it grows and shrinks and
// touches scattered memory; the pipeline's bookkeeping queues (fetch buffer,
// active list, LSQ, trailing fetch queue) all have capacities fixed by
// SimParams, so a ring over a single vector gives the same FIFO/LIFO API
// with no steady-state allocation and contiguous storage.
//
// Capacity is set via the constructor or reset_capacity(); exceeding it is a
// simulator bug and aborts via BJ_CHECK in every build type.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace bj {

template <typename T>
class RingDeque {
 public:
  explicit RingDeque(std::size_t capacity = 0, const char* name = "ring-deque")
      : slots_(capacity), name_(name) {}

  // Re-sizes the backing store (used once the owning Core knows its
  // SimParams); discards any contents.
  void reset_capacity(std::size_t capacity) {
    slots_.assign(capacity, T{});
    head_ = 0;
    count_ = 0;
  }
  void set_name(const char* name) { name_ = name; }

  const char* name() const { return name_; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }

  void push_back(T value) {
    BJ_CHECK(!full(), name_);
    slots_[wrap(head_ + count_)] = std::move(value);
    ++count_;
  }

  void pop_front() {
    BJ_CHECK(!empty(), name_);
    slots_[head_] = T{};  // release held resources (e.g. shared_ptrs) eagerly
    head_ = wrap(head_ + 1);
    --count_;
  }

  void pop_back() {
    BJ_CHECK(!empty(), name_);
    slots_[wrap(head_ + count_ - 1)] = T{};
    --count_;
  }

  T& front() {
    BJ_CHECK(!empty(), name_);
    return slots_[head_];
  }
  const T& front() const {
    BJ_CHECK(!empty(), name_);
    return slots_[head_];
  }

  T& back() {
    BJ_CHECK(!empty(), name_);
    return slots_[wrap(head_ + count_ - 1)];
  }
  const T& back() const {
    BJ_CHECK(!empty(), name_);
    return slots_[wrap(head_ + count_ - 1)];
  }

  // Random access from the head: at(0) == front().
  T& at(std::size_t i) {
    BJ_CHECK(i < count_, name_);
    return slots_[wrap(head_ + i)];
  }
  const T& at(std::size_t i) const {
    BJ_CHECK(i < count_, name_);
    return slots_[wrap(head_ + i)];
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) slots_[wrap(head_ + i)] = T{};
    head_ = 0;
    count_ = 0;
  }

 private:
  // Offsets are bounded by count_ <= capacity, so one conditional subtract
  // wraps without a modulo.
  std::size_t wrap(std::size_t i) const {
    return i >= slots_.size() ? i - slots_.size() : i;
  }

  std::vector<T> slots_;
  const char* name_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace bj
