#include "common/profiler.h"

#include <numeric>
#include <ostream>
#include <sstream>

#include "common/metrics.h"
#include "common/table.h"

namespace bj {

const char* sim_stage_name(SimStage stage) {
  switch (stage) {
    case SimStage::kWriteback: return "writeback";
    case SimStage::kCommit: return "commit";
    case SimStage::kShuffle: return "shuffle";
    case SimStage::kIssue: return "issue";
    case SimStage::kDispatch: return "dispatch";
    case SimStage::kFetch: return "fetch";
    case SimStage::kCount: break;
  }
  return "?";
}

std::uint64_t StageProfiler::total_ns() const {
  return std::accumulate(ns_.begin(), ns_.end(), std::uint64_t{0});
}

void StageProfiler::reset() {
  ns_.fill(0);
  cycles_ = 0;
}

std::string StageProfiler::report() const {
  Table table({"stage", "ms", "share", "ns/cycle"});
  const std::uint64_t total = total_ns();
  for (int i = 0; i < kNumSimStages; ++i) {
    table.begin_row();
    table.add(sim_stage_name(static_cast<SimStage>(i)));
    table.add(static_cast<double>(ns_[i]) / 1e6, 3);
    table.add_percent(total ? static_cast<double>(ns_[i]) /
                                  static_cast<double>(total)
                            : 0.0);
    table.add(cycles_ ? static_cast<double>(ns_[i]) /
                            static_cast<double>(cycles_)
                      : 0.0,
              1);
  }
  table.begin_row();
  table.add("total");
  table.add(static_cast<double>(total) / 1e6, 3);
  table.add_percent(total ? 1.0 : 0.0);
  table.add(cycles_ ? static_cast<double>(total) / static_cast<double>(cycles_)
                    : 0.0,
            1);
  std::ostringstream os;
  os << table.to_text();
  return os.str();
}

void StageProfiler::print(std::ostream& os) const { os << report(); }

std::string StageProfiler::report_json() const {
  const std::uint64_t total = total_ns();
  std::ostringstream os;
  os << "{\"schema_version\":" << kMetricsSchemaVersion
     << ",\"cycles\":" << cycles_ << ",\"total_ns\":" << total
     << ",\"stages\":{";
  for (int i = 0; i < kNumSimStages; ++i) {
    if (i > 0) os << ",";
    os << "\n  \"" << sim_stage_name(static_cast<SimStage>(i))
       << "\":{\"ns\":" << ns_[i] << ",\"share\":"
       << (total ? static_cast<double>(ns_[i]) / static_cast<double>(total)
                 : 0.0)
       << ",\"ns_per_cycle\":"
       << (cycles_ ? static_cast<double>(ns_[i]) /
                         static_cast<double>(cycles_)
                   : 0.0)
       << "}";
  }
  os << "\n}}\n";
  return os.str();
}

void StageProfiler::export_metrics(MetricsRegistry& registry) const {
  registry.counter("profiler.cycles", cycles_);
  registry.counter("profiler.total_ns", total_ns());
  for (int i = 0; i < kNumSimStages; ++i) {
    registry.counter(std::string("profiler.stage.") +
                         sim_stage_name(static_cast<SimStage>(i)) + ".ns",
                     ns_[i]);
  }
}

}  // namespace bj
