#include "common/bjsim_cli.h"

namespace bj {

const std::vector<std::string>& bjsim_accepted_options() {
  static const std::vector<std::string> options = {
      "help",          "list",          "workload",
      "kernel",        "program",       "mode",
      "instructions",  "warmup",        "fault",
      "trace",         "trace-format",  "trace-cycles",
      "metrics-out",   "metrics-format", "dump-state",
      "diagnose",      "campaign",      "soft-errors",
      "oracle",        "profile",       "profile-json",
      "seed",          "jobs",          "json",
      "combine-packets", "no-serial-dispatch", "multi-packet-fetch",
      "slack",         "csv",
  };
  return options;
}

const char* bjsim_usage_text() {
  return R"(bjsim — BlackJack SMT hard-error-detection simulator

  --workload NAME       one of the 16 SPEC2000 stand-in kernels
  --kernel NAME         microkernel: sum | fib | matmul | chase | memcopy |
                        branchy | fpmix | quicksort
  --program FILE.s      assemble and run FILE.s (must halt)
  --mode M              single | srt | blackjack-ns | blackjack  [blackjack]
  --instructions N      measured committed instructions          [150000]
  --warmup N            warm-up commits excluded from stats      [20000]
  --fault SPEC          decoder:way=W,bit=B[,stuck=0|1]
                        backend:fu=F,way=W,bit=B[,stuck=0|1]
                          (F: int-alu int-mul fp-alu fp-mul mem-port)
                        payload:entry=E,bit=B[,stuck=0|1]
                        transient:at=N,bit=B
  --trace FILE          pipeline trace to FILE (see --trace-format); with
                        --campaign, a Chrome trace of the campaign's workers
  --trace-format F      text (per-commit log, the default) | konata (Konata/
                        Kanata pipeline viewer) | chrome (chrome://tracing /
                        Perfetto JSON)
  --trace-cycles N      keep only instructions retiring within the last N
                        cycles (0 = keep everything the ring buffer holds)
  --metrics-out FILE    write the unified metrics registry to FILE after the
                        run (single runs: core + profiler metrics; campaigns:
                        outcome/latency metrics)
  --metrics-format F    json (default) | prometheus
  --dump-state          dump machine state at the end of the run
  --diagnose            after a backend fault is detected, localize it by
                        deconfiguration and report the degraded-mode cost
  --campaign N          run an N-fault injection campaign on the selected
                        program/mode (uses --instructions as the per-run
                        commit budget, default 12000) and print the outcome
                        summary with wall-clock/throughput stats
  --soft-errors         campaign injects transient bit flips instead of
                        stuck-at hard faults
  --oracle              campaign runs the architectural oracle per leading
                        commit and reports silent divergences that never
                        reached memory as a distinct "oracle-divergence"
                        outcome (slower; off by default)
  --profile             single runs only: time each pipeline stage and print
                        a cycle-attribution table after the report
  --profile-json FILE   single runs only: write the stage profile as JSON
                        (schema shared with --metrics-out) to FILE
  --seed S              campaign fault-set seed                  [1234]
  --jobs J              worker threads for --campaign / --diagnose
                        (0 = one per hardware thread)            [0]
  --json FILE           stream one JSONL record per campaign run to FILE
  --combine-packets     enable the packet-combining extension
  --no-serial-dispatch  disable the packet-serial trailing dispatch gate
  --multi-packet-fetch  disable one-packet-per-cycle trailing fetch
  --slack N             trailing slack target                    [256]
  --csv                 emit the report as CSV
  --list                list workloads and kernels
  --help, -h            print this message
)";
}

}  // namespace bj
