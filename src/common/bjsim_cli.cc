#include "common/bjsim_cli.h"

namespace bj {

const std::vector<std::string>& bjsim_accepted_options() {
  static const std::vector<std::string> options = {
      "help",          "list",          "workload",
      "kernel",        "program",       "mode",
      "instructions",  "warmup",        "fault",
      "trace",         "trace-format",  "trace-cycles",
      "metrics-out",   "metrics-format", "dump-state",
      "diagnose",      "campaign",      "soft-errors",
      "oracle",        "profile",       "profile-json",
      "seed",          "jobs",          "json",
      "combine-packets", "no-serial-dispatch", "multi-packet-fetch",
      "slack",         "csv",           "store",
      "shard",         "merge",         "exhaustive",
      "test-count",    "checkpoint-every", "metrics-port",
      "store-verify",  "autopsy",       "flight-recorder",
      "fault-site",    "ecc",           "no-oracle",
  };
  return options;
}

const char* bjsim_usage_text() {
  return R"(bjsim — BlackJack SMT hard-error-detection simulator

  --workload NAME       one of the 16 SPEC2000 stand-in kernels
  --kernel NAME         microkernel: sum | fib | matmul | chase | memcopy |
                        branchy | fpmix | quicksort
  --program FILE.s      assemble and run FILE.s (must halt)
  --mode M              single | srt | blackjack-ns | blackjack  [blackjack]
  --instructions N      measured committed instructions          [150000]
  --warmup N            warm-up commits excluded from stats      [20000]
  --fault SPEC          decoder:way=W,bit=B[,stuck=0|1]
                        backend:fu=F,way=W,bit=B[,stuck=0|1]
                          (F: int-alu int-mul fp-alu fp-mul mem-port)
                        payload:entry=E,bit=B[,stuck=0|1]
                        regfile:row=R,bit=B[,stuck=0|1]
                        lvq:slot=S,bit=B[,stuck=0|1]
                        dtq:slot=S,bit=B[,stuck=0|1]
                        transient:at=N,bit=B[,site=S]
                          (S: backend-result iq-payload regfile-entry
                           lvq-slot dtq-slot; default backend-result.
                           Storage sites flip the stored word at write #N
                           and the flip persists until overwritten)
  --fault-site LIST     restrict --campaign injection to these sites
                        (comma-separated site names as for transient:site=,
                        plus frontend-decoder; default: the historical
                        decoder/backend/payload pool)
  --ecc SPEC            ECC on the storage arrays: a single codec (none |
                        hamming | hsiao) protects payload+regfile+lvq+dtq,
                        or per-array pairs, e.g.
                        --ecc payload=hsiao,regfile=hamming
  --trace FILE          pipeline trace to FILE (see --trace-format); with
                        --campaign, a Chrome trace of the campaign's workers
  --trace-format F      text (per-commit log, the default) | konata (Konata/
                        Kanata pipeline viewer) | chrome (chrome://tracing /
                        Perfetto JSON)
  --trace-cycles N      keep only instructions retiring within the last N
                        cycles (0 = keep everything the ring buffer holds)
  --metrics-out FILE    write the unified metrics registry to FILE after the
                        run (single runs: core + profiler metrics; campaigns:
                        outcome/latency metrics)
  --metrics-format F    json (default) | prometheus
  --dump-state          dump machine state at the end of the run
  --diagnose            after a backend fault is detected, localize it by
                        deconfiguration and report the degraded-mode cost
  --campaign N          run an N-fault injection campaign on the selected
                        program/mode (uses --instructions as the per-run
                        commit budget, default 12000) and print the outcome
                        summary with wall-clock/throughput stats
  --soft-errors         campaign injects transient bit flips instead of
                        stuck-at hard faults; implies --oracle (a transient
                        that corrupts state without reaching memory is
                        invisible otherwise) unless --no-oracle is given
  --exhaustive          campaign enumerates the full hard-fault space (every
                        site x way/unit/entry x bit x stuck value) instead of
                        sampling --campaign N faults
  --test-count F        with --exhaustive: draw F combinations from the space
                        (seed-derived, identical across jobs and shards);
                        0 = the whole space                      [0]
  --store DIR           campaign persistence root: the run checkpoints its
                        completed runs, golden store trace, and shuffle table
                        under DIR keyed by the campaign's config digest, and
                        a rerun resumes/warm-starts from whatever is there
  --checkpoint-every N  completed runs between store checkpoints [64]
  --shard I/N           run only the fault indices shard I of N owns (e.g.
                        2/4); shard outputs recombine with --merge
  --merge OUT           merge completed shard JSONL files (given as
                        positional arguments, before this flag) into OUT,
                        byte-identical to the unsharded campaign's canonical
                        JSONL; no simulation is run
  --store-verify DIR    fsck the campaign store at DIR (headers, digests,
                        record ordering, artifact checksums) and exit
  --metrics-port P      serve live campaign progress as Prometheus text on
                        http://127.0.0.1:P/metrics while the campaign runs
                        (0 = ephemeral port, printed on stderr)
  --autopsy[=SELECT]    forensic lockstep replay. With --campaign: autopsy
                        every stored run SELECT picks (escapes = sdc +
                        detected-late + oracle-divergence, the default;
                        detected; all = every non-benign run) and, with
                        --store, write canonical autopsy.jsonl next to
                        runs.jsonl. Single runs: re-run the hard --fault
                        against the lockstep oracle and print the first
                        divergence, propagation chain, and detection site
  --flight-recorder N   single runs: keep the last N cycles of pipeline
                        history in a ring and auto-dump it (--trace-format
                        chrome for Chrome JSON, Konata otherwise; files
                        flight-<reason>.*) when a check fires, the oracle
                        diverges, or a BJ_CHECK aborts
  --oracle              campaign runs the architectural oracle per leading
                        commit and reports silent divergences that never
                        reached memory as a distinct "oracle-divergence"
                        outcome (slower; off by default for hard-fault
                        campaigns, on by default with --soft-errors); with
                        --diagnose, oracle-check each trial too
  --no-oracle           opt out of the oracle check a --soft-errors
                        campaign implies
  --profile             single runs only: time each pipeline stage and print
                        a cycle-attribution table after the report
  --profile-json FILE   single runs only: write the stage profile as JSON
                        (schema shared with --metrics-out) to FILE
  --seed S              campaign fault-set seed                  [1234]
  --jobs J              worker threads for --campaign / --diagnose
                        (0 = one per hardware thread)            [0]
  --json FILE           stream one JSONL record per campaign run to FILE
  --combine-packets     enable the packet-combining extension
  --no-serial-dispatch  disable the packet-serial trailing dispatch gate
  --multi-packet-fetch  disable one-packet-per-cycle trailing fetch
  --slack N             trailing slack target                    [256]
  --csv                 emit the report as CSV
  --list                list workloads and kernels
  --help, -h            print this message
)";
}

bool bjsim_campaign_oracle(bool oracle_flag, bool soft_errors,
                           bool no_oracle_flag) {
  return oracle_flag || (soft_errors && !no_oracle_flag);
}

}  // namespace bj
