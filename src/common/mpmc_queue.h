// Lock-free multi-producer/multi-consumer queue for harness work
// distribution (ROADMAP item 1): a chain of bounded Vyukov-style rings —
// power-of-two slot arrays with per-slot sequence counters and cmpxchg
// claim/publish — that grows by sealing the full ring and epoch-publishing a
// larger successor. No operation ever takes a mutex; the only blocking is
// the bounded spin a consumer performs while a producer finishes publishing
// an already-claimed slot.
//
// Ring protocol (per ring, the classic bounded MPMC queue):
//   - slot `i` carries an atomic sequence number, initialised to `i`.
//   - push: claim position `pos` by cmpxchg on `tail` when
//     `slots[pos & mask].seq == pos` (slot free for this lap), write the
//     value, then publish with `seq = pos + 1`.
//   - pop: claim position `pos` by cmpxchg on `head` when
//     `slots[pos & mask].seq == pos + 1` (value published), read the value,
//     then release the slot for the next lap with `seq = pos + mask + 1`.
//
// Growth protocol (the auto-grow the mutex pool never needed):
//   - a producer that finds the ring full links a successor ring of twice
//     the capacity into `next` (cmpxchg, losers delete their allocation),
//     and only THEN seals the ring by setting kSealedBit in `tail` with
//     fetch_or — so a consumer that drains a sealed ring always has a
//     successor to advance to.
//   - the seal bit makes every in-flight push cmpxchg on the old ring fail
//     (the expected `tail` value changed), so no claim can land in a ring
//     after a consumer has concluded it is drained. Claims that won the
//     cmpxchg before the seal are below the sealed boundary and are drained
//     normally.
//   - consumers advance `pop_ring_` past a ring only when it is sealed AND
//     drained (head == sealed tail); producers walk `next` links from the
//     `push_ring_` hint to the newest ring. Retired rings are never freed
//     until the queue is destroyed (the chain is the epoch retire list —
//     at most O(log capacity) rings ever exist), so a straggler holding a
//     stale ring pointer can always safely read its atomics.
//
// Memory-order contract (the load-bearing pairs):
//   - slot publish `seq.store(release)` / slot claim-check
//     `seq.load(acquire)`: makes the value write visible to the popper (and
//     the pop's value read visible to the next-lap pusher).
//   - `next.compare_exchange(acq_rel)` / `next.load(acquire)`: a consumer
//     or producer that follows the link sees the successor ring fully
//     constructed.
//   - `tail.fetch_or(kSealedBit, acq_rel)` / `tail.load(acquire)`: a
//     consumer that observes the seal also observes the `next` link that was
//     published before it (and the sealed boundary it must drain to).
//   - `closed_.store(release)` / `closed_.load(acquire)`: a consumer that
//     observes the close sees every push that happened-before close(); this
//     is what lets a blocking pop() conclude "drained" safely.
//   - `push_ring_` / `pop_ring_` hint updates publish with release (CAS) and
//     every load that will dereference the pointer is acquire, so a thread
//     adopting a hint sees the Ring fully constructed.
//   - tail/head claim cmpxchg use relaxed success ordering: the claim
//     itself transfers no data — the slot sequence does — and RMWs on one
//     location are totally ordered regardless.
//
// Caveats (documented, not defended): values pushed concurrently with
// close() may or may not be observed by a draining pop(); callers must
// ensure every push() happens-before close() (the worker pool pushes all
// indices, closes, and only then lets workers drain). T must be
// default-constructible and movable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "common/check.h"

namespace bj {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t min_capacity = 64) {
    std::size_t cap = 4;
    while (cap < min_capacity) cap <<= 1;
    first_ = new Ring(cap, 0);
    push_ring_.store(first_, std::memory_order_relaxed);
    pop_ring_.store(first_, std::memory_order_relaxed);
  }

  ~MpmcQueue() {
    Ring* r = first_;
    while (r != nullptr) {
      Ring* next = r->next.load(std::memory_order_relaxed);
      delete r;
      r = next;
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Enqueues `value`. Never fails while the queue is open (a full ring
  // grows); returns false iff close() has been called.
  bool push(T value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    Ring* r = push_ring_.load(std::memory_order_acquire);
    for (;;) {
      while (Ring* n = r->next.load(std::memory_order_acquire)) r = n;
      std::size_t pos = r->tail.load(std::memory_order_relaxed);
      for (;;) {
        if (pos & kSealedBit) break;  // sealed underneath us; re-walk chain
        Slot& slot = r->slots[pos & r->mask];
        const std::size_t seq = slot.seq.load(std::memory_order_acquire);
        const auto dif = static_cast<std::ptrdiff_t>(seq) -
                         static_cast<std::ptrdiff_t>(pos);
        if (dif == 0) {
          if (r->tail.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
            slot.value = std::move(value);
            slot.seq.store(pos + 1, std::memory_order_release);
            advance_push_hint(r);
            return true;
          }
          // cmpxchg failure reloaded `pos`; retry against the new claim
          // boundary (which may now carry the seal bit).
        } else if (dif < 0) {
          // Ring full for this lap: link a larger successor, seal, move on.
          grow(r);
          break;
        } else {
          // Stale `pos` from before another producer's claim; reload.
          pos = r->tail.load(std::memory_order_relaxed);
        }
      }
    }
  }

  // Non-blocking dequeue. Returns false when no published value is
  // available right now — including the instant a producer has claimed a
  // slot but not yet published it (blocking pop() spins through that).
  bool try_pop(T* out) {
    Ring* r = pop_ring_.load(std::memory_order_acquire);
    for (;;) {
      std::size_t pos = r->head.load(std::memory_order_relaxed);
      for (;;) {
        Slot& slot = r->slots[pos & r->mask];
        const std::size_t seq = slot.seq.load(std::memory_order_acquire);
        const auto dif = static_cast<std::ptrdiff_t>(seq) -
                         static_cast<std::ptrdiff_t>(pos + 1);
        if (dif == 0) {
          if (r->head.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
            *out = std::move(slot.value);
            slot.seq.store(pos + r->mask + 1, std::memory_order_release);
            return true;
          }
          // cmpxchg failure reloaded `pos`; retry the freshly claimed head.
        } else if (dif < 0) {
          // Nothing published at head. Empty, an in-flight publish, or a
          // drained sealed ring whose successor holds the live items.
          const std::size_t tail = r->tail.load(std::memory_order_acquire);
          if (pos < (tail & ~kSealedBit)) return false;  // publish in flight
          if (!(tail & kSealedBit)) return false;        // genuinely empty
          Ring* next = r->next.load(std::memory_order_acquire);
          BJ_CHECK(next != nullptr, "sealed mpmc ring has a successor");
          Ring* expected = r;
          if (pop_ring_.compare_exchange_strong(expected, next,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
            r = next;
          } else {
            r = expected;  // another consumer advanced (possibly further)
          }
          break;  // restart on the successor ring
        } else {
          pos = r->head.load(std::memory_order_relaxed);
        }
      }
    }
  }

  // Blocking dequeue: spins (with yields) until a value arrives or the
  // queue is closed and drained. Returns false only in the latter case.
  bool pop(T* out) {
    int spins = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire) && drained()) {
        // One final attempt closes the window between the failed try_pop
        // and the drained() walk (a pre-close publish may have landed).
        return try_pop(out);
      }
      if (++spins < 64) {
        // brief spin: an in-flight publish resolves in nanoseconds
      } else {
        std::this_thread::yield();
      }
    }
  }

  // After close(), push() fails and pop() returns false once the queue is
  // drained. Idempotent. See the header comment for the close/push race
  // contract.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // True when every claimed slot in every ring has been consumed. Racy by
  // nature (new pushes may land immediately after), but exact once the
  // queue is closed and all pushes happened-before the close.
  bool drained() const {
    const Ring* r = pop_ring_.load(std::memory_order_acquire);
    while (r != nullptr) {
      const std::size_t tail = r->tail.load(std::memory_order_acquire);
      if (r->head.load(std::memory_order_acquire) != (tail & ~kSealedBit)) {
        return false;
      }
      r = r->next.load(std::memory_order_acquire);
    }
    return true;
  }

  // Capacity of the newest (push-side) ring.
  std::size_t capacity() const {
    const Ring* r = push_ring_.load(std::memory_order_acquire);
    while (const Ring* n = r->next.load(std::memory_order_acquire)) r = n;
    return r->mask + 1;
  }

  // Number of times a full ring grew into a larger successor.
  std::size_t grows() const {
    return grows_.load(std::memory_order_relaxed);
  }

  // Claimed-but-unconsumed item count, summed across live rings.
  // Approximate under concurrency; exact when quiescent.
  std::size_t approx_size() const {
    std::size_t total = 0;
    const Ring* r = pop_ring_.load(std::memory_order_acquire);
    while (r != nullptr) {
      const std::size_t tail =
          r->tail.load(std::memory_order_acquire) & ~kSealedBit;
      const std::size_t head = r->head.load(std::memory_order_acquire);
      if (tail > head) total += tail - head;
      r = r->next.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  static constexpr std::size_t kSealedBit =
      static_cast<std::size_t>(1) << (sizeof(std::size_t) * 8 - 1);

  struct Slot {
    std::atomic<std::size_t> seq;
    T value;
  };

  struct Ring {
    Ring(std::size_t capacity, std::size_t level)
        : mask(capacity - 1), level(level), slots(new Slot[capacity]) {
      BJ_CHECK((capacity & mask) == 0 && capacity >= 2,
               "mpmc ring capacity is a power of two");
      for (std::size_t i = 0; i < capacity; ++i) {
        slots[i].seq.store(i, std::memory_order_relaxed);
      }
    }
    ~Ring() { delete[] slots; }

    const std::size_t mask;
    const std::size_t level;  // position in the growth chain (hint ordering)
    Slot* const slots;
    alignas(64) std::atomic<std::size_t> tail{0};  // claim pos | kSealedBit
    alignas(64) std::atomic<std::size_t> head{0};
    alignas(64) std::atomic<Ring*> next{nullptr};
  };

  void grow(Ring* r) {
    if (r->next.load(std::memory_order_acquire) == nullptr) {
      Ring* fresh = new Ring((r->mask + 1) * 2, r->level + 1);
      Ring* expected = nullptr;
      if (r->next.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        grows_.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete fresh;  // another producer linked the successor first
      }
    }
    // Seal strictly after a successor exists: a consumer that observes the
    // seal bit (and a drained ring) always has somewhere to advance to.
    r->tail.fetch_or(kSealedBit, std::memory_order_acq_rel);
  }

  // Best-effort: move the producers' starting ring forward, never backward
  // (`level` orders the chain). Loads of `push_ring_` here must be acquire:
  // the hint is dereferenced (`hint->level`), and the Ring's construction is
  // only visible through the acquire edge pairing with the release publish —
  // a relaxed load races with the constructor of a just-linked successor.
  void advance_push_hint(Ring* r) {
    Ring* hint = push_ring_.load(std::memory_order_acquire);
    while (hint->level < r->level &&
           !push_ring_.compare_exchange_weak(hint, r,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
    }
  }

  Ring* first_;  // anchor of the ring chain; owns every ring ever grown
  alignas(64) std::atomic<Ring*> push_ring_;
  alignas(64) std::atomic<Ring*> pop_ring_;
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::size_t> grows_{0};
};

}  // namespace bj
