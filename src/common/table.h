// Plain-text table formatting for bench binaries: each experiment prints the
// same rows/series the paper reports, aligned for terminal reading, plus an
// optional CSV form for downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bj {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Starts a new row; values are appended with add()/add_percent().
  void begin_row();
  void add(const std::string& value);
  void add(double value, int precision = 2);
  void add_percent(double fraction, int precision = 1);
  void add_int(long long value);

  std::size_t rows() const { return rows_.size(); }

  // Renders an aligned text table.
  std::string to_text() const;
  // Renders RFC-4180-ish CSV (no quoting of embedded commas needed here).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bj
