// Small statistics accumulators used by the simulator to aggregate per-run
// metrics (coverage, interference, IPC components).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace bj {

// Accumulates a stream of doubles; reports count/mean/min/max/stddev.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  void add_n(double x, std::uint64_t times) {
    n_ += times;
    sum_ += x * static_cast<double>(times);
    sum_sq_ += x * x * static_cast<double>(times);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    return std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// A ratio counter: hits out of total, reported as a fraction or percent.
class Ratio {
 public:
  void record(bool hit) {
    ++total_;
    if (hit) ++hits_;
  }
  void add(std::uint64_t hits, std::uint64_t total) {
    hits_ += hits;
    total_ += total;
  }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t total() const { return total_; }
  double fraction() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }
  double percent() const { return 100.0 * fraction(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

// Sparse named counters, handy for one-off event counts in the pipeline.
// The map uses a transparent comparator so hot bump() calls with string
// literals compare as string_views; a std::string is only materialized the
// first time a name is seen.
class CounterSet {
 public:
  using Map = std::map<std::string, std::uint64_t, std::less<>>;

  void bump(std::string_view name, std::uint64_t by = 1) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      counters_.emplace(std::string(name), by);
    } else {
      it->second += by;
    }
  }
  // Stable address of a counter's storage (map nodes never move), so a hot
  // caller can pay the string lookup once and bump through the pointer
  // afterwards. Creates the entry exactly as a first bump() would.
  std::uint64_t& slot(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), 0u).first;
    }
    return it->second;
  }
  std::uint64_t get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const Map& all() const { return counters_; }

 private:
  Map counters_;
};

}  // namespace bj
