// Opt-in pipeline tracing.
//
// PipelineTracer is a ring buffer of per-instruction lifecycle records. The
// core appends one record per *ended* instruction — commit, squash, or
// shuffle-NOP retirement — under an `if (tracer_)` check, so the disabled
// path costs one predictable branch per end site and touches no memory. The
// record carries every stage timestamp the DynInst already tracks
// (fetch/dispatch/issue/complete) plus the end cycle, thread role, the
// frontend/backend ways the instruction used, its DTQ packet identity, and
// the squash cause; exporters replay the buffer into either Konata/Kanata
// format (per-instruction pipeline visualization) or Chrome trace-event
// JSON (chrome://tracing / Perfetto).
//
// CampaignTraceLog is the campaign-scale sibling: a mutex-guarded span list
// where each worker lane is a Chrome "thread" and each fault run (or
// golden-trace cache fill) is one complete event with provenance args.
//
// Both live in bj_common and know nothing about the ISA: the core fills the
// record's fixed-size label with disassembly on the (already opt-in) traced
// path.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bj {

// Stage timestamp "never reached" sentinel (a squashed instruction may die
// before dispatch; cycle 0 is a real cycle).
inline constexpr std::uint64_t kNoCycle = ~0ull;

enum class TraceEndKind : std::uint8_t {
  kCommit,     // retired architecturally
  kSquash,     // discarded on a pipeline flush
  kNopRetire,  // shuffle NOP released at issue (occupied a way, no commit)
};

enum class SquashCause : std::uint8_t {
  kNone,              // not squashed
  kBranchMispredict,  // leading-thread branch resolution flushed it
};

const char* trace_end_kind_name(TraceEndKind kind);
const char* squash_cause_name(SquashCause cause);

struct TraceRecord {
  std::uint64_t seq = 0;  // per-context program-order sequence
  std::uint64_t pc = 0;
  std::uint64_t packet_id = 0;  // trailing DTQ packet (0 = none)
  std::uint64_t fetch_cycle = kNoCycle;
  std::uint64_t dispatch_cycle = kNoCycle;
  std::uint64_t issue_cycle = kNoCycle;
  std::uint64_t complete_cycle = kNoCycle;
  std::uint64_t end_cycle = 0;  // commit / squash / nop-retire cycle
  std::uint8_t tid = 0;         // 0 leading, 1 trailing
  std::int8_t frontend_way = -1;
  std::int8_t backend_way = -1;
  TraceEndKind end = TraceEndKind::kCommit;
  SquashCause cause = SquashCause::kNone;
  char label[48] = {};  // disassembly, truncated; filled by the core

  void set_label(std::string_view text) {
    const std::size_t n = text.size() < sizeof(label) - 1
                              ? text.size()
                              : sizeof(label) - 1;
    std::memcpy(label, text.data(), n);
    label[n] = '\0';
  }
};

class PipelineTracer {
 public:
  // `capacity`: ring size in records (oldest evicted first). `cycle_window`:
  // when non-zero, exporters drop records whose end cycle is more than this
  // many cycles before the newest record's end cycle (--trace-cycles=N).
  explicit PipelineTracer(std::size_t capacity = 1u << 18,
                          std::uint64_t cycle_window = 0);

  void record(const TraceRecord& rec);

  std::size_t size() const {
    return ring_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }

  // Buffer contents oldest-first, with the cycle window applied.
  std::vector<TraceRecord> snapshot() const;

  // Kanata format v0004 (Konata). One lane, stages F/Ds/Is/Cm; retirement
  // type distinguishes commit (0) from flush (1).
  void write_konata(std::ostream& os) const;

  // Chrome trace-event JSON: one complete ("ph":"X") event per instruction,
  // tid = thread role, ts/dur in cycles, stage timestamps in args.
  void write_chrome(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::uint64_t cycle_window_;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;    // overwrite cursor once full
  std::uint64_t total_ = 0; // records ever pushed
};

// Crash/detection flight recorder: a last-N-cycles PipelineTracer ring that
// stays armed for the whole run and is dumped to disk only when something
// goes wrong — a redundancy-check detection, an oracle divergence, or a
// BJ_CHECK abort. Arming it only swings the core's existing `if (tracer_)`
// branches, so an armed-but-never-dumping recorder leaves CoreStats
// bit-identical to an untraced run.
//
// Dump files are named `<prefix>-<reason>.<ext>` (ext from the format); each
// reason dumps at most once per recorder so a detection storm cannot write
// the same ring a thousand times.
class FlightRecorder {
 public:
  enum class Format : std::uint8_t { kKonata, kChrome };

  // `last_cycles`: the ring's cycle window (--flight-recorder=N). The record
  // capacity is sized generously relative to the window; the window is the
  // contract.
  FlightRecorder(std::uint64_t last_cycles, std::string path_prefix,
                 Format format = Format::kKonata);

  // The ring the core records into (wire with Core::set_flight_recorder).
  PipelineTracer& tracer() { return tracer_; }
  const PipelineTracer& tracer() const { return tracer_; }

  // Writes the ring as `<prefix>-<reason>.<ext>`. Returns the path written,
  // or empty if this reason already dumped or the file cannot be opened.
  std::string dump(std::string_view reason);

  int dumps() const { return static_cast<int>(dumped_.size()); }
  std::uint64_t window_cycles() const { return window_; }
  const std::string& prefix() const { return prefix_; }

  // Registers `recorder` (or nullptr to disarm) as the process-wide
  // BJ_CHECK abort target: a failed structural invariant dumps the ring as
  // `<prefix>-check-abort.<ext>` before aborting. At most one recorder is
  // armed at a time; the caller must disarm before the recorder dies.
  static void arm_on_check_abort(FlightRecorder* recorder);

 private:
  PipelineTracer tracer_;
  std::uint64_t window_;
  std::string prefix_;
  Format format_;
  std::vector<std::string> dumped_;  // reasons already written
};

// Campaign-scale Chrome trace: worker lanes, one span per fault run, golden
// trace cache fills, with free-form args carrying provenance. Thread-safe —
// campaign workers append concurrently.
class CampaignTraceLog {
 public:
  // Reserved lane for cross-worker infrastructure spans (cache fills).
  static constexpr int kSharedLane = 1000;

  // `args_json`: either empty or a comma-joined list of `"key":value` pairs
  // (no surrounding braces) — spliced verbatim into the event's args object.
  void add_span(std::string_view name, std::string_view cat, int lane,
                double ts_us, double dur_us, std::string args_json = {});
  void set_lane_name(int lane, std::string_view name);

  std::size_t size() const;
  void write_chrome(std::ostream& os) const;

 private:
  struct Span {
    std::string name;
    std::string cat;
    int lane = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::string args_json;
  };
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<int, std::string> lane_names_;
};

}  // namespace bj
