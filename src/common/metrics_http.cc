#include "common/metrics_http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace bj {

namespace {

// Writes the whole buffer, riding out short writes and EINTR; gives up on a
// real error (the scraper will just retry next interval). MSG_NOSIGNAL keeps
// a scraper that disconnected mid-response from killing the whole process
// with SIGPIPE — the failed send returns EPIPE instead and the response is
// simply dropped.
void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
     << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(int port,
                                     std::function<std::string()> producer)
    : producer_(std::move(producer)) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve(); });
}

MetricsHttpServer::~MetricsHttpServer() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // shutdown() wakes the blocked accept() with an error; the fd itself is
  // closed only after the thread has joined, so serve() never races a
  // recycled descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void MetricsHttpServer::serve() {
  while (!stopping_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) break;
      continue;
    }
    // One short request per connection; 4 KiB is generous for a scrape GET.
    char buf[4096];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < sizeof(buf)) {
      const ssize_t n = ::read(client, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    const bool is_get = request.rfind("GET ", 0) == 0;
    std::string path;
    if (is_get) {
      const std::size_t end = request.find(' ', 4);
      if (end != std::string::npos) path = request.substr(4, end - 4);
    }
    if (is_get && path == "/metrics") {
      write_all(client, http_response(200, "OK", producer_()));
    } else if (is_get && path == "/healthz") {
      // Liveness probe: answers as long as the serve loop is running,
      // without invoking the producer (a wedged producer should fail the
      // scrape, not the liveness check).
      write_all(client, http_response(200, "OK", "ok\n"));
    } else {
      write_all(client,
                http_response(404, "Not Found",
                              "try GET /metrics or GET /healthz\n"));
    }
    ::close(client);
  }
}

}  // namespace bj
