// Always-on invariant checks for the simulator's modeled hardware structures.
//
// assert() compiles out under NDEBUG (both the Release and RelWithDebInfo
// CMake configurations define it), which previously let a push on a full
// queue silently wrap and corrupt in-flight state instead of stopping the
// run. BJ_CHECK stays live in every build type: a violated structural
// invariant aborts immediately with the queue name and location, which is
// always cheaper than debugging a corrupted campaign result.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bj::detail {

// Last-gasp callback slot invoked after the failure message but before
// abort(). The flight recorder registers here so a structural-invariant
// abort still leaves the last-N-cycles pipeline trace on disk. Function-
// local static so the header stays include-order safe.
inline void (*&check_abort_hook())() {
  static void (*hook)() = nullptr;
  return hook;
}

[[noreturn]] inline void check_failed(const char* cond, const char* what,
                                      const char* file, int line) {
  std::fprintf(stderr, "BJ_CHECK failed: %s [%s] at %s:%d\n", cond, what, file,
               line);
  std::fflush(stderr);
  if (check_abort_hook() != nullptr) {
    // Disarm before running: a BJ_CHECK tripped inside the hook itself must
    // fall straight through to abort instead of recursing.
    void (*hook)() = check_abort_hook();
    check_abort_hook() = nullptr;
    hook();
  }
  std::abort();
}

}  // namespace bj::detail

namespace bj {

// Registers (or with nullptr, clears) the pre-abort hook. At most one is
// live at a time; the caller owns any state the hook reaches.
inline void set_check_abort_hook(void (*hook)()) {
  detail::check_abort_hook() = hook;
}

}  // namespace bj

// `what` names the structure or invariant (e.g. the queue's name) so the
// abort message identifies which modeled resource overflowed.
#define BJ_CHECK(cond, what)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::bj::detail::check_failed(#cond, (what), __FILE__, __LINE__);  \
    }                                                                 \
  } while (0)
