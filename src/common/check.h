// Always-on invariant checks for the simulator's modeled hardware structures.
//
// assert() compiles out under NDEBUG (both the Release and RelWithDebInfo
// CMake configurations define it), which previously let a push on a full
// queue silently wrap and corrupt in-flight state instead of stopping the
// run. BJ_CHECK stays live in every build type: a violated structural
// invariant aborts immediately with the queue name and location, which is
// always cheaper than debugging a corrupted campaign result.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bj::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* what,
                                      const char* file, int line) {
  std::fprintf(stderr, "BJ_CHECK failed: %s [%s] at %s:%d\n", cond, what, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace bj::detail

// `what` names the structure or invariant (e.g. the queue's name) so the
// abort message identifies which modeled resource overflowed.
#define BJ_CHECK(cond, what)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::bj::detail::check_failed(#cond, (what), __FILE__, __LINE__);  \
    }                                                                 \
  } while (0)
