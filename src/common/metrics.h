// Unified metrics registry. Every component that used to hand-roll its own
// report serialization (CoreStats tables, campaign JSONL summaries,
// StageProfiler tables) registers its numbers here behind stable dotted
// names ("core.cycles", "shuffle.cache.hits", "profiler.stage.fetch.ns"),
// and one pair of writers handles exposition: pretty-printed JSON for
// artifacts (BENCH_*.json style) and Prometheus text for scrape endpoints.
//
// The registry is a *snapshot* container, not a live instrumentation layer:
// simulation code keeps its raw counters (CoreStats, StageProfiler, ...) and
// exports them once at report time, so registering metrics costs the hot
// path nothing.
//
// Naming scheme (documented in ARCHITECTURE.md "Observability"):
//   <subsystem>.<group>.<metric>, lower-case, dot-separated, stable across
//   releases. The JSON writer emits names verbatim; the Prometheus writer
//   maps '.' and '-' to '_' and prefixes "bj_".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.h"

namespace bj {

// Version stamp shared by every machine-readable observability artifact:
// metrics JSON/Prometheus, --profile-json, campaign JSONL headers, and the
// trace exporters. Bump when a field changes meaning or disappears.
inline constexpr int kMetricsSchemaVersion = 1;

// Power-of-two-bucket histogram for wide-dynamic-range cycle counts
// (detection latency spans 1 to watchdog-timeout cycles). Bucket i counts
// values v with 2^i <= v+1 < 2^(i+1), i.e. bucket 0 holds the value 0.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // 2^40 cycles ≫ any run length

  void add(std::uint64_t value) {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  void merge(const Histogram& other) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  // Quantile estimate from the log2 buckets: walk the cumulative counts to
  // the bucket holding rank q*count, then interpolate linearly inside it.
  // Exact only when the bucket is one value wide; otherwise the error is
  // bounded by the bucket span, which is the resolution this histogram
  // promises. Clamped to [min, max] so p0/p100 are exact.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min());
    if (q >= 1.0) return static_cast<double>(max_);
    const double target = q * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const auto before = static_cast<double>(cumulative);
      cumulative += buckets_[i];
      if (static_cast<double>(cumulative) < target) continue;
      const double lo = static_cast<double>(bucket_floor(i));
      const double hi = i + 1 < kBuckets
                            ? static_cast<double>(bucket_floor(i + 1))
                            : static_cast<double>(max_);
      const double within =
          (target - before) / static_cast<double>(buckets_[i]);
      double value = lo + (hi - lo) * within;
      const auto floor_v = static_cast<double>(min());
      const auto ceil_v = static_cast<double>(max_);
      if (value < floor_v) value = floor_v;
      if (value > ceil_v) value = ceil_v;
      return value;
    }
    return static_cast<double>(max_);
  }
  // Inclusive lower bound of bucket i's value range.
  static std::uint64_t bucket_floor(int i) {
    return i == 0 ? 0 : (1ull << i) - 1;
  }
  static int bucket_of(std::uint64_t value) {
    int b = 0;
    std::uint64_t v = value + 1;
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t {
    kCounter,  // monotonic uint64
    kGauge,    // instantaneous double
    kRatio,    // hits / total
    kStat,     // RunningStat summary
    kHistogram,
    kText,  // string-valued metadata (mode, workload, version)
  };

  // One registered metric. Scalar kinds use the matching field; the others
  // are ignored. Stored by value so a registry snapshot owns its data.
  struct Metric {
    Kind kind = Kind::kCounter;
    std::uint64_t value = 0;     // kCounter
    double gauge = 0.0;          // kGauge
    std::uint64_t hits = 0;      // kRatio
    std::uint64_t total = 0;     // kRatio
    RunningStat stat;            // kStat
    Histogram histogram;         // kHistogram
    std::string text;            // kText
  };

  void counter(std::string_view name, std::uint64_t value);
  void gauge(std::string_view name, double value);
  void ratio(std::string_view name, std::uint64_t hits, std::uint64_t total);
  void ratio(std::string_view name, const Ratio& r) {
    ratio(name, r.hits(), r.total());
  }
  void stat(std::string_view name, const RunningStat& s);
  void histogram(std::string_view name, const Histogram& h);
  void text(std::string_view name, std::string_view value);

  bool has(std::string_view name) const;
  // Lookup helpers (tests / assertions). Return 0 / empty when absent or of
  // a different kind.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  std::string text_value(std::string_view name) const;

  std::size_t size() const { return metrics_.size(); }
  const std::map<std::string, Metric, std::less<>>& all() const {
    return metrics_;
  }

  // {"schema_version":1,"metrics":{"core.cycles":123,
  //  "shuffle.cache.hit_rate":{"hits":..,"total":..,"fraction":..}, ...}}
  // Names sorted (std::map order), one metric per line: diffable artifacts.
  void write_json(std::ostream& os) const;

  // Prometheus text exposition format v0.0.4. Dotted names become
  // bj_<name-with-underscores>; ratios expand to _hits/_total, stats to
  // _count/_sum/_min/_max, histograms to cumulative le-labelled buckets.
  void write_prometheus(std::ostream& os) const;

 private:
  Metric& slot(std::string_view name);
  std::map<std::string, Metric, std::less<>> metrics_;
};

// Writes `s` as a JSON string literal (quotes + escapes) — shared by the
// metrics writer, the trace exporters, and the campaign JSONL records.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace bj
