// Single source of truth for the bjsim command-line surface: the usage text
// and the set of long options the driver actually consumes. tools/bjsim.cc
// prints and parses against these, and tests/test_bjsim_cli.cc asserts the
// two stay in sync (every accepted option is documented, and the usage text
// never advertises an option the parser does not accept) — the doc/flag
// drift this module exists to prevent.
#pragma once

#include <string>
#include <vector>

namespace bj {

// Every long option bjsim consumes, without the leading "--". "help" also
// has the short alias "-h" (the only short option).
const std::vector<std::string>& bjsim_accepted_options();

// The --help text. Mentions every entry of bjsim_accepted_options() as
// "--<name>" at least once.
const char* bjsim_usage_text();

// The campaign's effective oracle setting: --soft-errors implies the oracle
// (a transient that corrupts state without reaching memory is otherwise
// invisible, so oracle-free soft-error campaigns under-report divergence)
// unless --no-oracle opts out; an explicit --oracle forces it on for any
// campaign. Pinned by test_bjsim_cli so the implication cannot silently
// regress to the old always-opt-in behaviour.
bool bjsim_campaign_oracle(bool oracle_flag, bool soft_errors,
                           bool no_oracle_flag);

}  // namespace bj
