#include "common/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/metrics.h"

namespace bj {

const char* trace_end_kind_name(TraceEndKind kind) {
  switch (kind) {
    case TraceEndKind::kCommit: return "commit";
    case TraceEndKind::kSquash: return "squash";
    case TraceEndKind::kNopRetire: return "nop-retire";
  }
  return "?";
}

const char* squash_cause_name(SquashCause cause) {
  switch (cause) {
    case SquashCause::kNone: return "none";
    case SquashCause::kBranchMispredict: return "branch-mispredict";
  }
  return "?";
}

PipelineTracer::PipelineTracer(std::size_t capacity,
                               std::uint64_t cycle_window)
    : capacity_(capacity == 0 ? 1 : capacity), cycle_window_(cycle_window) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1u << 16));
}

void PipelineTracer::record(const TraceRecord& rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[next_] = rec;
    next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
  }
  ++total_;
}

std::vector<TraceRecord> PipelineTracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Oldest-first: the segment after the overwrite cursor precedes the
  // segment before it once the ring has wrapped.
  for (std::size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  if (cycle_window_ > 0 && !out.empty()) {
    std::uint64_t newest = 0;
    for (const TraceRecord& r : out) newest = std::max(newest, r.end_cycle);
    const std::uint64_t floor =
        newest > cycle_window_ ? newest - cycle_window_ : 0;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [floor](const TraceRecord& r) {
                               return r.end_cycle < floor;
                             }),
              out.end());
  }
  return out;
}

namespace {

// A record's earliest known cycle (squashed instructions may have no
// timestamps past fetch).
std::uint64_t record_start(const TraceRecord& r) {
  if (r.fetch_cycle != kNoCycle) return r.fetch_cycle;
  if (r.dispatch_cycle != kNoCycle) return r.dispatch_cycle;
  if (r.issue_cycle != kNoCycle) return r.issue_cycle;
  if (r.complete_cycle != kNoCycle) return r.complete_cycle;
  return r.end_cycle;
}

struct KonataEvent {
  std::uint64_t cycle;
  std::string text;
};

}  // namespace

void PipelineTracer::write_konata(std::ostream& os) const {
  std::vector<TraceRecord> recs = snapshot();
  std::stable_sort(recs.begin(), recs.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return record_start(a) < record_start(b);
                   });

  // Generate each instruction's events in its own (nondecreasing) cycle
  // order, then stable-sort the whole stream by cycle: Kanata consumers
  // require cycle records to only ever advance.
  std::vector<KonataEvent> events;
  events.reserve(recs.size() * 6);
  auto emit = [&](std::uint64_t cycle, std::string text) {
    events.push_back(KonataEvent{cycle, std::move(text)});
  };
  for (std::size_t id = 0; id < recs.size(); ++id) {
    const TraceRecord& r = recs[id];
    const std::uint64_t start = record_start(r);
    const std::string sid = std::to_string(id);
    emit(start, "I\t" + sid + "\t" + std::to_string(r.seq) + "\t" +
                    std::to_string(r.tid));
    emit(start, "L\t" + sid + "\t0\t" + r.label);
    std::string detail = "pc=" + std::to_string(r.pc) +
                         " fe=" + std::to_string(r.frontend_way) +
                         " be=" + std::to_string(r.backend_way);
    if (r.packet_id != 0) detail += " pkt=" + std::to_string(r.packet_id);
    if (r.end != TraceEndKind::kCommit) {
      detail += std::string(" end=") + trace_end_kind_name(r.end);
    }
    if (r.cause != SquashCause::kNone) {
      detail += std::string(" cause=") + squash_cause_name(r.cause);
    }
    emit(start, "L\t" + sid + "\t1\t" + detail);
    // Stage starts; a later S in the same lane closes the previous stage,
    // and R closes the final one.
    std::uint64_t prev = start;
    auto stage = [&](std::uint64_t cycle, const char* name) {
      if (cycle == kNoCycle) return;
      const std::uint64_t at = std::max(cycle, prev);
      emit(at, "S\t" + sid + "\t0\t" + name);
      prev = at;
    };
    stage(r.fetch_cycle, "F");
    stage(r.dispatch_cycle, "Ds");
    stage(r.issue_cycle, "Is");
    stage(r.complete_cycle, "Cm");
    const std::uint64_t end = std::max(r.end_cycle, prev);
    emit(end, "R\t" + sid + "\t" + std::to_string(r.seq) + "\t" +
                  (r.end == TraceEndKind::kSquash ? "1" : "0"));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const KonataEvent& a, const KonataEvent& b) {
                     return a.cycle < b.cycle;
                   });

  os << "Kanata\t0004\n";
  if (events.empty()) return;
  std::uint64_t cur = events.front().cycle;
  os << "C=\t" << cur << "\n";
  for (const KonataEvent& ev : events) {
    if (ev.cycle > cur) {
      os << "C\t" << (ev.cycle - cur) << "\n";
      cur = ev.cycle;
    }
    os << ev.text << "\n";
  }
}

namespace {

void chrome_inst_event(std::ostream& os, const TraceRecord& r) {
  const std::uint64_t start = record_start(r);
  const std::uint64_t end = std::max(r.end_cycle, start);
  os << "{\"name\":";
  write_json_string(os, r.label[0] != '\0' ? r.label : "inst");
  os << ",\"cat\":";
  write_json_string(os, trace_end_kind_name(r.end));
  os << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << static_cast<int>(r.tid)
     << ",\"ts\":" << start << ",\"dur\":" << (end - start)
     << ",\"args\":{\"seq\":" << r.seq << ",\"pc\":" << r.pc
     << ",\"packet\":" << r.packet_id
     << ",\"fe_way\":" << static_cast<int>(r.frontend_way)
     << ",\"be_way\":" << static_cast<int>(r.backend_way);
  auto cycle_arg = [&](const char* key, std::uint64_t c) {
    if (c != kNoCycle) os << ",\"" << key << "\":" << c;
  };
  cycle_arg("fetch", r.fetch_cycle);
  cycle_arg("dispatch", r.dispatch_cycle);
  cycle_arg("issue", r.issue_cycle);
  cycle_arg("complete", r.complete_cycle);
  os << ",\"end\":" << r.end_cycle << ",\"end_kind\":\""
     << trace_end_kind_name(r.end) << "\"";
  if (r.cause != SquashCause::kNone) {
    os << ",\"squash_cause\":\"" << squash_cause_name(r.cause) << "\"";
  }
  os << "}}";
}

}  // namespace

void PipelineTracer::write_chrome(std::ostream& os) const {
  const std::vector<TraceRecord> recs = snapshot();
  os << "{\"schema_version\":" << kMetricsSchemaVersion
     << ",\"traceEvents\":[\n";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"leading\"}},\n";
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
        "\"args\":{\"name\":\"trailing\"}}";
  for (const TraceRecord& r : recs) {
    os << ",\n";
    chrome_inst_event(os, r);
  }
  os << "\n]}\n";
}

namespace {

// Ring capacity per window cycle: the widest machine ends well under eight
// instructions per cycle, so 8 records/cycle can never age out an
// instruction that is still inside the window. Bounded so a huge window
// cannot ask for an unbounded ring.
std::size_t flight_capacity(std::uint64_t window) {
  const std::uint64_t want = window * 8;
  const std::uint64_t lo = 1u << 12;
  const std::uint64_t hi = 1u << 20;
  return static_cast<std::size_t>(want < lo ? lo : (want > hi ? hi : want));
}

FlightRecorder*& armed_flight_recorder() {
  static FlightRecorder* armed = nullptr;
  return armed;
}

void flight_check_abort_trampoline() {
  if (armed_flight_recorder() != nullptr) {
    armed_flight_recorder()->dump("check-abort");
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::uint64_t last_cycles,
                               std::string path_prefix, Format format)
    : tracer_(flight_capacity(last_cycles == 0 ? 1 : last_cycles),
              last_cycles == 0 ? 1 : last_cycles),
      window_(last_cycles == 0 ? 1 : last_cycles),
      prefix_(std::move(path_prefix)),
      format_(format) {}

std::string FlightRecorder::dump(std::string_view reason) {
  for (const std::string& done : dumped_) {
    if (done == reason) return {};
  }
  const std::string path = prefix_ + "-" + std::string(reason) +
                           (format_ == Format::kKonata ? ".kanata" : ".json");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {};
  if (format_ == Format::kKonata) {
    tracer_.write_konata(out);
  } else {
    tracer_.write_chrome(out);
  }
  out.flush();
  if (!out) return {};
  dumped_.push_back(std::string(reason));
  return path;
}

void FlightRecorder::arm_on_check_abort(FlightRecorder* recorder) {
  armed_flight_recorder() = recorder;
  set_check_abort_hook(recorder != nullptr ? &flight_check_abort_trampoline
                                           : nullptr);
}

void CampaignTraceLog::add_span(std::string_view name, std::string_view cat,
                                int lane, double ts_us, double dur_us,
                                std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::string(name), std::string(cat), lane, ts_us,
                        dur_us, std::move(args_json)});
}

void CampaignTraceLog::set_lane_name(int lane, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane] = std::string(name);
}

std::size_t CampaignTraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void CampaignTraceLog::write_chrome(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"schema_version\":" << kMetricsSchemaVersion
     << ",\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& [lane, name] : lane_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << lane
       << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  }
  for (const Span& s : spans_) {
    sep();
    os << "{\"name\":";
    write_json_string(os, s.name);
    os << ",\"cat\":";
    write_json_string(os, s.cat);
    os << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.lane << ",\"ts\":" << s.ts_us
       << ",\"dur\":" << s.dur_us << ",\"args\":{" << s.args_json << "}}";
  }
  os << "\n]}\n";
}

}  // namespace bj
