// Profile-driven kernel generator. Produces a deterministic endless (or
// bounded) loop whose instruction mix, dependence structure, memory
// footprint, and branch behaviour follow the profile. Both the emulator and
// the pipeline execute the same eval() semantics, so generated values (even
// FP inf/NaN excursions) are bit-reproducible.
#include "workload/profile.h"

#include <cassert>
#include <stdexcept>

#include "common/rng.h"
#include "isa/builder.h"

namespace bj {
namespace {

constexpr std::uint64_t kHeapBase = 1ull << 20;

// Register conventions used by generated kernels (see generator design in
// DESIGN.md): r1 base, r2 ws-mask, r3 iteration counter, r4 offset, r5
// effective base, r6/r7 scratch, r8.. value pools, r30 iteration limit.
constexpr int kBase = 1;
constexpr int kMask = 2;
constexpr int kIter = 3;
constexpr int kOffset = 4;
constexpr int kEffBase = 5;
constexpr int kScratch = 6;
constexpr int kTest = 7;
constexpr int kPoolFirst = 8;
constexpr int kPoolCount = 16;  // r8..r23 and f8..f23
constexpr int kLimit = 30;

class KernelEmitter {
 public:
  explicit KernelEmitter(const WorkloadProfile& profile)
      : p_(profile),
        rng_(profile.seed != 0 ? profile.seed : hash_name(profile.name)),
        b_(profile.name) {}

  Program generate() {
    emit_data_image();
    emit_init();
    b_.label("loop_top");
    emit_body();
    emit_loop_tail();
    return b_.build();
  }

 private:
  int pool_reg(int i) const { return kPoolFirst + (i % kPoolCount); }
  int num_chains() const { return std::min(p_.dep_chains, kPoolCount - 2); }
  int chain_reg(int chain) const { return kPoolFirst + (chain % num_chains()); }
  // A pool register that is not a chain head: written only at init, so using
  // it as a second source adds no serialization. This keeps the dependence
  // chains independent — dep_chains is then a faithful ILP knob.
  int random_operand_reg() {
    const int non_chain = kPoolCount - num_chains();
    return kPoolFirst + num_chains() +
           static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(
               non_chain)));
  }

  void emit_data_image() {
    // Seed the first pages of the working set so early loads return varied
    // values (unwritten memory reads as zero).
    const std::uint64_t words =
        std::min<std::uint64_t>(p_.working_set_bytes / 8, 4096);
    for (std::uint64_t w = 0; w < words; ++w) {
      b_.data_word(kHeapBase + w * 8, rng_.next_u64());
    }
  }

  void emit_init() {
    assert((p_.working_set_bytes & (p_.working_set_bytes - 1)) == 0 &&
           "working set must be a power of two");
    b_.li(kBase, kHeapBase);
    b_.li(kMask, p_.working_set_bytes - 8);  // keeps offsets 8-aligned
    b_.li(kIter, 0);
    b_.li(kOffset, 0);
    b_.add(kEffBase, kBase, kOffset);
    if (p_.iterations != 0) b_.li(kLimit, p_.iterations);
    // Warm the cacheable prefix of the working set so steady-state locality
    // behaviour starts immediately for cache-resident profiles. Streaming
    // profiles set warm_prefix_bytes = 0: their steady state is the cold
    // miss stream itself.
    const std::uint64_t touch_bytes =
        p_.warm_prefix_bytes == ~0ull
            ? std::min<std::uint64_t>(p_.working_set_bytes, 256 * 1024)
            : std::min(p_.warm_prefix_bytes, p_.working_set_bytes);
    if (touch_bytes > 0) {
      b_.li(27, kHeapBase);
      b_.li(28, kHeapBase + touch_bytes);
      b_.label("warm_loop");
      b_.ld(kScratch, 27, 0);
      b_.addi(27, 27, 64);
      b_.blt(27, 28, "warm_loop");
    }
    // r29 is a per-iteration LCG whose bits drive the data-dependent
    // branches: genuine 50/50 directions that gshare cannot learn.
    b_.li(29, rng_.next_u64() | 1);
    for (int i = 0; i < kPoolCount; ++i) {
      b_.li(pool_reg(i), rng_.next_below(1 << 16) | 1);
    }
    for (int i = 0; i < kPoolCount; ++i) {
      // FP pool values derived from the int pool (bounded magnitudes).
      b_.itof(pool_reg(i), pool_reg(i));
    }
  }

  void emit_body() {
    // Advance the branch-entropy LCG once per iteration.
    b_.li(kScratch, 6364136223846793005ull);
    b_.mul(29, 29, kScratch);
    b_.addi(29, 29, 12345);
    for (int op = 0; op < p_.body_ops; ++op) {
      const double r = rng_.next_double();
      if (r < p_.load_fraction) {
        emit_load(op);
      } else if (r < p_.load_fraction + p_.store_fraction) {
        emit_store();
      } else if (r <
                 p_.load_fraction + p_.store_fraction + p_.branch_fraction) {
        emit_branch(op);
      } else if (rng_.chance(p_.fp_fraction)) {
        emit_fp_compute(op);
      } else {
        emit_int_compute(op);
      }
    }
  }

  // Loads deposit into a small ring of temporary registers (r24..r26 /
  // f24..f26) that compute ops later consume; stores and data-dependent
  // branches read chain registers. This wiring matters twice over: memory
  // latency enters the dependence chains only through a consuming op (so
  // dep_chains stays a faithful ILP knob), and every computed value
  // eventually reaches a store, so an injected hard error propagates to the
  // architectural check surface.
  int temp_reg() { return 24 + static_cast<int>(rng_.next_below(3)); }
  int random_chain_reg() {
    return chain_reg(static_cast<int>(rng_.next_below(
        static_cast<std::uint64_t>(num_chains()))));
  }

  void emit_load(int op) {
    (void)op;
    const int offset = static_cast<int>(rng_.next_below(16)) * 8;
    if (rng_.chance(p_.fp_fraction)) {
      b_.fld(temp_reg(), kEffBase, offset);
    } else {
      b_.ld(temp_reg(), kEffBase, offset);
    }
  }

  void emit_store() {
    const int offset = static_cast<int>(rng_.next_below(16)) * 8;
    if (rng_.chance(p_.fp_fraction)) {
      b_.fst(random_chain_reg(), kEffBase, offset);
    } else {
      b_.st(random_chain_reg(), kEffBase, offset);
    }
  }

  void emit_branch(int op) {
    const std::string skip = "skip" + std::to_string(label_counter_++);
    if (rng_.chance(p_.branch_regularity)) {
      // Counter-pattern branch: taken once every 2^k iterations — mostly
      // fall-through (keeps fetch groups whole) and learnable by gshare.
      const std::uint64_t period_mask = (2ull << rng_.next_below(3)) - 1;
      b_.andi(kTest, kIter, period_mask);
      b_.beq(kTest, 0, skip);
    } else if (rng_.chance(0.5)) {
      // Data-dependent branch on the LCG: a genuine 50/50 direction no
      // predictor can learn (the mispredict source for low-regularity
      // profiles).
      b_.srli(kTest, 29, 1 + static_cast<int>(rng_.next_below(48)));
      b_.andi(kTest, kTest, 1);
      b_.beq(kTest, 0, skip);
    } else {
      // Data-dependent branch on a chain value: sensitive to corrupted
      // computation (control-flow fault propagation).
      b_.andi(kTest, random_chain_reg(), 1);
      b_.beq(kTest, 0, skip);
    }
    // Fall-through filler the branch jumps over.
    b_.addi(chain_reg(op), chain_reg(op), 1);
    b_.label(skip);
  }

  // Second source: half the time a load temp (consumes memory values), half
  // the time an init-constant pool register (no added serialization).
  int second_source() {
    return rng_.chance(0.5) ? temp_reg() : random_operand_reg();
  }

  void emit_int_compute(int op) {
    const int dst = chain_reg(op);
    const int other = second_source();
    if (rng_.chance(p_.int_mul_fraction)) {
      if (rng_.chance(p_.int_div_fraction)) {
        b_.ori(kScratch, other, 1);  // never divide by zero
        b_.div(dst, dst, kScratch);
        b_.ori(dst, dst, 1);         // keep chain values non-degenerate
      } else {
        b_.mul(dst, dst, other);
      }
      return;
    }
    // add/sub/xor keep chain values varying (or/and would saturate bits and
    // make data-dependent branches degenerate to constants).
    switch (rng_.next_below(5)) {
      case 0: b_.add(dst, dst, other); break;
      case 1: b_.sub(dst, dst, other); break;
      case 2: b_.xor_(dst, dst, other); break;
      case 3: b_.add(dst, dst, other); b_.xori(dst, dst, 0x5555); break;
      default: b_.addi(dst, dst, static_cast<std::int64_t>(
                            rng_.next_below(255)) - 127);
    }
  }

  void emit_fp_compute(int op) {
    const int dst = chain_reg(op);
    const int other = second_source();
    if (rng_.chance(p_.fp_mul_fraction)) {
      if (rng_.chance(p_.fp_div_fraction)) {
        b_.fdiv(dst, dst, other);
      } else {
        b_.fmul(dst, dst, other);
      }
      return;
    }
    switch (rng_.next_below(4)) {
      case 0: b_.fadd(dst, dst, other); break;
      case 1: b_.fsub(dst, dst, other); break;
      case 2: b_.fmin(dst, dst, other); break;
      default: b_.fmax(dst, dst, other);
    }
  }

  void emit_loop_tail() {
    b_.addi(kIter, kIter, 1);
    b_.addi(kOffset, kOffset, static_cast<std::int64_t>(p_.stride_bytes));
    b_.and_(kOffset, kOffset, kMask);
    b_.add(kEffBase, kBase, kOffset);
    if (p_.iterations != 0) {
      b_.blt(kIter, kLimit, "loop_top");
      b_.halt();
    } else {
      b_.jmp("loop_top");
    }
  }

  const WorkloadProfile& p_;
  Rng rng_;
  ProgramBuilder b_;
  int label_counter_ = 0;
};

WorkloadProfile make_profile(
    const std::string& name, double fp, int dep_chains, std::uint64_t ws_kb,
    double loads, double stores, double branches, double regularity,
    double int_mul = 0.0, double int_div = 0.0, double fp_mul = 0.3,
    double fp_div = 0.0, std::uint64_t stride = 64,
    std::uint64_t warm = ~0ull) {
  WorkloadProfile p;
  p.name = name;
  p.fp_fraction = fp;
  p.dep_chains = dep_chains;
  p.working_set_bytes = ws_kb * 1024;
  p.load_fraction = loads;
  p.store_fraction = stores;
  p.branch_fraction = branches;
  p.branch_regularity = regularity;
  p.int_mul_fraction = int_mul;
  p.int_div_fraction = int_div;
  p.fp_mul_fraction = fp_mul;
  p.fp_div_fraction = fp_div;
  p.stride_bytes = stride;
  p.warm_prefix_bytes = warm;
  return p;
}

}  // namespace

Program generate_workload(const WorkloadProfile& profile) {
  return KernelEmitter(profile).generate();
}

const std::vector<WorkloadProfile>& spec2000_profiles() {
  // Figure 7 order (increasing IPC). Low-IPC FP codes have serial chains and
  // big working sets; high-IPC integer codes have wide chains, small working
  // sets, and more (mostly regular) branches.
  static const std::vector<WorkloadProfile> kProfiles = {
      // name       fp   dep ws_kb  ld    st    br    reg   imul idiv fpmul fpdiv stride
      make_profile("equake", 0.70, 2, 8192, 0.30, 0.08, 0.08, 0.75, 0.0, 0.0, 0.40, 0.03, 24, 0),
      make_profile("swim",   0.75, 2, 16384, 0.35, 0.12, 0.04, 0.95, 0.0, 0.0, 0.35, 0.02, 16, 0),
      make_profile("art",    0.60, 2, 4096, 0.35, 0.08, 0.08, 0.85, 0.0, 0.0, 0.40, 0.00, 12, 0),
      make_profile("mgrid",  0.80, 2, 256,  0.40, 0.10, 0.03, 0.95, 0.0, 0.0, 0.45, 0.00, 192),
      make_profile("applu",  0.75, 2, 256,  0.30, 0.10, 0.05, 0.90, 0.0, 0.0, 0.40, 0.08, 320),
      make_profile("fma3d",  0.65, 2, 256,  0.28, 0.10, 0.07, 0.85, 0.0, 0.0, 0.45, 0.02, 192),
      make_profile("gcc",    0.00, 3, 256,  0.28, 0.12, 0.18, 0.70, 0.02, 0.2, 0.30, 0.0, 32),
      make_profile("facerec",0.60, 3, 512,  0.30, 0.08, 0.06, 0.90, 0.0, 0.0, 0.40, 0.00, 192),
      make_profile("wupwise",0.65, 2, 256,  0.25, 0.10, 0.05, 0.92, 0.0, 0.0, 0.45, 0.02, 128),
      make_profile("bzip",   0.00, 4, 256,  0.26, 0.12, 0.15, 0.80, 0.03, 0.1, 0.30, 0.0, 64),
      make_profile("apsi",   0.55, 4, 128,  0.25, 0.10, 0.06, 0.90, 0.0, 0.0, 0.40, 0.02, 32),
      make_profile("crafty", 0.00, 4, 64,   0.25, 0.10, 0.18, 0.85, 0.04, 0.1, 0.30, 0.0, 16),
      make_profile("eon",    0.30, 3, 64,   0.25, 0.10, 0.10, 0.88, 0.02, 0.0, 0.35, 0.02, 16),
      make_profile("gzip",   0.00, 5, 128,  0.25, 0.12, 0.15, 0.80, 0.02, 0.0, 0.30, 0.0, 32),
      make_profile("vortex", 0.00, 4, 64,   0.26, 0.12, 0.14, 0.92, 0.01, 0.0, 0.30, 0.0, 16),
      make_profile("sixtrack",0.50, 6, 32,  0.22, 0.08, 0.06, 0.95, 0.0, 0.0, 0.50, 0.00, 8),
  };
  return kProfiles;
}

const WorkloadProfile& profile_by_name(const std::string& name) {
  for (const WorkloadProfile& p : spec2000_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown workload profile: " + name);
}

}  // namespace bj
