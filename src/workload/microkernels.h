// Hand-written kernels with known-by-construction results. Used by tests
// (ground truth for pipeline-vs-emulator equivalence and for end-to-end
// value checks) and by the examples.
#pragma once

#include <cstdint>

#include "isa/program.h"

namespace bj {
namespace kernels {

// Sums the integers 1..n into memory[result_addr]; halts.
Program sum_to_n(std::uint64_t n, std::uint64_t result_addr = 0x1000);

// Iterative Fibonacci: writes fib(n) to memory[result_addr]; halts.
Program fibonacci(std::uint64_t n, std::uint64_t result_addr = 0x1000);

// Dense matrix multiply C = A * B for square matrices of dimension `dim`
// (doubles); A and B are filled with deterministic values in the data image.
// A at 0x10000, B at 0x30000, C at 0x50000. Halts when done.
Program matmul(std::uint64_t dim);

// Pointer chase over a pseudo-random cycle of `nodes` 64-byte nodes starting
// at 0x100000, `hops` dereferences; writes the final pointer to
// memory[0x1000]. Low-IPC, memory-latency-bound.
Program pointer_chase(std::uint64_t nodes, std::uint64_t hops);

// Copies `words` 8-byte words from 0x100000 to 0x200000; halts. Exercises
// the store path heavily (store-buffer pressure in redundant modes).
Program memcopy(std::uint64_t words);

// A branch-heavy kernel: computes the parity histogram of n pseudo-random
// values with data-dependent branches; writes two counters to 0x1000/0x1008.
Program branchy(std::uint64_t n);

// Mixed FP kernel: dot product of two `len`-element double vectors plus a
// divide-heavy normalization; writes the result bits to 0x1000.
Program fp_mix(std::uint64_t len);

// Recursive quicksort over `n` pseudo-random 64-bit keys at 0x100000, using
// a real call stack (jal/jr through r31, stack pointer in r2 at 0x80000).
// Exercises the return-address stack and deep speculative call chains.
// Writes 1 to 0x1000 if the final array is sorted, 0 otherwise; halts.
Program quicksort(std::uint64_t n);

}  // namespace kernels
}  // namespace bj
