// Synthetic workload profiles standing in for the paper's 16 SPEC2000
// benchmarks (run at SimPoints in the original). Each profile drives a
// deterministic kernel generator; the knobs are chosen so each named kernel
// mimics the qualitative behaviour the paper attributes to its namesake:
// IPC level (dependence-chain depth + working set), FP vs integer mix
// (which backend-way types are contended), multiplier/divider pressure, and
// branch predictability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace bj {

struct WorkloadProfile {
  std::string name;

  // Instruction mix of the loop body (fractions of body operations).
  double fp_fraction = 0.0;      // of compute ops, how many are FP
  double int_mul_fraction = 0.0; // of int compute ops, on the mul/div unit
  double int_div_fraction = 0.0; // of mul-unit ops, unpipelined divides
  double fp_mul_fraction = 0.3;  // of FP ops, on the FP mul/div unit
  double fp_div_fraction = 0.0;  // of FP mul-unit ops, unpipelined divides
  double load_fraction = 0.25;
  double store_fraction = 0.1;
  double branch_fraction = 0.1;  // in-body conditional branches

  // Branch behaviour: probability an in-body branch tests a regular counter
  // pattern (learnable by gshare) rather than data bits (unpredictable).
  double branch_regularity = 0.9;

  // Parallelism: number of independent dependence chains interleaved in the
  // body. 1 = fully serial (low IPC), 6+ = wide ILP.
  int dep_chains = 3;

  // Data memory footprint (power of two); larger working sets miss in L1/L2.
  std::uint64_t working_set_bytes = 64 * 1024;
  // Stride between consecutive data touches (bytes).
  std::uint64_t stride_bytes = 64;
  // Bytes of the working set touched by the kernel's warm-up prologue
  // (~0 = min(working set, 256 KiB); 0 = none, for streaming kernels whose
  // steady state *is* the cold-miss stream).
  std::uint64_t warm_prefix_bytes = ~0ull;

  // Static size of the generated loop body, in operations.
  int body_ops = 48;

  // 0 = endless loop (for fixed-commit-budget simulation); otherwise the
  // kernel halts after this many iterations.
  std::uint64_t iterations = 0;

  std::uint64_t seed = 0;  // 0 derives the seed from the name
};

// Generates the deterministic kernel for a profile.
Program generate_workload(const WorkloadProfile& profile);

// The 16 named profiles, in the paper's Figure 7 order (increasing IPC).
const std::vector<WorkloadProfile>& spec2000_profiles();

// Lookup by name; throws std::out_of_range for unknown names.
const WorkloadProfile& profile_by_name(const std::string& name);

}  // namespace bj
