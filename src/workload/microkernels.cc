#include "workload/microkernels.h"

#include <bit>
#include <vector>

#include "common/rng.h"
#include "isa/builder.h"

namespace bj {
namespace kernels {

Program sum_to_n(std::uint64_t n, std::uint64_t result_addr) {
  ProgramBuilder b("sum_to_n");
  b.li(1, 0);            // r1 = sum
  b.li(2, 1);            // r2 = i
  b.li(3, n);            // r3 = n
  b.li(4, result_addr);  // r4 = &result
  b.label("loop");
  b.add(1, 1, 2);
  b.addi(2, 2, 1);
  b.bge(3, 2, "loop");
  b.st(1, 4, 0);
  b.halt();
  return b.build();
}

Program fibonacci(std::uint64_t n, std::uint64_t result_addr) {
  ProgramBuilder b("fibonacci");
  b.li(1, 0);  // fib(0)
  b.li(2, 1);  // fib(1)
  b.li(3, 0);  // i
  b.li(4, n);
  b.li(5, result_addr);
  b.label("loop");
  b.bge(3, 4, "done");
  b.add(6, 1, 2);  // next
  b.add(1, 2, 0);  // shift (add rX, rY, r0 is a move)
  b.add(2, 6, 0);
  b.addi(3, 3, 1);
  b.jmp("loop");
  b.label("done");
  b.st(1, 5, 0);
  b.halt();
  return b.build();
}

Program matmul(std::uint64_t dim) {
  constexpr std::uint64_t kA = 0x10000;
  constexpr std::uint64_t kB = 0x30000;
  constexpr std::uint64_t kC = 0x50000;
  ProgramBuilder b("matmul");
  // Data image: deterministic small doubles.
  Rng rng(42);
  for (std::uint64_t i = 0; i < dim * dim; ++i) {
    const double va = 1.0 + static_cast<double>(rng.next_below(8));
    const double vb = 0.5 * static_cast<double>(1 + rng.next_below(8));
    b.data_word(kA + i * 8, std::bit_cast<std::uint64_t>(va));
    b.data_word(kB + i * 8, std::bit_cast<std::uint64_t>(vb));
  }
  // r1=i, r2=j, r3=k, r4=dim, r10/r11/r12 = row/element addresses.
  b.li(4, dim);
  b.li(1, 0);
  b.label("i_loop");
  b.li(2, 0);
  b.label("j_loop");
  b.lfi(1, 0.0, 6);  // f1 = acc
  b.li(3, 0);
  b.label("k_loop");
  // f2 = A[i*dim + k]
  b.mul(10, 1, 4);
  b.add(10, 10, 3);
  b.slli(10, 10, 3);
  b.li(6, kA);
  b.add(10, 10, 6);
  b.fld(2, 10, 0);
  // f3 = B[k*dim + j]
  b.mul(11, 3, 4);
  b.add(11, 11, 2);
  b.slli(11, 11, 3);
  b.li(6, kB);
  b.add(11, 11, 6);
  b.fld(3, 11, 0);
  b.fmul(4, 2, 3);
  b.fadd(1, 1, 4);
  b.addi(3, 3, 1);
  b.blt(3, 4, "k_loop");
  // C[i*dim + j] = acc
  b.mul(12, 1, 4);
  b.add(12, 12, 2);
  b.slli(12, 12, 3);
  b.li(6, kC);
  b.add(12, 12, 6);
  b.fst(1, 12, 0);
  b.addi(2, 2, 1);
  b.blt(2, 4, "j_loop");
  b.addi(1, 1, 1);
  b.blt(1, 4, "i_loop");
  b.halt();
  return b.build();
}

Program pointer_chase(std::uint64_t nodes, std::uint64_t hops) {
  constexpr std::uint64_t kBase = 0x100000;
  ProgramBuilder b("pointer_chase");
  // Build a random cycle through all nodes (Sattolo's algorithm) in the data
  // image: node i's next pointer lives at kBase + i*64.
  std::vector<std::uint64_t> perm(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) perm[i] = i;
  Rng rng(7);
  for (std::uint64_t i = nodes - 1; i > 0; --i) {
    const std::uint64_t j = rng.next_below(i);
    std::swap(perm[i], perm[j]);
  }
  for (std::uint64_t i = 0; i < nodes; ++i) {
    b.data_word(kBase + perm[i] * 64,
                kBase + perm[(i + 1) % nodes] * 64);
  }
  b.li(1, kBase + perm[0] * 64);  // current pointer
  b.li(2, 0);                     // hop counter
  b.li(3, hops);
  b.label("loop");
  b.ld(1, 1, 0);  // chase
  b.addi(2, 2, 1);
  b.blt(2, 3, "loop");
  b.li(4, 0x1000);
  b.st(1, 4, 0);
  b.halt();
  return b.build();
}

Program memcopy(std::uint64_t words) {
  ProgramBuilder b("memcopy");
  Rng rng(9);
  for (std::uint64_t i = 0; i < words; ++i) {
    b.data_word(0x100000 + i * 8, rng.next_u64());
  }
  b.li(1, 0x100000);  // src
  b.li(2, 0x200000);  // dst
  b.li(3, 0);         // i
  b.li(4, words);
  b.label("loop");
  b.ld(5, 1, 0);
  b.st(5, 2, 0);
  b.addi(1, 1, 8);
  b.addi(2, 2, 8);
  b.addi(3, 3, 1);
  b.blt(3, 4, "loop");
  b.halt();
  return b.build();
}

Program branchy(std::uint64_t n) {
  ProgramBuilder b("branchy");
  b.li(1, 0x9e3779b97f4a7c15ull);  // xorshift-ish state
  b.li(2, 0);                      // even counter
  b.li(3, 0);                      // odd counter
  b.li(4, 0);                      // i
  b.li(5, n);
  b.label("loop");
  // state = state * 6364136223846793005 + 1442695040888963407 (LCG)
  b.li(6, 6364136223846793005ull);
  b.mul(1, 1, 6);
  b.li(6, 1442695040888963407ull);
  b.add(1, 1, 6);
  b.srli(7, 1, 33);
  b.andi(7, 7, 1);
  b.bne(7, 0, "odd");
  b.addi(2, 2, 1);
  b.jmp("next");
  b.label("odd");
  b.addi(3, 3, 1);
  b.label("next");
  b.addi(4, 4, 1);
  b.blt(4, 5, "loop");
  b.li(6, 0x1000);
  b.st(2, 6, 0);
  b.st(3, 6, 8);
  b.halt();
  return b.build();
}

Program fp_mix(std::uint64_t len) {
  constexpr std::uint64_t kX = 0x10000;
  constexpr std::uint64_t kY = 0x20000;
  ProgramBuilder b("fp_mix");
  Rng rng(13);
  for (std::uint64_t i = 0; i < len; ++i) {
    b.data_word(kX + i * 8, std::bit_cast<std::uint64_t>(
                                1.0 + 0.25 * rng.next_below(16)));
    b.data_word(kY + i * 8, std::bit_cast<std::uint64_t>(
                                0.5 + 0.125 * rng.next_below(16)));
  }
  b.li(1, kX);
  b.li(2, kY);
  b.li(3, 0);
  b.li(4, len);
  b.lfi(1, 0.0, 6);  // f1 = dot
  b.lfi(2, 1.0, 6);  // f2 = product-of-ratios (divide pressure)
  b.lfi(7, 2.0, 6);  // f7 = bound constant
  b.label("loop");
  b.fld(3, 1, 0);
  b.fld(4, 2, 0);
  b.fmul(5, 3, 4);
  b.fadd(1, 1, 5);
  b.fdiv(6, 3, 4);
  b.fmin(6, 6, 7);  // keep bounded
  b.fmul(2, 2, 6);
  b.fsqrt(2, 2);
  b.addi(1, 1, 8);
  b.addi(2, 2, 8);
  b.addi(3, 3, 1);
  b.blt(3, 4, "loop");
  b.fadd(1, 1, 2);
  b.li(6, 0x1000);
  b.fst(1, 6, 0);
  b.halt();
  return b.build();
}

Program quicksort(std::uint64_t n) {
  constexpr std::uint64_t kArray = 0x100000;
  constexpr std::uint64_t kStackTop = 0x80000;
  ProgramBuilder b("quicksort");
  Rng rng(21);
  for (std::uint64_t i = 0; i < n; ++i) {
    b.data_word(kArray + i * 8, rng.next_below(1u << 30));
  }
  const std::int64_t hi_addr =
      static_cast<std::int64_t>(kArray + (n - 1) * 8);

  // Register conventions: r2 stack pointer, r10 lo, r11 hi (byte addresses,
  // inclusive), r12..r17 scratch within partition, r31 link.
  b.li(2, kStackTop);
  b.li(10, kArray);
  b.li(11, static_cast<std::uint64_t>(hi_addr));
  b.jal("qsort");

  // Verify sortedness into r22.
  b.li(20, kArray);
  b.li(21, static_cast<std::uint64_t>(hi_addr));
  b.li(22, 1);
  b.label("check");
  b.bgeu(20, 21, "check_done");
  b.ld(23, 20, 0);
  b.ld(24, 20, 8);
  b.slt(25, 24, 23);  // next < current -> unsorted
  b.beq(25, 0, "check_ok");
  b.li(22, 0);
  b.label("check_ok");
  b.addi(20, 20, 8);
  b.jmp("check");
  b.label("check_done");
  b.li(26, 0x1000);
  b.st(22, 26, 0);
  b.halt();

  // --- void qsort(lo=r10, hi=r11) — Lomuto partition, pivot = A[hi] -------
  b.label("qsort");
  b.bgeu(10, 11, "qsort_leaf");  // lo >= hi: nothing to sort
  b.addi(2, 2, -32);             // frame: ra, lo, hi, pivot index
  b.st(31, 2, 0);
  b.st(10, 2, 8);
  b.st(11, 2, 16);

  b.ld(12, 11, 0);    // pivot value
  b.addi(13, 10, -8);  // i = lo - 8
  b.add(14, 10, 0);    // j = lo
  b.label("part_loop");
  b.bgeu(14, 11, "part_done");  // j >= hi
  b.ld(15, 14, 0);              // A[j]
  b.slt(17, 12, 15);            // pivot < A[j]?
  b.bne(17, 0, "no_swap");
  b.addi(13, 13, 8);  // ++i
  b.ld(16, 13, 0);    // swap A[i], A[j]
  b.st(15, 13, 0);
  b.st(16, 14, 0);
  b.label("no_swap");
  b.addi(14, 14, 8);  // ++j
  b.jmp("part_loop");
  b.label("part_done");
  b.addi(13, 13, 8);  // pivot position p = i + 1
  b.ld(16, 13, 0);    // swap A[p], A[hi]
  b.st(12, 13, 0);
  b.st(16, 11, 0);

  b.st(13, 2, 24);      // save p
  b.addi(11, 13, -8);   // qsort(lo, p - 8)
  b.jal("qsort");
  b.ld(13, 2, 24);      // qsort(p + 8, hi)
  b.ld(11, 2, 16);
  b.addi(10, 13, 8);
  b.jal("qsort");

  b.ld(31, 2, 0);  // epilogue
  b.ld(10, 2, 8);
  b.ld(11, 2, 16);
  b.addi(2, 2, 32);
  b.jr(31);
  b.label("qsort_leaf");
  b.jr(31);
  return b.build();
}

}  // namespace kernels
}  // namespace bj
