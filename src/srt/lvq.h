// Load Value Queue (SRT / BlackJack). Leading loads deposit (address, value)
// pairs at commit; trailing loads read their entry instead of accessing the
// cache — this both avoids input incoherence (another agent modifying memory
// between the two loads) and lets the trailing thread's independently
// computed address be *checked* against the leading address, covering hard
// faults in the address path.
//
// In BlackJack the trailing thread executes loads out of program order, so
// entries are looked up by load ordinal (the n-th load in program order)
// rather than popped strictly FIFO; entries are still freed in program order
// at trailing commit.
#pragma once

#include <cstdint>
#include <optional>

#include "common/circular_buffer.h"

namespace bj {

struct LvqEntry {
  std::uint64_t ordinal = 0;  // n-th committed load in program order
  std::uint64_t addr = 0;
  std::uint64_t value = 0;
};

class LoadValueQueue {
 public:
  explicit LoadValueQueue(std::size_t capacity) : queue_(capacity) {}

  bool full() const { return queue_.full(); }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Leading side, at leading load commit. Ordinals must arrive in order.
  void push(const LvqEntry& entry) { queue_.push(entry); }

  // Trailing side, at trailing load execute: random access by ordinal.
  std::optional<LvqEntry> lookup(std::uint64_t ordinal) const {
    if (queue_.empty()) return std::nullopt;
    const std::uint64_t head = queue_.front().ordinal;
    if (ordinal < head) return std::nullopt;
    const std::uint64_t offset = ordinal - head;
    if (offset >= queue_.size()) return std::nullopt;
    return queue_.at(offset);
  }

  // Trailing side, at trailing load commit (program order): frees the head.
  LvqEntry pop() { return queue_.pop(); }
  const LvqEntry& front() const { return queue_.front(); }

 private:
  CircularBuffer<LvqEntry> queue_;
};

}  // namespace bj
