// Checking store buffer (SRT / BlackJack). Leading stores wait here at
// commit; when the corresponding trailing store commits, address and data are
// compared. On agreement the store is released to the memory hierarchy; any
// disagreement is the detection event the whole scheme exists for. Leading
// loads must snoop the buffer so the leading thread sees its own committed-
// but-unreleased stores.
#pragma once

#include <cstdint>
#include <optional>

#include "common/circular_buffer.h"

namespace bj {

struct StoreBufferEntry {
  std::uint64_t ordinal = 0;  // n-th committed store in program order
  std::uint64_t addr = 0;
  std::uint64_t data = 0;
};

enum class StoreCheck {
  kMatch,            // released to memory
  kAddressMismatch,  // hard/soft error detected via address disagreement
  kDataMismatch,     // detected via data disagreement
  kOrdinalMismatch,  // store streams diverged (instruction dropped/added)
  kEmpty,            // trailing store arrived with no waiting leading store
};

class CheckingStoreBuffer {
 public:
  explicit CheckingStoreBuffer(std::size_t capacity) : queue_(capacity) {}

  bool full() const { return queue_.full(); }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Leading side, at leading store commit. Caller must check full().
  void push(const StoreBufferEntry& entry) { queue_.push(entry); }

  // Trailing side, at trailing store commit: checks the head entry against
  // the trailing store. On kMatch the head is popped and returned so the
  // caller can perform the actual memory write.
  StoreCheck check_and_release(std::uint64_t ordinal, std::uint64_t addr,
                               std::uint64_t data,
                               StoreBufferEntry* released) {
    if (queue_.empty()) return StoreCheck::kEmpty;
    const StoreBufferEntry& head = queue_.front();
    if (head.ordinal != ordinal) return StoreCheck::kOrdinalMismatch;
    if (head.addr != addr) return StoreCheck::kAddressMismatch;
    if (head.data != data) return StoreCheck::kDataMismatch;
    *released = queue_.pop();
    return StoreCheck::kMatch;
  }

  // Leading-load forwarding: youngest matching entry, if any.
  std::optional<std::uint64_t> forward(std::uint64_t addr) const {
    for (std::size_t i = queue_.size(); i-- > 0;) {
      const StoreBufferEntry& e = queue_.at(i);
      if (e.addr == addr) return e.data;
    }
    return std::nullopt;
  }

 private:
  CircularBuffer<StoreBufferEntry> queue_;
};

}  // namespace bj
