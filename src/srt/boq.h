// Branch Outcome Queue (SRT). The leading thread pushes resolved branch
// outcomes at commit; the trailing thread consumes them in program order as
// perfect predictions at fetch, and verifies them when the trailing branch
// executes — the verification is what lets a corrupted outcome be detected.
#pragma once

#include <cstdint>
#include <optional>

#include "common/circular_buffer.h"

namespace bj {

struct BranchOutcome {
  std::uint64_t pc = 0;       // leading branch pc (sanity/pairing check)
  std::uint64_t ordinal = 0;  // n-th control instruction in the program run
  bool taken = false;
  std::uint64_t target = 0;
};

class BranchOutcomeQueue {
 public:
  explicit BranchOutcomeQueue(std::size_t capacity)
      : queue_(capacity) {}

  bool full() const { return queue_.full(); }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Leading side: called at leading branch commit. Caller must check full().
  void push(const BranchOutcome& outcome) { queue_.push(outcome); }

  // Trailing side: peeks the next outcome at fetch (not yet freed).
  std::optional<BranchOutcome> peek(std::size_t offset = 0) const {
    if (offset >= queue_.size()) return std::nullopt;
    return queue_.at(offset);
  }

  // Trailing side: frees the head entry at trailing branch commit.
  BranchOutcome pop() { return queue_.pop(); }

 private:
  CircularBuffer<BranchOutcome> queue_;
};

}  // namespace bj
