// Commit-time verification of the dependence and program-order information
// the trailing thread borrowed from the leading thread (Section 4.4).
//
// SecondRenameTable: at trailing commit (program order) the committed
// instruction's *logical* source registers are looked up in a second rename
// table; the resulting physical registers must equal the physical sources the
// first (out-of-program-order) trailing rename produced and execution used.
// The instruction then installs its physical destination as the new mapping
// of its logical destination; the previous mapping is the register to free —
// the second table is also how BlackJack frees trailing physical registers in
// program order.
//
// PcChainChecker: committed pcs must chain — after a taken control transfer
// the next committed pc must be the executed target; otherwise pc + 1.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace bj {

struct DependenceCheckResult {
  bool ok = true;
  int freed_phys = -1;          // previous mapping of the destination, or -1
  RegClass freed_cls = RegClass::kNone;
};

class SecondRenameTable {
 public:
  SecondRenameTable();

  // Installs the initial logical->physical mapping (trailing thread start).
  void initialize(RegClass cls, int logical, int phys);

  // Verifies one committed trailing instruction. `src*_phys` are the
  // physical sources the first trailing rename produced (-1 when the operand
  // is absent); `dst_phys` the physical destination (-1 when none).
  DependenceCheckResult commit(const DecodedInst& inst, int src1_phys,
                               int src2_phys, int dst_phys);

  int lookup(RegClass cls, int logical) const;
  std::uint64_t checks() const { return checks_; }
  std::uint64_t mismatches() const { return mismatches_; }

 private:
  std::vector<int>& table(RegClass cls) {
    return cls == RegClass::kInt ? int_map_ : fp_map_;
  }
  const std::vector<int>& table(RegClass cls) const {
    return cls == RegClass::kInt ? int_map_ : fp_map_;
  }

  std::vector<int> int_map_;
  std::vector<int> fp_map_;
  std::uint64_t checks_ = 0;
  std::uint64_t mismatches_ = 0;
};

class PcChainChecker {
 public:
  // Verifies the committed pc chains from the previous instruction, then
  // advances using the executed outcome. Returns false on a break.
  bool commit(std::uint64_t pc, bool taken, std::uint64_t target);

  std::uint64_t checks() const { return checks_; }
  std::uint64_t mismatches() const { return mismatches_; }

 private:
  bool have_prev_ = false;
  std::uint64_t expected_pc_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace bj
