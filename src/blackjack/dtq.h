// Dependence Trace Queue (BlackJack, Section 4.2.1). One entry per issued
// leading instruction, allocated in leading *issue order*; instructions
// co-issued in the same cycle form a packet. Entries carry everything the
// trailing thread borrows from the leading thread:
//   - the undecoded instruction word and its pc,
//   - the frontend and backend way IDs the leading copy used,
//   - the leading rename maps (physical source/destination registers),
//   - virtual active-list and load/store-queue ordinals (leading program
//     order), assigned at leading commit.
// Entries are filled (marked committed) when the leading instruction
// commits; squashed instructions' entries are removed. Safe-shuffle consumes
// whole committed packets from the head.
#pragma once

#include <cstdint>
#include <deque>

#include "isa/opcode.h"

namespace bj {

struct DtqEntry {
  // Identity.
  std::uint64_t lead_seq = 0;     // leading fetch/program-order sequence
  std::uint64_t issue_cycle = 0;  // packet grouping key
  std::uint64_t pc = 0;
  std::uint32_t raw = 0;          // undecoded instruction word

  // Pipeline resource usage of the leading copy.
  int lead_frontend_way = -1;
  int lead_backend_way = -1;
  FuClass fu = FuClass::kIntAlu;

  // Leading rename maps (physical register indices; -1 when absent).
  int lead_src1_phys = -1;
  int lead_src2_phys = -1;
  int lead_dst_phys = -1;

  // Leading program order, assigned at commit (virtual indices).
  std::uint64_t virt_al_index = 0;
  std::uint64_t virt_lsq_index = 0;
  bool has_lsq_slot = false;
  std::uint64_t mem_ordinal = 0;  // n-th load or n-th store, per kind

  bool committed = false;  // filled at leading commit

  // Physical RAM row backing this entry (allocation order mod capacity) —
  // the fault-site coordinate for kDtqSlot faults. The deque models the
  // queue's ordering; `slot` models which storage cells the entry occupies.
  int slot = 0;
};

// The DTQ models a fixed-capacity hardware queue but is implemented on a
// deque because squash must remove entries from the middle (issue order
// interleaves ages).
class DependenceTraceQueue {
 public:
  explicit DependenceTraceQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }

  // Leading issue: appends an entry (issue order), assigning it the next
  // physical RAM row. Returns the row so the caller can run its storage
  // write hook. Caller checks full().
  int allocate(DtqEntry entry) {
    const int slot = static_cast<int>(alloc_cursor_++ % capacity_);
    entry.slot = slot;
    entries_.push_back(entry);
    return slot;
  }

  // Leading squash: drops all entries of instructions younger than
  // `squash_after_seq` (exclusive) that have not committed.
  void squash_younger_than(std::uint64_t squash_after_seq) {
    std::erase_if(entries_, [squash_after_seq](const DtqEntry& e) {
      return !e.committed && e.lead_seq > squash_after_seq;
    });
  }

  // Leading commit: fills the entry for `lead_seq` with program-order info.
  // Returns false if no such entry exists (instruction never issued — cannot
  // happen in a correct pipeline).
  bool fill_at_commit(std::uint64_t lead_seq, std::uint64_t virt_al_index,
                      std::uint64_t virt_lsq_index, bool has_lsq_slot,
                      std::uint64_t mem_ordinal) {
    for (DtqEntry& e : entries_) {
      if (e.lead_seq == lead_seq) {
        e.virt_al_index = virt_al_index;
        e.virt_lsq_index = virt_lsq_index;
        e.has_lsq_slot = has_lsq_slot;
        e.mem_ordinal = mem_ordinal;
        e.committed = true;
        return true;
      }
    }
    return false;
  }

  // Shuffle side: number of contiguous committed entries at the head that
  // form the first whole packet (0 if the head packet is not fully committed
  // yet). A packet ends where issue_cycle changes or the queue ends.
  std::size_t head_packet_size() const { return packet_size_at(0); }

  // Size of the committed packet starting at entry index `offset` (which
  // must be a packet boundary), or 0 if that packet is absent or not yet
  // fully committed. Used by the packet-combining extension to peek beyond
  // the head packet.
  std::size_t packet_size_at(std::size_t offset) const {
    if (offset >= entries_.size() || !entries_[offset].committed) return 0;
    const std::uint64_t cycle = entries_[offset].issue_cycle;
    std::size_t n = 0;
    for (std::size_t i = offset; i < entries_.size(); ++i) {
      const DtqEntry& e = entries_[i];
      if (e.issue_cycle != cycle) break;
      if (!e.committed) return 0;  // packet not complete yet
      ++n;
    }
    return n;
  }

  const DtqEntry& at(std::size_t i) const { return entries_[i]; }

  // Removes the head `n` entries (a consumed packet).
  void pop_front(std::size_t n) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(n));
  }

 private:
  std::size_t capacity_;
  // Monotonic allocation counter; row = counter mod capacity. Squashed
  // entries' rows are not reused out of order — a real circular RAM would
  // reclaim them with the surrounding region, and for fault purposes only
  // the entry→row mapping matters, not allocator cleverness.
  std::uint64_t alloc_cursor_ = 0;
  std::deque<DtqEntry> entries_;
};

}  // namespace bj
