#include "blackjack/shuffle.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace bj {
namespace {

// State of one in-progress output packet. A slot may be empty, hold a typed
// NOP, or hold a real instruction.
struct OutputPacket {
  explicit OutputPacket(int width)
      : slots(static_cast<std::size_t>(width)),
        occupied(static_cast<std::size_t>(width), false) {}
  ShuffledPacket slots;
  std::vector<bool> occupied;

  bool has_instruction() const {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (occupied[s] && !slots[s].is_nop) return true;
    }
    return false;
  }

  // Counts same-class occupants below `slot`.
  int type_rank(std::size_t slot, FuClass cls) const {
    int rank = 0;
    for (std::size_t s = 0; s < slot; ++s) {
      if (occupied[s] && slots[s].cls == cls) ++rank;
    }
    return rank;
  }
};

// One run of the paper's greedy algorithm processing the packet's
// instructions in the given order.
ShuffleResult run_greedy(const std::vector<ShuffleInst>& packet, int width,
                         const std::vector<std::size_t>& order) {
  ShuffleResult result;
  OutputPacket out(width);

  auto flush_packet = [&]() {
    if (!out.has_instruction()) {
      out = OutputPacket(width);
      return;
    }
    // Emit slots up to the last real instruction. NOPs below a real
    // instruction were inserted by the greedy pass-over and are load-bearing
    // (they advance backend-way ranks); slots above the last real
    // instruction influence no rank and are trimmed — padding them out to
    // the full width measurably *hurts* coverage because always-ready NOPs
    // leak out of latency-stalled packets and perturb other packets' ranks.
    std::size_t last_real = 0;
    for (std::size_t s = 0; s < out.slots.size(); ++s) {
      if (out.occupied[s] && !out.slots[s].is_nop) last_real = s;
    }
    ShuffledPacket trimmed;
    for (std::size_t s = 0; s <= last_real; ++s) {
      assert(out.occupied[s]);
      trimmed.push_back(out.slots[s]);
      if (trimmed.back().is_nop) ++result.nops_inserted;
    }
    result.packets.push_back(std::move(trimmed));
    out = OutputPacket(width);
  };

  for (const std::size_t i : order) {
    const ShuffleInst& inst = packet[i];
    bool placed = false;
    while (!placed) {
      const bool fresh = !out.has_instruction();
      for (std::size_t slot = 0; slot < out.slots.size() && !placed; ++slot) {
        const int fe_way = static_cast<int>(slot);
        if (out.occupied[slot]) {
          // A same-class NOP may be replaced if the resulting ways are
          // spatially diverse; replacement preserves every other rank.
          const ShuffleSlot& occ = out.slots[slot];
          if (!occ.is_nop || occ.cls != inst.fu) continue;
          const int be_way = out.type_rank(slot, inst.fu);
          if (fe_way == inst.lead_frontend_way ||
              be_way == inst.lead_backend_way) {
            continue;
          }
          out.slots[slot] = ShuffleSlot{false, inst.fu, static_cast<int>(i)};
          placed = true;
          break;
        }
        const int be_way = out.type_rank(slot, inst.fu);
        if (fe_way == inst.lead_frontend_way ||
            be_way == inst.lead_backend_way) {
          // Pass over the slot, leaving a NOP marked with our class so the
          // eventual placement's backend rank advances past the clash.
          out.slots[slot] = ShuffleSlot{true, inst.fu, -1};
          out.occupied[slot] = true;
          continue;
        }
        out.slots[slot] = ShuffleSlot{false, inst.fu, static_cast<int>(i)};
        out.occupied[slot] = true;
        placed = true;
      }
      if (placed) break;
      if (fresh) {
        // Guaranteed unreachable for width >= 3: in a fresh packet slot s
        // has backend rank s, so only s == lead_frontend_way and
        // s == lead_backend_way are excluded — at most 2 of >= 3 slots.
        // For degenerate widths (1 or 2) sacrifice diversity for progress.
        out = OutputPacket(width);
        out.slots[0] = ShuffleSlot{false, inst.fu, static_cast<int>(i)};
        out.occupied[0] = true;
        ++result.forced_places;
        placed = true;
        break;
      }
      // No usable slot: end this output packet and retry in a fresh one
      // (the input packet splits).
      flush_packet();
    }
  }
  flush_packet();
  result.splits = static_cast<int>(result.packets.size()) - 1;
  return result;
}

// (splits, nops, forced) lexicographic quality.
bool better(const ShuffleResult& a, const ShuffleResult& b) {
  if (a.forced_places != b.forced_places)
    return a.forced_places < b.forced_places;
  if (a.splits != b.splits) return a.splits < b.splits;
  return a.nops_inserted < b.nops_inserted;
}

}  // namespace

int backend_way_in_packet(const ShuffledPacket& packet, std::size_t slot) {
  assert(slot < packet.size());
  int rank = 0;
  for (std::size_t s = 0; s < slot; ++s) {
    if (packet[s].cls == packet[slot].cls) ++rank;
  }
  return rank;
}

ShuffleResult safe_shuffle(const std::vector<ShuffleInst>& packet, int width) {
  assert(width > 0);
  if (packet.empty()) return ShuffleResult{};

  // The paper's greedy processes the packet "in any arbitrary order". The
  // order strongly affects how many NOPs get stranded and whether the packet
  // splits, so try every processing order (packets are at most issue-width
  // wide, so at most 4! = 24 greedy runs) and keep the best outcome by
  // (no forced placements, fewest splits, fewest NOPs). Each individual run
  // is exactly the paper's algorithm.
  std::vector<std::size_t> order(packet.size());
  std::iota(order.begin(), order.end(), 0);

  ShuffleResult best = run_greedy(packet, width, order);
  if (packet.size() > 1) {
    while (std::next_permutation(order.begin(), order.end())) {
      ShuffleResult candidate = run_greedy(packet, width, order);
      if (better(candidate, best)) best = std::move(candidate);
      if (best.splits == 0 && best.nops_inserted == 0 &&
          best.forced_places == 0) {
        break;  // cannot improve further
      }
    }
  }
  return best;
}

bool ShuffleCache::make_key(const std::vector<ShuffleInst>& packet, int width,
                            Key* key) {
  // 11 bits per instruction (fu:3, frontend way:4, backend way:4), up to 8
  // instructions across lo/hi, plus width:5 and count:4 in hi's top bits.
  if (packet.size() > 8 || width <= 0 || width > 16) return false;
  std::uint64_t words[2] = {0, 0};
  for (std::size_t i = 0; i < packet.size(); ++i) {
    const ShuffleInst& inst = packet[i];
    if (inst.lead_frontend_way < 0 || inst.lead_frontend_way > 15 ||
        inst.lead_backend_way < 0 || inst.lead_backend_way > 15) {
      return false;
    }
    const std::uint64_t packed =
        static_cast<std::uint64_t>(inst.fu) |
        (static_cast<std::uint64_t>(inst.lead_frontend_way) << 3) |
        (static_cast<std::uint64_t>(inst.lead_backend_way) << 7);
    words[i / 4] |= packed << (11 * (i % 4));
  }
  key->lo = words[0];
  key->hi = words[1] | (static_cast<std::uint64_t>(width) << 50) |
            (static_cast<std::uint64_t>(packet.size()) << 55);
  return true;
}

const ShuffleResult& ShuffleCache::shuffle(
    const std::vector<ShuffleInst>& packet, int width, bool* hit,
    bool* warm_hit) {
  if (warm_hit != nullptr) *warm_hit = false;
  Key key;
  if (!make_key(packet, width, &key)) {
    *hit = false;
    uncached_ = safe_shuffle(packet, width);
    return uncached_;
  }
  if (warm_) {
    auto wit = warm_->find(key);
    if (wit != warm_->end()) {
      *hit = true;
      if (warm_hit != nullptr) *warm_hit = true;
      return wit->second;
    }
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    *hit = true;
    return it->second;
  }
  *hit = false;
  if (entries_.size() >= max_entries_) {
    // Bounded footprint: past the cap, compute without inserting. Real
    // workloads plateau far below the default cap, so this path is a
    // safety valve rather than an eviction policy.
    uncached_ = safe_shuffle(packet, width);
    return uncached_;
  }
  return entries_.emplace(key, safe_shuffle(packet, width)).first->second;
}

void ShuffleSnapshot::release() {
  if (slot_ != nullptr) {
    // Un-advertise before freeing the slot for reuse. Release ordering is
    // enough: a reclaimer that still reads the old pointer merely keeps the
    // map alive one round longer (conservative, never unsafe).
    slot_->map.store(nullptr, std::memory_order_release);
    slot_->in_use.store(false, std::memory_order_release);
    slot_ = nullptr;
  }
  owned_.reset();
  map_ = nullptr;
}

ShuffleSnapshot SharedShuffleTable::snapshot() const {
  for (std::size_t i = 0; i < kHazardSlots; ++i) {
    ShuffleHazardSlot& slot = slots_[i];
    bool expected = false;
    if (!slot.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      continue;  // slot busy; try the next one
    }
    // Pin loop: advertise the pointer, then confirm it is still current.
    // Every operation here and in merge() is seq_cst, so in the single
    // total order either (a) our validating reload precedes the writer's
    // publish — then our hazard store precedes the writer's reclamation
    // scan and the scan sees the pin — or (b) the publish precedes our
    // reload, the reload returns the new map, and we retry on it. Either
    // way the map we return cannot be freed while the slot stays pinned.
    const ShuffleMap* current = table_.load(std::memory_order_seq_cst);
    for (;;) {
      slot.map.store(current, std::memory_order_seq_cst);
      const ShuffleMap* again = table_.load(std::memory_order_seq_cst);
      if (again == current) break;
      current = again;
    }
    ShuffleSnapshot snap;
    snap.map_ = current;
    snap.slot_ = &slot;
    return snap;
  }
  // Every slot pinned at once: fall back to a deep copy under the merge
  // lock (which also blocks reclamation, so *table_ cannot be freed while
  // we copy it). Not wait-free — counted so tests and ops can see it.
  std::lock_guard<std::mutex> lock(merge_mu_);
  copy_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return ShuffleSnapshot(*table_.load(std::memory_order_relaxed));
}

void SharedShuffleTable::merge(const ShuffleCache::Map& local) {
  if (local.empty()) return;
  std::lock_guard<std::mutex> lock(merge_mu_);
  // merge_mu_ serializes writers, so a plain load sees the latest version.
  const ShuffleMap* current = table_.load(std::memory_order_relaxed);
  bool any_new = false;
  for (const auto& [key, result] : local) {
    if (current->find(key) == current->end()) {
      any_new = true;
      break;
    }
  }
  // No-op merges skip the publish entirely: pointer identity is preserved,
  // pinned readers need no revalidation, and nothing is retired.
  if (!any_new) return;
  // Copy-on-write: the published map is never mutated in place, so pinned
  // snapshots of the old version stay valid until reclamation frees it.
  auto* next = new ShuffleMap(*current);
  for (const auto& [key, result] : local) next->emplace(key, result);
  table_.store(next, std::memory_order_seq_cst);
  retired_.push_back(current);
  retired_count_.fetch_add(1, std::memory_order_relaxed);
  reclaim_locked();
}

void SharedShuffleTable::reclaim_locked() {
  // Free every retired version no hazard slot advertises. The seq_cst scan
  // pairs with the seq_cst pin loop in snapshot(); see the comment there.
  std::size_t kept = 0;
  for (const ShuffleMap* candidate : retired_) {
    bool pinned = false;
    for (std::size_t i = 0; i < kHazardSlots && !pinned; ++i) {
      pinned = slots_[i].map.load(std::memory_order_seq_cst) == candidate;
    }
    if (pinned) {
      retired_[kept++] = candidate;
    } else {
      delete candidate;
      reclaimed_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  retired_.resize(kept);
}

SharedShuffleTable::~SharedShuffleTable() {
  // No snapshots may outlive the table; by then nothing is pinned.
  delete table_.load(std::memory_order_relaxed);
  for (const ShuffleMap* r : retired_) delete r;
}

namespace {

// Little-endian fixed-width primitives for the table's wire format. The
// format is internal to the campaign store (whose entry container already
// carries a version and checksum), so no per-field tags are needed.
void put_u64(std::string* out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out->push_back(static_cast<char>(v >> (8 * b)));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out->push_back(static_cast<char>(v >> (8 * b)));
}

struct ByteReader {
  std::string_view bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() { return read(8); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read(4)); }
  std::uint8_t u8() { return static_cast<std::uint8_t>(read(1)); }

  std::uint64_t read(std::size_t n) {
    if (!ok || bytes.size() - pos < n) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < n; ++b) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + b]))
           << (8 * b);
    }
    pos += n;
    return v;
  }
};

}  // namespace

std::string serialize_shuffle_table(const ShuffleCache::Map& map) {
  std::vector<const ShuffleCache::Map::value_type*> sorted;
  sorted.reserve(map.size());
  for (const auto& entry : map) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first.hi != b->first.hi ? a->first.hi < b->first.hi
                                      : a->first.lo < b->first.lo;
  });

  std::string out;
  put_u64(&out, sorted.size());
  for (const auto* entry : sorted) {
    const ShuffleResult& r = entry->second;
    put_u64(&out, entry->first.lo);
    put_u64(&out, entry->first.hi);
    put_u32(&out, static_cast<std::uint32_t>(r.nops_inserted));
    put_u32(&out, static_cast<std::uint32_t>(r.splits));
    put_u32(&out, static_cast<std::uint32_t>(r.forced_places));
    put_u32(&out, static_cast<std::uint32_t>(r.packets.size()));
    for (const ShuffledPacket& packet : r.packets) {
      put_u32(&out, static_cast<std::uint32_t>(packet.size()));
      for (const ShuffleSlot& slot : packet) {
        out.push_back(slot.is_nop ? 1 : 0);
        out.push_back(static_cast<char>(slot.cls));
        put_u32(&out, static_cast<std::uint32_t>(slot.input_index));
      }
    }
  }
  return out;
}

bool deserialize_shuffle_table(std::string_view bytes,
                               ShuffleCache::Map* out) {
  out->clear();
  ByteReader in{bytes};
  const std::uint64_t count = in.u64();
  // Cheap sanity bound before reserving: each entry is at least 28 bytes.
  if (!in.ok || count > bytes.size() / 28 + 1) return false;
  out->reserve(count);
  for (std::uint64_t i = 0; i < count && in.ok; ++i) {
    ShuffleCache::Key key;
    key.lo = in.u64();
    key.hi = in.u64();
    ShuffleResult r;
    r.nops_inserted = static_cast<int>(in.u32());
    r.splits = static_cast<int>(in.u32());
    r.forced_places = static_cast<int>(in.u32());
    const std::uint32_t npackets = in.u32();
    if (!in.ok || npackets > bytes.size()) return false;
    r.packets.resize(npackets);
    for (std::uint32_t p = 0; p < npackets && in.ok; ++p) {
      const std::uint32_t nslots = in.u32();
      if (!in.ok || nslots > bytes.size()) return false;
      r.packets[p].resize(nslots);
      for (std::uint32_t s = 0; s < nslots; ++s) {
        ShuffleSlot& slot = r.packets[p][s];
        slot.is_nop = in.u8() != 0;
        slot.cls = static_cast<FuClass>(in.u8());
        slot.input_index = static_cast<int>(in.u32());
      }
    }
    if (!in.ok) break;
    out->emplace(key, std::move(r));
  }
  if (!in.ok || in.pos != bytes.size()) {
    out->clear();
    return false;
  }
  return true;
}

}  // namespace bj
