// Safe-shuffle (Section 4.2.2): the greedy algorithm that permutes a leading
// packet into one or more trailing packets so that, when a trailing packet is
// fetched and co-issued whole-and-alone, every instruction uses a different
// frontend way and a different backend way than its leading copy.
//
// Implemented as a pure function so its invariants can be property-tested in
// isolation from the pipeline:
//   - every input instruction appears in exactly one output slot;
//   - within each output packet, slot index != lead_frontend_way and the
//     type-rank (same-class occupants in lower slots) != lead_backend_way,
//     for every real instruction;
//   - NOPs only occupy slots and carry the type class whose way they consume.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/opcode.h"

namespace bj {

// What the shuffler needs to know about one leading instruction.
struct ShuffleInst {
  FuClass fu = FuClass::kIntAlu;
  int lead_frontend_way = 0;
  int lead_backend_way = 0;
};

// One slot of a shuffled output packet. Both real instructions and typed
// NOPs carry the FU class whose backend way they occupy, making the packet
// self-describing for way-rank computation.
struct ShuffleSlot {
  bool is_nop = true;
  FuClass cls = FuClass::kIntAlu;
  int input_index = -1;  // index into the input packet; -1 for NOPs
};

using ShuffledPacket = std::vector<ShuffleSlot>;

struct ShuffleResult {
  std::vector<ShuffledPacket> packets;
  int nops_inserted = 0;
  int splits = 0;         // packets.size() - 1 when input was non-empty
  int forced_places = 0;  // diversity sacrificed to guarantee progress
                          // (cannot occur when width >= 3; see shuffle.cc)
};

// Shuffles one input packet for a machine with `width` frontend ways.
// Instructions are processed in input order (the order within a packet is
// architecturally arbitrary). Always succeeds; worst case it splits the
// packet down to singletons.
ShuffleResult safe_shuffle(const std::vector<ShuffleInst>& packet, int width);

// The backend way the occupant of `slot` receives under the oldest-first
// mapping policy, assuming the packet issues whole and alone: the number of
// same-class occupants (instructions and typed NOPs) in lower slots.
int backend_way_in_packet(const ShuffledPacket& packet, std::size_t slot);

// Packed 128-bit signature of a (packet, width) shuffle query. Namespace
// scope (rather than nested in ShuffleCache) so the shared-table machinery
// below can name it without dragging in the cache.
struct ShuffleKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const ShuffleKey&) const = default;
};
struct ShuffleKeyHash {
  std::size_t operator()(const ShuffleKey& k) const {
    // splitmix64-style mix of both halves.
    std::uint64_t x = k.lo + 0x9e3779b97f4a7c15ull * (k.hi + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
using ShuffleMap =
    std::unordered_map<ShuffleKey, ShuffleResult, ShuffleKeyHash>;

// One pin slot of SharedShuffleTable's hazard-pointer protocol
// (implementation detail; readers hold these through ShuffleSnapshot).
struct ShuffleHazardSlot {
  alignas(64) std::atomic<const ShuffleMap*> map{nullptr};
  std::atomic<bool> in_use{false};
};

// A pinned, immutable view of a shared shuffle table. While any snapshot of
// a map version is alive, SharedShuffleTable::merge will not free that
// version — either because the snapshot holds a hazard slot advertising the
// pointer to the table's reclamation scan, or because it owns a private
// deep copy (the all-slots-busy fallback, and the unit-test path that wraps
// a standalone map). Move-only; releasing the snapshot un-pins the slot.
class ShuffleSnapshot {
 public:
  ShuffleSnapshot() = default;
  // Owning snapshot over a standalone map (no shared table involved).
  explicit ShuffleSnapshot(ShuffleMap map)
      : owned_(std::make_unique<const ShuffleMap>(std::move(map))),
        map_(owned_.get()) {}

  ShuffleSnapshot(ShuffleSnapshot&& other) noexcept { *this = std::move(other); }
  ShuffleSnapshot& operator=(ShuffleSnapshot&& other) noexcept {
    if (this != &other) {
      release();
      owned_ = std::move(other.owned_);
      map_ = other.map_;
      slot_ = other.slot_;
      other.map_ = nullptr;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ShuffleSnapshot(const ShuffleSnapshot&) = delete;
  ShuffleSnapshot& operator=(const ShuffleSnapshot&) = delete;
  ~ShuffleSnapshot() { release(); }

  const ShuffleMap& operator*() const { return *map_; }
  const ShuffleMap* operator->() const { return map_; }
  const ShuffleMap* get() const { return map_; }
  explicit operator bool() const { return map_ != nullptr; }

  // True when this snapshot pins a hazard slot (as opposed to owning a
  // private copy or being empty). Exposed for the concurrency tests.
  bool pinned() const { return slot_ != nullptr; }

 private:
  friend class SharedShuffleTable;
  void release();

  std::unique_ptr<const ShuffleMap> owned_;
  const ShuffleMap* map_ = nullptr;
  ShuffleHazardSlot* slot_ = nullptr;
};

// Memoization cache for safe_shuffle. The shuffle is a pure function of the
// packet's (fu, lead_frontend_way, lead_backend_way) signature and the
// machine width, and real workloads repeat a small set of packet shapes
// millions of times while the all-permutations search costs ~microseconds
// per distinct shape. Signatures pack into a 128-bit key (11 bits per
// instruction, up to 8 instructions); packets that exceed the packable
// ranges fall back to a direct safe_shuffle and always count as misses.
class ShuffleCache {
 public:
  // Compatibility aliases; the real types live at namespace scope so the
  // shared table and serializers can use them directly.
  using Key = ShuffleKey;
  using KeyHash = ShuffleKeyHash;
  using Map = ShuffleMap;

  explicit ShuffleCache(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  // Returns a reference valid until the next call to shuffle() or clear()
  // (warm-table hits stay valid for the snapshot's lifetime — it is
  // immutable). `*hit` reports whether the result came from the cache;
  // `*warm_hit` (optional) whether it came from the shared warm table.
  const ShuffleResult& shuffle(const std::vector<ShuffleInst>& packet,
                               int width, bool* hit,
                               bool* warm_hit = nullptr);

  // Adopt an immutable snapshot of shuffle results computed elsewhere.
  // Lookup order is warm table first, then local entries; the local cap
  // applies only to locally computed entries. The snapshot stays pinned for
  // the cache's lifetime (or until replaced).
  void warm_start(ShuffleSnapshot warm) { warm_ = std::move(warm); }
  const Map& local_entries() const { return entries_; }
  bool has_warm_table() const { return static_cast<bool>(warm_); }

  std::size_t size() const { return entries_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  void clear() { entries_.clear(); }

 private:
  static bool make_key(const std::vector<ShuffleInst>& packet, int width,
                       Key* key);

  ShuffleSnapshot warm_;  // pinned read-only shared snapshot
  Map entries_;
  ShuffleResult uncached_;  // holds results that bypass the cache
  std::size_t max_entries_;
};

// Read-mostly shuffle table shared by campaign workers: each worker
// warm-starts its Core's ShuffleCache from snapshot() and merges its locally
// computed entries back after the run (merge-on-retire).
//
// The reader side is wait-free via hazard pointers: snapshot() claims one of
// kHazardSlots pin slots, advertises the current map pointer in it, and
// validates the pointer did not change underneath (the store/reload pair and
// the writer's publish/scan pair are all seq_cst, so a reader whose validate
// saw the old map is guaranteed visible to the writer's reclamation scan —
// see shuffle.cc for the full interleaving argument). Readers never take a
// lock and never block on a merge in progress, no matter how long it runs.
// Only if every slot is simultaneously pinned (>kHazardSlots concurrent
// snapshots — far beyond any sane jobs count) does snapshot() fall back to a
// locked deep copy; that safety valve is counted, not hidden.
//
// The writer side (merge) serializes on merge_mu_, copies the map, publishes
// the new version with a single atomic pointer store, and retires the old
// version to a list that is freed only once no hazard slot advertises it.
// Merges that add nothing skip the publish entirely, preserving pointer
// identity for snapshot-equality checks and sparing readers a revalidation.
class SharedShuffleTable {
 public:
  // 128 slots = max concurrent pinned snapshots before the deep-copy
  // fallback; comfortably above the harness's 64-job ceiling.
  static constexpr std::size_t kHazardSlots = 128;

  SharedShuffleTable() : table_(new ShuffleMap()) {}
  ~SharedShuffleTable();
  SharedShuffleTable(const SharedShuffleTable&) = delete;
  SharedShuffleTable& operator=(const SharedShuffleTable&) = delete;

  // Wait-free pinned view of the current map (see class comment for the
  // all-slots-busy fallback). Never blocks on a concurrent merge.
  ShuffleSnapshot snapshot() const;

  void merge(const ShuffleCache::Map& local);

  std::size_t size() const { return snapshot()->size(); }

  // Observability for the concurrency tests: map versions retired by
  // merges, versions actually freed so far, and deep-copy fallbacks taken.
  std::size_t retired() const {
    return retired_count_.load(std::memory_order_relaxed);
  }
  std::size_t reclaimed() const {
    return reclaimed_count_.load(std::memory_order_relaxed);
  }
  std::size_t copy_fallbacks() const {
    return copy_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  void reclaim_locked();

  mutable std::mutex merge_mu_;  // serializes merges + the copy fallback
  std::atomic<const ShuffleMap*> table_;  // current version; seq_cst publish
  mutable ShuffleHazardSlot slots_[kHazardSlots];
  std::vector<const ShuffleMap*> retired_;  // guarded by merge_mu_
  std::atomic<std::size_t> retired_count_{0};
  std::atomic<std::size_t> reclaimed_count_{0};
  mutable std::atomic<std::size_t> copy_fallbacks_{0};
};

// Byte-stable serialization of a shuffle-table snapshot for the campaign
// store: entries are emitted sorted by key, so equal maps always produce
// identical bytes regardless of hash-table iteration order (the store's
// content checksums depend on this). deserialize_shuffle_table returns
// false and leaves *out empty when the bytes are truncated or malformed.
std::string serialize_shuffle_table(const ShuffleCache::Map& map);
bool deserialize_shuffle_table(std::string_view bytes,
                               ShuffleCache::Map* out);

}  // namespace bj
