// Safe-shuffle (Section 4.2.2): the greedy algorithm that permutes a leading
// packet into one or more trailing packets so that, when a trailing packet is
// fetched and co-issued whole-and-alone, every instruction uses a different
// frontend way and a different backend way than its leading copy.
//
// Implemented as a pure function so its invariants can be property-tested in
// isolation from the pipeline:
//   - every input instruction appears in exactly one output slot;
//   - within each output packet, slot index != lead_frontend_way and the
//     type-rank (same-class occupants in lower slots) != lead_backend_way,
//     for every real instruction;
//   - NOPs only occupy slots and carry the type class whose way they consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/opcode.h"

namespace bj {

// What the shuffler needs to know about one leading instruction.
struct ShuffleInst {
  FuClass fu = FuClass::kIntAlu;
  int lead_frontend_way = 0;
  int lead_backend_way = 0;
};

// One slot of a shuffled output packet. Both real instructions and typed
// NOPs carry the FU class whose backend way they occupy, making the packet
// self-describing for way-rank computation.
struct ShuffleSlot {
  bool is_nop = true;
  FuClass cls = FuClass::kIntAlu;
  int input_index = -1;  // index into the input packet; -1 for NOPs
};

using ShuffledPacket = std::vector<ShuffleSlot>;

struct ShuffleResult {
  std::vector<ShuffledPacket> packets;
  int nops_inserted = 0;
  int splits = 0;         // packets.size() - 1 when input was non-empty
  int forced_places = 0;  // diversity sacrificed to guarantee progress
                          // (cannot occur when width >= 3; see shuffle.cc)
};

// Shuffles one input packet for a machine with `width` frontend ways.
// Instructions are processed in input order (the order within a packet is
// architecturally arbitrary). Always succeeds; worst case it splits the
// packet down to singletons.
ShuffleResult safe_shuffle(const std::vector<ShuffleInst>& packet, int width);

// The backend way the occupant of `slot` receives under the oldest-first
// mapping policy, assuming the packet issues whole and alone: the number of
// same-class occupants (instructions and typed NOPs) in lower slots.
int backend_way_in_packet(const ShuffledPacket& packet, std::size_t slot);

// Memoization cache for safe_shuffle. The shuffle is a pure function of the
// packet's (fu, lead_frontend_way, lead_backend_way) signature and the
// machine width, and real workloads repeat a small set of packet shapes
// millions of times while the all-permutations search costs ~microseconds
// per distinct shape. Signatures pack into a 128-bit key (11 bits per
// instruction, up to 8 instructions); packets that exceed the packable
// ranges fall back to a direct safe_shuffle and always count as misses.
class ShuffleCache {
 public:
  // Key/Map are public so campaign workers can share computed results
  // through a SharedShuffleTable (see below).
  struct Key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix64-style mix of both halves.
      std::uint64_t x = k.lo + 0x9e3779b97f4a7c15ull * (k.hi + 1);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  using Map = std::unordered_map<Key, ShuffleResult, KeyHash>;

  explicit ShuffleCache(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  // Returns a reference valid until the next call to shuffle() or clear()
  // (warm-table hits stay valid for the snapshot's lifetime — it is
  // immutable). `*hit` reports whether the result came from the cache;
  // `*warm_hit` (optional) whether it came from the shared warm table.
  const ShuffleResult& shuffle(const std::vector<ShuffleInst>& packet,
                               int width, bool* hit,
                               bool* warm_hit = nullptr);

  // Adopt an immutable snapshot of shuffle results computed elsewhere.
  // Lookup order is warm table first, then local entries; the local cap
  // applies only to locally computed entries.
  void warm_start(std::shared_ptr<const Map> warm) { warm_ = std::move(warm); }
  const Map& local_entries() const { return entries_; }
  bool has_warm_table() const { return warm_ != nullptr; }

  std::size_t size() const { return entries_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  void clear() { entries_.clear(); }

 private:
  static bool make_key(const std::vector<ShuffleInst>& packet, int width,
                       Key* key);

  std::shared_ptr<const Map> warm_;  // read-mostly shared snapshot
  Map entries_;
  ShuffleResult uncached_;  // holds results that bypass the cache
  std::size_t max_entries_;
};

// Read-mostly shuffle table shared by campaign workers: each worker
// warm-starts its Core's ShuffleCache from snapshot() and merges its locally
// computed entries back after the run (merge-on-retire). Snapshots are
// immutable shared_ptrs, so readers never race the copy-on-write merge.
class SharedShuffleTable {
 public:
  SharedShuffleTable()
      : table_(std::make_shared<const ShuffleCache::Map>()) {}

  std::shared_ptr<const ShuffleCache::Map> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_;
  }

  void merge(const ShuffleCache::Map& local);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_->size();
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ShuffleCache::Map> table_;
};

// Byte-stable serialization of a shuffle-table snapshot for the campaign
// store: entries are emitted sorted by key, so equal maps always produce
// identical bytes regardless of hash-table iteration order (the store's
// content checksums depend on this). deserialize_shuffle_table returns
// false and leaves *out empty when the bytes are truncated or malformed.
std::string serialize_shuffle_table(const ShuffleCache::Map& map);
bool deserialize_shuffle_table(std::string_view bytes,
                               ShuffleCache::Map* out);

}  // namespace bj
