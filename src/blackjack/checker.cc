#include "blackjack/checker.h"

#include <cassert>

namespace bj {

SecondRenameTable::SecondRenameTable()
    : int_map_(kNumIntRegs, -1), fp_map_(kNumFpRegs, -1) {}

void SecondRenameTable::initialize(RegClass cls, int logical, int phys) {
  table(cls)[static_cast<std::size_t>(logical)] = phys;
}

int SecondRenameTable::lookup(RegClass cls, int logical) const {
  return table(cls)[static_cast<std::size_t>(logical)];
}

DependenceCheckResult SecondRenameTable::commit(const DecodedInst& inst,
                                                int src1_phys, int src2_phys,
                                                int dst_phys) {
  DependenceCheckResult result;
  ++checks_;

  auto check_src = [&](const RegRef& src, int used_phys) {
    if (!src.valid()) return;
    // r0 is not renamed; it always reads as zero.
    if (src.cls == RegClass::kInt && src.idx == kZeroReg) return;
    const int expected = lookup(src.cls, src.idx);
    if (expected != used_phys) result.ok = false;
  };
  check_src(inst.src1, src1_phys);
  check_src(inst.src2, src2_phys);

  if (inst.writes_reg()) {
    assert(dst_phys >= 0);
    const int prev = lookup(inst.dst.cls, inst.dst.idx);
    table(inst.dst.cls)[inst.dst.idx] = dst_phys;
    result.freed_phys = prev;
    result.freed_cls = inst.dst.cls;
  }
  if (!result.ok) ++mismatches_;
  return result;
}

bool PcChainChecker::commit(std::uint64_t pc, bool taken,
                            std::uint64_t target) {
  bool ok = true;
  if (have_prev_) {
    ++checks_;
    ok = pc == expected_pc_;
    if (!ok) ++mismatches_;
  }
  have_prev_ = true;
  expected_pc_ = taken ? target : pc + 1;
  return ok;
}

}  // namespace bj
