// Branch prediction for the leading thread: gshare direction predictor,
// a set-associative BTB for targets, and a return-address stack. The SRT and
// BlackJack trailing threads never predict — SRT consumes leading outcomes
// from the BOQ and BlackJack fetches a pre-resolved instruction stream — so
// only the leading context owns one of these.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace bj {

struct BranchPredictorParams {
  int gshare_bits = 14;      // 16K 2-bit counters
  int btb_entries = 2048;
  int btb_assoc = 4;
  int ras_entries = 16;
};

struct BranchPrediction {
  bool taken = false;
  std::uint64_t target = 0;     // meaningful when taken
  bool btb_hit = false;
  std::uint32_t gshare_index = 0;  // index used, for the resolve-time update
  std::uint64_t ghr_snapshot = 0;  // history to restore on misprediction
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorParams& params = {});

  // Predicts one control instruction at fetch. Updates speculative state
  // (global history, RAS). `inst` is the pre-decoded instruction.
  BranchPrediction predict(std::uint64_t pc, const DecodedInst& inst);

  // Resolve-time update with the true outcome.
  void resolve(std::uint64_t pc, const DecodedInst& inst,
               const BranchPrediction& made, bool taken, std::uint64_t target);

  // Restores global history after a squash (to the mispredicted branch's
  // snapshot plus its actual outcome).
  void restore_history(std::uint64_t ghr, bool actual_taken);

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t mispredicts() const { return mispredicts_; }

 private:
  std::uint32_t gshare_index(std::uint64_t pc) const;
  struct BtbEntry {
    std::uint64_t tag = ~0ull;
    std::uint64_t target = 0;
    std::uint32_t lru = 0;
  };
  BtbEntry* btb_lookup(std::uint64_t pc);
  void btb_insert(std::uint64_t pc, std::uint64_t target);

  BranchPredictorParams params_;
  std::vector<std::uint8_t> counters_;  // 2-bit saturating
  std::vector<BtbEntry> btb_;
  std::vector<std::uint64_t> ras_;
  std::size_t ras_top_ = 0;
  std::uint64_t ghr_ = 0;
  std::uint32_t lru_clock_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t mispredicts_ = 0;
};

}  // namespace bj
