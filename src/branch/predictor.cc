#include "branch/predictor.h"

#include <cassert>

namespace bj {

BranchPredictor::BranchPredictor(const BranchPredictorParams& params)
    : params_(params),
      counters_(std::size_t{1} << params.gshare_bits, 1),  // weakly not-taken
      btb_(static_cast<std::size_t>(params.btb_entries)),
      ras_(static_cast<std::size_t>(params.ras_entries), 0) {
  assert(params.btb_entries % params.btb_assoc == 0);
}

std::uint32_t BranchPredictor::gshare_index(std::uint64_t pc) const {
  const std::uint64_t mask = (1ull << params_.gshare_bits) - 1;
  return static_cast<std::uint32_t>((pc ^ ghr_) & mask);
}

BranchPredictor::BtbEntry* BranchPredictor::btb_lookup(std::uint64_t pc) {
  const int sets = params_.btb_entries / params_.btb_assoc;
  const std::size_t set = static_cast<std::size_t>(pc % sets);
  for (int w = 0; w < params_.btb_assoc; ++w) {
    BtbEntry& e = btb_[set * params_.btb_assoc + w];
    if (e.tag == pc) return &e;
  }
  return nullptr;
}

void BranchPredictor::btb_insert(std::uint64_t pc, std::uint64_t target) {
  const int sets = params_.btb_entries / params_.btb_assoc;
  const std::size_t set = static_cast<std::size_t>(pc % sets);
  BtbEntry* victim = &btb_[set * params_.btb_assoc];
  for (int w = 0; w < params_.btb_assoc; ++w) {
    BtbEntry& e = btb_[set * params_.btb_assoc + w];
    if (e.tag == pc) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->tag = pc;
  victim->target = target;
  victim->lru = ++lru_clock_;
}

BranchPrediction BranchPredictor::predict(std::uint64_t pc,
                                          const DecodedInst& inst) {
  ++lookups_;
  BranchPrediction p;
  p.ghr_snapshot = ghr_;
  p.gshare_index = gshare_index(pc);

  if (inst.is_jump()) {
    p.taken = true;
    if (inst.op == Opcode::kJr) {
      // Predict returns through the RAS; other indirect targets via BTB.
      if (params_.ras_entries > 0 && ras_top_ > 0) {
        p.target = ras_[(ras_top_ - 1) % ras_.size()];
        --ras_top_;
        p.btb_hit = true;
      } else if (BtbEntry* e = btb_lookup(pc)) {
        p.target = e->target;
        e->lru = ++lru_clock_;
        p.btb_hit = true;
      } else {
        p.target = pc + 1;  // no idea; will mispredict
      }
    } else {
      // Direct jumps carry their target in the encoding.
      p.target = static_cast<std::uint64_t>(inst.imm);
      p.btb_hit = true;
      if (inst.op == Opcode::kJal && params_.ras_entries > 0) {
        ras_[ras_top_ % ras_.size()] = pc + 1;
        ++ras_top_;
      }
    }
    return p;
  }

  // Conditional branch: gshare direction, target from the encoding.
  const std::uint8_t ctr = counters_[p.gshare_index];
  p.taken = ctr >= 2;
  p.target = pc + static_cast<std::uint64_t>(inst.imm);
  p.btb_hit = true;
  ghr_ = (ghr_ << 1) | (p.taken ? 1 : 0);
  return p;
}

void BranchPredictor::resolve(std::uint64_t pc, const DecodedInst& inst,
                              const BranchPrediction& made, bool taken,
                              std::uint64_t target) {
  if (inst.is_branch()) {
    std::uint8_t& ctr = counters_[made.gshare_index];
    if (taken) {
      if (ctr < 3) ++ctr;
    } else {
      if (ctr > 0) --ctr;
    }
  }
  if (inst.op == Opcode::kJr && taken) btb_insert(pc, target);
  const bool mispredicted = taken != made.taken ||
                            (taken && target != made.target);
  if (mispredicted) ++mispredicts_;
}

void BranchPredictor::restore_history(std::uint64_t ghr, bool actual_taken) {
  ghr_ = (ghr << 1) | (actual_taken ? 1 : 0);
}

}  // namespace bj
