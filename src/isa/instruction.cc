#include "isa/instruction.h"

#include <cassert>
#include <sstream>

namespace bj {
namespace {

constexpr std::uint32_t kOpShift = 26;
constexpr std::uint32_t kRdShift = 21;
constexpr std::uint32_t kRs1Shift = 16;
constexpr std::uint32_t kRs2Shift = 11;
constexpr std::uint32_t kRegMask = 0x1f;
constexpr std::uint32_t kImm16Mask = 0xffff;
constexpr std::uint32_t kImm26Mask = 0x3ffffff;

std::int64_t extend_imm16(std::uint32_t raw, bool sign) {
  if (sign) return static_cast<std::int16_t>(raw & kImm16Mask);
  return static_cast<std::int64_t>(raw & kImm16Mask);
}

std::string reg_name(RegRef r) {
  std::string prefix = r.cls == RegClass::kFp ? "f" : "r";
  return prefix + std::to_string(static_cast<int>(r.idx));
}

}  // namespace

std::uint32_t encode(const DecodedInst& inst) {
  const OpTraits& t = traits(inst.op);
  std::uint32_t w = static_cast<std::uint32_t>(inst.op) << kOpShift;
  switch (t.format) {
    case Format::kNone:
      break;
    case Format::kR:
      w |= (inst.dst.idx & kRegMask) << kRdShift;
      w |= (inst.src1.idx & kRegMask) << kRs1Shift;
      w |= (inst.src2.idx & kRegMask) << kRs2Shift;
      break;
    case Format::kI:
      w |= (inst.dst.idx & kRegMask) << kRdShift;
      w |= (inst.src1.idx & kRegMask) << kRs1Shift;
      w |= static_cast<std::uint32_t>(inst.imm) & kImm16Mask;
      break;
    case Format::kStore:
      // Data register reuses the rd slot; base is rs1.
      w |= (inst.src2.idx & kRegMask) << kRdShift;
      w |= (inst.src1.idx & kRegMask) << kRs1Shift;
      w |= static_cast<std::uint32_t>(inst.imm) & kImm16Mask;
      break;
    case Format::kBranch:
      w |= (inst.src1.idx & kRegMask) << kRdShift;
      w |= (inst.src2.idx & kRegMask) << kRs1Shift;
      w |= static_cast<std::uint32_t>(inst.imm) & kImm16Mask;
      break;
    case Format::kJ:
      w |= static_cast<std::uint32_t>(inst.imm) & kImm26Mask;
      break;
    case Format::kJr:
      w |= (inst.src1.idx & kRegMask) << kRdShift;
      break;
  }
  return w;
}

DecodedInst decode(std::uint32_t word) {
  DecodedInst inst;
  const std::uint32_t opbits = word >> kOpShift;
  if (opbits >= static_cast<std::uint32_t>(kNumOpcodes)) {
    inst.op = Opcode::kNop;
    inst.valid = false;
    return inst;
  }
  inst.op = static_cast<Opcode>(opbits);
  const OpTraits& t = traits(inst.op);
  auto rd = static_cast<std::uint8_t>((word >> kRdShift) & kRegMask);
  auto rs1 = static_cast<std::uint8_t>((word >> kRs1Shift) & kRegMask);
  auto rs2 = static_cast<std::uint8_t>((word >> kRs2Shift) & kRegMask);
  switch (t.format) {
    case Format::kNone:
      break;
    case Format::kR:
      if (t.dst_cls != RegClass::kNone) inst.dst = {t.dst_cls, rd};
      if (t.src1_cls != RegClass::kNone) inst.src1 = {t.src1_cls, rs1};
      if (t.src2_cls != RegClass::kNone) inst.src2 = {t.src2_cls, rs2};
      break;
    case Format::kI:
      if (t.dst_cls != RegClass::kNone) inst.dst = {t.dst_cls, rd};
      if (t.src1_cls != RegClass::kNone) inst.src1 = {t.src1_cls, rs1};
      inst.imm = extend_imm16(word, t.imm_signed);
      break;
    case Format::kStore:
      inst.src2 = {t.src2_cls, rd};   // data
      inst.src1 = {t.src1_cls, rs1};  // base
      inst.imm = extend_imm16(word, /*sign=*/true);
      break;
    case Format::kBranch:
      inst.src1 = {RegClass::kInt, rd};
      inst.src2 = {RegClass::kInt, rs1};
      inst.imm = extend_imm16(word, /*sign=*/true);
      break;
    case Format::kJ:
      if (t.dst_cls != RegClass::kNone)
        inst.dst = {RegClass::kInt, kLinkReg};
      inst.imm = static_cast<std::int64_t>(word & kImm26Mask);
      break;
    case Format::kJr:
      inst.src1 = {RegClass::kInt, rd};
      break;
  }
  return inst;
}

std::string disassemble(const DecodedInst& inst) {
  const OpTraits& t = traits(inst.op);
  std::ostringstream os;
  if (!inst.valid) return "<invalid>";
  os << t.mnemonic;
  switch (t.format) {
    case Format::kNone:
      break;
    case Format::kR:
      os << ' ';
      if (inst.dst.valid()) os << reg_name(inst.dst);
      if (inst.src1.valid()) os << ", " << reg_name(inst.src1);
      if (inst.src2.valid()) os << ", " << reg_name(inst.src2);
      break;
    case Format::kI:
      os << ' ' << reg_name(inst.dst);
      if (t.is_load) {
        os << ", [" << reg_name(inst.src1) << " + " << inst.imm << ']';
      } else {
        if (inst.src1.valid()) os << ", " << reg_name(inst.src1);
        os << ", " << inst.imm;
      }
      break;
    case Format::kStore:
      os << ' ' << reg_name(inst.src2) << ", [" << reg_name(inst.src1)
         << " + " << inst.imm << ']';
      break;
    case Format::kBranch:
      os << ' ' << reg_name(inst.src1) << ", " << reg_name(inst.src2) << ", "
         << (inst.imm >= 0 ? "+" : "") << inst.imm;
      break;
    case Format::kJ:
      os << ' ' << inst.imm;
      break;
    case Format::kJr:
      os << ' ' << reg_name(inst.src1);
      break;
  }
  return os.str();
}

std::string disassemble(std::uint32_t word) { return disassemble(decode(word)); }

}  // namespace bj
