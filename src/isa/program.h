// A program is a read-only image of encoded instructions plus an initial
// data image. The pc is an instruction index; byte addresses used by the
// I-cache model are pc * 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace bj {

struct Program {
  std::string name;
  std::vector<std::uint32_t> code;
  // Initial data memory contents: (byte address, 8-byte value) pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
  std::uint64_t entry = 0;

  std::uint64_t size() const { return code.size(); }
  bool in_range(std::uint64_t pc) const { return pc < code.size(); }
  std::uint32_t fetch_raw(std::uint64_t pc) const {
    return in_range(pc) ? code[pc] : encode(DecodedInst{.op = Opcode::kHalt});
  }
  DecodedInst fetch(std::uint64_t pc) const { return decode(fetch_raw(pc)); }
};

}  // namespace bj
