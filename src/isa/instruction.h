// Decoded instruction form plus the 32-bit binary encoding. The pipeline
// stores raw encodings in instruction memory and in the DTQ (the paper's
// trailing thread re-decodes the *undecoded* leading instruction on a
// different frontend way), so encode/decode are real bit-level operations
// that hard faults can corrupt.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.h"

namespace bj {

struct DecodedInst {
  Opcode op = Opcode::kNop;
  RegRef dst;
  RegRef src1;
  RegRef src2;
  std::int64_t imm = 0;
  // False when the raw word did not decode to a known opcode (possible only
  // under fault injection); such instructions behave as NOPs.
  bool valid = true;

  const OpTraits& traits() const { return bj::traits(op); }
  bool is_load() const { return traits().is_load; }
  bool is_store() const { return traits().is_store; }
  bool is_branch() const { return traits().is_branch; }
  bool is_jump() const { return traits().is_jump; }
  bool is_mem() const { return is_load() || is_store(); }
  bool is_control() const { return is_branch() || is_jump(); }
  bool writes_reg() const { return dst.valid() && !(dst.cls == RegClass::kInt &&
                                                    dst.idx == kZeroReg); }
  FuClass fu() const { return traits().fu; }

  bool operator==(const DecodedInst&) const = default;
};

// Encodes a decoded instruction into its 32-bit binary form.
std::uint32_t encode(const DecodedInst& inst);

// Decodes a 32-bit word. Unknown opcodes yield a DecodedInst with
// valid == false and op == kNop.
DecodedInst decode(std::uint32_t word);

// Human-readable disassembly ("add r3, r1, r2").
std::string disassemble(const DecodedInst& inst);
std::string disassemble(std::uint32_t word);

}  // namespace bj
