// The mini RISC ISA the simulated core executes. The ISA is deliberately
// small but spans every backend-way type class the paper's core has (int ALU,
// int multiplier/divider, FP ALU, FP multiplier/divider, memory port), so the
// safe-shuffle spatial-diversity machinery is exercised exactly as in the
// paper's SimpleScalar/Alpha setup.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bj {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,
  // Integer ALU, register-register.
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
  // Integer ALU, register-immediate.
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSlti, kLui,
  // Integer multiply/divide unit.
  kMul, kDiv, kRem,
  // Floating point (doubles held in FP registers).
  kFadd, kFsub, kFmin, kFmax, kFneg,
  kFmul, kFdiv, kFsqrt,
  kFlt, kFle, kFeq,    // FP compares write an integer register
  kItof, kFtoi,        // value conversions
  kFmvif, kFmvfi,      // raw bit moves int<->fp
  // Memory (8-byte accesses).
  kLd, kSt, kFld, kFst,
  // Control.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kJmp, kJal, kJr,
  kCount
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

// Backend-way type classes (Table 1: 4 int ALUs, 2 int multipliers,
// 2 FP ALUs, 2 FP multipliers, plus the two L1D ports as memory ways).
enum class FuClass : std::uint8_t {
  kIntAlu = 0,
  kIntMul,
  kFpAlu,
  kFpMul,
  kMem,
  kCount
};

inline constexpr int kNumFuClasses = static_cast<int>(FuClass::kCount);

const char* fu_class_name(FuClass cls);

enum class RegClass : std::uint8_t { kNone = 0, kInt, kFp };

// A reference to an architectural register.
struct RegRef {
  RegClass cls = RegClass::kNone;
  std::uint8_t idx = 0;

  bool valid() const { return cls != RegClass::kNone; }
  bool operator==(const RegRef&) const = default;
};

inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;
// r0 is hardwired to zero; writes to it are discarded.
inline constexpr int kZeroReg = 0;
// kJal writes the return address to r31.
inline constexpr int kLinkReg = 31;

// Instruction encoding formats (selects how the 32-bit word is carved up).
enum class Format : std::uint8_t {
  kNone,    // kNop, kHalt
  kR,       // op rd, rs1, rs2
  kI,       // op rd, rs1, imm16 (also loads: rd, base, offset)
  kStore,   // op data(rs2 slot in [25:21]), base, offset
  kBranch,  // op rs1, rs2, pc-relative imm16
  kJ,       // op imm26 (absolute instruction index)
  kJr,      // op rs1
};

// Static per-opcode properties. Operand register classes describe the
// *architectural* source/destination classes used by decode and rename.
struct OpTraits {
  const char* mnemonic;
  Format format;
  FuClass fu;
  RegClass dst_cls;   // kNone when the opcode writes nothing
  RegClass src1_cls;
  RegClass src2_cls;
  bool is_branch;     // conditional branch
  bool is_jump;       // unconditional control transfer
  bool is_load;
  bool is_store;
  bool imm_signed;    // sign- vs zero-extend the 16-bit immediate
};

namespace detail {
// Built once in opcode.cc; exposed so traits() inlines to an array index.
// The pipeline queries opcode traits hundreds of times per simulated cycle
// (scheduling, LSQ scans, rename), so the lookup must not be a call.
extern const std::array<OpTraits, kNumOpcodes> kOpTraitsTable;
}  // namespace detail

inline const OpTraits& traits(Opcode op) {
  return detail::kOpTraitsTable[static_cast<std::size_t>(op)];
}

inline bool is_control(Opcode op) {
  const OpTraits& t = traits(op);
  return t.is_branch || t.is_jump;
}

}  // namespace bj
