// Single source of truth for instruction semantics. Both the in-order
// architectural emulator (the oracle) and the out-of-order pipeline call
// eval(), so any divergence between them in tests indicates a pipeline bug,
// and any divergence at run time indicates an injected fault.
//
// All register values travel as 64-bit bit patterns; FP operands are the
// IEEE-754 double bit patterns held in FP registers.
#pragma once

#include <cstdint>

#include "isa/instruction.h"

namespace bj {

struct ExecOutcome {
  std::uint64_t value = 0;   // destination value (for ops with a dst)
  bool taken = false;        // branch/jump outcome
  std::uint64_t target = 0;  // control-transfer target (instruction index)
  std::uint64_t mem_addr = 0;  // effective address for loads/stores
  std::uint64_t store_value = 0;  // data for stores
};

// Evaluates one instruction given its source values (bit patterns) and pc
// (instruction index). For loads, computes only mem_addr — the memory system
// supplies the value. For stores, computes mem_addr and store_value.
ExecOutcome eval(const DecodedInst& inst, std::uint64_t s1, std::uint64_t s2,
                 std::uint64_t pc);

}  // namespace bj
