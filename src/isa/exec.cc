#include "isa/exec.h"

#include <bit>
#include <cmath>

namespace bj {
namespace {

double as_f(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t as_u(double value) { return std::bit_cast<std::uint64_t>(value); }
std::int64_t as_s(std::uint64_t bits) {
  return static_cast<std::int64_t>(bits);
}

}  // namespace

ExecOutcome eval(const DecodedInst& inst, std::uint64_t s1, std::uint64_t s2,
                 std::uint64_t pc) {
  ExecOutcome out;
  if (!inst.valid) {
    // An undecodable word behaves as a NOP and falls through.
    out.target = pc + 1;
    return out;
  }
  const auto imm = static_cast<std::uint64_t>(inst.imm);
  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      break;

    case Opcode::kAdd: out.value = s1 + s2; break;
    case Opcode::kSub: out.value = s1 - s2; break;
    case Opcode::kAnd: out.value = s1 & s2; break;
    case Opcode::kOr: out.value = s1 | s2; break;
    case Opcode::kXor: out.value = s1 ^ s2; break;
    case Opcode::kSll: out.value = s1 << (s2 & 63); break;
    case Opcode::kSrl: out.value = s1 >> (s2 & 63); break;
    case Opcode::kSra:
      out.value = static_cast<std::uint64_t>(as_s(s1) >> (s2 & 63));
      break;
    case Opcode::kSlt: out.value = as_s(s1) < as_s(s2) ? 1 : 0; break;
    case Opcode::kSltu: out.value = s1 < s2 ? 1 : 0; break;

    case Opcode::kAddi: out.value = s1 + imm; break;
    case Opcode::kAndi: out.value = s1 & imm; break;
    case Opcode::kOri: out.value = s1 | imm; break;
    case Opcode::kXori: out.value = s1 ^ imm; break;
    case Opcode::kSlli: out.value = s1 << (imm & 63); break;
    case Opcode::kSrli: out.value = s1 >> (imm & 63); break;
    case Opcode::kSlti: out.value = as_s(s1) < inst.imm ? 1 : 0; break;
    case Opcode::kLui:
      out.value = static_cast<std::uint64_t>(inst.imm << 16);
      break;

    case Opcode::kMul: out.value = s1 * s2; break;
    case Opcode::kDiv:
      // RISC-V style: divide by zero yields all ones; INT_MIN/-1 wraps.
      if (s2 == 0) {
        out.value = ~0ull;
      } else if (as_s(s1) == INT64_MIN && as_s(s2) == -1) {
        out.value = s1;
      } else {
        out.value = static_cast<std::uint64_t>(as_s(s1) / as_s(s2));
      }
      break;
    case Opcode::kRem:
      if (s2 == 0) {
        out.value = s1;
      } else if (as_s(s1) == INT64_MIN && as_s(s2) == -1) {
        out.value = 0;
      } else {
        out.value = static_cast<std::uint64_t>(as_s(s1) % as_s(s2));
      }
      break;

    case Opcode::kFadd: out.value = as_u(as_f(s1) + as_f(s2)); break;
    case Opcode::kFsub: out.value = as_u(as_f(s1) - as_f(s2)); break;
    case Opcode::kFmin: out.value = as_u(std::fmin(as_f(s1), as_f(s2))); break;
    case Opcode::kFmax: out.value = as_u(std::fmax(as_f(s1), as_f(s2))); break;
    case Opcode::kFneg: out.value = s1 ^ 0x8000000000000000ull; break;
    case Opcode::kFmul: out.value = as_u(as_f(s1) * as_f(s2)); break;
    case Opcode::kFdiv: out.value = as_u(as_f(s1) / as_f(s2)); break;
    case Opcode::kFsqrt: out.value = as_u(std::sqrt(as_f(s1))); break;
    case Opcode::kFlt: out.value = as_f(s1) < as_f(s2) ? 1 : 0; break;
    case Opcode::kFle: out.value = as_f(s1) <= as_f(s2) ? 1 : 0; break;
    case Opcode::kFeq: out.value = as_f(s1) == as_f(s2) ? 1 : 0; break;
    case Opcode::kItof:
      out.value = as_u(static_cast<double>(as_s(s1)));
      break;
    case Opcode::kFtoi: {
      const double f = as_f(s1);
      // Saturating conversion keeps fault-corrupted NaN/inf well defined.
      if (std::isnan(f)) {
        out.value = 0;
      } else if (f >= 9.2233720368547758e18) {
        out.value = static_cast<std::uint64_t>(INT64_MAX);
      } else if (f <= -9.2233720368547758e18) {
        out.value = static_cast<std::uint64_t>(INT64_MIN);
      } else {
        out.value = static_cast<std::uint64_t>(static_cast<std::int64_t>(f));
      }
      break;
    }
    case Opcode::kFmvif: out.value = s1; break;
    case Opcode::kFmvfi: out.value = s1; break;

    case Opcode::kLd:
    case Opcode::kFld:
      out.mem_addr = (s1 + imm) & ~7ull;
      break;
    case Opcode::kSt:
    case Opcode::kFst:
      out.mem_addr = (s1 + imm) & ~7ull;
      out.store_value = s2;
      break;

    case Opcode::kBeq: out.taken = s1 == s2; break;
    case Opcode::kBne: out.taken = s1 != s2; break;
    case Opcode::kBlt: out.taken = as_s(s1) < as_s(s2); break;
    case Opcode::kBge: out.taken = as_s(s1) >= as_s(s2); break;
    case Opcode::kBltu: out.taken = s1 < s2; break;
    case Opcode::kBgeu: out.taken = s1 >= s2; break;

    case Opcode::kJmp:
      out.taken = true;
      out.target = imm;
      break;
    case Opcode::kJal:
      out.taken = true;
      out.target = imm;
      out.value = pc + 1;
      break;
    case Opcode::kJr:
      out.taken = true;
      out.target = s1;
      break;

    case Opcode::kCount:
      break;
  }
  if (inst.is_branch()) {
    out.target = out.taken ? pc + static_cast<std::uint64_t>(inst.imm)
                           : pc + 1;
  } else if (!inst.is_jump()) {
    out.target = pc + 1;
  } else if (!out.taken) {
    out.target = pc + 1;
  }
  return out;
}

}  // namespace bj
