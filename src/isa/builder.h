// Assembler-style program construction with labels and pseudo-instructions.
// Used by the workload generator, the examples, and the tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.h"

namespace bj {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name = "program");

  // --- raw emission -------------------------------------------------------
  ProgramBuilder& emit(const DecodedInst& inst);
  ProgramBuilder& emit_raw(std::uint32_t word);

  // --- integer ALU --------------------------------------------------------
  ProgramBuilder& add(int rd, int rs1, int rs2);
  ProgramBuilder& sub(int rd, int rs1, int rs2);
  ProgramBuilder& and_(int rd, int rs1, int rs2);
  ProgramBuilder& or_(int rd, int rs1, int rs2);
  ProgramBuilder& xor_(int rd, int rs1, int rs2);
  ProgramBuilder& sll(int rd, int rs1, int rs2);
  ProgramBuilder& srl(int rd, int rs1, int rs2);
  ProgramBuilder& sra(int rd, int rs1, int rs2);
  ProgramBuilder& slt(int rd, int rs1, int rs2);
  ProgramBuilder& sltu(int rd, int rs1, int rs2);
  ProgramBuilder& addi(int rd, int rs1, std::int64_t imm);
  ProgramBuilder& andi(int rd, int rs1, std::uint64_t imm);
  ProgramBuilder& ori(int rd, int rs1, std::uint64_t imm);
  ProgramBuilder& xori(int rd, int rs1, std::uint64_t imm);
  ProgramBuilder& slli(int rd, int rs1, int amount);
  ProgramBuilder& srli(int rd, int rs1, int amount);
  ProgramBuilder& slti(int rd, int rs1, std::int64_t imm);
  ProgramBuilder& lui(int rd, std::int64_t imm);

  // --- integer multiply/divide -------------------------------------------
  ProgramBuilder& mul(int rd, int rs1, int rs2);
  ProgramBuilder& div(int rd, int rs1, int rs2);
  ProgramBuilder& rem(int rd, int rs1, int rs2);

  // --- floating point -----------------------------------------------------
  ProgramBuilder& fadd(int fd, int fs1, int fs2);
  ProgramBuilder& fsub(int fd, int fs1, int fs2);
  ProgramBuilder& fmul(int fd, int fs1, int fs2);
  ProgramBuilder& fdiv(int fd, int fs1, int fs2);
  ProgramBuilder& fsqrt(int fd, int fs1);
  ProgramBuilder& fmin(int fd, int fs1, int fs2);
  ProgramBuilder& fmax(int fd, int fs1, int fs2);
  ProgramBuilder& fneg(int fd, int fs1);
  ProgramBuilder& flt(int rd, int fs1, int fs2);
  ProgramBuilder& fle(int rd, int fs1, int fs2);
  ProgramBuilder& feq(int rd, int fs1, int fs2);
  ProgramBuilder& itof(int fd, int rs1);
  ProgramBuilder& ftoi(int rd, int fs1);
  ProgramBuilder& fmvif(int fd, int rs1);
  ProgramBuilder& fmvfi(int rd, int fs1);

  // --- memory -------------------------------------------------------------
  ProgramBuilder& ld(int rd, int base, std::int64_t offset);
  ProgramBuilder& st(int data, int base, std::int64_t offset);
  ProgramBuilder& fld(int fd, int base, std::int64_t offset);
  ProgramBuilder& fst(int fdata, int base, std::int64_t offset);

  // --- control flow (label-based) ----------------------------------------
  ProgramBuilder& label(const std::string& name);
  ProgramBuilder& beq(int rs1, int rs2, const std::string& target);
  ProgramBuilder& bne(int rs1, int rs2, const std::string& target);
  ProgramBuilder& blt(int rs1, int rs2, const std::string& target);
  ProgramBuilder& bge(int rs1, int rs2, const std::string& target);
  ProgramBuilder& bltu(int rs1, int rs2, const std::string& target);
  ProgramBuilder& bgeu(int rs1, int rs2, const std::string& target);
  ProgramBuilder& jmp(const std::string& target);
  ProgramBuilder& jal(const std::string& target);
  ProgramBuilder& jr(int rs1);

  // --- misc ---------------------------------------------------------------
  ProgramBuilder& nop();
  ProgramBuilder& halt();

  // Loads an arbitrary 64-bit constant (pseudo-instruction; expands to a
  // short sequence of ori/slli).
  ProgramBuilder& li(int rd, std::uint64_t value);
  // Loads an FP constant through an integer temporary register.
  ProgramBuilder& lfi(int fd, double value, int scratch_int_reg);

  // Declares initial data memory contents.
  ProgramBuilder& data_word(std::uint64_t address, std::uint64_t value);

  std::uint64_t here() const { return code_.size(); }

  // Resolves all label references and returns the finished program.
  // Throws std::runtime_error on unresolved labels.
  Program build();

 private:
  ProgramBuilder& rrr(Opcode op, int rd, int rs1, int rs2, RegClass d,
                      RegClass s1c, RegClass s2c);
  ProgramBuilder& imm_op(Opcode op, int rd, int rs1, std::int64_t imm);
  ProgramBuilder& branch(Opcode op, int rs1, int rs2,
                         const std::string& target);

  std::string name_;
  std::vector<std::uint32_t> code_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> data_;
  std::map<std::string, std::uint64_t> labels_;
  struct Fixup {
    std::uint64_t at;       // instruction index needing patching
    std::string target;
    bool absolute;          // jumps use absolute targets; branches relative
  };
  std::vector<Fixup> fixups_;
};

}  // namespace bj
