// Text assembler: parses human-readable assembly into a Program. Accepts the
// same mnemonics disassemble() emits, so the pair round-trips. Used by the
// CLI driver (`bjsim --program file.s`), the examples, and tests.
//
// Syntax:
//   ; comment                      # comment
//   label:
//       addi r1, r0, 42
//       ld   r2, [r1 + 8]          ; loads use [base + offset]
//       st   r2, [r1 + 16]
//       fadd f1, f2, f3
//       beq  r1, r2, label         ; branch targets are labels
//       jmp  label
//       jr   r31
//       halt
//   .data 0x1000 0xdeadbeef        ; initial memory word (addr value)
//   .word 0x1000 3.14159           ; FP initializer (double bits)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "isa/program.h"

namespace bj {

// Thrown on any parse error; what() carries "line N: message".
class AssemblerError : public std::runtime_error {
 public:
  AssemblerError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Assembles `source` into a Program named `name`.
Program assemble(const std::string& source, const std::string& name = "asm");

}  // namespace bj
