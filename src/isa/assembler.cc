#include "isa/assembler.h"

#include <bit>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/builder.h"

namespace bj {
namespace {

// One token of an instruction line.
struct Token {
  std::string text;
};

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& line) {
  std::size_t cut = line.size();
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ';' || line[i] == '#') {
      cut = i;
      break;
    }
  }
  return line.substr(0, cut);
}

// Splits "addi r1, r0, 42" into mnemonic + operand strings.
struct ParsedLine {
  std::string mnemonic;
  std::vector<std::string> operands;
};

ParsedLine split_line(const std::string& line) {
  ParsedLine out;
  std::size_t i = 0;
  while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  out.mnemonic = line.substr(0, i);
  std::string rest = strip(line.substr(i));
  std::string current;
  int bracket_depth = 0;
  for (char c : rest) {
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    if (c == ',' && bracket_depth == 0) {
      out.operands.push_back(strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!strip(current).empty()) out.operands.push_back(strip(current));
  return out;
}

std::optional<int> parse_reg(const std::string& s, char prefix) {
  if (s.size() < 2 || s[0] != prefix) return std::nullopt;
  int idx = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
    idx = idx * 10 + (s[i] - '0');
  }
  if (idx >= 32) return std::nullopt;
  return idx;
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos, 0);  // handles 0x..., decimal
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

// Parses "[rN + imm]" or "[rN - imm]" or "[rN]".
struct MemOperand {
  int base;
  std::int64_t offset;
};

std::optional<MemOperand> parse_mem(const std::string& s) {
  if (s.size() < 4 || s.front() != '[' || s.back() != ']') return std::nullopt;
  const std::string inner = strip(s.substr(1, s.size() - 2));
  std::size_t split = inner.find_first_of("+-");
  std::string base_str = strip(split == std::string::npos
                                   ? inner
                                   : inner.substr(0, split));
  const auto base = parse_reg(base_str, 'r');
  if (!base.has_value()) return std::nullopt;
  std::int64_t offset = 0;
  if (split != std::string::npos) {
    const char sign = inner[split];
    const auto value = parse_int(strip(inner.substr(split + 1)));
    if (!value.has_value()) return std::nullopt;
    offset = sign == '-' ? -*value : *value;
  }
  return MemOperand{*base, offset};
}

// Maps mnemonics to opcodes.
const std::map<std::string, Opcode>& mnemonic_table() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int o = 0; o < kNumOpcodes; ++o) {
      const auto op = static_cast<Opcode>(o);
      t[traits(op).mnemonic] = op;
    }
    return t;
  }();
  return table;
}

class Assembler {
 public:
  explicit Assembler(std::string name) : builder_(std::move(name)) {}

  Program run(const std::string& source) {
    std::istringstream stream(source);
    std::string raw;
    int line_no = 0;
    while (std::getline(stream, raw)) {
      ++line_no;
      std::string line = strip(strip_comment(raw));
      if (line.empty()) continue;
      // Labels (possibly followed by an instruction on the same line).
      while (true) {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) break;
        const std::string label = strip(line.substr(0, colon));
        if (label.empty() || label.find(' ') != std::string::npos) break;
        try {
          builder_.label(label);
        } catch (const std::runtime_error& e) {
          throw AssemblerError(line_no, e.what());
        }
        line = strip(line.substr(colon + 1));
      }
      if (line.empty()) continue;
      if (line[0] == '.') {
        directive(line, line_no);
      } else {
        instruction(line, line_no);
      }
    }
    try {
      return builder_.build();
    } catch (const std::runtime_error& e) {
      throw AssemblerError(line_no, e.what());
    }
  }

 private:
  void directive(const std::string& line, int line_no) {
    const ParsedLine p = split_line(line);
    if (p.mnemonic == ".data" || p.mnemonic == ".word") {
      // ".data addr value" — value may be an integer or (for .word) a
      // floating-point literal stored as its double bit pattern.
      std::istringstream os(line.substr(p.mnemonic.size()));
      std::string addr_str, value_str;
      os >> addr_str >> value_str;
      const auto addr = parse_int(addr_str);
      if (!addr.has_value()) {
        throw AssemblerError(line_no, "bad address in " + p.mnemonic);
      }
      if (const auto value = parse_int(value_str)) {
        builder_.data_word(static_cast<std::uint64_t>(*addr),
                           static_cast<std::uint64_t>(*value));
        return;
      }
      try {
        const double d = std::stod(value_str);
        builder_.data_word(static_cast<std::uint64_t>(*addr),
                           std::bit_cast<std::uint64_t>(d));
        return;
      } catch (...) {
        throw AssemblerError(line_no, "bad value in " + p.mnemonic);
      }
    }
    throw AssemblerError(line_no, "unknown directive " + p.mnemonic);
  }

  int want_reg(const ParsedLine& p, std::size_t i, char prefix, int line_no) {
    if (i >= p.operands.size()) {
      throw AssemblerError(line_no, p.mnemonic + ": missing operand");
    }
    const auto reg = parse_reg(p.operands[i], prefix);
    if (!reg.has_value()) {
      throw AssemblerError(line_no, p.mnemonic + ": expected register '" +
                                        std::string(1, prefix) +
                                        "N', got '" + p.operands[i] + "'");
    }
    return *reg;
  }

  std::int64_t want_imm(const ParsedLine& p, std::size_t i, int line_no) {
    if (i >= p.operands.size()) {
      throw AssemblerError(line_no, p.mnemonic + ": missing immediate");
    }
    const auto value = parse_int(p.operands[i]);
    if (!value.has_value()) {
      throw AssemblerError(line_no, p.mnemonic + ": bad immediate '" +
                                        p.operands[i] + "'");
    }
    if (*value < -32768 || *value > 65535) {
      throw AssemblerError(line_no,
                           p.mnemonic + ": immediate out of 16-bit range");
    }
    return *value;
  }

  MemOperand want_mem(const ParsedLine& p, std::size_t i, int line_no) {
    if (i >= p.operands.size()) {
      throw AssemblerError(line_no, p.mnemonic + ": missing memory operand");
    }
    const auto mem = parse_mem(p.operands[i]);
    if (!mem.has_value()) {
      throw AssemblerError(line_no, p.mnemonic +
                                        ": expected '[rN + imm]', got '" +
                                        p.operands[i] + "'");
    }
    return *mem;
  }

  std::string want_label(const ParsedLine& p, std::size_t i, int line_no) {
    if (i >= p.operands.size()) {
      throw AssemblerError(line_no, p.mnemonic + ": missing label");
    }
    return p.operands[i];
  }

  void instruction(const std::string& line, int line_no) {
    const ParsedLine p = split_line(line);

    // Pseudo-instruction: li rd, imm64 (any width).
    if (p.mnemonic == "li") {
      const int rd = want_reg(p, 0, 'r', line_no);
      if (p.operands.size() < 2) {
        throw AssemblerError(line_no, "li: missing immediate");
      }
      const auto value = parse_int(p.operands[1]);
      if (!value.has_value()) {
        throw AssemblerError(line_no, "li: bad immediate");
      }
      builder_.li(rd, static_cast<std::uint64_t>(*value));
      return;
    }
    // Pseudo-instruction: lfi fd, double, rscratch.
    if (p.mnemonic == "lfi") {
      const int fd = want_reg(p, 0, 'f', line_no);
      if (p.operands.size() < 3) {
        throw AssemblerError(line_no, "lfi: need fd, value, scratch");
      }
      double d = 0;
      try {
        d = std::stod(p.operands[1]);
      } catch (...) {
        throw AssemblerError(line_no, "lfi: bad fp literal");
      }
      builder_.lfi(fd, d, want_reg(p, 2, 'r', line_no));
      return;
    }
    // Pseudo-instruction: mov rd, rs (= add rd, rs, r0).
    if (p.mnemonic == "mov") {
      builder_.add(want_reg(p, 0, 'r', line_no), want_reg(p, 1, 'r', line_no),
                   0);
      return;
    }

    const auto it = mnemonic_table().find(p.mnemonic);
    if (it == mnemonic_table().end()) {
      throw AssemblerError(line_no, "unknown mnemonic '" + p.mnemonic + "'");
    }
    const Opcode op = it->second;
    const OpTraits& t = traits(op);
    DecodedInst inst;
    inst.op = op;

    const char dst_prefix = t.dst_cls == RegClass::kFp ? 'f' : 'r';
    const char s1_prefix = t.src1_cls == RegClass::kFp ? 'f' : 'r';
    const char s2_prefix = t.src2_cls == RegClass::kFp ? 'f' : 'r';

    switch (t.format) {
      case Format::kNone:
        break;
      case Format::kR: {
        std::size_t i = 0;
        if (t.dst_cls != RegClass::kNone) {
          inst.dst = {t.dst_cls, static_cast<std::uint8_t>(
                                     want_reg(p, i++, dst_prefix, line_no))};
        }
        if (t.src1_cls != RegClass::kNone) {
          inst.src1 = {t.src1_cls, static_cast<std::uint8_t>(
                                       want_reg(p, i++, s1_prefix, line_no))};
        }
        if (t.src2_cls != RegClass::kNone) {
          inst.src2 = {t.src2_cls, static_cast<std::uint8_t>(
                                       want_reg(p, i++, s2_prefix, line_no))};
        }
        break;
      }
      case Format::kI: {
        inst.dst = {t.dst_cls,
                    static_cast<std::uint8_t>(want_reg(p, 0, dst_prefix,
                                                       line_no))};
        if (t.is_load) {
          const MemOperand mem = want_mem(p, 1, line_no);
          inst.src1 = {RegClass::kInt, static_cast<std::uint8_t>(mem.base)};
          inst.imm = mem.offset & 0xffff;
        } else if (t.src1_cls != RegClass::kNone) {
          inst.src1 = {t.src1_cls, static_cast<std::uint8_t>(
                                       want_reg(p, 1, s1_prefix, line_no))};
          inst.imm = want_imm(p, 2, line_no) & 0xffff;
        } else {
          inst.imm = want_imm(p, 1, line_no) & 0xffff;  // lui
        }
        break;
      }
      case Format::kStore: {
        inst.src2 = {t.src2_cls, static_cast<std::uint8_t>(
                                     want_reg(p, 0, s2_prefix, line_no))};
        const MemOperand mem = want_mem(p, 1, line_no);
        inst.src1 = {RegClass::kInt, static_cast<std::uint8_t>(mem.base)};
        inst.imm = mem.offset & 0xffff;
        break;
      }
      case Format::kBranch: {
        const int a = want_reg(p, 0, 'r', line_no);
        const int b = want_reg(p, 1, 'r', line_no);
        const std::string target = want_label(p, 2, line_no);
        switch (op) {
          case Opcode::kBeq: builder_.beq(a, b, target); return;
          case Opcode::kBne: builder_.bne(a, b, target); return;
          case Opcode::kBlt: builder_.blt(a, b, target); return;
          case Opcode::kBge: builder_.bge(a, b, target); return;
          case Opcode::kBltu: builder_.bltu(a, b, target); return;
          case Opcode::kBgeu: builder_.bgeu(a, b, target); return;
          default: break;
        }
        throw AssemblerError(line_no, "unhandled branch");
      }
      case Format::kJ: {
        const std::string target = want_label(p, 0, line_no);
        if (op == Opcode::kJal) {
          builder_.jal(target);
        } else {
          builder_.jmp(target);
        }
        return;
      }
      case Format::kJr:
        builder_.jr(want_reg(p, 0, 'r', line_no));
        return;
    }
    builder_.emit(inst);
  }

  ProgramBuilder builder_;
};

}  // namespace

Program assemble(const std::string& source, const std::string& name) {
  return Assembler(name).run(source);
}

}  // namespace bj
