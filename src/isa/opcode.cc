#include "isa/opcode.h"

#include <array>
#include <cassert>

namespace bj {
namespace {

constexpr RegClass kN = RegClass::kNone;
constexpr RegClass kI = RegClass::kInt;
constexpr RegClass kF = RegClass::kFp;

constexpr OpTraits make(const char* mn, Format fmt, FuClass fu, RegClass dst,
                        RegClass s1, RegClass s2, bool br = false,
                        bool jmp = false, bool ld = false, bool st = false,
                        bool imm_signed = true) {
  return OpTraits{mn, fmt, fu, dst, s1, s2, br, jmp, ld, st, imm_signed};
}

std::array<OpTraits, kNumOpcodes> build_traits_table() {
  std::array<OpTraits, kNumOpcodes> t{};
  auto set = [&](Opcode op, OpTraits tr) { t[static_cast<int>(op)] = tr; };
  const FuClass alu = FuClass::kIntAlu;
  const FuClass mul = FuClass::kIntMul;
  const FuClass fpa = FuClass::kFpAlu;
  const FuClass fpm = FuClass::kFpMul;
  const FuClass mem = FuClass::kMem;

  set(Opcode::kNop, make("nop", Format::kNone, alu, kN, kN, kN));
  set(Opcode::kHalt, make("halt", Format::kNone, alu, kN, kN, kN));

  set(Opcode::kAdd, make("add", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSub, make("sub", Format::kR, alu, kI, kI, kI));
  set(Opcode::kAnd, make("and", Format::kR, alu, kI, kI, kI));
  set(Opcode::kOr, make("or", Format::kR, alu, kI, kI, kI));
  set(Opcode::kXor, make("xor", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSll, make("sll", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSrl, make("srl", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSra, make("sra", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSlt, make("slt", Format::kR, alu, kI, kI, kI));
  set(Opcode::kSltu, make("sltu", Format::kR, alu, kI, kI, kI));

  set(Opcode::kAddi, make("addi", Format::kI, alu, kI, kI, kN));
  set(Opcode::kAndi, make("andi", Format::kI, alu, kI, kI, kN, false, false,
                          false, false, /*imm_signed=*/false));
  set(Opcode::kOri, make("ori", Format::kI, alu, kI, kI, kN, false, false,
                         false, false, /*imm_signed=*/false));
  set(Opcode::kXori, make("xori", Format::kI, alu, kI, kI, kN, false, false,
                          false, false, /*imm_signed=*/false));
  set(Opcode::kSlli, make("slli", Format::kI, alu, kI, kI, kN));
  set(Opcode::kSrli, make("srli", Format::kI, alu, kI, kI, kN));
  set(Opcode::kSlti, make("slti", Format::kI, alu, kI, kI, kN));
  set(Opcode::kLui, make("lui", Format::kI, alu, kI, kN, kN));

  set(Opcode::kMul, make("mul", Format::kR, mul, kI, kI, kI));
  set(Opcode::kDiv, make("div", Format::kR, mul, kI, kI, kI));
  set(Opcode::kRem, make("rem", Format::kR, mul, kI, kI, kI));

  set(Opcode::kFadd, make("fadd", Format::kR, fpa, kF, kF, kF));
  set(Opcode::kFsub, make("fsub", Format::kR, fpa, kF, kF, kF));
  set(Opcode::kFmin, make("fmin", Format::kR, fpa, kF, kF, kF));
  set(Opcode::kFmax, make("fmax", Format::kR, fpa, kF, kF, kF));
  set(Opcode::kFneg, make("fneg", Format::kR, fpa, kF, kF, kN));
  set(Opcode::kFmul, make("fmul", Format::kR, fpm, kF, kF, kF));
  set(Opcode::kFdiv, make("fdiv", Format::kR, fpm, kF, kF, kF));
  set(Opcode::kFsqrt, make("fsqrt", Format::kR, fpm, kF, kF, kN));
  set(Opcode::kFlt, make("flt", Format::kR, fpa, kI, kF, kF));
  set(Opcode::kFle, make("fle", Format::kR, fpa, kI, kF, kF));
  set(Opcode::kFeq, make("feq", Format::kR, fpa, kI, kF, kF));
  set(Opcode::kItof, make("itof", Format::kR, fpa, kF, kI, kN));
  set(Opcode::kFtoi, make("ftoi", Format::kR, fpa, kI, kF, kN));
  set(Opcode::kFmvif, make("fmvif", Format::kR, fpa, kF, kI, kN));
  set(Opcode::kFmvfi, make("fmvfi", Format::kR, fpa, kI, kF, kN));

  set(Opcode::kLd, make("ld", Format::kI, mem, kI, kI, kN, false, false,
                        /*ld=*/true));
  set(Opcode::kSt, make("st", Format::kStore, mem, kN, kI, kI, false, false,
                        false, /*st=*/true));
  set(Opcode::kFld, make("fld", Format::kI, mem, kF, kI, kN, false, false,
                         /*ld=*/true));
  set(Opcode::kFst, make("fst", Format::kStore, mem, kN, kI, kF, false, false,
                         false, /*st=*/true));

  set(Opcode::kBeq, make("beq", Format::kBranch, alu, kN, kI, kI, /*br=*/true));
  set(Opcode::kBne, make("bne", Format::kBranch, alu, kN, kI, kI, /*br=*/true));
  set(Opcode::kBlt, make("blt", Format::kBranch, alu, kN, kI, kI, /*br=*/true));
  set(Opcode::kBge, make("bge", Format::kBranch, alu, kN, kI, kI, /*br=*/true));
  set(Opcode::kBltu,
      make("bltu", Format::kBranch, alu, kN, kI, kI, /*br=*/true));
  set(Opcode::kBgeu,
      make("bgeu", Format::kBranch, alu, kN, kI, kI, /*br=*/true));

  set(Opcode::kJmp,
      make("jmp", Format::kJ, alu, kN, kN, kN, false, /*jmp=*/true));
  set(Opcode::kJal,
      make("jal", Format::kJ, alu, kI, kN, kN, false, /*jmp=*/true));
  set(Opcode::kJr,
      make("jr", Format::kJr, alu, kN, kI, kN, false, /*jmp=*/true));
  return t;
}

}  // namespace

namespace detail {
const std::array<OpTraits, kNumOpcodes> kOpTraitsTable = build_traits_table();
}  // namespace detail

const char* fu_class_name(FuClass cls) {
  switch (cls) {
    case FuClass::kIntAlu: return "int-alu";
    case FuClass::kIntMul: return "int-mul";
    case FuClass::kFpAlu: return "fp-alu";
    case FuClass::kFpMul: return "fp-mul";
    case FuClass::kMem: return "mem-port";
    case FuClass::kCount: break;
  }
  return "?";
}

}  // namespace bj
