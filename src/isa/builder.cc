#include "isa/builder.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace bj {
namespace {

constexpr RegClass kI = RegClass::kInt;
constexpr RegClass kF = RegClass::kFp;

RegRef reg(RegClass cls, int idx) {
  assert(idx >= 0 && idx < 32);
  return RegRef{cls, static_cast<std::uint8_t>(idx)};
}

}  // namespace

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

ProgramBuilder& ProgramBuilder::emit(const DecodedInst& inst) {
  code_.push_back(encode(inst));
  return *this;
}

ProgramBuilder& ProgramBuilder::emit_raw(std::uint32_t word) {
  code_.push_back(word);
  return *this;
}

ProgramBuilder& ProgramBuilder::rrr(Opcode op, int rd, int rs1, int rs2,
                                    RegClass d, RegClass s1c, RegClass s2c) {
  DecodedInst inst;
  inst.op = op;
  if (d != RegClass::kNone) inst.dst = reg(d, rd);
  if (s1c != RegClass::kNone) inst.src1 = reg(s1c, rs1);
  if (s2c != RegClass::kNone) inst.src2 = reg(s2c, rs2);
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::imm_op(Opcode op, int rd, int rs1,
                                       std::int64_t imm) {
  DecodedInst inst;
  inst.op = op;
  const OpTraits& t = traits(op);
  if (t.dst_cls != RegClass::kNone) inst.dst = reg(t.dst_cls, rd);
  if (t.src1_cls != RegClass::kNone) inst.src1 = reg(t.src1_cls, rs1);
  inst.imm = imm & 0xffff;
  return emit(inst);
}

#define BJ_RRR_INT(fn, op) \
  ProgramBuilder& ProgramBuilder::fn(int rd, int rs1, int rs2) { \
    return rrr(Opcode::op, rd, rs1, rs2, kI, kI, kI); \
  }
BJ_RRR_INT(add, kAdd)
BJ_RRR_INT(sub, kSub)
BJ_RRR_INT(and_, kAnd)
BJ_RRR_INT(or_, kOr)
BJ_RRR_INT(xor_, kXor)
BJ_RRR_INT(sll, kSll)
BJ_RRR_INT(srl, kSrl)
BJ_RRR_INT(sra, kSra)
BJ_RRR_INT(slt, kSlt)
BJ_RRR_INT(sltu, kSltu)
BJ_RRR_INT(mul, kMul)
BJ_RRR_INT(div, kDiv)
BJ_RRR_INT(rem, kRem)
#undef BJ_RRR_INT

ProgramBuilder& ProgramBuilder::addi(int rd, int rs1, std::int64_t imm) {
  return imm_op(Opcode::kAddi, rd, rs1, imm);
}
ProgramBuilder& ProgramBuilder::andi(int rd, int rs1, std::uint64_t imm) {
  return imm_op(Opcode::kAndi, rd, rs1, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::ori(int rd, int rs1, std::uint64_t imm) {
  return imm_op(Opcode::kOri, rd, rs1, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::xori(int rd, int rs1, std::uint64_t imm) {
  return imm_op(Opcode::kXori, rd, rs1, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::slli(int rd, int rs1, int amount) {
  return imm_op(Opcode::kSlli, rd, rs1, amount);
}
ProgramBuilder& ProgramBuilder::srli(int rd, int rs1, int amount) {
  return imm_op(Opcode::kSrli, rd, rs1, amount);
}
ProgramBuilder& ProgramBuilder::slti(int rd, int rs1, std::int64_t imm) {
  return imm_op(Opcode::kSlti, rd, rs1, imm);
}
ProgramBuilder& ProgramBuilder::lui(int rd, std::int64_t imm) {
  return imm_op(Opcode::kLui, rd, 0, imm);
}

#define BJ_RRR_FP3(fn, op) \
  ProgramBuilder& ProgramBuilder::fn(int fd, int fs1, int fs2) { \
    return rrr(Opcode::op, fd, fs1, fs2, kF, kF, kF); \
  }
BJ_RRR_FP3(fadd, kFadd)
BJ_RRR_FP3(fsub, kFsub)
BJ_RRR_FP3(fmul, kFmul)
BJ_RRR_FP3(fdiv, kFdiv)
BJ_RRR_FP3(fmin, kFmin)
BJ_RRR_FP3(fmax, kFmax)
#undef BJ_RRR_FP3

ProgramBuilder& ProgramBuilder::fsqrt(int fd, int fs1) {
  return rrr(Opcode::kFsqrt, fd, fs1, 0, kF, kF, RegClass::kNone);
}
ProgramBuilder& ProgramBuilder::fneg(int fd, int fs1) {
  return rrr(Opcode::kFneg, fd, fs1, 0, kF, kF, RegClass::kNone);
}
ProgramBuilder& ProgramBuilder::flt(int rd, int fs1, int fs2) {
  return rrr(Opcode::kFlt, rd, fs1, fs2, kI, kF, kF);
}
ProgramBuilder& ProgramBuilder::fle(int rd, int fs1, int fs2) {
  return rrr(Opcode::kFle, rd, fs1, fs2, kI, kF, kF);
}
ProgramBuilder& ProgramBuilder::feq(int rd, int fs1, int fs2) {
  return rrr(Opcode::kFeq, rd, fs1, fs2, kI, kF, kF);
}
ProgramBuilder& ProgramBuilder::itof(int fd, int rs1) {
  return rrr(Opcode::kItof, fd, rs1, 0, kF, kI, RegClass::kNone);
}
ProgramBuilder& ProgramBuilder::ftoi(int rd, int fs1) {
  return rrr(Opcode::kFtoi, rd, fs1, 0, kI, kF, RegClass::kNone);
}
ProgramBuilder& ProgramBuilder::fmvif(int fd, int rs1) {
  return rrr(Opcode::kFmvif, fd, rs1, 0, kF, kI, RegClass::kNone);
}
ProgramBuilder& ProgramBuilder::fmvfi(int rd, int fs1) {
  return rrr(Opcode::kFmvfi, rd, fs1, 0, kI, kF, RegClass::kNone);
}

ProgramBuilder& ProgramBuilder::ld(int rd, int base, std::int64_t offset) {
  DecodedInst inst;
  inst.op = Opcode::kLd;
  inst.dst = reg(kI, rd);
  inst.src1 = reg(kI, base);
  inst.imm = offset & 0xffff;
  return emit(inst);
}
ProgramBuilder& ProgramBuilder::fld(int fd, int base, std::int64_t offset) {
  DecodedInst inst;
  inst.op = Opcode::kFld;
  inst.dst = reg(kF, fd);
  inst.src1 = reg(kI, base);
  inst.imm = offset & 0xffff;
  return emit(inst);
}
ProgramBuilder& ProgramBuilder::st(int data, int base, std::int64_t offset) {
  DecodedInst inst;
  inst.op = Opcode::kSt;
  inst.src1 = reg(kI, base);
  inst.src2 = reg(kI, data);
  inst.imm = offset & 0xffff;
  return emit(inst);
}
ProgramBuilder& ProgramBuilder::fst(int fdata, int base, std::int64_t offset) {
  DecodedInst inst;
  inst.op = Opcode::kFst;
  inst.src1 = reg(kI, base);
  inst.src2 = reg(kF, fdata);
  inst.imm = offset & 0xffff;
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, here()).second) {
    throw std::runtime_error("duplicate label: " + name);
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::branch(Opcode op, int rs1, int rs2,
                                       const std::string& target) {
  DecodedInst inst;
  inst.op = op;
  inst.src1 = reg(kI, rs1);
  inst.src2 = reg(kI, rs2);
  fixups_.push_back({here(), target, /*absolute=*/false});
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::beq(int a, int b, const std::string& t) {
  return branch(Opcode::kBeq, a, b, t);
}
ProgramBuilder& ProgramBuilder::bne(int a, int b, const std::string& t) {
  return branch(Opcode::kBne, a, b, t);
}
ProgramBuilder& ProgramBuilder::blt(int a, int b, const std::string& t) {
  return branch(Opcode::kBlt, a, b, t);
}
ProgramBuilder& ProgramBuilder::bge(int a, int b, const std::string& t) {
  return branch(Opcode::kBge, a, b, t);
}
ProgramBuilder& ProgramBuilder::bltu(int a, int b, const std::string& t) {
  return branch(Opcode::kBltu, a, b, t);
}
ProgramBuilder& ProgramBuilder::bgeu(int a, int b, const std::string& t) {
  return branch(Opcode::kBgeu, a, b, t);
}

ProgramBuilder& ProgramBuilder::jmp(const std::string& target) {
  DecodedInst inst;
  inst.op = Opcode::kJmp;
  fixups_.push_back({here(), target, /*absolute=*/true});
  return emit(inst);
}
ProgramBuilder& ProgramBuilder::jal(const std::string& target) {
  DecodedInst inst;
  inst.op = Opcode::kJal;
  inst.dst = reg(kI, kLinkReg);
  fixups_.push_back({here(), target, /*absolute=*/true});
  return emit(inst);
}
ProgramBuilder& ProgramBuilder::jr(int rs1) {
  DecodedInst inst;
  inst.op = Opcode::kJr;
  inst.src1 = reg(kI, rs1);
  return emit(inst);
}

ProgramBuilder& ProgramBuilder::nop() {
  return emit(DecodedInst{.op = Opcode::kNop});
}
ProgramBuilder& ProgramBuilder::halt() {
  return emit(DecodedInst{.op = Opcode::kHalt});
}

ProgramBuilder& ProgramBuilder::li(int rd, std::uint64_t value) {
  // Emit 16-bit chunks from the top, skipping leading zero chunks.
  bool started = false;
  for (int shift = 48; shift >= 0; shift -= 16) {
    const std::uint64_t chunk = (value >> shift) & 0xffff;
    if (!started) {
      if (chunk == 0 && shift != 0) continue;
      ori(rd, kZeroReg, chunk);
      started = true;
    } else {
      slli(rd, rd, 16);
      if (chunk != 0) ori(rd, rd, chunk);
    }
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::lfi(int fd, double value, int scratch) {
  li(scratch, std::bit_cast<std::uint64_t>(value));
  return fmvif(fd, scratch);
}

ProgramBuilder& ProgramBuilder::data_word(std::uint64_t address,
                                          std::uint64_t value) {
  data_.emplace_back(address, value);
  return *this;
}

Program ProgramBuilder::build() {
  for (const Fixup& fx : fixups_) {
    auto it = labels_.find(fx.target);
    if (it == labels_.end()) {
      throw std::runtime_error("unresolved label: " + fx.target);
    }
    DecodedInst inst = decode(code_[fx.at]);
    if (fx.absolute) {
      inst.imm = static_cast<std::int64_t>(it->second) & 0x3ffffff;
    } else {
      const std::int64_t rel = static_cast<std::int64_t>(it->second) -
                               static_cast<std::int64_t>(fx.at);
      if (rel < -32768 || rel > 32767) {
        throw std::runtime_error("branch out of range to " + fx.target);
      }
      inst.imm = rel & 0xffff;
    }
    code_[fx.at] = encode(inst);
  }
  Program p;
  p.name = name_;
  p.code = std::move(code_);
  p.data = std::move(data_);
  return p;
}

}  // namespace bj
