// Core configuration. Defaults reproduce Table 1 of the paper.
#pragma once

#include <array>
#include <cstdint>

#include "branch/predictor.h"
#include "fault/ecc.h"
#include "isa/opcode.h"
#include "mem/cache.h"

namespace bj {

// Redundancy mode of the core.
enum class Mode : std::uint8_t {
  kSingle,       // non-fault-tolerant single thread (normalization baseline)
  kSrt,          // SRT: trailing thread in program order, no shuffling
  kBlackjackNs,  // BlackJack no-shuffle: DTQ fetch in leading issue order,
                 // one packet per cycle, but packets unshuffled
  kBlackjack,    // full BlackJack with safe-shuffle
};

const char* mode_name(Mode mode);
bool mode_is_redundant(Mode mode);
bool mode_uses_dtq(Mode mode);

struct CoreParams {
  // Widths (Table 1: out-of-order issue 4 instructions/cycle).
  int fetch_width = 4;
  int issue_width = 4;
  int commit_width = 4;  // per context per cycle

  // Windows (Table 1).
  int active_list_entries = 512;  // per context
  int lsq_entries = 64;           // per context
  int issue_queue_entries = 32;   // shared
  int fetch_buffer_entries = 16;  // per context

  // Function units / backend ways (Table 1; the two L1D ports are the two
  // memory ways; two units of every non-ALU type exist because spatial
  // diversity is impossible otherwise).
  int int_alu_units = 4;
  int int_mul_units = 2;
  int fp_alu_units = 2;
  int fp_mul_units = 2;
  int mem_ports = 2;

  // Execution latencies (cycles). Divide/sqrt are unpipelined.
  int latency_int_alu = 1;
  int latency_int_mul = 4;
  int latency_int_div = 20;
  int latency_fp_alu = 4;
  int latency_fp_mul = 6;
  int latency_fp_div = 24;
  int latency_fp_sqrt = 30;

  // Frontend pipeline depth between fetch and dispatch (decode+rename).
  int frontend_stages = 3;
  // Extra cycles charged on a branch misprediction redirect.
  int mispredict_redirect_penalty = 2;

  // Physical register file (shared by both contexts, per class). Sized so
  // that two full 512-entry active lists plus architectural state never
  // exhaust it — the paper does not model physical-register pressure.
  int phys_int_regs = 1280;
  int phys_fp_regs = 1280;

  // SRT/BlackJack structures (Table 1).
  int store_buffer_entries = 64;
  int lvq_entries = 128;
  int boq_entries = 96;
  int slack = 256;
  int dtq_entries = 1024;
  // Post-shuffle staging for the trailing thread's fetch. Sized above the
  // committed backlog the LVQ/store-buffer allow, so it can always absorb
  // the DTQ: otherwise DTQ-full (stalling leading issue) and fetch-queue-
  // full (stalling shuffle) can deadlock the machine against a full issue
  // queue of unissuable leading instructions.
  int trailing_fetch_queue_entries = 4096;

  // The paper's fix for the issue-queue payload RAM vulnerability: separate
  // payload RAMs per thread. When false, both threads share entries and an
  // injected payload fault can escape detection (ablation).
  bool separate_payload_rams = true;

  // ECC protection per storage array (ROADMAP item 2: ECC vs BlackJack vs
  // combined). The codec decodes every protected read before the word
  // reaches the pipeline: single-bit storage faults are corrected (counted
  // in CoreStats::ecc_*_corrected), Hsiao-uncorrectable errors are flagged
  // as a detection event. kNone (the default) is byte-identical to the
  // historical unprotected model.
  EccCodec payload_ecc = EccCodec::kNone;
  EccCodec regfile_ecc = EccCodec::kNone;
  EccCodec lvq_ecc = EccCodec::kNone;
  EccCodec dtq_ecc = EccCodec::kNone;

  bool any_ecc() const {
    return payload_ecc != EccCodec::kNone || regfile_ecc != EccCodec::kNone ||
           lvq_ecc != EccCodec::kNone || dtq_ecc != EccCodec::kNone;
  }

  // One-packet-per-cycle trailing fetch (Section 4.3.1). Disabling it is an
  // ablation that shows trailing-trailing interference growing.
  bool one_packet_per_cycle = true;

  // Packet-serial trailing dispatch: a shuffled packet enters the issue
  // queue only after the previous trailing packet has fully issued. This is
  // the frontend policy that realizes the paper's observation that "most
  // often only one trailing packet resides in the issue queue at any given
  // time" (Section 4.3.2) even when latency compression stalls a packet.
  // Costs no throughput in the unstalled case (dispatch happens the cycle
  // the previous packet issues); disabling it is an ablation that shows
  // trailing-trailing interference growing.
  bool packet_serial_dispatch = true;

  // Extension (the paper's future work, Section 6): combine adjacent
  // committed packets into one trailing packet when the DTQ's borrowed
  // rename maps prove them register-independent. Wider trailing packets
  // need fewer one-per-cycle fetch slots, closing part of the BlackJack-
  // over-SRT performance gap. Off by default (the paper's machine does not
  // do this); exercised by bench_ablations.
  bool combine_packets = false;

  // Extension (cf. Rescue [11] and Srinivasan et al. [16]): backend ways the
  // issue stage must never use, as bitmasks per FU class. Set after a
  // diagnosis pass localizes a hard fault to let the chip run in degraded
  // mode instead of being returned. All-zero = everything enabled.
  std::array<std::uint32_t, kNumFuClasses> disabled_backend_ways{};

  bool way_disabled(FuClass cls, int way) const {
    return (disabled_backend_ways[static_cast<std::size_t>(cls)] >>
            static_cast<unsigned>(way)) &
           1u;
  }

  // Debug-only differential check: every cycle, re-run the legacy full-IQ
  // readiness scan next to the wakeup-list ready pool and abort (BJ_CHECK)
  // if the two select candidate sets ever differ. Behaviour-neutral when the
  // sets agree (which is the invariant being checked), so it is deliberately
  // excluded from campaign_config_digest(). No-op in BJ_LEGACY_SCAN builds,
  // where the scan is the only select path.
  bool check_issue_equivalence = false;

  // Substrate models.
  BranchPredictorParams branch;
  HierarchyParams memory;

  // Watchdog: a run is declared wedged (detection event of last resort in a
  // faulty machine) when no instruction commits for this many cycles.
  std::uint64_t watchdog_cycles = 50000;

  int fu_count(FuClass cls) const {
    switch (cls) {
      case FuClass::kIntAlu: return int_alu_units;
      case FuClass::kIntMul: return int_mul_units;
      case FuClass::kFpAlu: return fp_alu_units;
      case FuClass::kFpMul: return fp_mul_units;
      case FuClass::kMem: return mem_ports;
      case FuClass::kCount: break;
    }
    return 0;
  }
};

}  // namespace bj
