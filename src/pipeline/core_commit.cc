// Commit stages: leading-thread commit (architectural effects, oracle check,
// DTQ fill, LVQ/BOQ/store-buffer production) and trailing-thread commit with
// the paper's full check suite (store compare, load-address compare, branch
// outcome compare, second-rename dependence check, pc-chain check) plus the
// coverage accounting of Section 5.
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>

#include "pipeline/core.h"

namespace bj {

void Core::trace_commit(const DynInst* inst, char tag) {
  if (trace_ == nullptr) return;
  const DynInstCold& c = cold(inst);
  *trace_ << tag << " seq=" << inst->seq << " pc=" << inst->pc
          << " fe=" << static_cast<int>(inst->frontend_way)
          << " be=" << static_cast<int>(inst->backend_way)
          << " fetch=" << c.fetch_cycle
          << " dispatch=" << c.dispatch_cycle
          << " issue=" << c.issue_cycle
          << " done=" << c.complete_cycle << " commit=" << cycle_ << "  "
          << disassemble(inst->di()) << '\n';
}

void Core::trace_end(const DynInst* inst, TraceEndKind end,
                     SquashCause cause) {
  TraceRecord rec;
  const DynInstCold& c = cold(inst);
  rec.seq = inst->seq;
  rec.pc = inst->pc;
  rec.packet_id = inst->packet_id;
  rec.fetch_cycle = c.fetch_cycle;
  rec.dispatch_cycle = inst->dispatched ? c.dispatch_cycle : kNoCycle;
  rec.issue_cycle = inst->issued ? c.issue_cycle : kNoCycle;
  rec.complete_cycle = inst->completed ? c.complete_cycle : kNoCycle;
  rec.end_cycle = cycle_;
  rec.tid = static_cast<std::uint8_t>(tid_index(inst->tid));
  rec.frontend_way = inst->frontend_way;
  rec.backend_way = inst->backend_way;
  rec.end = end;
  rec.cause = cause;
  if (inst->is_shuffle_nop) {
    rec.set_label("shuffle-nop");
  } else {
    // `dec` is the fetch-time predecode until dispatch repoints it to the
    // effective decode, so this is the old dispatched?effective:predecode
    // label in one read. (Squashed frontend work never decoded; its
    // predecode is the fault-free decode of the same raw word.)
    rec.set_label(disassemble(inst->di()));
  }
  tracer_->record(rec);
}

void Core::commit() {
  commit_leading(ctxs_[0]);
  if (!redundant()) return;
  if (uses_dtq()) {
    commit_trailing_blackjack(ctxs_[1]);
  } else {
    commit_trailing_srt(ctxs_[1]);
  }
}

void Core::release_store(std::uint64_t ordinal, std::uint64_t addr,
                         std::uint64_t data) {
  data_mem_.store(addr, data);
  hierarchy_.store(addr);
  if (released_stores_.size() < store_trace_limit_) {
    released_stores_.push_back(StoreBufferEntry{ordinal, addr, data});
    // Provenance keeps a parallel release-cycle vector so the campaign can
    // date the first corrupt store it finds in released_stores_.
    if (provenance_ != nullptr) released_store_cycles_.push_back(cycle_);
  }
}

void Core::check_against_oracle(const DynInst* inst) {
  const std::optional<RetireRecord> rec = oracle_.step();
  std::ostringstream detail;
  if (!rec.has_value()) {
    detail << "oracle already halted at leading commit pc=" << inst->pc;
    oracle_violation_ = true;
    oracle_violation_detail_ = detail.str();
    if (flight_ != nullptr) flight_->dump("oracle-divergence");
    return;
  }
  const DecodedInst& d = inst->di();
  bool ok = rec->pc == inst->pc;
  if (ok && rec->store.has_value()) {
    ok = d.is_store() && rec->store->first == inst->mem_addr &&
         rec->store->second == inst->result;
  }
  if (ok && rec->load.has_value()) {
    ok = d.is_load() && rec->load->first == inst->mem_addr &&
         rec->load->second == inst->result;
  }
  if (ok && rec->wrote_reg && !rec->inst.is_load()) {
    ok = inst->result == rec->dst_value;
  }
  if (ok && rec->inst.is_control()) {
    const std::uint64_t next = (d.valid && d.is_control() && inst->taken)
                                   ? inst->target
                                   : inst->pc + 1;
    ok = next == rec->next_pc;
  }
  if (!ok) {
    detail << "oracle mismatch at pc=" << inst->pc << " ("
           << disassemble(rec->inst) << "): pipeline result=" << inst->result
           << " addr=" << inst->mem_addr << " vs oracle value="
           << rec->dst_value;
    oracle_violation_ = true;
    oracle_violation_detail_ = detail.str();
    if (flight_ != nullptr) flight_->dump("oracle-divergence");
  }
}

void Core::commit_leading(Context& ctx) {
  for (int n = 0; n < params_.commit_width; ++n) {
    if (ctx.halted || ctx.active_list.empty()) break;
    const InstRef head_ref = ctx.active_list.front();
    DynInst* head = &pool_.get(head_ref);
    if (!head->completed) {
      if (n == 0) {
        if (head->issued) {
          bump_event(ev_commit_head_executing_, "commit.head_executing");
        } else {
          bump_event(ev_commit_head_not_issued_, "commit.head_not_issued");
          // Per-mnemonic stall attribution: the key is built (and looked up)
          // once per opcode; later stall cycles bump through the cached slot.
          std::uint64_t*& op_slot =
              ev_commit_stall_op_[static_cast<std::size_t>(head->di().op)];
          if (op_slot == nullptr) {
            char key[48];
            const int len =
                std::snprintf(key, sizeof key, "commit.head_not_issued.%s",
                              traits(head->di().op).mnemonic);
            op_slot = &stats_.events.slot(
                std::string_view(key, static_cast<std::size_t>(len)));
          }
          ++*op_slot;
        }
      }
      break;
    }

    const DecodedInst& d = head->di();
    if (redundant()) {
      if (d.is_store() && store_buffer_.full()) break;
      if (d.is_load() && lvq_.full()) break;
      if (mode_ == Mode::kSrt && head->pre_ctrl && boq_.full()) break;
    }

    if (oracle_check_) check_against_oracle(head);
    // The autopsy lockstep tap runs at the oracle-check point: the
    // instruction is architecturally final but its store has not yet
    // reached the memory system.
    if (commit_observer_ != nullptr) {
      commit_observer_->on_leading_commit(*head, cycle_);
    }

    if (d.is_store()) {
      if (redundant()) {
        store_buffer_.push(StoreBufferEntry{ctx.committed_stores,
                                            head->mem_addr, head->result});
      } else {
        release_store(ctx.committed_stores, head->mem_addr, head->result);
      }
    }
    if (d.is_load() && redundant()) {
      lvq_.push(LvqEntry{ctx.committed_loads, head->mem_addr, head->result});
      if (injector_->storage_armed()) [[unlikely]] {
        // LVQ RAM write port: slot = ordinal mod capacity (circular RAM).
        injector_->on_storage_write(
            FaultSite::kLvqSlot,
            static_cast<int>(ctx.committed_loads %
                             static_cast<std::uint64_t>(params_.lvq_entries)));
      }
      if constexpr (kUseWakeupLists) {
        // LVQ fill: trailing loads parked on a missing entry re-check.
        // Commit runs before issue, so they are selectable this same cycle —
        // exactly when the legacy scan would first see the entry.
        wake_list(lvq_waiters_);
      }
    }
    if (mode_ == Mode::kSrt && head->pre_ctrl) {
      const bool taken = d.valid && d.is_control() && head->taken;
      boq_.push(BranchOutcome{head->pc, ctx.committed_ctrl, taken,
                              taken ? head->target : head->pc + 1});
    }
    if (uses_dtq()) {
      const bool is_mem = d.is_mem();
      const std::uint64_t mem_ordinal =
          d.is_load() ? ctx.committed_loads : ctx.committed_stores;
      const bool filled = dtq_.fill_at_commit(
          head->seq, ctx.committed, ctx.committed_mem, is_mem, mem_ordinal);
      assert(filled && "committed leading instruction missing from DTQ");
      (void)filled;
    }
    if (mode_ == Mode::kSrt) {
      srt_lead_ways_.emplace_back(head->frontend_way, head->backend_way);
    }

    // Free the previous mapping of the destination register.
    if (head->dst_phys != kNoPhysReg && head->prev_dst_phys != kNoPhysReg) {
      free_list(d.dst.cls).release(head->prev_dst_phys);
    }

    ++ctx.committed;
    if (head->pre_ctrl) ++ctx.committed_ctrl;
    if (d.is_load()) ++ctx.committed_loads;
    if (d.is_store()) ++ctx.committed_stores;
    if (d.is_mem()) {
      ++ctx.committed_mem;
      assert(!ctx.lsq.empty() && ctx.lsq.front() == head_ref);
      ctx.lsq.pop_front();
      if (d.is_store()) {
        assert(!ctx.lsq_stores.empty() && ctx.lsq_stores.front() == head_ref);
        ctx.lsq_stores.pop_front();
        // The committing store was address-ready (it completed), so it was
        // inside the ready prefix; slide the prefix with the ring and
        // re-clamp at the mutation site.
        if (ctx.lsq_stores_ready_prefix > 0) --ctx.lsq_stores_ready_prefix;
        clamp_lsq_prefix(ctx);
      }
    }
    if (d.op == Opcode::kHalt) ctx.halted = true;

    ctx.active_list.pop_front();
    trace_commit(head, 'L');
    if (tracer_ != nullptr) {
      trace_end(head, TraceEndKind::kCommit, SquashCause::kNone);
    }
    ++total_commits_[0];
    ++stats_.leading_commits;
    note_commit_progress();
    pool_.release(head_ref);  // retired: last reference leaves the pipeline
  }
}

void Core::commit_trailing_srt(Context& ctx) {
  for (int n = 0; n < params_.commit_width; ++n) {
    if (ctx.halted || ctx.active_list.empty()) break;
    const InstRef head_ref = ctx.active_list.front();
    DynInst* head = &pool_.get(head_ref);
    if (!head->completed) break;

    const DecodedInst& d = head->di();

    if (d.is_store()) {
      StoreBufferEntry released;
      const StoreCheck chk = store_buffer_.check_and_release(
          ctx.committed_stores, head->mem_addr, head->result, &released);
      switch (chk) {
        case StoreCheck::kMatch:
          release_store(released.ordinal, released.addr, released.data);
          break;
        case StoreCheck::kAddressMismatch:
          record_detection(DetectionKind::kStoreAddressMismatch, head->pc,
                           head->seq);
          return;
        case StoreCheck::kDataMismatch:
          record_detection(DetectionKind::kStoreDataMismatch, head->pc,
                           head->seq);
          return;
        case StoreCheck::kOrdinalMismatch:
        case StoreCheck::kEmpty:
          record_detection(DetectionKind::kStoreOrdinalMismatch, head->pc,
                           head->seq);
          return;
      }
    }
    if (d.is_load()) {
      if (lvq_.empty() || lvq_.front().ordinal != ctx.committed_loads) {
        record_detection(DetectionKind::kLoadAddressMismatch, head->pc,
                         head->seq);
        return;
      }
      const LvqEntry entry = lvq_.pop();
      if (entry.addr != head->mem_addr) {
        record_detection(DetectionKind::kLoadAddressMismatch, head->pc,
                         head->seq);
        return;
      }
    }
    if (head->pre_ctrl) {
      if (boq_.empty()) {
        record_detection(DetectionKind::kBranchOutcomeMismatch, head->pc,
                         head->seq);
        return;
      }
      const BranchOutcome outcome = boq_.pop();
      const bool taken = d.valid && d.is_control() && head->taken;
      const std::uint64_t target = taken ? head->target : head->pc + 1;
      const bool ok = outcome.pc == head->pc && outcome.taken == taken &&
                      (!taken || outcome.target == target);
      if (!ok) {
        record_detection(DetectionKind::kBranchOutcomeMismatch, head->pc,
                         head->seq);
        return;
      }
    }

    // Coverage accounting: pair the trailing instruction with the leading
    // ways recorded at leading commit (measurement-only side channel).
    if (!srt_lead_ways_.empty()) {
      const auto [lead_fe, lead_be] = srt_lead_ways_.front();
      srt_lead_ways_.pop_front();
      stats_.coverage.add_pair(head->frontend_way != lead_fe,
                               head->backend_way != lead_be);
    }

    if (head->dst_phys != kNoPhysReg && head->prev_dst_phys != kNoPhysReg) {
      free_list(d.dst.cls).release(head->prev_dst_phys);
    }

    ++ctx.committed;
    if (head->pre_ctrl) ++ctx.committed_ctrl;
    if (d.is_load()) ++ctx.committed_loads;
    if (d.is_store()) ++ctx.committed_stores;
    if (d.is_mem()) {
      ++ctx.committed_mem;
      assert(!ctx.lsq.empty() && ctx.lsq.front() == head_ref);
      ctx.lsq.pop_front();
      if (d.is_store()) {
        assert(!ctx.lsq_stores.empty() && ctx.lsq_stores.front() == head_ref);
        ctx.lsq_stores.pop_front();
        // Same prefix maintenance as the leading commit path: slide, then
        // re-clamp at the mutation site.
        if (ctx.lsq_stores_ready_prefix > 0) --ctx.lsq_stores_ready_prefix;
        clamp_lsq_prefix(ctx);
      }
    }
    if (d.op == Opcode::kHalt) ctx.halted = true;

    ctx.active_list.pop_front();
    trace_commit(head, 'T');
    if (tracer_ != nullptr) {
      trace_end(head, TraceEndKind::kCommit, SquashCause::kNone);
    }
    ++total_commits_[1];
    ++stats_.trailing_commits;
    note_commit_progress();
    pool_.release(head_ref);  // retired: last reference leaves the pipeline
  }
}

void Core::commit_trailing_blackjack(Context& ctx) {
  for (int n = 0; n < params_.commit_width; ++n) {
    if (ctx.halted || ctx.al_window_count == 0) break;
    const InstRef head_ref =
        ctx.al_window[static_cast<std::size_t>(ctx.al_head_virt) &
                      ctx.al_window_mask];
    if (!head_ref) break;
    DynInst* head = &pool_.get(head_ref);
    if (!head->completed) break;

    const DecodedInst& d = head->di();

    // Dependence check through the second rename table (Section 4.4).
    const DependenceCheckResult dep = second_rename_.commit(
        d, head->src1_phys, head->src2_phys, head->dst_phys);
    if (!dep.ok) {
      record_detection(DetectionKind::kDependenceCheckMismatch, head->pc,
                       head->seq);
      return;
    }
    if (dep.freed_phys != kNoPhysReg) {
      free_list(dep.freed_cls).release(dep.freed_phys);
    }

    // Program-order check: committed pcs must chain.
    const bool taken = d.valid && d.is_control() && head->taken;
    if (!pc_checker_.commit(head->pc, taken, head->target)) {
      record_detection(DetectionKind::kPcChainMismatch, head->pc, head->seq);
      return;
    }

    if (d.is_store()) {
      StoreBufferEntry released;
      const StoreCheck chk = store_buffer_.check_and_release(
          ctx.committed_stores, head->mem_addr, head->result, &released);
      switch (chk) {
        case StoreCheck::kMatch:
          release_store(released.ordinal, released.addr, released.data);
          break;
        case StoreCheck::kAddressMismatch:
          record_detection(DetectionKind::kStoreAddressMismatch, head->pc,
                           head->seq);
          return;
        case StoreCheck::kDataMismatch:
          record_detection(DetectionKind::kStoreDataMismatch, head->pc,
                           head->seq);
          return;
        case StoreCheck::kOrdinalMismatch:
        case StoreCheck::kEmpty:
          record_detection(DetectionKind::kStoreOrdinalMismatch, head->pc,
                           head->seq);
          return;
      }
    }
    if (d.is_load()) {
      if (lvq_.empty() || lvq_.front().ordinal != ctx.committed_loads) {
        record_detection(DetectionKind::kLoadAddressMismatch, head->pc,
                         head->seq);
        return;
      }
      lvq_.pop();  // address already compared at execute
    }

    // Coverage accounting (Figure 4): the DTQ carried the leading ways.
    stats_.coverage.add_pair(head->frontend_way != head->lead_frontend_way,
                             head->backend_way != head->lead_backend_way);

    ++ctx.committed;
    if (d.is_load()) ++ctx.committed_loads;
    if (d.is_store()) ++ctx.committed_stores;
    if (d.is_mem()) ++ctx.committed_mem;
    if (d.op == Opcode::kHalt) ctx.halted = true;

    ctx.al_window[static_cast<std::size_t>(ctx.al_head_virt) &
                  ctx.al_window_mask] = InstRef{};
    ++ctx.al_head_virt;
    --ctx.al_window_count;
    if (head->has_lsq_slot) {
      assert(ctx.lsq_window[static_cast<std::size_t>(ctx.lsq_head_virt) &
                            ctx.lsq_window_mask] == head_ref);
      ctx.lsq_window[static_cast<std::size_t>(ctx.lsq_head_virt) &
                     ctx.lsq_window_mask] = InstRef{};
      ++ctx.lsq_head_virt;
      --ctx.lsq_window_count;
    }

    trace_commit(head, 'T');
    if (tracer_ != nullptr) {
      trace_end(head, TraceEndKind::kCommit, SquashCause::kNone);
    }
    ++total_commits_[1];
    ++stats_.trailing_commits;
    note_commit_progress();
    pool_.release(head_ref);  // retired: last reference leaves the pipeline
  }
}

}  // namespace bj
