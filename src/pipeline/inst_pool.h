// Per-Core slab arena for in-flight DynInsts. Replaces the per-instruction
// make_shared churn that topped the bjsim --profile breakdown: slots are
// recycled LIFO (the hottest slot is reused first) and handles are plain
// 8-byte index+generation pairs, so queue pushes/pops stop touching atomic
// refcounts entirely.
//
// Lifetime rules (see ARCHITECTURE.md "Instruction arena"):
//   * allocate() hands out a slot reset to a default-constructed DynInst with
//     `self` pointing back at it; the Core releases it at exactly one place —
//     commit (after trace_commit), squash, or end-of-issue for shuffle NOPs.
//   * release() bumps the slot generation, so any InstRef captured earlier
//     (completion wheel entries for squashed work) goes stale instead of
//     aliasing the recycled slot. get() BJ_CHECKs liveness; try_get() returns
//     nullptr for stale refs so the writeback drain can skip them.
//   * Each hot slot has a parallel DynInstCold at the same index (cold()).
//     Cold slots are deliberately NOT reset on allocate — the reset memset
//     was the top arena cost — so every cold field must be written before it
//     is read; the per-field guards are documented on DynInstCold. cold()
//     BJ_CHECKs the handle exactly like get(): a stale ref aborts rather
//     than silently reading a recycled instruction's provenance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "pipeline/types.h"

namespace bj {

class InstPool {
 public:
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  InstPool() = default;
  InstPool(const InstPool&) = delete;
  InstPool& operator=(const InstPool&) = delete;

  // Returns a slot reset to a fresh DynInst (plus a valid `self`). Odd
  // generations are live, even generations free, so a default InstRef{}
  // (gen 0) never passes the liveness check.
  DynInst* allocate() {
    if (free_.empty()) grow();
    const std::uint32_t index = free_.back();
    free_.pop_back();
    DynInst* slot = slot_ptr(index);
    const std::uint32_t gen = slot->self.gen + 1;
    *slot = DynInst{};
    slot->self = InstRef{index, gen};
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return slot;
  }

  void release(InstRef ref) {
    DynInst* slot = checked_slot(ref);
    slot->self.gen += 1;  // even: slot is free, all outstanding refs stale
    free_.push_back(ref.index);
    BJ_CHECK(in_use_ > 0, "inst-pool: release with no live instructions");
    --in_use_;
  }

  DynInst& get(InstRef ref) { return *checked_slot(ref); }
  const DynInst& get(InstRef ref) const {
    return *const_cast<InstPool*>(this)->checked_slot(ref);
  }

  // Cold sidecar of the same slot. The liveness check is identical to
  // get()'s: trace/provenance reads through a stale handle abort instead of
  // aliasing the recycled slot's cold state.
  DynInstCold& cold(InstRef ref) {
    checked_slot(ref);
    return cold_base_[ref.index >> kChunkShift][ref.index & kChunkMask];
  }
  const DynInstCold& cold(InstRef ref) const {
    return const_cast<InstPool*>(this)->cold(ref);
  }

  // nullptr for stale/never-valid refs (squashed work drained later from the
  // completion wheel resolves through here).
  DynInst* try_get(InstRef ref) {
    if (ref.index >= size_) return nullptr;
    DynInst* slot = slot_ptr(ref.index);
    return slot->self.gen == ref.gen ? slot : nullptr;
  }

  bool live(InstRef ref) const {
    return ref.index < size_ &&
           const_cast<InstPool*>(this)->slot_ptr(ref.index)->self.gen ==
               ref.gen;
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t capacity() const { return size_; }

 private:
  DynInst* slot_ptr(std::uint32_t index) {
    return chunk_base_[index >> kChunkShift] + (index & kChunkMask);
  }

  DynInst* checked_slot(InstRef ref) {
    BJ_CHECK(ref.index < size_, "inst-pool: ref index out of range");
    DynInst* slot = slot_ptr(ref.index);
    BJ_CHECK(slot->self.gen == ref.gen && (ref.gen & 1u) != 0,
             "inst-pool: stale InstRef (slot was recycled)");
    return slot;
  }

  void grow() {
    chunks_.push_back(std::make_unique<DynInst[]>(kChunkSize));
    cold_chunks_.push_back(std::make_unique<DynInstCold[]>(kChunkSize));
    DynInst* base = chunks_.back().get();
    chunk_base_.push_back(base);
    cold_base_.push_back(cold_chunks_.back().get());
    const std::uint32_t first = size_;
    size_ += kChunkSize;
    // Push in reverse so the lowest index comes off the LIFO free list first.
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      base[i].self = InstRef{first + i, 0};
      free_.push_back(first + i);
    }
  }

  // Chunked slabs keep slot addresses stable across growth; chunk_base_
  // keeps the hot deref to one small-vector load plus an offset add. The
  // cold chunks are parallel arrays at the same indices.
  std::vector<std::unique_ptr<DynInst[]>> chunks_;
  std::vector<std::unique_ptr<DynInstCold[]>> cold_chunks_;
  std::vector<DynInst*> chunk_base_;
  std::vector<DynInstCold*> cold_base_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace bj
