// Physical register file, free list, and rename maps. A single flat
// structure-of-arrays PhysRegFile holds both register classes (int rows
// first, then fp rows) and is shared by both SMT contexts; each context owns
// its rename map. Per-class *indices* are preserved everywhere outside this
// file — DTQ entries, the double-rename tables, and the golden fingerprints
// all still speak (class, per-class phys) pairs; only the backing storage is
// fused. The BlackJack trailing thread additionally owns a map indexed by
// *leading physical* register (the double rename of Section 4.3.1), which
// therefore has as many rows as there are physical registers.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "isa/opcode.h"
#include "pipeline/types.h"

namespace bj {

// Sentinel physical register meaning "constant zero / operand absent":
// always ready, reads as 0.
inline constexpr int kNoPhysReg = -1;

// SoA register file: value_, ready_at_, and a packed ready bitmap as
// separate flat arrays. The bitmap lets the wakeup scan in core_issue.cc
// answer "is this operand ready right now?" with one bit test (one cache
// line covers 64 registers) instead of a 64-bit cycle comparison against a
// strided ready_at_ load. Invariant maintained by the Core: a register's
// bit is set iff its ready_at_ cycle has been reached — mark_busy() clears
// it at rename, writeback sets it when the producer completes.
class PhysRegFile {
 public:
  PhysRegFile(int int_count, int fp_count)
      : fp_base_(int_count),
        value_(static_cast<std::size_t>(int_count + fp_count), 0),
        ready_at_(static_cast<std::size_t>(int_count + fp_count), 0),
        ready_bits_((value_.size() + 63) / 64, ~0ull),
        waiters_(value_.size()) {}

  int size(RegClass cls) const {
    return cls == RegClass::kInt ? fp_base_
                                 : static_cast<int>(value_.size()) - fp_base_;
  }

  std::uint64_t value(RegClass cls, int reg) const {
    if (reg == kNoPhysReg) return 0;
    return value_[row(cls, reg)];
  }
  void set_value(RegClass cls, int reg, std::uint64_t v) {
    assert(reg != kNoPhysReg);
    value_[row(cls, reg)] = v;
  }

  // A consumer may issue at any cycle >= ready_at(reg). ~0ull means the
  // producer has not executed yet (store-data scheduling keys off this).
  std::uint64_t ready_at(RegClass cls, int reg) const {
    if (reg == kNoPhysReg) return 0;
    return ready_at_[row(cls, reg)];
  }
  void set_ready_at(RegClass cls, int reg, std::uint64_t cycle) {
    assert(reg != kNoPhysReg);
    ready_at_[row(cls, reg)] = cycle;
  }

  // Fast wakeup predicate: the packed bit mirrors ready_at_ <= now.
  bool ready_now(RegClass cls, int reg) const {
    if (reg == kNoPhysReg) return true;
    const std::size_t r = row(cls, reg);
    return (ready_bits_[r >> 6] >> (r & 63)) & 1u;
  }

  // Rename allocated `reg` to a new producer: busy until writeback.
  // Any waiter entries left over from the register's previous lifetime are
  // provably stale (program-order freeing means every live consumer of the
  // old value issued or was squashed before the register could be recycled),
  // so the new lifetime starts with an empty list.
  void mark_busy(RegClass cls, int reg) {
    assert(reg != kNoPhysReg);
    const std::size_t r = row(cls, reg);
    ready_at_[r] = ~0ull;
    ready_bits_[r >> 6] &= ~(1ull << (r & 63));
    waiters_[r].clear();
  }

  // The producer's completion reached writeback: consumers may issue.
  void mark_ready(RegClass cls, int reg) {
    assert(reg != kNoPhysReg);
    const std::size_t r = row(cls, reg);
    ready_bits_[r >> 6] |= 1ull << (r & 63);
  }

  // Producer-indexed wakeup list: issue-queue residents blocked on this
  // register, as generation-tagged handles (a squashed waiter's handle goes
  // stale when the arena slot is released, so firing the list filters it out
  // instead of needing an eager unlink). The Core drains the list when the
  // register's readiness event fires — writeback (mark_ready) or producer
  // issue (set_ready_at, for store-data waiters keyed on the ~0ull
  // sentinel) — and mark_busy() clears it on recycling.
  std::vector<InstRef>& waiters(RegClass cls, int reg) {
    return waiters_[row(cls, reg)];
  }

 private:
  std::size_t row(RegClass cls, int reg) const {
    assert(reg >= 0 && reg < size(cls));
    return static_cast<std::size_t>(reg) +
           (cls == RegClass::kFp ? static_cast<std::size_t>(fp_base_) : 0);
  }

  int fp_base_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> ready_at_;
  std::vector<std::uint64_t> ready_bits_;
  std::vector<std::vector<InstRef>> waiters_;  // one list per physical reg
};

class FreeList {
 public:
  // Registers [first, count) start free; [0, first) are pre-allocated to
  // architectural state by the caller.
  FreeList(int first, int count) {
    for (int r = count - 1; r >= first; --r) free_.push_back(r);
  }

  bool empty() const { return free_.empty(); }
  std::size_t available() const { return free_.size(); }

  int allocate() {
    assert(!free_.empty());
    const int reg = free_.back();
    free_.pop_back();
    return reg;
  }
  void release(int reg) {
    assert(reg != kNoPhysReg);
    free_.push_back(reg);
  }

 private:
  std::vector<int> free_;
};

// Per-context logical -> physical map.
struct RenameMap {
  RenameMap() : int_map(kNumIntRegs, kNoPhysReg), fp_map(kNumFpRegs, kNoPhysReg) {}

  int& at(RegClass cls, int logical) {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(logical)]
                                 : fp_map[static_cast<std::size_t>(logical)];
  }
  int get(RegClass cls, int logical) const {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(logical)]
                                 : fp_map[static_cast<std::size_t>(logical)];
  }

  std::vector<int> int_map;
  std::vector<int> fp_map;
};

// BlackJack trailing rename: leading physical -> trailing physical, one
// table per register class, sized by the physical register count.
struct LeadPhysMap {
  LeadPhysMap(int phys_int, int phys_fp)
      : int_map(static_cast<std::size_t>(phys_int), kNoPhysReg),
        fp_map(static_cast<std::size_t>(phys_fp), kNoPhysReg) {}

  int& at(RegClass cls, int lead_phys) {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(lead_phys)]
                                 : fp_map[static_cast<std::size_t>(lead_phys)];
  }
  int get(RegClass cls, int lead_phys) const {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(lead_phys)]
                                 : fp_map[static_cast<std::size_t>(lead_phys)];
  }

  std::vector<int> int_map;
  std::vector<int> fp_map;
};

}  // namespace bj
