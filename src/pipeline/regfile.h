// Physical register file, free list, and rename maps. One PhysRegFile per
// register class (int, fp) is shared by both SMT contexts; each context owns
// its rename map. The BlackJack trailing thread additionally owns a map
// indexed by *leading physical* register (the double rename of Section
// 4.3.1), which therefore has as many rows as there are physical registers.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "isa/opcode.h"

namespace bj {

// Sentinel physical register meaning "constant zero / operand absent":
// always ready, reads as 0.
inline constexpr int kNoPhysReg = -1;

class PhysRegFile {
 public:
  explicit PhysRegFile(int count)
      : value_(static_cast<std::size_t>(count), 0),
        ready_at_(static_cast<std::size_t>(count), 0) {}

  int size() const { return static_cast<int>(value_.size()); }

  std::uint64_t value(int reg) const {
    if (reg == kNoPhysReg) return 0;
    return value_[static_cast<std::size_t>(reg)];
  }
  void set_value(int reg, std::uint64_t v) {
    assert(reg != kNoPhysReg);
    value_[static_cast<std::size_t>(reg)] = v;
  }

  // A consumer may issue at any cycle >= ready_at(reg).
  std::uint64_t ready_at(int reg) const {
    if (reg == kNoPhysReg) return 0;
    return ready_at_[static_cast<std::size_t>(reg)];
  }
  void set_ready_at(int reg, std::uint64_t cycle) {
    assert(reg != kNoPhysReg);
    ready_at_[static_cast<std::size_t>(reg)] = cycle;
  }

 private:
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> ready_at_;
};

class FreeList {
 public:
  // Registers [first, count) start free; [0, first) are pre-allocated to
  // architectural state by the caller.
  FreeList(int first, int count) {
    for (int r = count - 1; r >= first; --r) free_.push_back(r);
  }

  bool empty() const { return free_.empty(); }
  std::size_t available() const { return free_.size(); }

  int allocate() {
    assert(!free_.empty());
    const int reg = free_.back();
    free_.pop_back();
    return reg;
  }
  void release(int reg) {
    assert(reg != kNoPhysReg);
    free_.push_back(reg);
  }

 private:
  std::vector<int> free_;
};

// Per-context logical -> physical map.
struct RenameMap {
  RenameMap() : int_map(kNumIntRegs, kNoPhysReg), fp_map(kNumFpRegs, kNoPhysReg) {}

  int& at(RegClass cls, int logical) {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(logical)]
                                 : fp_map[static_cast<std::size_t>(logical)];
  }
  int get(RegClass cls, int logical) const {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(logical)]
                                 : fp_map[static_cast<std::size_t>(logical)];
  }

  std::vector<int> int_map;
  std::vector<int> fp_map;
};

// BlackJack trailing rename: leading physical -> trailing physical, one
// table per register class, sized by the physical register count.
struct LeadPhysMap {
  LeadPhysMap(int phys_int, int phys_fp)
      : int_map(static_cast<std::size_t>(phys_int), kNoPhysReg),
        fp_map(static_cast<std::size_t>(phys_fp), kNoPhysReg) {}

  int& at(RegClass cls, int lead_phys) {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(lead_phys)]
                                 : fp_map[static_cast<std::size_t>(lead_phys)];
  }
  int get(RegClass cls, int lead_phys) const {
    return cls == RegClass::kInt ? int_map[static_cast<std::size_t>(lead_phys)]
                                 : fp_map[static_cast<std::size_t>(lead_phys)];
  }

  std::vector<int> int_map;
  std::vector<int> fp_map;
};

}  // namespace bj
