// The cycle-level out-of-order SMT core. One Core simulates a program in one
// of four modes: single-threaded, SRT redundant threading, BlackJack without
// shuffle (BlackJack-NS), or full BlackJack with safe-shuffle.
//
// Pipeline organization (Figure 1/3 of the paper): instructions flow through
// `fetch_width` frontend ways (fetch/decode/rename lanes), meet in a unified
// issue queue with oldest-first select, and cross to typed backend ways
// (function units) where they execute through writeback. The leading thread
// is a normal speculative OOO thread; the trailing thread consumes the
// leading thread's outcomes (BOQ/LVQ in SRT, DTQ + safe-shuffle in
// BlackJack) and verifies the pair's agreement at commit.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "arch/emulator.h"
#include "blackjack/checker.h"
#include "blackjack/dtq.h"
#include "blackjack/shuffle.h"
#include "branch/predictor.h"
#include "common/profiler.h"
#include "common/ring_deque.h"
#include "common/stats.h"
#include "common/trace.h"
#include "fault/coverage.h"
#include "fault/fault_model.h"
#include "mem/cache.h"
#include "pipeline/decode_table.h"
#include "pipeline/inst_pool.h"
#include "pipeline/params.h"
#include "pipeline/regfile.h"
#include "pipeline/types.h"
#include "srt/boq.h"
#include "srt/lvq.h"
#include "srt/store_buffer.h"

namespace bj {

class MetricsRegistry;

// Issue-stage select strategy. The default build wakes issue-queue waiters
// from producer events (writeback, producer issue, store address generation,
// LVQ fill, DTQ drain) and selects from a ready pool; defining BJ_LEGACY_SCAN
// at configure time (-DBJ_LEGACY_SCAN=ON) rebuilds the per-cycle full-IQ
// readiness scan instead. Both paths are bit-identical — the tier-2 golden
// fingerprints run under both configurations to prove it.
#ifdef BJ_LEGACY_SCAN
inline constexpr bool kUseWakeupLists = false;
#else
inline constexpr bool kUseWakeupLists = true;
#endif

// Aggregate statistics, resettable at the warm-up boundary.
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t leading_commits = 0;
  std::uint64_t trailing_commits = 0;

  // Issue-cycle accounting (Figures 5 and 6).
  std::uint64_t issue_cycles = 0;                 // cycles with >=1 issue
  std::uint64_t single_context_issue_cycles = 0;  // burstiness numerator
  std::uint64_t lt_interference_cycles = 0;       // leading-trailing w/ loss
  std::uint64_t tt_interference_cycles = 0;       // trailing-trailing w/ loss
  std::uint64_t tt_sibling_cycles = 0;            // TT between split siblings
  std::uint64_t other_diversity_loss_cycles = 0;  // partial packet / FU busy
  std::uint64_t instructions_issued = 0;

  // Wakeup-list select (kUseWakeupLists builds; both stay 0 under
  // BJ_LEGACY_SCAN). Deliberately NOT part of the golden fingerprints: they
  // describe the select implementation, not simulated behaviour.
  std::uint64_t wakeup_events = 0;     // waiter entries moved into the pool
  std::uint64_t select_pool_peak = 0;  // max ready-pool size seen at select

  // Safe-shuffle behaviour.
  std::uint64_t packets_shuffled = 0;
  std::uint64_t shuffle_nops = 0;
  std::uint64_t packet_splits = 0;
  std::uint64_t shuffle_forced_places = 0;
  std::uint64_t packets_combined = 0;  // extension: merged input packets
  // Shuffle memoization cache (ShuffleCache): lookups served from the cache
  // vs. computed by running the shuffle search. warm_hits counts the subset
  // of hits served by a shared warm-start snapshot (campaign workers).
  std::uint64_t shuffle_cache_hits = 0;
  std::uint64_t shuffle_cache_misses = 0;
  std::uint64_t shuffle_cache_warm_hits = 0;

  // Peak number of simultaneously live DynInsts in the instruction arena
  // (InstPool) — the working-set size the slab allocator actually needs.
  std::uint64_t pool_high_water = 0;

  // Payload-RAM fault exposure: dynamic instructions whose payload was
  // corrupted in the leading copy / in both copies identically. The latter
  // is the Section 4.5 vulnerability — a corruption no check can see.
  std::uint64_t payload_corrupted_leading = 0;
  std::uint64_t payload_corrupted_both = 0;

  // ECC layer (CoreParams::*_ecc): per-array counts of protected reads whose
  // decode repaired a single-bit error / flagged an uncorrectable one. All
  // zero when ECC is off or no storage fault is armed.
  std::uint64_t ecc_payload_corrected = 0;
  std::uint64_t ecc_payload_detected = 0;
  std::uint64_t ecc_regfile_corrected = 0;
  std::uint64_t ecc_regfile_detected = 0;
  std::uint64_t ecc_lvq_corrected = 0;
  std::uint64_t ecc_lvq_detected = 0;
  std::uint64_t ecc_dtq_corrected = 0;
  std::uint64_t ecc_dtq_detected = 0;

  std::uint64_t ecc_corrected_total() const {
    return ecc_payload_corrected + ecc_regfile_corrected + ecc_lvq_corrected +
           ecc_dtq_corrected;
  }
  std::uint64_t ecc_detected_total() const {
    return ecc_payload_detected + ecc_regfile_detected + ecc_lvq_detected +
           ecc_dtq_detected;
  }

  // Branch prediction (leading).
  std::uint64_t branch_lookups = 0;
  std::uint64_t branch_mispredicts = 0;

  // Coverage (Figure 4).
  CoverageAccounting coverage;

  // Diagnostic event counters (fetch/dispatch/issue bottleneck attribution).
  CounterSet events;

  double ipc() const {
    return cycles ? static_cast<double>(leading_commits) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  double burstiness() const {
    return issue_cycles ? static_cast<double>(single_context_issue_cycles) /
                              static_cast<double>(issue_cycles)
                        : 0.0;
  }
  double lt_interference_fraction() const {
    return issue_cycles ? static_cast<double>(lt_interference_cycles) /
                              static_cast<double>(issue_cycles)
                        : 0.0;
  }
  double tt_interference_fraction() const {
    return issue_cycles ? static_cast<double>(tt_interference_cycles) /
                              static_cast<double>(issue_cycles)
                        : 0.0;
  }
};

// Observational tap on the leading thread's commit stream. Invoked once per
// architecturally retired leading instruction, at the same pipeline point
// the oracle check runs (before the store is released to the memory
// system), so an observer can replay its own architectural model in
// lockstep with the faulty machine. Pure observation: implementations must
// not mutate the instruction or the core. Null (the default) costs the
// commit path one predicted-untaken branch.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;
  virtual void on_leading_commit(const DynInst& inst, std::uint64_t cycle) = 0;
};

struct RunOutcome {
  std::uint64_t cycles = 0;
  std::uint64_t leading_commits = 0;
  std::uint64_t trailing_commits = 0;
  bool program_finished = false;  // halt committed by every thread
  bool wedged = false;            // watchdog fired
  bool detected = false;          // redundancy check fired
  std::vector<DetectionEvent> detections;
};

class Core {
 public:
  Core(const Program& program, Mode mode, const CoreParams& params = {},
       FaultInjector* injector = nullptr);
  ~Core();

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // Advances one cycle. Returns false when the machine has nothing left to
  // do (program finished, wedged, or halted on a detection).
  bool tick();

  // Runs until the leading thread has committed `target_commits` additional
  // instructions (or the program finishes / a detection fires / the watchdog
  // trips / `max_cycles` elapses).
  RunOutcome run(std::uint64_t target_commits,
                 std::uint64_t max_cycles = ~0ull);

  // Clears statistics (not machine state); call at the warm-up boundary.
  void reset_stats();

  // Oracle checking: verify every leading commit against the architectural
  // emulator. On by default; disable for fault-injection campaigns where the
  // leading thread is expected to diverge.
  void set_oracle_check(bool enabled) { oracle_check_ = enabled; }
  bool oracle_violated() const { return oracle_violation_; }
  const std::string& oracle_violation_detail() const {
    return oracle_violation_detail_;
  }

  // Stop simulating as soon as any redundancy check fires (default true).
  void set_halt_on_detection(bool enabled) { halt_on_detection_ = enabled; }

  const CoreStats& stats() const { return stats_; }
  const CoreParams& params() const { return params_; }
  Mode mode() const { return mode_; }
  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t leading_commits() const { return total_commits_[0]; }
  std::uint64_t trailing_commits() const { return total_commits_[1]; }
  bool finished() const;
  bool wedged() const { return wedged_; }
  const std::vector<DetectionEvent>& detections() const { return detections_; }

  // Stores released to the memory system (post-check), for SDC analysis.
  const std::vector<StoreBufferEntry>& released_stores() const {
    return released_stores_;
  }
  void set_store_trace_limit(std::size_t limit) { store_trace_limit_ = limit; }

  const MemoryHierarchy& memory_hierarchy() const { return hierarchy_; }
  const BranchPredictor& predictor() const { return predictor_; }

  // Debug aid: dumps queue occupancies, issue-queue contents, and window
  // heads — what you want to see when a run wedges.
  void dump_state(std::ostream& os) const;

  // Per-commit pipeline trace: one line per retired instruction of either
  // thread, with stage timestamps and the frontend/backend ways it used.
  // Pass nullptr to disable (the default).
  void set_trace(std::ostream* os) { trace_ = os; }

  // Per-stage host-time attribution. Pass nullptr to disable (the default);
  // the unprofiled tick path pays nothing for the feature.
  void set_profiler(StageProfiler* profiler) { profiler_ = profiler; }

  // Ring-buffered per-instruction lifecycle tracing: one TraceRecord per
  // ended instruction (commit, squash, or shuffle-NOP retirement). Pass
  // nullptr to disable (the default); every hook compiles to a branch on
  // this pointer, so the untraced path stays off the golden fingerprints
  // and the bench gate.
  void set_tracer(PipelineTracer* tracer) { tracer_ = tracer; }

  // Lockstep commit tap (autopsy engine). Pass nullptr to disable (the
  // default). The observer fires for every committed leading instruction,
  // immediately after the oracle check point and before the instruction's
  // stores reach the memory system.
  void set_commit_observer(CommitObserver* observer) {
    commit_observer_ = observer;
  }

  // Crash/detection flight recorder. Arming installs the recorder's ring as
  // this core's tracer (replacing any set_tracer target) and auto-dumps it
  // on the first redundancy-check detection and on the first oracle
  // divergence; BJ_CHECK aborts are covered by
  // FlightRecorder::arm_on_check_abort. Pass nullptr to disarm.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_ = recorder;
    tracer_ = recorder != nullptr ? &recorder->tracer() : nullptr;
  }

  // Fault-propagation provenance: when attached, the core stamps the first
  // injector-activation cycle and the first detection into `provenance`,
  // and records the release cycle of every store (parallel to
  // released_stores()) so the campaign can date the first architectural
  // corruption. Null (the default) keeps the hot path untouched.
  void set_provenance(FaultProvenance* provenance) {
    provenance_ = provenance;
  }
  const std::vector<std::uint64_t>& released_store_cycles() const {
    return released_store_cycles_;
  }

  // Registers this core's statistics (CoreStats scalars, derived rates,
  // event counters, shuffle-cache and pool gauges) under the stable
  // "core.*" / "shuffle.*" / "pool.*" metric names.
  void export_metrics(MetricsRegistry& registry) const;

  // Shared shuffle-cache warm start (campaign workers): adopt a pinned,
  // immutable snapshot of previously computed shuffle results. Purely a
  // memoization hint — simulated behaviour is identical with or without it.
  void warm_start_shuffle(ShuffleSnapshot warm) {
    shuffle_cache_.warm_start(std::move(warm));
  }
  const ShuffleCache& shuffle_cache() const { return shuffle_cache_; }

  // Instruction-arena introspection (tests and capacity studies).
  std::size_t inst_pool_live() const { return pool_.in_use(); }
  std::size_t inst_pool_high_water() const { return pool_.high_water(); }

 private:
  struct Context;

  // --- pipeline stages (called back-to-front each tick) -------------------
  void run_stages();
  void run_stages_profiled();
  void writeback();
  void commit();
  void commit_leading(Context& ctx);
  void commit_trailing_srt(Context& ctx);
  void commit_trailing_blackjack(Context& ctx);
  void shuffle_stage();
  void issue();
  void dispatch();
  void fetch();
  void fetch_leading(Context& ctx);
  void fetch_trailing_srt(Context& ctx);
  void fetch_trailing_blackjack(Context& ctx);

  // --- helpers -------------------------------------------------------------
  bool redundant() const { return mode_ != Mode::kSingle; }
  bool uses_dtq() const {
    return mode_ == Mode::kBlackjack || mode_ == Mode::kBlackjackNs;
  }
  FreeList& free_list(RegClass cls) {
    return cls == RegClass::kInt ? int_free_ : fp_free_;
  }
  bool operand_ready(RegClass cls, int phys) const;
  std::uint64_t operand_value(RegClass cls, int phys) const;
  bool ready_to_issue(DynInst* inst);
  void execute_inst(DynInst* inst);
  void schedule_completion(DynInst* inst, std::uint64_t cycle);
  void resolve_leading_branch(DynInst* inst);
  void squash_leading_after(std::uint64_t branch_seq, std::uint64_t new_pc);
  bool rename_and_dispatch(Context& ctx, DynInst* inst);
  int find_free_iq_slot() const;
  void record_detection(DetectionKind kind, std::uint64_t pc,
                        std::uint64_t seq);
  // One read of an ECC-protectable storage array: runs the injector's
  // storage hook on the clean stored word, then the array's codec over the
  // result, bumping the per-array corrected/detected counters. An
  // uncorrectable decode additionally raises a kEccUncorrectable detection
  // at (pc, seq) — a machine-check, the ECC analogue of a redundancy check
  // firing. Call sites gate on injector_->storage_armed() so the fault-free
  // path never pays for it.
  std::uint64_t storage_read(std::uint64_t clean, FaultSite site, int slot,
                             int bits, EccCodec codec,
                             std::uint64_t* corrected, std::uint64_t* detected,
                             std::uint64_t pc, std::uint64_t seq);
  void trace_commit(const DynInst* inst, char tag);
  // Appends the instruction's lifecycle record to the tracer. Call sites
  // guard on `tracer_ != nullptr` so the disabled path is a single branch.
  void trace_end(const DynInst* inst, TraceEndKind end, SquashCause cause);
  void note_commit_progress() { last_commit_cycle_ = cycle_; }
  DynInst* make_inst(ThreadId tid);
  void check_against_oracle(const DynInst* inst);
  void release_store(std::uint64_t ordinal, std::uint64_t addr,
                     std::uint64_t data);
  std::optional<std::uint64_t> leading_load_value(const DynInst* inst);
  bool lsq_older_stores_ready(Context& ctx, const DynInst* load);
  // Re-clamp the monotone ready-prefix cache after ctx.lsq_stores shrinks.
  // Called at every mutation site that removes entries (commit pop_front,
  // squash pop_back), so the prefix can never point past the ring's end.
  static void clamp_lsq_prefix(Context& ctx);

  // --- wakeup-list select (kUseWakeupLists; see core_issue.cc) -------------
  // Inserts an instruction into the per-cycle ready pool (deduped via
  // DynInst::in_ready_pool).
  void enqueue_ready(DynInst* inst);
  // Fires a waiter list: live, unissued entries move to the ready pool;
  // stale handles (squashed work) and already-issued stragglers are dropped.
  // The list is emptied either way.
  void wake_list(std::vector<InstRef>& list);
  void wake_reg_waiters(RegClass cls, int reg);
  // Parks an unissued IQ resident on the waiter list of the *first* blocking
  // condition in ready_to_issue() order (or pools it if nothing blocks).
  void subscribe_waiter(DynInst* inst);
  // params_.check_issue_equivalence: compare the pool-derived candidate set
  // against a fresh legacy scan; aborts on divergence.
  void check_issue_sets(const std::vector<DynInst*>& pool_candidates);

  // --- configuration -------------------------------------------------------
  // Held by value: a Core must stay valid even when constructed from a
  // temporary Program (a cheap copy — code plus data image).
  const Program program_;
  Mode mode_;
  CoreParams params_;
  FaultInjector* injector_;
  FaultInjector null_injector_;

  // --- substrate -----------------------------------------------------------
  SparseMemory data_mem_;
  MemoryHierarchy hierarchy_;
  BranchPredictor predictor_;
  Emulator oracle_;
  bool oracle_check_ = true;
  bool oracle_violation_ = false;
  std::string oracle_violation_detail_;

  // --- shared machine state ------------------------------------------------
  std::uint64_t cycle_ = 0;
  std::uint64_t dispatch_age_ = 0;
  // Instruction arena: every in-flight DynInst lives here; queues hold
  // InstRefs. Declared before the queues so it outlives them on teardown.
  InstPool pool_;
  // Shared interned decodes (DynInst::dec points in here); declared next to
  // the pool so every holder of a dec pointer is outlived by the table.
  DecodeTable decode_table_;
  // Cold-sidecar access for an instruction known live (checked handle).
  DynInstCold& cold(const DynInst* inst) { return pool_.cold(inst->self); }
  // Single SoA register file spanning both classes (int rows, then fp).
  PhysRegFile regfile_;
  FreeList int_free_;
  FreeList fp_free_;

  struct IqSlot {
    InstRef inst;           // invalid when free
    DynInst* ptr = nullptr; // arena slot for `inst`; cached at install so the
                            // per-cycle wakeup scan skips the handle check
                            // (IQ residents are live by construction: issue
                            // and squash clear the slot before releasing)
  };
  std::vector<IqSlot> iq_;
  int iq_occupancy_ = 0;

  // Unpipelined-unit busy tracking: busy_until_[cls][way].
  std::array<std::vector<std::uint64_t>, kNumFuClasses> fu_busy_until_;

  // Completion events: a power-of-two timing wheel indexed by target cycle.
  // The wheel spans the longest schedulable delay (miss-to-memory plus the
  // slowest FU, computed from params in the constructor); anything beyond
  // that horizon — only possible with exotic parameterizations — falls back
  // to the ordered map.
  // Entries carry the instruction's dispatch age alongside the handle so the
  // writeback drain can sort without resolving every handle per comparison.
  using Completion = std::pair<std::uint64_t, InstRef>;  // {age, inst}
  std::vector<std::vector<Completion>> completion_wheel_;
  std::uint64_t completion_wheel_mask_ = 0;
  std::map<std::uint64_t, std::vector<Completion>> completion_overflow_;
  std::vector<Completion> writeback_scratch_;

  // Issue-stage scratch (reused across cycles to avoid per-cycle allocation).
  std::vector<DynInst*> issue_candidates_;
  std::vector<DynInst*> issue_issued_;
  // Wakeup-list select state. ready_pool_ persists across cycles: it holds
  // every IQ resident not currently parked on a waiter list (woken but not
  // yet validated, or ready but structurally blocked — FU/width/DTQ/MSHR).
  // Select drains it through ready_pool_scratch_, re-validates each entry
  // with ready_to_issue(), and either issues it, re-pools it, or re-parks it
  // on its new first blocking condition.
  std::vector<InstRef> ready_pool_;
  std::vector<InstRef> ready_pool_scratch_;
  std::vector<DynInst*> check_scan_scratch_;  // differential-check scratch
  // Non-register waiter lists: trailing loads waiting for their LVQ entry,
  // and leading instructions waiting for a free DTQ slot.
  std::vector<InstRef> lvq_waiters_;
  std::vector<InstRef> dtq_waiters_;
  // Shuffle-stage scratch (one popped DTQ window + its shuffle signature).
  std::vector<DtqEntry> shuffle_entries_;
  std::vector<ShuffleInst> shuffle_input_;

  // --- redundancy structures ------------------------------------------------
  BranchOutcomeQueue boq_;
  LoadValueQueue lvq_;
  CheckingStoreBuffer store_buffer_;
  DependenceTraceQueue dtq_;
  SecondRenameTable second_rename_;
  PcChainChecker pc_checker_;

  // Shuffled packets awaiting trailing fetch.
  struct TrailSlot {
    bool is_nop = false;
    FuClass nop_cls = FuClass::kIntAlu;
    DtqEntry entry;  // valid when !is_nop
  };
  struct TrailPacket {
    std::vector<TrailSlot> slots;
    std::uint64_t packet_id = 0;
    std::uint64_t origin_id = 0;  // original leading packet (split siblings
                                  // share an origin)
  };
  RingDeque<TrailPacket> trail_fetch_q_;
  std::size_t trail_fetch_q_insts_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t next_origin_id_ = 1;
  // Packet-serial dispatch tracking: unissued trailing instructions in the
  // issue queue and the packet they belong to.
  std::uint64_t iq_trailing_unissued_ = 0;
  std::uint64_t iq_trailing_packet_id_ = 0;

  // Measurement-only channel pairing leading ways with trailing commits in
  // SRT mode (BlackJack carries them through the DTQ).
  std::deque<std::pair<int, int>> srt_lead_ways_;

  // --- per-context state -----------------------------------------------------
  struct Context {
    ThreadId tid = ThreadId::kLeading;

    // Fetch.
    std::uint64_t fetch_pc = 0;
    std::uint64_t fetch_seq = 0;      // next program-order sequence number
    std::uint64_t icache_ready = 0;   // fetch blocked until this cycle
    bool fetch_done = false;          // halt fetched
    RingDeque<InstRef> frontend_q;    // fetched, awaiting dispatch

    // Fetch-side ordinals (trailing SRT: BOQ consumption at fetch).
    std::uint64_t fetched_ctrl = 0;
    std::uint64_t fetched_loads = 0;
    std::uint64_t fetched_stores = 0;

    // Rename.
    RenameMap map;
    std::unique_ptr<LeadPhysMap> lead_phys_map;  // BlackJack trailing only

    // Windows. The leading/SRT active list and LSQ are program-order rings
    // sized by params; the BlackJack trailing thread uses virtual-index
    // windows.
    RingDeque<InstRef> active_list;
    RingDeque<InstRef> lsq;
    // Stores currently in `lsq`, in program order (push at dispatch, pop at
    // commit/squash alongside lsq). Lets the load paths scan stores only:
    // lsq_older_stores_ready() reads the first pending store through
    // lsq_stores_ready_prefix (stores become address-ready monotonically,
    // so the prefix only shrinks on squash/commit), and leading_load_value()
    // walks this ring backward instead of the whole LSQ.
    RingDeque<InstRef> lsq_stores;
    std::size_t lsq_stores_ready_prefix = 0;
    // Loads in this context blocked on an older store's pending address
    // (wakeup-list select). Fired when any of the context's stores computes
    // its address; commit/squash never need to fire it (removing stores can
    // only unblock loads that were already unblocked — see ARCHITECTURE.md).
    std::vector<InstRef> lsq_addr_waiters;
    // Window storage is rounded up to a power of two so the virtual-index
    // mapping is a mask, not a division (two divisions per trailing commit
    // showed up in the flat profile). Any `entries` consecutive virtual
    // indices still map to distinct slots, since entries <= storage size.
    std::vector<InstRef> al_window;
    std::size_t al_window_mask = 0;
    std::uint64_t al_head_virt = 0;
    std::size_t al_window_count = 0;
    std::vector<InstRef> lsq_window;
    std::size_t lsq_window_mask = 0;
    std::uint64_t lsq_head_virt = 0;
    std::size_t lsq_window_count = 0;

    // Commit-side ordinals.
    std::uint64_t committed = 0;
    std::uint64_t committed_ctrl = 0;
    std::uint64_t committed_loads = 0;
    std::uint64_t committed_stores = 0;
    std::uint64_t committed_mem = 0;
    bool halted = false;
  };
  std::array<Context, kNumThreads> ctxs_;

  // --- status / accounting ----------------------------------------------------
  CoreStats stats_;
  // Cached event-counter slots (CounterSet::slot): stall accounting otherwise
  // pays a string-keyed map lookup on every bump, which shows up at the top
  // of the flat profile. Pointers fill lazily on the first bump, so the set
  // of entries in the event map — which the golden fingerprints hash — is
  // exactly what bump() would have produced. reset_stats() must null these
  // (the map they point into is rebuilt).
  void bump_event(std::uint64_t*& cached, std::string_view name,
                  std::uint64_t by = 1) {
    if (cached == nullptr) cached = &stats_.events.slot(name);
    *cached += by;
  }
  void reset_event_cache();
  std::uint64_t* ev_fetch_buffer_full_ = nullptr;
  std::uint64_t* ev_fetch_block_boundary_ = nullptr;
  std::uint64_t* ev_fetch_instructions_ = nullptr;
  std::uint64_t* ev_dispatch_pipe_delay_ = nullptr;
  std::uint64_t* ev_dispatch_structural_ = nullptr;
  std::uint64_t* ev_dispatch_instructions_ = nullptr;
  std::uint64_t* ev_dispatch_iq_full_ = nullptr;
  std::uint64_t* ev_dispatch_packet_serial_ = nullptr;
  std::uint64_t* ev_dispatch_al_full_ = nullptr;
  std::uint64_t* ev_dispatch_lsq_full_ = nullptr;
  std::uint64_t* ev_commit_head_executing_ = nullptr;
  std::uint64_t* ev_commit_head_not_issued_ = nullptr;
  std::array<std::uint64_t*, kNumOpcodes> ev_commit_stall_op_{};
  std::array<std::uint64_t, kNumThreads> total_commits_ = {0, 0};
  std::uint64_t last_commit_cycle_ = 0;
  bool wedged_ = false;
  bool halt_on_detection_ = true;
  bool detection_halt_ = false;
  std::vector<DetectionEvent> detections_;
  std::vector<StoreBufferEntry> released_stores_;
  std::size_t store_trace_limit_ = 1u << 20;
  int fetch_priority_rr_ = 0;
  bool trailing_fetch_phase_ = false;
  std::ostream* trace_ = nullptr;
  StageProfiler* profiler_ = nullptr;
  PipelineTracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  CommitObserver* commit_observer_ = nullptr;
  FaultProvenance* provenance_ = nullptr;
  // Release cycle of released_stores_[i]; filled only while provenance is
  // attached (same store_trace_limit_ bound).
  std::vector<std::uint64_t> released_store_cycles_;
  // Memoizes safe_shuffle across repeated packet signatures (kBlackjack only).
  ShuffleCache shuffle_cache_;
  // Leading sequence numbers whose payload was corrupted by an IQ payload
  // fault (measurement for the shared-payload-RAM vulnerability). Only
  // touched while an injector is armed.
  std::unordered_set<std::uint64_t> payload_corrupted_lead_seqs_;
};

}  // namespace bj
