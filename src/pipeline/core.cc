// Core construction, the per-cycle tick loop, and the frontend stages
// (fetch and dispatch/rename). The backend stages live in core_issue.cc and
// the commit/checking logic in core_commit.cc.
#include "pipeline/core.h"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "common/metrics.h"

namespace bj {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSingle: return "single";
    case Mode::kSrt: return "srt";
    case Mode::kBlackjackNs: return "blackjack-ns";
    case Mode::kBlackjack: return "blackjack";
  }
  return "?";
}

bool mode_is_redundant(Mode mode) { return mode != Mode::kSingle; }

bool mode_uses_dtq(Mode mode) {
  return mode == Mode::kBlackjack || mode == Mode::kBlackjackNs;
}

const char* detection_kind_name(DetectionKind kind) {
  switch (kind) {
    case DetectionKind::kStoreAddressMismatch: return "store-address-mismatch";
    case DetectionKind::kStoreDataMismatch: return "store-data-mismatch";
    case DetectionKind::kStoreOrdinalMismatch: return "store-ordinal-mismatch";
    case DetectionKind::kLoadAddressMismatch: return "load-address-mismatch";
    case DetectionKind::kBranchOutcomeMismatch:
      return "branch-outcome-mismatch";
    case DetectionKind::kDependenceCheckMismatch:
      return "dependence-check-mismatch";
    case DetectionKind::kPcChainMismatch: return "pc-chain-mismatch";
    case DetectionKind::kWatchdogTimeout: return "watchdog-timeout";
    case DetectionKind::kEccUncorrectable: return "ecc-uncorrectable";
  }
  return "?";
}

Core::Core(const Program& program, Mode mode, const CoreParams& params,
           FaultInjector* injector)
    : program_(program),
      mode_(mode),
      params_(params),
      injector_(injector != nullptr ? injector : &null_injector_),
      hierarchy_(params.memory),
      predictor_(params.branch),
      oracle_(program),
      decode_table_(program_),
      regfile_(params.phys_int_regs, params.phys_fp_regs),
      int_free_(0, params.phys_int_regs),
      fp_free_(0, params.phys_fp_regs),
      iq_(static_cast<std::size_t>(params.issue_queue_entries)),
      boq_(static_cast<std::size_t>(params.boq_entries)),
      lvq_(static_cast<std::size_t>(params.lvq_entries)),
      store_buffer_(static_cast<std::size_t>(params.store_buffer_entries)),
      dtq_(static_cast<std::size_t>(params.dtq_entries)) {
  // Width contracts of the 128-byte hot DynInst slot (types.h): rename
  // fields are int16, way indices int8, iq_entry int16. Checked once here so
  // the per-instruction paths can narrow with plain casts.
  BJ_CHECK(params_.phys_int_regs <= 32767 && params_.phys_fp_regs <= 32767,
           "hot-slot rename fields are int16");
  BJ_CHECK(params_.issue_queue_entries <= 32767,
           "hot-slot iq_entry is int16");
  BJ_CHECK(params_.fetch_width <= 127, "hot-slot way indices are int8");
  for (int cls = 0; cls < kNumFuClasses; ++cls) {
    BJ_CHECK(params_.fu_count(static_cast<FuClass>(cls)) <= 127,
             "hot-slot way indices are int8");
  }
  for (int cls = 0; cls < kNumFuClasses; ++cls) {
    fu_busy_until_[cls].assign(
        static_cast<std::size_t>(params_.fu_count(static_cast<FuClass>(cls))),
        0);
  }
  for (const auto& [addr, value] : program.data) data_mem_.store(addr, value);

  // Size the completion wheel past the longest schedulable delay: a full
  // miss-to-memory access plus the slowest FU latency (store completion can
  // chain a producer's ready time onto the current cycle).
  {
    const std::uint64_t max_mem =
        static_cast<std::uint64_t>(params_.memory.l1d.hit_latency) +
        static_cast<std::uint64_t>(params_.memory.l2.hit_latency) +
        static_cast<std::uint64_t>(params_.memory.memory_latency);
    const std::uint64_t max_fu = static_cast<std::uint64_t>(std::max(
        {params_.latency_int_alu, params_.latency_int_mul,
         params_.latency_int_div, params_.latency_fp_alu,
         params_.latency_fp_mul, params_.latency_fp_div,
         params_.latency_fp_sqrt}));
    std::uint64_t span = 1;
    while (span < max_mem + max_fu + 8) span <<= 1;
    completion_wheel_.assign(span, {});
    completion_wheel_mask_ = span - 1;
  }

  // Fixed-capacity bookkeeping rings, sized by params.
  const auto cap = [](int n) { return static_cast<std::size_t>(n); };
  for (Context& ctx : ctxs_) {
    const bool leading = ctx.tid == ThreadId::kLeading;
    ctx.frontend_q.reset_capacity(cap(params_.fetch_buffer_entries));
    ctx.frontend_q.set_name(leading ? "lead.frontend_q" : "trail.frontend_q");
    ctx.active_list.reset_capacity(cap(params_.active_list_entries));
    ctx.active_list.set_name(leading ? "lead.active_list"
                                     : "trail.active_list");
    ctx.lsq.reset_capacity(cap(params_.lsq_entries));
    ctx.lsq.set_name(leading ? "lead.lsq" : "trail.lsq");
    // One slot of slack: a lazily drained entry can briefly outlive its
    // store's LSQ residency (see lsq_stores_ready_prefix).
    ctx.lsq_stores.reset_capacity(cap(params_.lsq_entries) + 1);
    ctx.lsq_stores.set_name(leading ? "lead.lsq_stores" : "trail.lsq_stores");
  }
  // Worst case beyond the 3*width admission gate: one combined input packet
  // can expand to fetch_width packets of fetch_width slots each.
  trail_fetch_q_.reset_capacity(
      cap(params_.trailing_fetch_queue_entries) +
      cap(params_.fetch_width) * cap(params_.fetch_width));
  trail_fetch_q_.set_name("trail_fetch_q");

  // Leading context: allocate architectural physical registers.
  Context& lead = ctxs_[0];
  lead.tid = ThreadId::kLeading;
  lead.fetch_pc = program.entry;
  for (int r = 0; r < kNumIntRegs; ++r) {
    const int p = int_free_.allocate();
    regfile_.set_value(RegClass::kInt, p, 0);
    lead.map.at(RegClass::kInt, r) = p;
  }
  for (int r = 0; r < kNumFpRegs; ++r) {
    const int p = fp_free_.allocate();
    regfile_.set_value(RegClass::kFp, p, 0);
    lead.map.at(RegClass::kFp, r) = p;
  }

  Context& trail = ctxs_[1];
  trail.tid = ThreadId::kTrailing;
  trail.fetch_pc = program.entry;
  if (redundant()) {
    if (uses_dtq()) {
      // BlackJack trailing: the first trailing rename maps *leading physical*
      // registers. Seed the map so leading architectural registers resolve to
      // trailing physical registers holding the same (initial) values, and
      // initialize the commit-time second rename table identically.
      trail.lead_phys_map = std::make_unique<LeadPhysMap>(
          params_.phys_int_regs, params_.phys_fp_regs);
      for (int r = 0; r < kNumIntRegs; ++r) {
        const int t = int_free_.allocate();
        regfile_.set_value(RegClass::kInt, t, 0);
        trail.lead_phys_map->at(RegClass::kInt,
                                lead.map.get(RegClass::kInt, r)) = t;
        second_rename_.initialize(RegClass::kInt, r, t);
      }
      for (int r = 0; r < kNumFpRegs; ++r) {
        const int t = fp_free_.allocate();
        regfile_.set_value(RegClass::kFp, t, 0);
        trail.lead_phys_map->at(RegClass::kFp,
                                lead.map.get(RegClass::kFp, r)) = t;
        second_rename_.initialize(RegClass::kFp, r, t);
      }
      const auto pow2 = [](std::size_t n) {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p;
      };
      trail.al_window.assign(
          pow2(static_cast<std::size_t>(params_.active_list_entries)),
          InstRef{});
      trail.al_window_mask = trail.al_window.size() - 1;
      trail.lsq_window.assign(
          pow2(static_cast<std::size_t>(params_.lsq_entries)), InstRef{});
      trail.lsq_window_mask = trail.lsq_window.size() - 1;
    } else {
      // SRT trailing: an ordinary context with its own rename map.
      for (int r = 0; r < kNumIntRegs; ++r) {
        const int p = int_free_.allocate();
        regfile_.set_value(RegClass::kInt, p, 0);
        trail.map.at(RegClass::kInt, r) = p;
      }
      for (int r = 0; r < kNumFpRegs; ++r) {
        const int p = fp_free_.allocate();
        regfile_.set_value(RegClass::kFp, p, 0);
        trail.map.at(RegClass::kFp, r) = p;
      }
    }
  }
}

Core::~Core() = default;

bool Core::finished() const {
  if (!ctxs_[0].halted) return false;
  if (!redundant()) return true;
  return ctxs_[1].halted;
}

void Core::run_stages() {
  writeback();
  commit();
  if (uses_dtq()) shuffle_stage();
  issue();
  dispatch();
  fetch();
}

void Core::run_stages_profiled() {
  { StageTimer t(*profiler_, SimStage::kWriteback); writeback(); }
  { StageTimer t(*profiler_, SimStage::kCommit); commit(); }
  if (uses_dtq()) {
    StageTimer t(*profiler_, SimStage::kShuffle);
    shuffle_stage();
  }
  { StageTimer t(*profiler_, SimStage::kIssue); issue(); }
  { StageTimer t(*profiler_, SimStage::kDispatch); dispatch(); }
  { StageTimer t(*profiler_, SimStage::kFetch); fetch(); }
  profiler_->note_cycle();
}

bool Core::tick() {
  if (finished() || wedged_ || detection_halt_) return false;

  if (profiler_ == nullptr) {
    run_stages();
  } else {
    run_stages_profiled();
  }

  // Provenance: date the first cycle on which the injector observed an
  // effective activation. One branch when detached; one extra flag check
  // per cycle of a provenance-tracked (campaign) run.
  if (provenance_ != nullptr && !provenance_->activated &&
      injector_->activations() > 0) {
    provenance_->activated = true;
    provenance_->first_activation_cycle = cycle_;
  }

  ++cycle_;
  ++stats_.cycles;

  if (cycle_ - last_commit_cycle_ > params_.watchdog_cycles && !finished()) {
    wedged_ = true;
    record_detection(DetectionKind::kWatchdogTimeout, 0, 0);
  }
  return !(finished() || wedged_ || detection_halt_);
}

RunOutcome Core::run(std::uint64_t target_commits, std::uint64_t max_cycles) {
  const std::uint64_t goal = total_commits_[0] + target_commits;
  const std::uint64_t cycle_limit =
      max_cycles == ~0ull ? ~0ull : cycle_ + max_cycles;
  while (total_commits_[0] < goal && cycle_ < cycle_limit) {
    if (!tick()) break;
  }
  RunOutcome out;
  out.cycles = cycle_;
  out.leading_commits = total_commits_[0];
  out.trailing_commits = total_commits_[1];
  out.program_finished = finished();
  out.wedged = wedged_;
  out.detected = !detections_.empty();
  out.detections = detections_;
  return out;
}

void Core::reset_stats() {
  stats_ = CoreStats{};
  reset_event_cache();  // the map the cached slots point into was destroyed
}

void Core::reset_event_cache() {
  ev_fetch_buffer_full_ = nullptr;
  ev_fetch_block_boundary_ = nullptr;
  ev_fetch_instructions_ = nullptr;
  ev_dispatch_pipe_delay_ = nullptr;
  ev_dispatch_structural_ = nullptr;
  ev_dispatch_instructions_ = nullptr;
  ev_dispatch_iq_full_ = nullptr;
  ev_dispatch_packet_serial_ = nullptr;
  ev_dispatch_al_full_ = nullptr;
  ev_dispatch_lsq_full_ = nullptr;
  ev_commit_head_executing_ = nullptr;
  ev_commit_head_not_issued_ = nullptr;
  ev_commit_stall_op_.fill(nullptr);
}

void Core::record_detection(DetectionKind kind, std::uint64_t pc,
                            std::uint64_t seq) {
  detections_.push_back(DetectionEvent{kind, cycle_, pc, seq});
  if (provenance_ != nullptr && !provenance_->detected) {
    provenance_->detected = true;
    provenance_->detection_cycle = cycle_;
  }
  if (flight_ != nullptr) flight_->dump("detection");
  if (halt_on_detection_) detection_halt_ = true;
}

std::uint64_t Core::storage_read(std::uint64_t clean, FaultSite site, int slot,
                                 int bits, EccCodec codec,
                                 std::uint64_t* corrected,
                                 std::uint64_t* detected, std::uint64_t pc,
                                 std::uint64_t seq) {
  const std::uint64_t stored =
      injector_->on_storage_read(clean, site, slot, bits);
  const std::uint64_t before = *detected;
  const std::uint64_t word =
      ecc_protected_read(codec, stored, clean, corrected, detected);
  if (*detected != before) {
    record_detection(DetectionKind::kEccUncorrectable, pc, seq);
  }
  return word;
}

void Core::export_metrics(MetricsRegistry& registry) const {
  registry.text("core.mode", mode_name(mode_));
  registry.counter("core.cycles", stats_.cycles);
  registry.counter("core.commits.leading", stats_.leading_commits);
  registry.counter("core.commits.trailing", stats_.trailing_commits);
  registry.gauge("core.ipc", stats_.ipc());
  registry.counter("core.issue.cycles", stats_.issue_cycles);
  registry.counter("core.issue.instructions", stats_.instructions_issued);
  registry.gauge("core.issue.burstiness", stats_.burstiness());
  registry.ratio("core.issue.lt_interference", stats_.lt_interference_cycles,
                 stats_.issue_cycles);
  registry.ratio("core.issue.tt_interference", stats_.tt_interference_cycles,
                 stats_.issue_cycles);
  registry.counter("core.issue.tt_sibling_cycles", stats_.tt_sibling_cycles);
  registry.counter("core.issue.wakeup_events", stats_.wakeup_events);
  registry.counter("core.issue.select_pool_peak", stats_.select_pool_peak);
  registry.counter("core.issue.other_diversity_loss_cycles",
                   stats_.other_diversity_loss_cycles);
  registry.counter("core.branch.lookups", stats_.branch_lookups);
  registry.ratio("core.branch.mispredict_rate", stats_.branch_mispredicts,
                 stats_.branch_lookups);
  registry.gauge("core.coverage.total", stats_.coverage.total_coverage());
  registry.gauge("core.coverage.frontend",
                 stats_.coverage.frontend_coverage());
  registry.gauge("core.coverage.backend", stats_.coverage.backend_coverage());
  registry.counter("core.coverage.pairs", stats_.coverage.pairs());
  registry.counter("shuffle.packets", stats_.packets_shuffled);
  registry.counter("shuffle.nops", stats_.shuffle_nops);
  registry.counter("shuffle.splits", stats_.packet_splits);
  registry.counter("shuffle.forced_places", stats_.shuffle_forced_places);
  registry.counter("shuffle.packets_combined", stats_.packets_combined);
  registry.ratio("shuffle.cache.hit_rate", stats_.shuffle_cache_hits,
                 stats_.shuffle_cache_hits + stats_.shuffle_cache_misses);
  registry.counter("shuffle.cache.warm_hits", stats_.shuffle_cache_warm_hits);
  registry.counter("pool.high_water", stats_.pool_high_water);
  registry.counter("fault.payload_corrupted.leading",
                   stats_.payload_corrupted_leading);
  registry.counter("fault.payload_corrupted.both",
                   stats_.payload_corrupted_both);
  registry.counter("fault.ecc.payload.corrected", stats_.ecc_payload_corrected);
  registry.counter("fault.ecc.payload.detected", stats_.ecc_payload_detected);
  registry.counter("fault.ecc.regfile.corrected", stats_.ecc_regfile_corrected);
  registry.counter("fault.ecc.regfile.detected", stats_.ecc_regfile_detected);
  registry.counter("fault.ecc.lvq.corrected", stats_.ecc_lvq_corrected);
  registry.counter("fault.ecc.lvq.detected", stats_.ecc_lvq_detected);
  registry.counter("fault.ecc.dtq.corrected", stats_.ecc_dtq_corrected);
  registry.counter("fault.ecc.dtq.detected", stats_.ecc_dtq_detected);
  registry.counter("core.detections", detections_.size());
  for (const auto& [name, count] : stats_.events.all()) {
    registry.counter("core.events." + name, count);
  }
}

DynInst* Core::make_inst(ThreadId tid) {
  DynInst* inst = pool_.allocate();
  inst->tid = tid;
  cold(inst).fetch_cycle = cycle_;
  if (pool_.in_use() > stats_.pool_high_water) {
    stats_.pool_high_water = pool_.in_use();
  }
  return inst;
}

// ---------------------------------------------------------------------------
// Shuffle stage: move committed packets from the DTQ into the trailing fetch
// queue. Full BlackJack applies safe-shuffle; BlackJack-NS forwards packets
// unshuffled. Bandwidth: one input packet per cycle (ample, since the
// trailing thread consumes at most one packet per cycle).
// ---------------------------------------------------------------------------
void Core::shuffle_stage() {
  const std::size_t width = static_cast<std::size_t>(params_.fetch_width);
  if (trail_fetch_q_insts_ + 3 * width >
      static_cast<std::size_t>(params_.trailing_fetch_queue_entries)) {
    return;
  }
  std::size_t n = dtq_.head_packet_size();
  if (n == 0) return;

  // Packet-combining extension: append subsequent committed packets while
  // the combined group stays within the issue width and the DTQ's borrowed
  // rename maps prove register independence (a later instruction reading a
  // physical register some earlier combined instruction writes would
  // reintroduce an intra-packet dependence, which shuffle must never
  // create).
  if (params_.combine_packets) {
    auto independent = [&](std::size_t upto, std::size_t from,
                           std::size_t count) {
      for (std::size_t j = from; j < from + count; ++j) {
        const DtqEntry& later = dtq_.at(j);
        for (std::size_t i = 0; i < upto; ++i) {
          const DtqEntry& earlier = dtq_.at(i);
          // True dependence (RAW) through the leading physical registers.
          if (earlier.lead_dst_phys != kNoPhysReg &&
              (later.lead_src1_phys == earlier.lead_dst_phys ||
               later.lead_src2_phys == earlier.lead_dst_phys ||
               later.lead_dst_phys == earlier.lead_dst_phys)) {
            return false;
          }
          // Anti dependence through register recycling: the later packet may
          // have been allocated a leading physical register the earlier
          // packet still *reads* (freed and reused between their renames).
          // Shuffle may place the later instruction in a lower slot, so its
          // trailing map update would shadow the earlier reader's lookup.
          if (later.lead_dst_phys != kNoPhysReg &&
              (later.lead_dst_phys == earlier.lead_src1_phys ||
               later.lead_dst_phys == earlier.lead_src2_phys)) {
            return false;
          }
        }
      }
      return true;
    };
    auto class_counts_fit = [&](std::size_t count) {
      int per_class[kNumFuClasses] = {};
      for (std::size_t i = 0; i < count; ++i) {
        const int cls = static_cast<int>(dtq_.at(i).fu);
        if (++per_class[cls] > params_.fu_count(dtq_.at(i).fu)) return false;
      }
      return true;
    };
    while (n < static_cast<std::size_t>(params_.fetch_width)) {
      const std::size_t next = dtq_.packet_size_at(n);
      if (next == 0 ||
          n + next > static_cast<std::size_t>(params_.fetch_width) ||
          !independent(n, n, next) || !class_counts_fit(n + next)) {
        break;
      }
      n += next;
      ++stats_.packets_combined;
    }
  }

  std::vector<DtqEntry>& entries = shuffle_entries_;  // member scratch
  entries.clear();
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) entries.push_back(dtq_.at(i));
  dtq_.pop_front(n);
  if (injector_->storage_armed()) [[unlikely]] {
    // DTQ RAM read port: the trailing stream is rebuilt from the stored
    // instruction words, so a stuck or upset DTQ cell feeds the trailing
    // thread a different instruction than the leading copy ran — exactly
    // what the redundancy checks (or the DTQ's ECC) must catch. The
    // packet-combining peeks above read only rename-map metadata and are
    // left fault-free: the modeled fault site is the 32-bit raw-word RAM.
    for (DtqEntry& e : entries) {
      e.raw = static_cast<std::uint32_t>(storage_read(
          e.raw, FaultSite::kDtqSlot, e.slot, 32, params_.dtq_ecc,
          &stats_.ecc_dtq_corrected, &stats_.ecc_dtq_detected, e.pc,
          e.lead_seq));
    }
  }
  if constexpr (kUseWakeupLists) {
    // DTQ drained: leading instructions parked on DTQ-full re-check. The
    // shuffle stage runs before issue, so they are selectable this cycle —
    // matching when the legacy scan would see dtq_.full() clear.
    wake_list(dtq_waiters_);
  }
  ++stats_.packets_shuffled;

  const std::uint64_t origin = next_origin_id_++;
  if (mode_ == Mode::kBlackjackNs) {
    TrailPacket pkt;
    pkt.packet_id = next_packet_id_++;
    pkt.origin_id = origin;
    pkt.slots.reserve(entries.size());
    for (const DtqEntry& e : entries) {
      TrailSlot slot;
      slot.is_nop = false;
      slot.entry = e;
      pkt.slots.push_back(std::move(slot));
    }
    trail_fetch_q_insts_ += pkt.slots.size();
    trail_fetch_q_.push_back(std::move(pkt));
    return;
  }

  std::vector<ShuffleInst>& input = shuffle_input_;  // member scratch
  input.clear();
  input.reserve(n);
  for (const DtqEntry& e : entries) {
    input.push_back(ShuffleInst{e.fu, e.lead_frontend_way,
                                e.lead_backend_way});
  }
  bool cache_hit = false;
  bool warm_hit = false;
  const ShuffleResult& shuffled =
      shuffle_cache_.shuffle(input, params_.fetch_width, &cache_hit, &warm_hit);
  ++(cache_hit ? stats_.shuffle_cache_hits : stats_.shuffle_cache_misses);
  if (warm_hit) ++stats_.shuffle_cache_warm_hits;
  stats_.shuffle_nops += static_cast<std::uint64_t>(shuffled.nops_inserted);
  stats_.packet_splits += static_cast<std::uint64_t>(shuffled.splits);
  stats_.shuffle_forced_places +=
      static_cast<std::uint64_t>(shuffled.forced_places);

  for (const ShuffledPacket& out : shuffled.packets) {
    TrailPacket pkt;
    pkt.packet_id = next_packet_id_++;
    pkt.origin_id = origin;
    pkt.slots.reserve(out.size());
    for (const ShuffleSlot& s : out) {
      TrailSlot slot;
      if (s.is_nop) {
        slot.is_nop = true;
        slot.nop_cls = s.cls;
      } else {
        slot.is_nop = false;
        slot.entry = entries[static_cast<std::size_t>(s.input_index)];
      }
      pkt.slots.push_back(std::move(slot));
    }
    trail_fetch_q_insts_ += pkt.slots.size();
    trail_fetch_q_.push_back(std::move(pkt));
  }
}

// ---------------------------------------------------------------------------
// Fetch: one thread fetches per cycle. The trailing thread is preferred once
// its backlog of committed-but-unfetched leading instructions reaches the
// slack target; otherwise the leading thread fetches. Whichever is chosen,
// if it cannot fetch this cycle the other gets the slot.
// ---------------------------------------------------------------------------
void Core::fetch() {
  Context& lead = ctxs_[0];
  Context& trail = ctxs_[1];

  const bool lead_can =
      !lead.fetch_done && lead.icache_ready <= cycle_ &&
      lead.frontend_q.size() <
          static_cast<std::size_t>(params_.fetch_buffer_entries);

  bool trail_can = false;
  if (redundant()) {
    if (uses_dtq()) {
      trail_can = !trail_fetch_q_.empty() &&
                  trail.frontend_q.size() +
                          trail_fetch_q_.front().slots.size() <=
                      static_cast<std::size_t>(params_.fetch_buffer_entries);
    } else {
      trail_can = !trail.fetch_done && trail.icache_ready <= cycle_ &&
                  trail.fetch_seq < lead.committed &&
                  trail.frontend_q.size() <
                      static_cast<std::size_t>(params_.fetch_buffer_entries);
    }
  }

  const std::uint64_t backlog =
      lead.committed > trail.fetch_seq ? lead.committed - trail.fetch_seq : 0;
  // The trailing thread competes for fetch only once its backlog reaches the
  // slack target (Section 3), with hysteresis: once it starts draining it
  // keeps the fetch slot until the backlog falls a band below the slack, and
  // vice versa. Phased fetch keeps each thread's instructions clustered in
  // the issue queue, which is what makes issue bursty (Figure 6) and
  // leading-trailing interference rare.
  bool prefer_trailing = false;
  if (trail_can) {
    const auto slack = static_cast<std::uint64_t>(params_.slack);
    const std::uint64_t band = slack / 4 + 1;
    if (trailing_fetch_phase_) {
      prefer_trailing = backlog + band > slack;
    } else {
      prefer_trailing = backlog >= slack + band;
    }
    trailing_fetch_phase_ = prefer_trailing;
  }

  if ((prefer_trailing && trail_can) || (!lead_can && trail_can)) {
    if (uses_dtq()) {
      fetch_trailing_blackjack(trail);
    } else {
      fetch_trailing_srt(trail);
    }
  } else if (lead_can) {
    fetch_leading(lead);
  }
}

void Core::fetch_leading(Context& ctx) {
  const std::uint64_t block_insts =
      static_cast<std::uint64_t>(params_.memory.l1i.line_bytes) / 4;
  const std::uint64_t done = hierarchy_.fetch(ctx.fetch_pc * 4, cycle_);
  if (done > cycle_) {
    ctx.icache_ready = done;
    return;
  }
  const std::uint64_t first_block = ctx.fetch_pc / block_insts;
  std::uint64_t fetched = 0;
  for (int i = 0; i < params_.fetch_width; ++i) {
    if (ctx.fetch_done) break;
    if (ctx.frontend_q.size() >=
        static_cast<std::size_t>(params_.fetch_buffer_entries)) {
      bump_event(ev_fetch_buffer_full_, "fetch.lead.buffer_full");
      break;
    }
    if (ctx.fetch_pc / block_insts != first_block) {
      bump_event(ev_fetch_block_boundary_, "fetch.lead.block_boundary");
      break;
    }
    ++fetched;

    DynInst* inst = make_inst(ThreadId::kLeading);
    inst->pc = ctx.fetch_pc;
    inst->seq = ctx.fetch_seq++;
    inst->raw = program_.fetch_raw(ctx.fetch_pc);
    inst->dec = decode_table_.predecode(ctx.fetch_pc);
    inst->frontend_way =
        static_cast<std::int8_t>(ctx.fetch_pc % static_cast<std::uint64_t>(
                                                    params_.fetch_width));

    bool redirect = false;
    std::uint64_t next_pc = ctx.fetch_pc + 1;
    const DecodedInst& pre = *inst->dec;
    if (pre.valid && pre.is_control()) {
      inst->pre_ctrl = true;
      BranchPrediction& prediction = cold(inst).prediction;
      prediction = predictor_.predict(ctx.fetch_pc, pre);
      inst->pred_taken = prediction.taken;
      inst->pred_target = prediction.target;
      ++stats_.branch_lookups;
      if (inst->pred_taken) {
        next_pc = inst->pred_target;
        redirect = true;
      }
    }
    if (pre.op == Opcode::kHalt) {
      ctx.fetch_done = true;
    }
    ctx.frontend_q.push_back(inst->self);
    ctx.fetch_pc = next_pc;
    if (redirect) break;
  }
  // Hoisted per-instruction bump: counts are identical, one map probe.
  if (fetched > 0) {
    bump_event(ev_fetch_instructions_, "fetch.lead.instructions", fetched);
  }
}

void Core::fetch_trailing_srt(Context& ctx) {
  Context& lead = ctxs_[0];
  const std::uint64_t block_insts =
      static_cast<std::uint64_t>(params_.memory.l1i.line_bytes) / 4;
  const std::uint64_t done = hierarchy_.fetch(ctx.fetch_pc * 4, cycle_);
  if (done > cycle_) {
    ctx.icache_ready = done;
    return;
  }
  const std::uint64_t first_block = ctx.fetch_pc / block_insts;
  for (int i = 0; i < params_.fetch_width; ++i) {
    if (ctx.fetch_done) break;
    if (ctx.fetch_seq >= lead.committed) break;  // only committed instructions
    if (ctx.frontend_q.size() >=
        static_cast<std::size_t>(params_.fetch_buffer_entries)) {
      break;
    }
    if (ctx.fetch_pc / block_insts != first_block) break;

    DynInst* inst = make_inst(ThreadId::kTrailing);
    inst->pc = ctx.fetch_pc;
    inst->seq = ctx.fetch_seq;
    inst->raw = program_.fetch_raw(ctx.fetch_pc);
    inst->dec = decode_table_.predecode(ctx.fetch_pc);
    inst->frontend_way =
        static_cast<std::int8_t>(ctx.fetch_pc % static_cast<std::uint64_t>(
                                                    params_.fetch_width));

    bool redirect = false;
    std::uint64_t next_pc = ctx.fetch_pc + 1;
    const DecodedInst& pre = *inst->dec;
    if (pre.valid && pre.is_control()) {
      // Consume the leading thread's outcome as a perfect prediction.
      const std::size_t offset =
          static_cast<std::size_t>(ctx.fetched_ctrl - ctx.committed_ctrl);
      const std::optional<BranchOutcome> outcome = boq_.peek(offset);
      if (!outcome.has_value()) {
        pool_.release(inst->self);  // fetch abandoned before enqueue
        break;                      // outcome not yet available
      }
      inst->pre_ctrl = true;
      inst->pred_taken = outcome->taken;
      inst->pred_target = outcome->target;
      ++ctx.fetched_ctrl;
      if (inst->pred_taken) {
        next_pc = inst->pred_target;
        redirect = true;
      }
    }
    if (pre.is_load()) {
      inst->mem_ordinal = narrow_u32(ctx.fetched_loads++, "mem_ordinal");
    }
    if (pre.is_store()) {
      inst->mem_ordinal = narrow_u32(ctx.fetched_stores++, "mem_ordinal");
    }
    if (pre.op == Opcode::kHalt) ctx.fetch_done = true;

    ++ctx.fetch_seq;
    ctx.frontend_q.push_back(inst->self);
    ctx.fetch_pc = next_pc;
    if (redirect) break;
  }
}

void Core::fetch_trailing_blackjack(Context& ctx) {
  if (trail_fetch_q_.empty()) return;
  int packets_this_cycle = 0;
  const int max_packets =
      params_.one_packet_per_cycle ? 1 : params_.fetch_width;
  int insts_fetched = 0;
  while (packets_this_cycle < max_packets && !trail_fetch_q_.empty() &&
         insts_fetched < params_.fetch_width) {
    const TrailPacket& pkt = trail_fetch_q_.front();
    if (ctx.frontend_q.size() + pkt.slots.size() >
        static_cast<std::size_t>(params_.fetch_buffer_entries)) {
      break;
    }
    for (std::size_t slot = 0; slot < pkt.slots.size(); ++slot) {
      const TrailSlot& ts = pkt.slots[slot];
      DynInst* inst = make_inst(ThreadId::kTrailing);
      inst->packet_id = narrow_u32(pkt.packet_id, "packet_id");
      inst->origin_packet_id = narrow_u32(pkt.origin_id, "origin_packet_id");
      inst->frontend_way = static_cast<std::int8_t>(slot);
      if (ts.is_nop) {
        inst->is_shuffle_nop = true;
        inst->fu = ts.nop_cls;
        inst->dec = decode_table_.nop();
      } else {
        const DtqEntry& e = ts.entry;
        inst->pc = e.pc;
        inst->raw = e.raw;
        // e.raw is the leading copy's fetch_raw(e.pc), so the pc-indexed
        // predecode is exactly decode(e.raw) — unless a DTQ storage fault
        // upset the stored word, in which case the trailing copy must
        // re-decode the corrupted word (interning dedups back to the
        // predecode entry whenever the word is actually clean).
        inst->dec = injector_->storage_armed()
                        ? decode_table_.intern(e.raw)
                        : decode_table_.predecode(e.pc);
        inst->seq = e.virt_al_index;  // seq IS the virtual AL index here
        inst->lead_frontend_way = static_cast<std::int8_t>(e.lead_frontend_way);
        inst->lead_backend_way = static_cast<std::int8_t>(e.lead_backend_way);
        inst->lead_src1_phys = static_cast<std::int16_t>(e.lead_src1_phys);
        inst->lead_src2_phys = static_cast<std::int16_t>(e.lead_src2_phys);
        inst->lead_dst_phys = static_cast<std::int16_t>(e.lead_dst_phys);
        inst->has_lsq_slot = e.has_lsq_slot;
        inst->mem_ordinal = narrow_u32(e.mem_ordinal, "mem_ordinal");
        DynInstCold& c = cold(inst);
        c.lead_seq = e.lead_seq;
        c.virt_lsq_index = e.virt_lsq_index;
        ctx.fetch_seq = e.virt_al_index + 1;  // backlog tracking
        ++insts_fetched;
      }
      ctx.frontend_q.push_back(inst->self);
    }
    trail_fetch_q_insts_ -= pkt.slots.size();
    trail_fetch_q_.pop_front();
    ++packets_this_cycle;
  }
}

// ---------------------------------------------------------------------------
// Dispatch: decode (with the decode-lane fault hook), rename, and insert
// into the issue queue + active list + LSQ. In-order per context; contexts
// alternate priority each cycle and share the dispatch bandwidth.
// ---------------------------------------------------------------------------
void Core::dispatch() {
  int budget = params_.issue_width;
  const int start = static_cast<int>(cycle_ % 2);
  std::uint64_t dispatched = 0;
  for (int k = 0; k < kNumThreads && budget > 0; ++k) {
    Context& ctx = ctxs_[(start + k) % kNumThreads];
    if (ctx.tid == ThreadId::kTrailing && !redundant()) continue;
    while (budget > 0 && !ctx.frontend_q.empty()) {
      DynInst* inst = &pool_.get(ctx.frontend_q.front());
      if (cold(inst).fetch_cycle + static_cast<std::uint64_t>(
                                       params_.frontend_stages) > cycle_) {
        bump_event(ev_dispatch_pipe_delay_, "dispatch.pipe_delay");
        break;
      }
      if (!rename_and_dispatch(ctx, inst)) {
        bump_event(ev_dispatch_structural_, "dispatch.structural_stall");
        break;
      }
      ctx.frontend_q.pop_front();
      --budget;
      ++dispatched;
    }
  }
  // Hoisted per-instruction bump: counts are identical, one map probe.
  if (dispatched > 0) {
    bump_event(ev_dispatch_instructions_, "dispatch.instructions", dispatched);
  }
}

int Core::find_free_iq_slot() const {
  for (std::size_t i = 0; i < iq_.size(); ++i) {
    if (!iq_[i].inst) return static_cast<int>(i);
  }
  return -1;
}

bool Core::rename_and_dispatch(Context& ctx, DynInst* inst) {
  const int iq_slot = find_free_iq_slot();
  if (iq_slot < 0) {
    bump_event(ev_dispatch_iq_full_, "dispatch.iq_full");
    return false;
  }

  const bool trailing_packet_member = uses_dtq() && inst->is_trailing();
  if (trailing_packet_member && params_.packet_serial_dispatch &&
      iq_trailing_unissued_ > 0 &&
      inst->packet_id != iq_trailing_packet_id_) {
    bump_event(ev_dispatch_packet_serial_, "dispatch.packet_serial_stall");
    return false;
  }

  auto install_iq = [&]() {
    inst->iq_entry = static_cast<std::int16_t>(iq_slot);
    iq_[static_cast<std::size_t>(iq_slot)].inst = inst->self;
    iq_[static_cast<std::size_t>(iq_slot)].ptr = inst;
    ++iq_occupancy_;
    inst->age = dispatch_age_++;
    inst->dispatched = true;
    cold(inst).dispatch_cycle = cycle_;
    if (trailing_packet_member) {
      ++iq_trailing_unissued_;
      iq_trailing_packet_id_ = inst->packet_id;
    }
    if (injector_->storage_armed() && !inst->is_shuffle_nop &&
        (!params_.separate_payload_rams || !inst->is_trailing())) [[unlikely]] {
      // Payload RAM write port: installing the instruction writes its
      // immediate into the entry (the faulted RAM is the leading thread's
      // when payload RAMs are split, so only its writers count).
      injector_->on_storage_write(FaultSite::kIqPayload, iq_slot);
    }
    if constexpr (kUseWakeupLists) {
      // Park the newcomer on its first blocking condition (or pool it if it
      // is born ready). Dispatch runs after issue, so the earliest it can be
      // selected is next cycle — the same cycle the legacy scan would first
      // see it.
      subscribe_waiter(inst);
    }
  };

  if (inst->is_shuffle_nop) {
    install_iq();
    return true;
  }

  // Decode stage: this is where the frontend-way decoder fault bites. The
  // decoded (possibly corrupted) form drives rename and execution. A clean
  // decode lane keeps the fetch-time predecode entry, so the decoder only
  // re-runs (via the intern table) when the fault hook actually flipped
  // something.
  const std::uint32_t raw = injector_->on_decode(inst->raw, inst->frontend_way);
  if (raw != inst->raw) inst->dec = decode_table_.intern(raw);
  const DecodedInst& d = inst->di();
  inst->fu = d.fu();
  const bool is_mem = d.is_mem();
  const bool writes = d.writes_reg();

  const bool bj_trailing = uses_dtq() && inst->is_trailing();
  // The leading LSQ order borrowed through the DTQ (cold sidecar; read once
  // per dispatch attempt, used again at window insertion below).
  std::uint64_t virt_lsq_index = 0;
  if (bj_trailing) {
    if (inst->has_lsq_slot) virt_lsq_index = cold(inst).virt_lsq_index;
    // Virtual -> physical window translation (Section 4.3.1): the virtual
    // index must fit within the window relative to the current head. The
    // trailing seq IS the virtual active-list index.
    if (inst->seq >=
        ctx.al_head_virt + static_cast<std::uint64_t>(
                               params_.active_list_entries)) {
      return false;
    }
    if (inst->has_lsq_slot &&
        virt_lsq_index >=
            ctx.lsq_head_virt + static_cast<std::uint64_t>(
                                    params_.lsq_entries)) {
      return false;
    }
  } else {
    if (ctx.active_list.size() >=
        static_cast<std::size_t>(params_.active_list_entries)) {
      bump_event(ev_dispatch_al_full_, "dispatch.al_full");
      return false;
    }
    if (is_mem &&
        ctx.lsq.size() >= static_cast<std::size_t>(params_.lsq_entries)) {
      bump_event(ev_dispatch_lsq_full_, "dispatch.lsq_full");
      return false;
    }
  }
  if (writes && free_list(d.dst.cls).empty()) return false;

  // Rename.
  if (bj_trailing) {
    // Double rename: inputs are the leading thread's physical registers.
    auto map_src = [&](const RegRef& src, int lead_phys) -> std::int16_t {
      if (!src.valid()) return kNoPhysReg;
      if (src.cls == RegClass::kInt && src.idx == kZeroReg) return kNoPhysReg;
      if (lead_phys == kNoPhysReg) return kNoPhysReg;
      return static_cast<std::int16_t>(
          ctx.lead_phys_map->get(src.cls, lead_phys));
    };
    inst->src1_phys = map_src(d.src1, inst->lead_src1_phys);
    inst->src2_phys = map_src(d.src2, inst->lead_src2_phys);
    if (writes) {
      inst->dst_phys =
          static_cast<std::int16_t>(free_list(d.dst.cls).allocate());
      // Not ready until the producer issues (clears any stale readiness from
      // the register's previous lifetime).
      regfile_.mark_busy(d.dst.cls, inst->dst_phys);
      // The previous trailing mapping is NOT freed here: freeing happens in
      // program order through the second rename table at trailing commit.
      if (inst->lead_dst_phys != kNoPhysReg) {
        ctx.lead_phys_map->at(d.dst.cls, inst->lead_dst_phys) =
            inst->dst_phys;
      }
    }
  } else {
    auto map_src = [&](const RegRef& src) -> std::int16_t {
      if (!src.valid()) return kNoPhysReg;
      if (src.cls == RegClass::kInt && src.idx == kZeroReg) return kNoPhysReg;
      return static_cast<std::int16_t>(ctx.map.get(src.cls, src.idx));
    };
    inst->src1_phys = map_src(d.src1);
    inst->src2_phys = map_src(d.src2);
    if (writes) {
      inst->prev_dst_phys =
          static_cast<std::int16_t>(ctx.map.get(d.dst.cls, d.dst.idx));
      inst->dst_phys =
          static_cast<std::int16_t>(free_list(d.dst.cls).allocate());
      regfile_.mark_busy(d.dst.cls, inst->dst_phys);
      ctx.map.at(d.dst.cls, d.dst.idx) = inst->dst_phys;
    }
  }

  // Window insertion.
  if (bj_trailing) {
    ctx.al_window[static_cast<std::size_t>(inst->seq) &
                  ctx.al_window_mask] = inst->self;
    ++ctx.al_window_count;
    if (inst->has_lsq_slot) {
      ctx.lsq_window[static_cast<std::size_t>(virt_lsq_index) &
                     ctx.lsq_window_mask] = inst->self;
      ++ctx.lsq_window_count;
    }
  } else {
    ctx.active_list.push_back(inst->self);
    if (is_mem) {
      ctx.lsq.push_back(inst->self);
      // Mirror stores into the store-only ring the load paths scan.
      if (d.is_store()) ctx.lsq_stores.push_back(inst->self);
    }
  }

  install_iq();
  return true;
}

}  // namespace bj

namespace bj {

void Core::dump_state(std::ostream& os) const {
  os << "=== core state @ cycle " << cycle_ << " mode=" << mode_name(mode_)
     << " ===\n";
  for (const Context& ctx : ctxs_) {
    os << (ctx.tid == ThreadId::kLeading ? "leading" : "trailing")
       << ": committed=" << ctx.committed << " fetch_seq=" << ctx.fetch_seq
       << " frontend_q=" << ctx.frontend_q.size()
       << " al=" << ctx.active_list.size()
       << " al_window=" << ctx.al_window_count
       << " lsq=" << ctx.lsq.size() << " lsq_window=" << ctx.lsq_window_count
       << " halted=" << ctx.halted << " fetch_done=" << ctx.fetch_done
       << " icache_ready=" << ctx.icache_ready << "\n";
    if (!ctx.frontend_q.empty()) {
      const DynInst* h = &pool_.get(ctx.frontend_q.front());
      os << "  frontend head: seq=" << h->seq << " pc=" << h->pc << " "
         << disassemble(h->di()) << (h->is_shuffle_nop ? " [nop]" : "")
         << " packet=" << h->packet_id << "\n";
    }
    InstRef head;
    if (!ctx.active_list.empty()) {
      head = ctx.active_list.front();
    } else if (ctx.al_window_count > 0) {
      head = ctx.al_window[static_cast<std::size_t>(ctx.al_head_virt) &
                           ctx.al_window_mask];
    }
    if (head) {
      const DynInst* h = &pool_.get(head);
      os << "  al head: seq=" << h->seq << " pc=" << h->pc << " "
         << disassemble(h->di()) << " issued=" << h->issued
         << " completed=" << h->completed << " iq=" << h->iq_entry << "\n";
    }
  }
  os << "iq occupancy=" << iq_occupancy_
     << " trailing_unissued=" << iq_trailing_unissued_
     << " gate_packet=" << iq_trailing_packet_id_ << "\n";
  for (std::size_t i = 0; i < iq_.size(); ++i) {
    if (!iq_[i].inst) continue;
    const DynInst* in = &pool_.get(iq_[i].inst);
    os << "  iq[" << i << "] tid=" << tid_index(in->tid) << " seq=" << in->seq
       << " pc=" << in->pc << " " << disassemble(in->di())
       << (in->is_shuffle_nop ? " [nop]" : "") << " packet=" << in->packet_id
       << " src1=" << in->src1_phys << " src2=" << in->src2_phys
       << " issued=" << in->issued << "\n";
  }
  os << "dtq=" << dtq_.size() << " fetchq_pkts=" << trail_fetch_q_.size()
     << " fetchq_insts=" << trail_fetch_q_insts_ << " lvq=" << lvq_.size()
     << " sb=" << store_buffer_.size() << " boq=" << boq_.size() << "\n";
}

}  // namespace bj
