// Backend stages: wakeup/select/issue with the oldest-first backend-way
// mapping, execution (with fault hooks), writeback, leading-branch
// resolution and squash.
#include <algorithm>
#include <cassert>
#include <cstdio>

#include "pipeline/core.h"

namespace bj {
namespace {

bool is_unpipelined(Opcode op) {
  return op == Opcode::kDiv || op == Opcode::kRem || op == Opcode::kFdiv ||
         op == Opcode::kFsqrt;
}

}  // namespace

bool Core::operand_ready(RegClass cls, int phys) const {
  // Packed-bitmap wakeup: the bit mirrors ready_at <= cycle_ (set at
  // writeback, cleared at rename), so the scan touches one cache line per
  // 64 registers instead of a strided 64-bit cycle compare.
  return regfile_.ready_now(cls, phys);
}

std::uint64_t Core::operand_value(RegClass cls, int phys) const {
  return regfile_.value(cls, phys);
}

void Core::clamp_lsq_prefix(Context& ctx) {
  if (ctx.lsq_stores_ready_prefix > ctx.lsq_stores.size()) {
    ctx.lsq_stores_ready_prefix = ctx.lsq_stores.size();
  }
}

bool Core::lsq_older_stores_ready(Context& ctx, const DynInst* load) {
  // The oldest store whose address is still pending bounds every load in the
  // context. Stores become address-ready monotonically (only commit and
  // squash remove entries, and every removal site re-clamps the prefix), so
  // the ready prefix of lsq_stores only ever advances here.
  const RingDeque<InstRef>& stores = ctx.lsq_stores;
  std::size_t& prefix = ctx.lsq_stores_ready_prefix;
  const std::size_t n = stores.size();
  // A prefix past the end would claim readiness for stores that no longer
  // exist (reading recycled slots at best, skipping disambiguation at
  // worst): a shrink site failed to clamp.
  BJ_CHECK(prefix <= n, "lsq_stores_ready_prefix exceeds lsq_stores size");
  while (prefix < n && pool_.get(stores.at(prefix)).addr_ready) ++prefix;
  if (prefix >= n) return true;
  return pool_.get(stores.at(prefix)).seq >= load->seq;
}

bool Core::ready_to_issue(DynInst* inst) {
  if (inst->issued || inst->squashed) return false;
  if (inst->is_shuffle_nop) return true;
  const DecodedInst& d = inst->di();

  if (!operand_ready(d.src1.cls, inst->src1_phys)) return false;
  if (d.is_store()) {
    // Stores issue for address generation as soon as the base register is
    // ready; the data operand only needs its producer to have *issued*
    // (value captured at completion, which waits for the data's ready time).
    // This keeps younger loads from serializing behind store dataflow.
    if (inst->src2_phys != kNoPhysReg &&
        regfile_.ready_at(d.src2.cls, inst->src2_phys) == ~0ull) {
      return false;
    }
  } else if (!operand_ready(d.src2.cls, inst->src2_phys)) {
    return false;
  }

  if (d.is_load()) {
    if (redundant() && inst->is_trailing()) {
      // Trailing loads read the LVQ; the entry must exist (it does once the
      // leading copy committed, which gates trailing fetch — but a faulty
      // leading thread can break that, so check).
      if (!lvq_.lookup(inst->mem_ordinal).has_value()) return false;
    } else {
      // Conservative disambiguation: wait until every older store in the
      // context has computed its address.
      Context& ctx = ctxs_[tid_index(inst->tid)];
      if (!lsq_older_stores_ready(ctx, inst)) return false;
    }
  }

  // Leading instructions in DTQ modes need a free trace entry at issue.
  if (uses_dtq() && !inst->is_trailing() && dtq_.full()) return false;

  return true;
}

// ---------------------------------------------------------------------------
// Wakeup-list select machinery (kUseWakeupLists builds). An unissued IQ
// resident is in exactly one place: parked on the waiter list of its first
// blocking condition, or in the ready pool awaiting (re-)validation. Waiter
// entries are generation-tagged handles, so a squash "unlinks" its victims
// lazily — releasing the arena slot stales every handle, and wake_list /
// the pool drain filter them out.
// ---------------------------------------------------------------------------
void Core::enqueue_ready(DynInst* inst) {
  if (inst->in_ready_pool) return;
  inst->in_ready_pool = true;
  ready_pool_.push_back(inst->self);
}

void Core::wake_list(std::vector<InstRef>& list) {
  if (list.empty()) return;
  for (const InstRef ref : list) {
    DynInst* inst = pool_.try_get(ref);
    if (inst == nullptr || inst->issued || inst->squashed) continue;
    ++stats_.wakeup_events;
    enqueue_ready(inst);
  }
  list.clear();
}

void Core::wake_reg_waiters(RegClass cls, int reg) {
  wake_list(regfile_.waiters(cls, reg));
}

void Core::subscribe_waiter(DynInst* inst) {
  // Mirror ready_to_issue()'s check order and park on the *first* blocking
  // condition. If a later condition also blocks, the wake just feeds the
  // pool, re-validation fails, and the instruction re-parks here on the new
  // first blocker — chained wakeup. Every condition except DTQ-full is
  // monotone while the instruction waits, so a parked instruction can never
  // miss the event that clears its blocker.
  if (inst->is_shuffle_nop) {
    enqueue_ready(inst);
    return;
  }
  const DecodedInst& d = inst->di();
  if (!operand_ready(d.src1.cls, inst->src1_phys)) {
    regfile_.waiters(d.src1.cls, inst->src1_phys).push_back(inst->self);
    return;
  }
  if (d.is_store()) {
    // Store-data waiters key on the producer's *issue* event (the ~0ull
    // ready_at sentinel clearing), not its writeback: execute_inst() fires
    // the register's list from write_dst for exactly this case.
    if (inst->src2_phys != kNoPhysReg &&
        regfile_.ready_at(d.src2.cls, inst->src2_phys) == ~0ull) {
      regfile_.waiters(d.src2.cls, inst->src2_phys).push_back(inst->self);
      return;
    }
  } else if (!operand_ready(d.src2.cls, inst->src2_phys)) {
    regfile_.waiters(d.src2.cls, inst->src2_phys).push_back(inst->self);
    return;
  }
  if (d.is_load()) {
    if (redundant() && inst->is_trailing()) {
      if (!lvq_.lookup(inst->mem_ordinal).has_value()) {
        lvq_waiters_.push_back(inst->self);
        return;
      }
    } else {
      Context& ctx = ctxs_[tid_index(inst->tid)];
      if (!lsq_older_stores_ready(ctx, inst)) {
        ctx.lsq_addr_waiters.push_back(inst->self);
        return;
      }
    }
  }
  if (uses_dtq() && !inst->is_trailing() && dtq_.full()) {
    dtq_waiters_.push_back(inst->self);
    return;
  }
  enqueue_ready(inst);
}

void Core::check_issue_sets(const std::vector<DynInst*>& pool_candidates) {
  // Differential mode: the legacy full-IQ scan must produce exactly the
  // pool-derived candidate set. ready_to_issue() is safe to re-run (its only
  // side effect is advancing the monotone lsq prefix cache, which the legacy
  // build would advance identically). Both vectors are age-sorted; ages are
  // unique, so element-wise equality is set equality.
  std::vector<DynInst*>& scan = check_scan_scratch_;
  scan.clear();
  for (IqSlot& slot : iq_) {
    if (slot.ptr != nullptr && ready_to_issue(slot.ptr)) {
      scan.push_back(slot.ptr);
    }
  }
  std::sort(scan.begin(), scan.end(),
            [](const DynInst* a, const DynInst* b) { return a->age < b->age; });
  if (scan == pool_candidates) return;
  std::fprintf(stderr,
               "issue-set divergence at cycle %llu: scan=%zu pool=%zu\n",
               static_cast<unsigned long long>(cycle_), scan.size(),
               pool_candidates.size());
  auto dump = [](const char* label, const std::vector<DynInst*>& set) {
    std::fprintf(stderr, "  %s:\n", label);
    for (const DynInst* inst : set) {
      std::fprintf(stderr,
                   "    age=%llu tid=%d seq=%llu pc=%llu pooled=%d\n",
                   static_cast<unsigned long long>(inst->age),
                   static_cast<int>(inst->tid),
                   static_cast<unsigned long long>(inst->seq),
                   static_cast<unsigned long long>(inst->pc),
                   inst->in_ready_pool ? 1 : 0);
    }
  };
  dump("legacy scan", scan);
  dump("ready pool", pool_candidates);
  BJ_CHECK(false, "issue wakeup/scan divergence (see stderr)");
}

void Core::schedule_completion(DynInst* inst, std::uint64_t at_cycle) {
  const std::uint64_t delay = at_cycle - cycle_;
  if (delay >= 1 && delay <= completion_wheel_mask_) {
    completion_wheel_[at_cycle & completion_wheel_mask_].push_back(
        Completion{inst->age, inst->self});
  } else {
    // Beyond the wheel horizon (or a degenerate zero-latency schedule):
    // fall back to the ordered map. Unreachable with sane parameters.
    completion_overflow_[at_cycle].push_back(Completion{inst->age, inst->self});
  }
}

// Executes one selected instruction: reads operands, applies the payload and
// backend fault hooks, evaluates, updates the PRF and schedules completion.
// Returns false only for leading loads that could not get an MSHR.
void Core::execute_inst(DynInst* inst) {
  inst->issued = true;
  cold(inst).issue_cycle = cycle_;
  ++stats_.instructions_issued;

  if (inst->is_shuffle_nop) return;  // occupies the way; nothing else

  // Issue-queue payload RAM fault: the immediate payload is read out of the
  // entry the instruction occupied. With separate per-thread payload RAMs
  // (the paper's fix) the injected fault lives in the leading thread's RAM.
  // A mutated immediate is cloned into the instruction's private cold-side
  // decode — the shared DecodeTable entry is never written. (Self-assignment
  // on an MSHR re-issue whose first attempt already cloned is benign.)
  if (injector_->armed() &&
      (!params_.separate_payload_rams || !inst->is_trailing())) {
    const std::int64_t before = inst->di().imm;
    std::int64_t after = injector_->on_payload(before, inst->iq_entry);
    if (injector_->storage_armed()) {
      // Transient (deposited) payload flips ride the storage path; hard
      // payload stuck-ats already applied above via on_payload.
      after = static_cast<std::int64_t>(injector_->on_storage_read(
          static_cast<std::uint64_t>(after), FaultSite::kIqPayload,
          inst->iq_entry, 16));
    }
    if (params_.payload_ecc != EccCodec::kNone && after != before) {
      // Payload RAM ECC: decode the read-out immediate against the clean
      // word's check bits before the instruction consumes it.
      const std::uint64_t detected_before = stats_.ecc_payload_detected;
      after = static_cast<std::int64_t>(ecc_protected_read(
          params_.payload_ecc, static_cast<std::uint64_t>(after),
          static_cast<std::uint64_t>(before), &stats_.ecc_payload_corrected,
          &stats_.ecc_payload_detected));
      if (stats_.ecc_payload_detected != detected_before) {
        record_detection(DetectionKind::kEccUncorrectable, inst->pc,
                         inst->seq);
      }
    }
    if (after != before) {
      DynInstCold& c = cold(inst);
      c.faulted_decode = inst->di();
      c.faulted_decode.imm = after;
      inst->dec = &c.faulted_decode;
      // Track whether both copies of the same dynamic instruction read the
      // corrupted entry — the Section 4.5 vulnerability that makes the
      // corruption invisible to every check.
      if (!inst->is_trailing()) {
        ++stats_.payload_corrupted_leading;
        payload_corrupted_lead_seqs_.insert(inst->seq);
      } else if (uses_dtq() &&
                 payload_corrupted_lead_seqs_.count(cold(inst).lead_seq) > 0) {
        ++stats_.payload_corrupted_both;
      }
    }
  }

  const DecodedInst& d = inst->di();
  inst->src1_val = operand_value(d.src1.cls, inst->src1_phys);
  inst->src2_val = operand_value(d.src2.cls, inst->src2_phys);
  if (injector_->storage_armed()) [[unlikely]] {
    // Physical register file read ports (flat row space: int rows first,
    // then fp — the kRegfileEntry fault-site coordinate). kNoPhysReg reads
    // the constant-zero operand, not a RAM row.
    auto regfile_row = [&](RegClass cls, int phys) {
      return phys + (cls == RegClass::kFp ? params_.phys_int_regs : 0);
    };
    if (inst->src1_phys != kNoPhysReg) {
      inst->src1_val = storage_read(
          inst->src1_val, FaultSite::kRegfileEntry,
          regfile_row(d.src1.cls, inst->src1_phys), 64, params_.regfile_ecc,
          &stats_.ecc_regfile_corrected, &stats_.ecc_regfile_detected,
          inst->pc, inst->seq);
    }
    if (inst->src2_phys != kNoPhysReg) {
      inst->src2_val = storage_read(
          inst->src2_val, FaultSite::kRegfileEntry,
          regfile_row(d.src2.cls, inst->src2_phys), 64, params_.regfile_ecc,
          &stats_.ecc_regfile_corrected, &stats_.ecc_regfile_detected,
          inst->pc, inst->seq);
    }
  }

  ExecOutcome out = eval(d, inst->src1_val, inst->src2_val, inst->pc);
  injector_->on_execute(out, d, inst->fu, inst->backend_way);
  auto write_dst = [&](std::uint64_t value, std::uint64_t ready_at) {
    if (inst->dst_phys == kNoPhysReg) return;
    regfile_.set_value(d.dst.cls, inst->dst_phys, value);
    if (injector_->storage_armed()) [[unlikely]] {
      // Regfile write port: advances the storage-transient trigger stream
      // and scrubs any deposited flip in the overwritten row.
      injector_->on_storage_write(
          FaultSite::kRegfileEntry,
          inst->dst_phys +
              (d.dst.cls == RegClass::kFp ? params_.phys_int_regs : 0));
    }
    // The ready *bit* stays clear until writeback drains the completion at
    // `ready_at` — consumers wake exactly when they used to.
    regfile_.set_ready_at(d.dst.cls, inst->dst_phys, ready_at);
    if constexpr (kUseWakeupLists) {
      // Producer-issue event: store-data waiters key on the ~0ull sentinel
      // this write just cleared (waking them only at writeback would stall
      // every store behind its data producer's full latency). Ordinary
      // source waiters woken here see the ready bit still clear, fail
      // re-validation, and re-park until writeback fires the list again.
      wake_reg_waiters(d.dst.cls, inst->dst_phys);
    }
  };

  if (d.is_load()) {
    inst->mem_addr = out.mem_addr;
    inst->addr_ready = true;
    std::uint64_t latency = 0;
    if (redundant() && inst->is_trailing()) {
      const std::optional<LvqEntry> entry = lvq_.lookup(inst->mem_ordinal);
      assert(entry.has_value());
      if (entry->addr != inst->mem_addr) {
        record_detection(DetectionKind::kLoadAddressMismatch, inst->pc,
                         inst->seq);
      }
      std::uint64_t lvq_value = entry->value;
      if (injector_->storage_armed()) [[unlikely]] {
        // LVQ value-RAM read port: the trailing load consumes the stored
        // leading load value, so a faulty slot silently substitutes data —
        // the kLvqSlot site. Slot = ordinal mod capacity (circular RAM).
        lvq_value = storage_read(
            lvq_value, FaultSite::kLvqSlot,
            static_cast<int>(inst->mem_ordinal %
                             static_cast<std::uint64_t>(params_.lvq_entries)),
            64, params_.lvq_ecc, &stats_.ecc_lvq_corrected,
            &stats_.ecc_lvq_detected, inst->pc, inst->seq);
      }
      inst->result = lvq_value;
      // The LVQ is a small dedicated RAM, not the cache hierarchy: single-
      // cycle access. This is what lets the trailing thread drain packets as
      // fast as they arrive instead of backing up in the issue queue.
      latency = 1;
    } else {
      const std::optional<std::uint64_t> value = leading_load_value(inst);
      if (value.has_value()) {
        inst->result = *value;
        cold(inst).load_forwarded = true;
        latency = 1;
      } else {
        const std::uint64_t done = hierarchy_.load(inst->mem_addr, cycle_);
        if (done == 0) {
          // No MSHR: stay in the issue queue and retry. The memory port was
          // consumed this cycle (structural hazard on replay). The discarded
          // attempt must not swallow a transient-fault trigger.
          injector_->refund_execution();
          inst->issued = false;
          --stats_.instructions_issued;
          return;
        }
        inst->result = data_mem_.load(inst->mem_addr);
        latency = done - cycle_;
      }
    }
    write_dst(inst->result, cycle_ + latency);
    schedule_completion(inst, cycle_ + latency);
    return;
  }

  if (d.is_store()) {
    inst->mem_addr = out.mem_addr;
    inst->addr_ready = true;
    if constexpr (kUseWakeupLists) {
      // Store address generated: loads in this context parked behind an
      // unresolved older store re-check their disambiguation window.
      wake_list(ctxs_[tid_index(inst->tid)].lsq_addr_waiters);
    }
    inst->result = out.store_value;  // producer already issued, value final
    // Completion (data capture) waits for the data operand's ready time.
    const std::uint64_t data_ready =
        inst->src2_phys == kNoPhysReg
            ? cycle_
            : regfile_.ready_at(d.src2.cls, inst->src2_phys);
    schedule_completion(inst, std::max(cycle_ + 1, data_ready));
    return;
  }

  if (d.is_control()) {
    inst->taken = out.taken;
    inst->target = out.target;
    inst->result = out.value;  // kJal link value
    write_dst(out.value, cycle_ + 1);
    schedule_completion(inst, cycle_ + 1);
    return;
  }

  // ALU / FP op.
  std::uint64_t latency = 1;
  switch (inst->fu) {
    case FuClass::kIntAlu:
      latency = static_cast<std::uint64_t>(params_.latency_int_alu);
      break;
    case FuClass::kIntMul:
      latency = static_cast<std::uint64_t>(
          d.op == Opcode::kMul ? params_.latency_int_mul
                               : params_.latency_int_div);
      break;
    case FuClass::kFpAlu:
      latency = static_cast<std::uint64_t>(params_.latency_fp_alu);
      break;
    case FuClass::kFpMul:
      latency = static_cast<std::uint64_t>(
          d.op == Opcode::kFmul
              ? params_.latency_fp_mul
              : (d.op == Opcode::kFsqrt ? params_.latency_fp_sqrt
                                        : params_.latency_fp_div));
      break;
    case FuClass::kMem:
    case FuClass::kCount:
      break;
  }
  if (is_unpipelined(d.op)) {
    fu_busy_until_[static_cast<int>(inst->fu)]
                  [static_cast<std::size_t>(inst->backend_way)] =
                      cycle_ + latency;
  }
  inst->result = out.value;
  write_dst(out.value, cycle_ + latency);
  schedule_completion(inst, cycle_ + latency);
}

std::optional<std::uint64_t> Core::leading_load_value(const DynInst* inst) {
  // Youngest older store in the context's LSQ with a matching address. The
  // per-context store ring holds exactly the stores resident in the LSQ in
  // program order, so scan it backward (youngest first) and stop at the
  // first address-ready match — equivalent to the forward scan over the
  // whole LSQ that kept the last match, minus the loads.
  const Context& ctx = ctxs_[tid_index(inst->tid)];
  const RingDeque<InstRef>& stores = ctx.lsq_stores;
  for (std::size_t i = stores.size(); i-- > 0;) {
    const DynInst* mem = &pool_.get(stores.at(i));
    if (mem->seq >= inst->seq) continue;  // younger than the load
    if (mem->addr_ready && mem->mem_addr == inst->mem_addr) {
      return mem->result;
    }
  }
  // Committed-but-unreleased stores waiting in the checking store buffer.
  if (redundant()) {
    if (auto fwd = store_buffer_.forward(inst->mem_addr)) return fwd;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Issue: oldest-first select, mapping each selected instruction to the
// lowest-numbered free backend way of its type. Candidates come from the
// event-fed ready pool (kUseWakeupLists) or from a full scan of the unified
// issue queue (BJ_LEGACY_SCAN); the two are bit-identical — the pool is a
// superset of the scan's ready set by construction, and every pool entry is
// re-validated with the same ready_to_issue() predicate the scan uses.
// ---------------------------------------------------------------------------
void Core::issue() {
  // Scratch vectors are members: no per-cycle allocation. Candidates are raw
  // pool pointers — slots stay live through selection (nothing releases an
  // in-flight instruction mid-issue); shuffle NOPs live only in the IQ and
  // are released at the end of this stage.
  issue_candidates_.clear();
  if constexpr (kUseWakeupLists) {
    if (ready_pool_.size() > stats_.select_pool_peak) {
      stats_.select_pool_peak = ready_pool_.size();
    }
    std::vector<InstRef>& drained = ready_pool_scratch_;
    drained.clear();
    drained.swap(ready_pool_);  // keeps both vectors' capacity warm
    for (const InstRef ref : drained) {
      DynInst* inst = pool_.try_get(ref);
      if (inst == nullptr) continue;  // squashed since pooled: handle stale
      if (inst->issued || inst->squashed) {
        inst->in_ready_pool = false;
        continue;
      }
      if (ready_to_issue(inst)) {
        issue_candidates_.push_back(inst);
      } else {
        // Woken but still blocked (chained dependency, or DTQ-full came
        // back — the one non-monotone condition): re-park on whatever
        // blocks it now.
        inst->in_ready_pool = false;
        subscribe_waiter(inst);
      }
    }
    drained.clear();
  } else {
    for (IqSlot& slot : iq_) {
      // slot.ptr is the resolved arena slot, cached at install (IQ residents
      // are live by construction, so no handle check per slot per cycle).
      if (slot.ptr != nullptr && ready_to_issue(slot.ptr)) {
        issue_candidates_.push_back(slot.ptr);
      }
    }
  }
  std::sort(issue_candidates_.begin(), issue_candidates_.end(),
            [](const DynInst* a, const DynInst* b) { return a->age < b->age; });
  if constexpr (kUseWakeupLists) {
    if (params_.check_issue_equivalence) check_issue_sets(issue_candidates_);
  }
  if (issue_candidates_.empty()) return;

  std::array<std::uint32_t, kNumFuClasses> ways_taken{};
  std::vector<DynInst*>& issued = issue_issued_;
  issued.clear();
  int dtq_pending = 0;

  for (DynInst* cand : issue_candidates_) {
    if (static_cast<int>(issued.size()) >= params_.issue_width) break;
    const int cls = static_cast<int>(cand->fu);
    const int n_ways = params_.fu_count(cand->fu);
    int way = -1;
    for (int w = 0; w < n_ways; ++w) {
      if (ways_taken[static_cast<std::size_t>(cls)] &
          (1u << static_cast<unsigned>(w))) {
        continue;
      }
      if (fu_busy_until_[cls][static_cast<std::size_t>(w)] > cycle_) continue;
      if (params_.way_disabled(cand->fu, w)) continue;
      way = w;
      break;
    }
    if (way < 0) continue;

    if (uses_dtq() && !cand->is_trailing()) {
      if (dtq_.size() + static_cast<std::size_t>(dtq_pending) >=
          dtq_.capacity()) {
        continue;
      }
      ++dtq_pending;
    }

    cand->backend_way = way;
    assert(cand->iq_entry >= 0 &&
           iq_[static_cast<std::size_t>(cand->iq_entry)].inst == cand->self);
    execute_inst(cand);
    if (!cand->issued) {
      // MSHR-rejected load: the way stays consumed (replay port hazard) but
      // the instruction remains in the queue.
      ways_taken[static_cast<std::size_t>(cls)] |=
          1u << static_cast<unsigned>(way);
      if (uses_dtq() && !cand->is_trailing()) --dtq_pending;
      continue;
    }
    ways_taken[static_cast<std::size_t>(cls)] |=
        1u << static_cast<unsigned>(way);
    issued.push_back(cand);
    if (uses_dtq() && cand->is_trailing()) {
      assert(iq_trailing_unissued_ > 0);
      --iq_trailing_unissued_;
    }

    // Free the issue-queue slot (the instruction stays live in the pool:
    // the active list / window / completion wheel still reference it).
    iq_[static_cast<std::size_t>(cand->iq_entry)] = IqSlot{};
    --iq_occupancy_;
  }

  if constexpr (kUseWakeupLists) {
    // Candidates that did not make it out (issue width, FU/way conflicts,
    // DTQ backpressure, MSHR-rejected loads) are still ready: back into the
    // pool for next cycle's select, exactly when the legacy scan would
    // reconsider them. Issued ones leave the pool for good.
    for (DynInst* cand : issue_candidates_) {
      if (cand->issued) {
        cand->in_ready_pool = false;
      } else {
        ready_pool_.push_back(cand->self);  // in_ready_pool stays set
      }
    }
  }

  if (issued.empty()) return;

  // DTQ allocation: one entry per issued leading instruction, in issue
  // order; co-issued leading instructions share an issue_cycle and thus form
  // a packet.
  if (uses_dtq()) {
    for (const DynInst* inst : issued) {
      if (inst->is_trailing()) continue;
      DtqEntry entry;
      entry.lead_seq = inst->seq;
      entry.issue_cycle = cycle_;
      entry.pc = inst->pc;
      entry.raw = inst->raw;
      entry.lead_frontend_way = inst->frontend_way;
      entry.lead_backend_way = inst->backend_way;
      entry.fu = inst->fu;
      entry.lead_src1_phys = inst->src1_phys;
      entry.lead_src2_phys = inst->src2_phys;
      entry.lead_dst_phys = inst->dst_phys;
      const int dtq_slot = dtq_.allocate(entry);
      if (injector_->storage_armed()) [[unlikely]] {
        // DTQ RAM write port (kDtqSlot transient trigger stream).
        injector_->on_storage_write(FaultSite::kDtqSlot, dtq_slot);
      }
    }
  }

  // --- issue-cycle statistics (Figures 5 and 6) ---------------------------
  ++stats_.issue_cycles;
  bool any_leading = false;
  bool any_trailing = false;
  bool diversity_violation = false;
  std::uint64_t first_packet = 0;
  std::uint64_t first_origin = 0;
  bool multiple_packets = false;
  bool multiple_origins = false;
  for (const DynInst* inst : issued) {
    if (inst->is_trailing()) {
      any_trailing = true;
      if (inst->packet_id != 0) {
        if (first_packet == 0) {
          first_packet = inst->packet_id;
          first_origin = inst->origin_packet_id;
        } else if (inst->packet_id != first_packet) {
          multiple_packets = true;
          if (inst->origin_packet_id != first_origin) multiple_origins = true;
        }
      }
      if (!inst->is_shuffle_nop && inst->lead_backend_way >= 0 &&
          inst->backend_way == inst->lead_backend_way) {
        diversity_violation = true;
      }
    } else {
      any_leading = true;
    }
  }
  if (!(any_leading && any_trailing)) ++stats_.single_context_issue_cycles;
  if (diversity_violation) {
    if (any_leading && any_trailing) {
      ++stats_.lt_interference_cycles;
    } else if (multiple_packets) {
      ++stats_.tt_interference_cycles;
      if (!multiple_origins) ++stats_.tt_sibling_cycles;
    } else {
      ++stats_.other_diversity_loss_cycles;
    }
  }
  // Shuffle NOPs are referenced only by their (now freed) IQ slot: their
  // lifetime ends with issue, so their arena slots are recycled here.
  for (DynInst* inst : issued) {
    if (inst->is_shuffle_nop) {
      if (tracer_ != nullptr) {
        trace_end(inst, TraceEndKind::kNopRetire, SquashCause::kNone);
      }
      pool_.release(inst->self);
    }
  }
  issued.clear();
}

// ---------------------------------------------------------------------------
// Writeback: completion events, leading branch resolution, squash.
// ---------------------------------------------------------------------------
void Core::writeback() {
  std::vector<Completion>& bucket =
      completion_wheel_[cycle_ & completion_wheel_mask_];
  std::vector<Completion>& done = writeback_scratch_;
  done.clear();
  done.swap(bucket);  // bucket keeps its capacity via the swapped-in vector
  if (!completion_overflow_.empty()) {
    auto it = completion_overflow_.find(cycle_);
    if (it != completion_overflow_.end()) {
      for (const Completion& inst : it->second) done.push_back(inst);
      completion_overflow_.erase(it);
    }
  }
  if (done.empty()) return;
  // Squashed work was released back to the arena when the squash happened,
  // so its wheel entries are now stale refs — drop them before sorting (the
  // old code skipped them via the squashed flag).
  done.erase(std::remove_if(done.begin(), done.end(),
                            [this](const Completion& c) {
                              return pool_.try_get(c.second) == nullptr;
                            }),
             done.end());
  // Resolve in (thread, age) order so the oldest mispredicted branch squashes
  // first; its squash releases younger completions and they are skipped.
  // Ages are unique (carried in the entry, so the sort needs no arena
  // lookups), and the order matches the previous map-based scheduling.
  std::sort(done.begin(), done.end(),
            [](const Completion& a, const Completion& b) {
              return a.first < b.first;
            });
  for (const auto& [age, ref] : done) {
    // Re-resolve per element: a branch processed earlier in this loop may
    // have squashed (released) a younger entry sorted after it.
    DynInst* inst = pool_.try_get(ref);
    if (inst == nullptr || inst->squashed) continue;
    inst->completed = true;
    cold(inst).complete_cycle = cycle_;
    if (inst->dst_phys != kNoPhysReg) {
      // The producer's result is architecturally visible from this cycle on:
      // publish the wakeup bit the issue stage scans.
      regfile_.mark_ready(inst->di().dst.cls, inst->dst_phys);
      if constexpr (kUseWakeupLists) {
        // Writeback event: consumers parked on this register move to the
        // ready pool and are selectable this same cycle (writeback runs
        // before issue), matching the legacy scan's visibility.
        wake_reg_waiters(inst->di().dst.cls, inst->dst_phys);
      }
    }
    if (!inst->is_trailing() && inst->pre_ctrl) {
      resolve_leading_branch(inst);
    }
  }
  done.clear();
}

void Core::resolve_leading_branch(DynInst* inst) {
  // Effective behaviour: the executed (possibly fault-corrupted) decode
  // decides direction and target; a corrupted non-control decode falls
  // through.
  const DecodedInst& d = inst->di();
  const bool is_ctrl = d.valid && d.is_control();
  const bool taken = is_ctrl && inst->taken;
  const std::uint64_t target = taken ? inst->target : inst->pc + 1;

  // The predictor trained on the fetch-time predecode of this pc, which the
  // table reproduces exactly (dec may since have been repointed by the
  // decode/payload fault hooks).
  const DecodedInst& pre = *decode_table_.predecode(inst->pc);
  const DynInstCold& c = cold(inst);
  predictor_.resolve(inst->pc, pre, c.prediction, taken, target);

  const bool mispredicted =
      taken != inst->pred_taken || (taken && target != inst->pred_target);
  if (!mispredicted) return;

  inst->mispredicted = true;
  ++stats_.branch_mispredicts;
  if (pre.is_branch()) {
    predictor_.restore_history(c.prediction.ghr_snapshot, taken);
  }
  squash_leading_after(inst->seq, target);
}

void Core::squash_leading_after(std::uint64_t branch_seq,
                                std::uint64_t new_pc) {
  Context& ctx = ctxs_[0];

  // Fetched-but-undispatched work is referenced only by the frontend queue:
  // release it straight back to the arena.
  for (std::size_t i = 0; i < ctx.frontend_q.size(); ++i) {
    DynInst& inst = pool_.get(ctx.frontend_q.at(i));
    inst.squashed = true;
    if (tracer_ != nullptr) {
      trace_end(&inst, TraceEndKind::kSquash, SquashCause::kBranchMispredict);
    }
    pool_.release(inst.self);
  }
  ctx.frontend_q.clear();

  // Pop the LSQ mirrors before the active-list walk releases their
  // instructions — the seq comparisons need live refs.
  while (!ctx.lsq.empty() && pool_.get(ctx.lsq.back()).seq > branch_seq) {
    ctx.lsq.pop_back();
  }
  while (!ctx.lsq_stores.empty() &&
         pool_.get(ctx.lsq_stores.back()).seq > branch_seq) {
    ctx.lsq_stores.pop_back();
  }
  clamp_lsq_prefix(ctx);

  while (!ctx.active_list.empty() &&
         pool_.get(ctx.active_list.back()).seq > branch_seq) {
    const InstRef ref = ctx.active_list.back();
    DynInst& inst = pool_.get(ref);
    ctx.active_list.pop_back();
    inst.squashed = true;
    if (tracer_ != nullptr) {
      trace_end(&inst, TraceEndKind::kSquash, SquashCause::kBranchMispredict);
    }
    // Undo rename in reverse program order.
    if (inst.dst_phys != kNoPhysReg) {
      const DecodedInst& d = inst.di();
      ctx.map.at(d.dst.cls, d.dst.idx) = inst.prev_dst_phys;
      free_list(d.dst.cls).release(inst.dst_phys);
    }
    if (inst.iq_entry >= 0 &&
        iq_[static_cast<std::size_t>(inst.iq_entry)].inst == ref) {
      iq_[static_cast<std::size_t>(inst.iq_entry)] = IqSlot{};
      --iq_occupancy_;
    }
    // Last reference gone (any completion-wheel entry goes stale with this).
    pool_.release(ref);
  }
  if (uses_dtq()) {
    dtq_.squash_younger_than(branch_seq);
    if constexpr (kUseWakeupLists) {
      // Dropping younger DTQ entries can clear DTQ-full for surviving
      // leading instructions. (Squashed waiters need no unlinking: their
      // arena slots were just released, so their handles are stale and the
      // next fire or pool drain filters them.)
      wake_list(dtq_waiters_);
    }
  }

  ctx.fetch_pc = new_pc;
  ctx.fetch_seq = branch_seq + 1;
  ctx.fetch_done = false;
  ctx.icache_ready =
      cycle_ + 1 + static_cast<std::uint64_t>(params_.mispredict_redirect_penalty);
}

}  // namespace bj
