// In-flight instruction record and supporting pipeline types.
#pragma once

#include <cstdint>
#include <optional>

#include "branch/predictor.h"
#include "isa/instruction.h"

namespace bj {

// Context 0 is the leading (or only) thread; context 1 the trailing thread.
enum class ThreadId : std::uint8_t { kLeading = 0, kTrailing = 1 };
inline constexpr int kNumThreads = 2;
inline int tid_index(ThreadId tid) { return static_cast<int>(tid); }

// Detection events — the observable output of the whole redundancy scheme.
enum class DetectionKind : std::uint8_t {
  kStoreAddressMismatch,
  kStoreDataMismatch,
  kStoreOrdinalMismatch,
  kLoadAddressMismatch,
  kBranchOutcomeMismatch,
  kDependenceCheckMismatch,
  kPcChainMismatch,
  kWatchdogTimeout,
};

const char* detection_kind_name(DetectionKind kind);

struct DetectionEvent {
  DetectionKind kind;
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint64_t seq = 0;
};

// Generation-tagged handle into the per-Core InstPool arena. The active
// list, issue queue, LSQs, and completion wheel all hold InstRefs; the
// generation goes stale the moment the slot is released, so a recycled slot
// can never be confused with the instruction an old handle referred to. A
// default-constructed InstRef (gen 0, even) is the "empty slot" sentinel.
struct InstRef {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;  // odd while live; see InstPool

  bool valid() const { return (gen & 1u) != 0; }
  explicit operator bool() const { return valid(); }
  bool operator==(const InstRef&) const = default;
};

// One in-flight dynamic instruction. Lives in the per-Core InstPool slab and
// is referenced simultaneously from the active list, issue queue, LSQ, and
// function-unit pipelines via its `self` handle.
struct DynInst {
  // Arena identity — set by InstPool::allocate(), never by pipeline code.
  InstRef self;

  // Identity / ordering.
  ThreadId tid = ThreadId::kLeading;
  std::uint64_t seq = 0;         // per-context program-order sequence
  std::uint64_t age = 0;         // global dispatch order (issue priority)
  std::uint64_t pc = 0;
  std::uint32_t raw = 0;         // undecoded word
  DecodedInst inst;              // post-decode (fault hooks applied)
  DecodedInst predecode;         // fault-free decode used by fetch steering

  // Pipeline resource usage.
  int frontend_way = -1;
  int backend_way = -1;          // way index within the FU class; -1 pre-issue
  FuClass fu = FuClass::kIntAlu;
  int iq_entry = -1;
  // True while this instruction has an entry in the issue stage's ready
  // pool (wakeup-list select). Dedupes pool insertion: an instruction is
  // either parked on exactly one waiter list or pooled, never both.
  bool in_ready_pool = false;

  // Shuffle-NOPs are trailing micro-ops that occupy ways but have no
  // architectural effect and never commit.
  bool is_shuffle_nop = false;

  // Rename.
  int src1_phys = -1;
  int src2_phys = -1;
  int dst_phys = -1;
  int prev_dst_phys = -1;        // leading/SRT: previous mapping, freed at commit

  // Values (bit patterns).
  std::uint64_t src1_val = 0;
  std::uint64_t src2_val = 0;
  std::uint64_t result = 0;

  // Status.
  bool dispatched = false;
  bool issued = false;
  bool completed = false;
  bool squashed = false;

  // Timing.
  std::uint64_t fetch_cycle = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;

  // Memory.
  std::uint64_t mem_addr = 0;
  bool addr_ready = false;
  std::uint64_t mem_ordinal = 0;   // n-th load or n-th store of the thread
  std::uint64_t load_value = 0;
  bool load_forwarded = false;

  // Control.
  bool pred_taken = false;
  std::uint64_t pred_target = 0;
  BranchPrediction prediction;     // leading only
  bool taken = false;
  std::uint64_t target = 0;
  bool mispredicted = false;
  std::uint64_t ctrl_ordinal = 0;  // n-th control instruction (BOQ pairing)

  // Trailing bookkeeping: packet identity and the leading copy's resources.
  std::uint64_t packet_id = 0;
  std::uint64_t origin_packet_id = 0;
  std::uint64_t lead_seq = 0;  // the leading copy's sequence number
  int slot_in_packet = -1;
  int lead_frontend_way = -1;
  int lead_backend_way = -1;
  // BlackJack double rename inputs (leading physical registers).
  int lead_src1_phys = -1;
  int lead_src2_phys = -1;
  int lead_dst_phys = -1;
  // Leading program order borrowed through the DTQ.
  std::uint64_t virt_al_index = 0;
  std::uint64_t virt_lsq_index = 0;
  bool has_lsq_slot = false;

  bool is_trailing() const { return tid == ThreadId::kTrailing; }
};

}  // namespace bj
