// In-flight instruction record and supporting pipeline types.
//
// DynInst is split hot/cold: the 128-byte, two-cache-line DynInst below
// carries everything the wakeup/select/execute/commit loops read, and a
// parallel DynInstCold sidecar (same InstPool index) holds trace- and
// provenance-only state. The decoded form is not stored inline: `dec`
// points into the per-Core DecodeTable (decode_table.h), which interns one
// immutable DecodedInst per distinct raw word. A fault that mutates the
// decoded payload clones the entry into the instruction's private
// `DynInstCold::faulted_decode` before repointing `dec` — shared table
// entries are never written after creation.
#pragma once

#include <cstdint>

#include "branch/predictor.h"
#include "common/check.h"
#include "isa/instruction.h"

namespace bj {

// Context 0 is the leading (or only) thread; context 1 the trailing thread.
enum class ThreadId : std::uint8_t { kLeading = 0, kTrailing = 1 };
inline constexpr int kNumThreads = 2;
inline int tid_index(ThreadId tid) { return static_cast<int>(tid); }

// Detection events — the observable output of the whole redundancy scheme.
enum class DetectionKind : std::uint8_t {
  kStoreAddressMismatch,
  kStoreDataMismatch,
  kStoreOrdinalMismatch,
  kLoadAddressMismatch,
  kBranchOutcomeMismatch,
  kDependenceCheckMismatch,
  kPcChainMismatch,
  kWatchdogTimeout,
  // ECC layer flagged an uncorrectable storage error (Hsiao double-bit or
  // invalid syndrome) on an array read. Keep as the last enumerator or
  // update the parser loops that use it as the bound.
  kEccUncorrectable,
};

const char* detection_kind_name(DetectionKind kind);

struct DetectionEvent {
  DetectionKind kind;
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint64_t seq = 0;
};

// Generation-tagged handle into the per-Core InstPool arena. The active
// list, issue queue, LSQs, and completion wheel all hold InstRefs; the
// generation goes stale the moment the slot is released, so a recycled slot
// can never be confused with the instruction an old handle referred to. A
// default-constructed InstRef (gen 0, even) is the "empty slot" sentinel.
struct InstRef {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;  // odd while live; see InstPool

  bool valid() const { return (gen & 1u) != 0; }
  explicit operator bool() const { return valid(); }
  bool operator==(const InstRef&) const = default;
};

// Guards for counters stored narrowed in the 128-byte hot slot. Ordinals and
// packet ids are unbounded u64 counters architecturally; 2^32 of either is
// far beyond any configured run, and the check turns a silent wrap into an
// abort.
inline std::uint32_t narrow_u32(std::uint64_t v, const char* what) {
  BJ_CHECK(v <= 0xffffffffull, what);
  return static_cast<std::uint32_t>(v);
}

// One in-flight dynamic instruction — the HOT slot. Exactly two cache
// lines, alignas(64) so an InstPool slot never straddles a third line:
//   line 0: identity, decode pointer, rename state, wakeup flags — what
//           dispatch/wakeup/select touch every cycle.
//   line 1: values and control outcomes — what execute/writeback/commit
//           touch once per instruction.
// Everything read at most once per instruction and only by tracing,
// branch-resolve, or provenance lives in DynInstCold.
//
// Field-width contracts (checked at Core construction or at the assignment
// site): physical registers fit int16 (phys_*_regs <= 32767), way indices
// fit int8 (fetch_width and per-class FU counts <= 127), iq_entry fits
// int16, and mem_ordinal/packet ids fit u32 (narrow_u32 at the fetch
// sites).
struct alignas(64) DynInst {
  // --- line 0: dispatch/wakeup/select ------------------------------------
  // Arena identity — set by InstPool::allocate(), never by pipeline code.
  InstRef self;
  // Effective decoded form. At fetch this is the DecodeTable's predecode of
  // `raw`; dispatch repoints it to the interned decode of the (possibly
  // fault-corrupted) post-decode-hook word; a payload fault repoints it to
  // the private cold-sidecar clone. Never null after fetch.
  const DecodedInst* dec = nullptr;
  std::uint64_t seq = 0;  // per-context program order; for the BlackJack
                          // trailing thread this IS the virtual active-list
                          // index borrowed through the DTQ
  std::uint64_t age = 0;  // global dispatch order (issue priority)
  // Rename (int16, see width contract above).
  std::int16_t src1_phys = -1;
  std::int16_t src2_phys = -1;
  std::int16_t dst_phys = -1;
  std::int16_t prev_dst_phys = -1;  // leading/SRT: freed at commit
  // BlackJack double rename inputs (leading physical registers).
  std::int16_t lead_src1_phys = -1;
  std::int16_t lead_src2_phys = -1;
  std::int16_t lead_dst_phys = -1;
  std::int16_t iq_entry = -1;
  std::uint32_t raw = 0;          // undecoded word
  std::uint32_t mem_ordinal = 0;  // n-th load or n-th store of the thread
                                  // (trailing only; hot: the LVQ lookup in
                                  // ready_to_issue keys on it)
  // Status flags.
  bool dispatched : 1 = false;
  bool issued : 1 = false;
  bool completed : 1 = false;
  bool squashed : 1 = false;
  // True while this instruction has an entry in the issue stage's ready
  // pool (wakeup-list select). Dedupes pool insertion: an instruction is
  // either parked on exactly one waiter list or pooled, never both.
  bool in_ready_pool : 1 = false;
  // Shuffle-NOPs are trailing micro-ops that occupy ways but have no
  // architectural effect and never commit.
  bool is_shuffle_nop : 1 = false;
  bool addr_ready : 1 = false;
  bool has_lsq_slot : 1 = false;
  bool pred_taken : 1 = false;
  bool taken : 1 = false;
  bool mispredicted : 1 = false;
  // Predecode was valid && is_control() — the fetch-steering view, cached
  // as a flag so writeback/commit never re-derive the predecode.
  bool pre_ctrl : 1 = false;
  ThreadId tid = ThreadId::kLeading;
  FuClass fu = FuClass::kIntAlu;
  // Way indices (int8; -1 = not assigned yet).
  std::int8_t frontend_way = -1;
  std::int8_t backend_way = -1;
  std::int8_t lead_frontend_way = -1;
  std::int8_t lead_backend_way = -1;

  // --- line 1: execute/writeback/commit -----------------------------------
  std::uint64_t pc = 0;
  std::uint64_t src1_val = 0;
  std::uint64_t src2_val = 0;
  std::uint64_t result = 0;  // ALU value / store data / loaded value
  std::uint64_t mem_addr = 0;
  std::uint64_t pred_target = 0;
  std::uint64_t target = 0;
  // Trailing packet identity (u32, see width contract above).
  std::uint32_t packet_id = 0;
  std::uint32_t origin_packet_id = 0;  // split siblings share an origin

  const DecodedInst& di() const { return *dec; }
  bool is_trailing() const { return tid == ThreadId::kTrailing; }
};

// The hot slot must stay within two cache lines — the whole point of the
// hot/cold split. Grow DynInstCold instead.
using DynInstHot = DynInst;
static_assert(sizeof(DynInstHot) <= 128,
              "DynInst hot slot exceeds two cache lines; move the new field "
              "into DynInstCold");
static_assert(alignof(DynInstHot) >= 8, "hot slot alignment");

// Cold sidecar, indexed by the same InstPool slot as the hot DynInst.
// NOT reset on allocate (that memset was the top arena cost): every field
// is written before it can be read, guarded by a hot-slot flag or path —
//   * fetch_cycle: written unconditionally in make_inst().
//   * dispatch/issue/complete_cycle: read only under the dispatched /
//     issued / completed flags, which are set at the same site that writes
//     the cycle.
//   * prediction: written at leading fetch of a pre_ctrl instruction; read
//     only at leading-branch resolve, which is gated on pre_ctrl.
//   * lead_seq, virt_lsq_index: written at BlackJack trailing fetch; read
//     only on BlackJack trailing paths.
//   * faulted_decode: written before `dec` is repointed at it.
//   * load_forwarded: provenance-only, written on the forward path.
struct DynInstCold {
  // Timing (pipeline trace / tracer only).
  std::uint64_t fetch_cycle = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;
  // Trailing bookkeeping read at most once per instruction.
  std::uint64_t lead_seq = 0;        // the leading copy's sequence number
  std::uint64_t virt_lsq_index = 0;  // leading LSQ order through the DTQ
  BranchPrediction prediction;       // leading control only
  // Private decoded entry, populated only when a payload fault actually
  // mutates the immediate (the shared DecodeTable entry stays pristine).
  DecodedInst faulted_decode;
  bool load_forwarded = false;
};

}  // namespace bj
