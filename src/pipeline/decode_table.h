// Per-Core shared decode table: one immutable DecodedInst per distinct raw
// word, replacing the two inline DecodedInst copies every DynInst used to
// carry (~48 of its ~350 bytes). Both threads' fetch paths resolve a pc to
// the predecoded entry with one vector load; the dispatch-stage decode-lane
// fault hook interns the corrupted word on the rare path where it actually
// flips bits (decode() is a pure function, so corrupted decodes are as
// shareable as clean ones).
//
// Entries live in a deque so their addresses are stable across growth —
// DynInst::dec pointers stay valid for the lifetime of the Core. Entries
// are never mutated after creation: a payload fault that needs a private
// immediate clones into DynInstCold::faulted_decode instead (types.h).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "isa/instruction.h"
#include "isa/program.h"

namespace bj {

class DecodeTable {
 public:
  explicit DecodeTable(const Program& program) {
    nop_ = add(DecodedInst{.op = Opcode::kNop});
    by_pc_.reserve(program.code.size());
    for (const std::uint32_t word : program.code) {
      by_pc_.push_back(intern(word));
    }
    // Program::fetch_raw() yields an encoded halt for out-of-range pcs
    // (reachable through fault-corrupted jump targets).
    oor_ = intern(encode(DecodedInst{.op = Opcode::kHalt}));
  }

  DecodeTable(const DecodeTable&) = delete;
  DecodeTable& operator=(const DecodeTable&) = delete;

  // Predecode of the word Program::fetch_raw(pc) returns — bit-identical to
  // decode(fetch_raw(pc)), without re-running the decoder per fetch.
  const DecodedInst* predecode(std::uint64_t pc) const {
    return pc < by_pc_.size() ? by_pc_[pc] : oor_;
  }

  // Decoded entry for an arbitrary raw word (fault-corrupted encodings).
  // Program words always hit; a genuinely new word decodes once.
  const DecodedInst* intern(std::uint32_t raw) {
    auto [it, inserted] = by_raw_.try_emplace(raw, nullptr);
    if (inserted) it->second = add(decode(raw));
    return it->second;
  }

  // Dedicated shuffle-NOP entry: constructed directly (not via decode) so it
  // is bit-identical to the DecodedInst{.op = kNop} the trailing fetch used
  // to materialize inline.
  const DecodedInst* nop() const { return nop_; }

  std::size_t distinct_entries() const { return entries_.size(); }

 private:
  const DecodedInst* add(const DecodedInst& d) {
    entries_.push_back(d);
    return &entries_.back();
  }

  std::deque<DecodedInst> entries_;  // stable storage
  std::unordered_map<std::uint32_t, const DecodedInst*> by_raw_;
  std::vector<const DecodedInst*> by_pc_;  // O(1) fetch-path lookup
  const DecodedInst* nop_ = nullptr;
  const DecodedInst* oor_ = nullptr;
};

}  // namespace bj
