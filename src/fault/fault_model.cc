#include "fault/fault_model.h"

#include <sstream>

namespace bj {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kFrontendDecoder: return "frontend-decoder";
    case FaultSite::kBackendResult: return "backend-result";
    case FaultSite::kIqPayload: return "iq-payload";
    case FaultSite::kRegfileEntry: return "regfile-entry";
    case FaultSite::kLvqSlot: return "lvq-slot";
    case FaultSite::kDtqSlot: return "dtq-slot";
  }
  return "?";
}

bool parse_fault_site(std::string_view name, FaultSite* out) {
  for (FaultSite site : {FaultSite::kFrontendDecoder, FaultSite::kBackendResult,
                         FaultSite::kIqPayload, FaultSite::kRegfileEntry,
                         FaultSite::kLvqSlot, FaultSite::kDtqSlot}) {
    if (name == fault_site_name(site)) {
      *out = site;
      return true;
    }
  }
  return false;
}

std::string HardFault::describe() const {
  std::ostringstream os;
  os << fault_site_name(site);
  switch (site) {
    case FaultSite::kFrontendDecoder:
      os << " way " << frontend_way;
      break;
    case FaultSite::kBackendResult:
      os << ' ' << fu_class_name(fu) << " way " << backend_way;
      break;
    case FaultSite::kIqPayload:
      os << " entry " << iq_entry;
      break;
    case FaultSite::kRegfileEntry:
      os << " row " << storage_index;
      break;
    case FaultSite::kLvqSlot:
    case FaultSite::kDtqSlot:
      os << " slot " << storage_index;
      break;
  }
  os << " bit " << bit << " stuck-at-" << (stuck_value ? 1 : 0);
  return os.str();
}

std::uint64_t FaultInjector::force_bit(std::uint64_t value, int bit,
                                       bool stuck) {
  const std::uint64_t mask = 1ull << bit;
  const std::uint64_t forced =
      stuck ? (value | mask) : (value & ~mask);
  if (forced != value) ++activations_;
  return forced;
}

std::uint32_t FaultInjector::on_decode(std::uint32_t raw, int frontend_way) {
  if (!fault_ || fault_->site != FaultSite::kFrontendDecoder) return raw;
  if (fault_->frontend_way != frontend_way) return raw;
  return static_cast<std::uint32_t>(
      force_bit(raw, fault_->bit & 31, fault_->stuck_value));
}

std::string TransientFault::describe() const {
  std::ostringstream os;
  if (site == FaultSite::kBackendResult) {
    os << "transient bit-flip: execution #" << trigger_execution << " bit "
       << bit;
  } else {
    os << "transient bit-flip: " << fault_site_name(site) << " write #"
       << trigger_execution << " bit " << bit;
  }
  return os.str();
}

void FaultInjector::apply_transient(ExecOutcome& out,
                                    const DecodedInst& inst) {
  const std::uint64_t n = executions_++;
  if (n != transient_->trigger_execution || transient_fired_) return;
  transient_fired_ = true;
  const std::uint64_t mask = 1ull << (transient_->bit & 63);
  if (inst.is_branch()) {
    out.taken = !out.taken;
  } else if (inst.is_mem()) {
    out.mem_addr = (out.mem_addr ^ mask) & ~7ull;
  } else {
    out.value ^= mask;
  }
  ++activations_;
}

void FaultInjector::refund_execution() {
  if (!transient_.has_value() || executions_ == 0) return;
  --executions_;
  if (transient_fired_ && executions_ == transient_->trigger_execution) {
    transient_fired_ = false;
    --activations_;
  }
}

void FaultInjector::on_execute(ExecOutcome& out, const DecodedInst& inst,
                               FuClass fu, int backend_way) {
  if (transient_.has_value() && transient_->site == FaultSite::kBackendResult) {
    apply_transient(out, inst);
  }
  if (!fault_ || fault_->site != FaultSite::kBackendResult) return;
  if (fault_->fu != fu || fault_->backend_way != backend_way) return;
  const int bit = fault_->bit & 63;
  if (inst.is_branch()) {
    // Comparator output stuck: the branch direction flips when forced.
    const bool forced = fault_->stuck_value;
    if (out.taken != forced) {
      out.taken = forced;
      ++activations_;
    }
  } else if (inst.is_jump()) {
    out.target = force_bit(out.target, bit, fault_->stuck_value);
  } else if (inst.is_mem()) {
    // Address-path fault: the shared cache data is not a per-way resource,
    // but the per-port address path is.
    out.mem_addr = force_bit(out.mem_addr, bit, fault_->stuck_value) & ~7ull;
  } else {
    out.value = force_bit(out.value, bit, fault_->stuck_value);
  }
}

std::uint64_t FaultInjector::on_storage_read(std::uint64_t word,
                                             FaultSite site, int slot,
                                             int bits) {
  if (fault_ && fault_->site == site && fault_->storage_index == slot &&
      site != FaultSite::kIqPayload) {
    word = force_bit(word, fault_->bit % bits, fault_->stuck_value);
  }
  if (transient_ && transient_->site == site && storage_flip_live_ &&
      storage_flip_slot_ == slot) {
    // A deposited flip corrupts every read until the slot is rewritten.
    word ^= 1ull << (transient_->bit % bits);
    ++activations_;
  }
  return word;
}

void FaultInjector::on_storage_write(FaultSite site, int slot) {
  if (!transient_ || transient_->site != site) return;
  if (storage_flip_live_ && storage_flip_slot_ == slot) {
    // Overwriting the upset cell scrubs the flip.
    storage_flip_live_ = false;
  }
  const std::uint64_t n = storage_writes_++;
  if (n == transient_->trigger_execution && !transient_fired_) {
    transient_fired_ = true;
    storage_flip_live_ = true;
    storage_flip_slot_ = slot;
  }
}

std::int64_t FaultInjector::on_payload(std::int64_t imm, int iq_entry) {
  if (!fault_ || fault_->site != FaultSite::kIqPayload) return imm;
  if (fault_->iq_entry != iq_entry) return imm;
  return static_cast<std::int64_t>(
      force_bit(static_cast<std::uint64_t>(imm), fault_->bit & 15,
                fault_->stuck_value));
}

}  // namespace bj
