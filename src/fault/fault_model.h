// Hard (permanent) fault model. A fault is a stuck-at bit tied to a specific
// piece of pipeline hardware; it corrupts every instruction that exercises
// that hardware, in either thread — exactly the error class BlackJack's
// spatial diversity is designed to expose. Sites:
//
//   kFrontendDecoder — one decoder lane (frontend way): a bit of the 32-bit
//       instruction word is forced while being decoded in that way.
//   kBackendResult   — one function unit (backend way of a type class): a
//       bit of the produced result is forced. For branches the forced bit
//       is the comparator outcome; for memory ways it is a bit of the
//       *address path* (the data returned by the cache is shared input and
//       is not a per-way resource).
//   kIqPayload       — one issue-queue payload-RAM entry: a bit of the
//       instruction's immediate payload is forced while the instruction
//       occupies that entry. The paper notes this RAM must be duplicated
//       per thread to be coverable; the pipeline has a switch for that.
//
// Storage-array sites (stored words, corrupted at the array read port — the
// error class real designs protect with ECC, configurable per array via
// CoreParams::*_ecc):
//
//   kRegfileEntry    — one physical register file row (int rows first, then
//       fp rows at storage_index >= phys_int_regs): a bit of the stored
//       64-bit value is forced on every operand read of that row.
//   kLvqSlot         — one load value queue slot: a bit of the stored load
//       value is forced when the trailing thread consumes that slot.
//   kDtqSlot         — one decoded trace queue slot: a bit of the stored
//       32-bit instruction word is forced when the shuffle stage reads the
//       slot to build the trailing stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "isa/exec.h"
#include "isa/opcode.h"

namespace bj {

enum class FaultSite : std::uint8_t {
  kFrontendDecoder,
  kBackendResult,
  kIqPayload,
  kRegfileEntry,
  kLvqSlot,
  kDtqSlot,
};

const char* fault_site_name(FaultSite site);
// Inverse of fault_site_name. Returns false (leaving *out untouched) for an
// unknown name.
bool parse_fault_site(std::string_view name, FaultSite* out);

// Sites whose faults live on stored words and flow through the
// on_storage_read/on_storage_write hooks (and thus under any configured ECC
// layer). kIqPayload qualifies: hard stuck-ats on it use the historical
// on_payload hook, but transient flips and ECC decode go through the storage
// path like the other arrays.
inline bool fault_site_is_storage(FaultSite site) {
  return site == FaultSite::kIqPayload || site == FaultSite::kRegfileEntry ||
         site == FaultSite::kLvqSlot || site == FaultSite::kDtqSlot;
}

struct HardFault {
  FaultSite site = FaultSite::kBackendResult;
  // kFrontendDecoder: which decoder lane.
  int frontend_way = 0;
  // kBackendResult: which unit.
  FuClass fu = FuClass::kIntAlu;
  int backend_way = 0;
  // kIqPayload: which entry.
  int iq_entry = 0;
  // kRegfileEntry / kLvqSlot / kDtqSlot: which array row.
  int storage_index = 0;
  // The stuck bit.
  int bit = 0;
  bool stuck_value = true;

  std::string describe() const;
};

// A transient (soft) fault: a one-shot bit flip in the result of the Nth
// instruction executed by the core (counting both threads' executions).
// Unlike a hard fault it is not tied to a hardware resource — temporal
// redundancy alone suffices to expose it, which is why SRT detects soft
// errors without spatial diversity (Section 1).
struct TransientFault {
  // kBackendResult (the default): flip on the Nth executed instruction.
  // Storage sites: deposit the flip into the slot written by the Nth write
  // to that array; the flip persists (an upset stored cell) until the slot
  // is overwritten, corrupting every read in between.
  std::uint64_t trigger_execution = 0;
  int bit = 0;
  FaultSite site = FaultSite::kBackendResult;

  std::string describe() const;
};

// Provenance of one fault run: the injection -> first architectural
// corruption -> detection chain, with cycle timestamps. The core stamps the
// activation and detection legs while it runs (Core::set_provenance); the
// campaign fills the corruption leg afterwards by dating the first released
// store that disagrees with the golden trace. All fields are observational —
// attaching a provenance record never changes simulated behaviour.
struct FaultProvenance {
  bool activated = false;
  std::uint64_t first_activation_cycle = 0;
  bool corrupted = false;
  std::uint64_t first_corruption_cycle = 0;
  bool detected = false;
  std::uint64_t detection_cycle = 0;

  // Cycles from the fault first biting to a check firing; 0 when the chain
  // is incomplete (never activated, or never detected).
  std::uint64_t detection_latency() const {
    return activated && detected && detection_cycle >= first_activation_cycle
               ? detection_cycle - first_activation_cycle
               : 0;
  }
};

// Injection hooks called from the pipeline. Activation counts increment only
// when forcing the bit actually changed a value (the fault was exercised
// in a way that matters).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const HardFault& fault) : fault_(fault) {
    storage_armed_ = fault_site_is_storage(fault.site) &&
                     fault.site != FaultSite::kIqPayload;
  }
  explicit FaultInjector(const TransientFault& fault) : transient_(fault) {
    storage_armed_ = fault_site_is_storage(fault.site);
  }

  bool armed() const { return fault_.has_value() || transient_.has_value(); }
  // True when a storage-array site is targeted, i.e. the
  // on_storage_read/on_storage_write hooks can do anything. (A hard
  // kIqPayload stuck-at corrupts through the historical on_payload hook
  // instead, so it does not arm the storage path.)
  bool storage_armed() const { return storage_armed_; }
  const std::optional<HardFault>& fault() const { return fault_; }
  const std::optional<TransientFault>& transient() const { return transient_; }
  std::uint64_t activations() const { return activations_; }

  // Decode-lane hook: returns the (possibly corrupted) instruction word.
  std::uint32_t on_decode(std::uint32_t raw, int frontend_way);

  // Execute hook: corrupts the execution outcome of an instruction that ran
  // on (fu, backend_way).
  void on_execute(ExecOutcome& out, const DecodedInst& inst, FuClass fu,
                  int backend_way);

  // Issue-queue payload hook: returns the (possibly corrupted) immediate for
  // an instruction occupying `iq_entry`.
  std::int64_t on_payload(std::int64_t imm, int iq_entry);

  // Storage-array read hook: returns the (possibly corrupted) stored word a
  // read of `slot` in the array backing `site` delivers. `bits` is the
  // array's word width (the stuck/flipped bit index is reduced mod it).
  // Applies hard stuck-ats tied to (site, slot) and any live transient flip
  // deposited there. Callers gate on storage_armed().
  std::uint64_t on_storage_read(std::uint64_t word, FaultSite site, int slot,
                                int bits);

  // Storage-array write hook: advances the array-write counter that triggers
  // storage transients (depositing the flip into `slot`), and models the
  // overwrite of a slot repairing a previously deposited flip. Callers gate
  // on storage_armed().
  void on_storage_write(FaultSite site, int slot);

  // The pipeline calls this when an execution attempt is discarded (an
  // MSHR-rejected load that will retry): the attempt must not consume a
  // transient trigger, and a flip applied to it evaporated, so re-arm.
  void refund_execution();

 private:
  std::uint64_t force_bit(std::uint64_t value, int bit, bool stuck);
  void apply_transient(ExecOutcome& out, const DecodedInst& inst);

  std::optional<HardFault> fault_;
  std::optional<TransientFault> transient_;
  std::uint64_t executions_ = 0;
  bool transient_fired_ = false;
  std::uint64_t activations_ = 0;
  // Storage-path state: writes to the targeted array (the transient trigger
  // stream), and the live deposited flip, cleared when its slot is
  // overwritten.
  bool storage_armed_ = false;
  std::uint64_t storage_writes_ = 0;
  bool storage_flip_live_ = false;
  int storage_flip_slot_ = 0;
};

}  // namespace bj
