// Hard (permanent) fault model. A fault is a stuck-at bit tied to a specific
// piece of pipeline hardware; it corrupts every instruction that exercises
// that hardware, in either thread — exactly the error class BlackJack's
// spatial diversity is designed to expose. Sites:
//
//   kFrontendDecoder — one decoder lane (frontend way): a bit of the 32-bit
//       instruction word is forced while being decoded in that way.
//   kBackendResult   — one function unit (backend way of a type class): a
//       bit of the produced result is forced. For branches the forced bit
//       is the comparator outcome; for memory ways it is a bit of the
//       *address path* (the data returned by the cache is shared input and
//       is not a per-way resource).
//   kIqPayload       — one issue-queue payload-RAM entry: a bit of the
//       instruction's immediate payload is forced while the instruction
//       occupies that entry. The paper notes this RAM must be duplicated
//       per thread to be coverable; the pipeline has a switch for that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/exec.h"
#include "isa/opcode.h"

namespace bj {

enum class FaultSite : std::uint8_t {
  kFrontendDecoder,
  kBackendResult,
  kIqPayload,
};

const char* fault_site_name(FaultSite site);

struct HardFault {
  FaultSite site = FaultSite::kBackendResult;
  // kFrontendDecoder: which decoder lane.
  int frontend_way = 0;
  // kBackendResult: which unit.
  FuClass fu = FuClass::kIntAlu;
  int backend_way = 0;
  // kIqPayload: which entry.
  int iq_entry = 0;
  // The stuck bit.
  int bit = 0;
  bool stuck_value = true;

  std::string describe() const;
};

// A transient (soft) fault: a one-shot bit flip in the result of the Nth
// instruction executed by the core (counting both threads' executions).
// Unlike a hard fault it is not tied to a hardware resource — temporal
// redundancy alone suffices to expose it, which is why SRT detects soft
// errors without spatial diversity (Section 1).
struct TransientFault {
  std::uint64_t trigger_execution = 0;  // flip on the Nth executed instruction
  int bit = 0;

  std::string describe() const;
};

// Provenance of one fault run: the injection -> first architectural
// corruption -> detection chain, with cycle timestamps. The core stamps the
// activation and detection legs while it runs (Core::set_provenance); the
// campaign fills the corruption leg afterwards by dating the first released
// store that disagrees with the golden trace. All fields are observational —
// attaching a provenance record never changes simulated behaviour.
struct FaultProvenance {
  bool activated = false;
  std::uint64_t first_activation_cycle = 0;
  bool corrupted = false;
  std::uint64_t first_corruption_cycle = 0;
  bool detected = false;
  std::uint64_t detection_cycle = 0;

  // Cycles from the fault first biting to a check firing; 0 when the chain
  // is incomplete (never activated, or never detected).
  std::uint64_t detection_latency() const {
    return activated && detected && detection_cycle >= first_activation_cycle
               ? detection_cycle - first_activation_cycle
               : 0;
  }
};

// Injection hooks called from the pipeline. Activation counts increment only
// when forcing the bit actually changed a value (the fault was exercised
// in a way that matters).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const HardFault& fault) : fault_(fault) {}
  explicit FaultInjector(const TransientFault& fault) : transient_(fault) {}

  bool armed() const { return fault_.has_value() || transient_.has_value(); }
  const std::optional<HardFault>& fault() const { return fault_; }
  const std::optional<TransientFault>& transient() const { return transient_; }
  std::uint64_t activations() const { return activations_; }

  // Decode-lane hook: returns the (possibly corrupted) instruction word.
  std::uint32_t on_decode(std::uint32_t raw, int frontend_way);

  // Execute hook: corrupts the execution outcome of an instruction that ran
  // on (fu, backend_way).
  void on_execute(ExecOutcome& out, const DecodedInst& inst, FuClass fu,
                  int backend_way);

  // Issue-queue payload hook: returns the (possibly corrupted) immediate for
  // an instruction occupying `iq_entry`.
  std::int64_t on_payload(std::int64_t imm, int iq_entry);

  // The pipeline calls this when an execution attempt is discarded (an
  // MSHR-rejected load that will retry): the attempt must not consume a
  // transient trigger, and a flip applied to it evaporated, so re-arm.
  void refund_execution();

 private:
  std::uint64_t force_bit(std::uint64_t value, int bit, bool stuck);
  void apply_transient(ExecOutcome& out, const DecodedInst& inst);

  std::optional<HardFault> fault_;
  std::optional<TransientFault> transient_;
  std::uint64_t executions_ = 0;
  bool transient_fired_ = false;
  std::uint64_t activations_ = 0;
};

}  // namespace bj
