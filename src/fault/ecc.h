// ECC layer for the storage arrays (IQ payload RAM, physical register file,
// LVQ, DTQ). Each array can be configured with one of two real codecs over
// its stored 64-bit data word (narrower arrays use a shortened code — the
// unused high data columns are constant zero on both sides and drop out of
// every syndrome):
//
//   kHamming — Hamming(71,64) SEC: 7 check bits, corrects any single-bit
//       error. Double-bit errors alias onto single-bit syndromes and
//       miscorrect — the classic SEC weakness.
//   kHsiao   — Hsiao(72,64) SEC-DED: 8 check bits, odd-weight-column parity
//       check matrix (56 weight-3 + 8 weight-5 data columns). Corrects any
//       single-bit error and *flags* every double-bit error (even-weight
//       syndrome matches no column), instead of miscorrecting it.
//
// The simulator's arrays always hold clean words (fault injection corrupts
// at the read port), so the check bits an array "stored" are recomputed from
// the clean word at the read point — equivalent to fault-free check-bit
// storage, which is the standard single-fault assumption for data-bit fault
// spaces.
#pragma once

#include <cstdint>
#include <string_view>

namespace bj {

enum class EccCodec : std::uint8_t {
  kNone,     // unprotected array (the historical fault model)
  kHamming,  // SEC: corrects 1-bit errors, blind to 2-bit errors
  kHsiao,    // SEC-DED: corrects 1-bit errors, detects all 2-bit errors
};

const char* ecc_codec_name(EccCodec codec);
// Inverse of ecc_codec_name ("none" | "hamming" | "hsiao"). Returns false
// (leaving *out untouched) for anything else.
bool parse_ecc_codec(std::string_view name, EccCodec* out);

// Check bits the codec stores per 64-bit data word (0 / 7 / 8) — the area
// denominator for ECC-vs-redundant-threads comparisons.
int ecc_check_bits(EccCodec codec);

struct EccDecode {
  std::uint64_t data = 0;
  bool corrected = false;      // a single-bit error was repaired
  bool uncorrectable = false;  // error detected but not repairable (Hsiao
                               // double-bit); `data` passes through raw
};

// Check bits for a clean data word. kNone returns 0.
std::uint32_t ecc_encode(EccCodec codec, std::uint64_t data);

// Decodes a possibly corrupted data word against stored check bits. kNone
// passes the word through untouched.
EccDecode ecc_decode(EccCodec codec, std::uint64_t data, std::uint32_t check);

// Models one read of an ECC-protected array cell: `stored` is the word the
// read port delivered (possibly fault-corrupted), `clean` the word the cell
// was written with (whose check bits the array holds). Bumps *corrected /
// *uncorrectable as the decoder classifies the error and returns the word
// the pipeline consumes.
std::uint64_t ecc_protected_read(EccCodec codec, std::uint64_t stored,
                                 std::uint64_t clean,
                                 std::uint64_t* corrected,
                                 std::uint64_t* uncorrectable);

}  // namespace bj
