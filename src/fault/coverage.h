// Hard-error instruction-coverage accounting (Section 5 methodology).
//
// Coverage is the fraction of leading/trailing instruction pairs that
// executed on spatially diverse hardware, weighted by the core area the pair
// exercised. Equal areas are assumed to have equal hard-error probability.
// Following the paper, the issue queue is granted full coverage for both SRT
// and BlackJack (SRT gets the benefit of the doubt; BlackJack covers it via
// the dependence check); of the remaining core area, 34% is frontend and 66%
// backend, so a pair contributes
//     0.34 * [frontend ways differ] + 0.66 * [backend ways differ].
#pragma once

#include <cstdint>

namespace bj {

struct AreaModel {
  double frontend_fraction = 0.34;
  double backend_fraction = 0.66;
};

class CoverageAccounting {
 public:
  explicit CoverageAccounting(const AreaModel& area = {}) : area_(area) {}

  void add_pair(bool frontend_diverse, bool backend_diverse) {
    ++pairs_;
    if (frontend_diverse) ++frontend_diverse_;
    if (backend_diverse) ++backend_diverse_;
  }

  void reset() { pairs_ = frontend_diverse_ = backend_diverse_ = 0; }

  std::uint64_t pairs() const { return pairs_; }

  double frontend_coverage() const {
    return pairs_ ? static_cast<double>(frontend_diverse_) /
                        static_cast<double>(pairs_)
                  : 0.0;
  }
  double backend_coverage() const {
    return pairs_ ? static_cast<double>(backend_diverse_) /
                        static_cast<double>(pairs_)
                  : 0.0;
  }
  // Whole-pipeline coverage (Figure 4a).
  double total_coverage() const {
    return area_.frontend_fraction * frontend_coverage() +
           area_.backend_fraction * backend_coverage();
  }

  const AreaModel& area() const { return area_; }

 private:
  AreaModel area_;
  std::uint64_t pairs_ = 0;
  std::uint64_t frontend_diverse_ = 0;
  std::uint64_t backend_diverse_ = 0;
};

}  // namespace bj
