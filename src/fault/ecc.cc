#include "fault/ecc.h"

#include <array>

#include "common/check.h"

namespace bj {
namespace {

int popcount8(std::uint32_t v) {
  int n = 0;
  for (; v; v &= v - 1) ++n;
  return n;
}

// --- Hamming(71,64) SEC ----------------------------------------------------
// Code positions 1..71; check bits live at the seven power-of-two positions,
// data bits fill the 64 remaining positions in increasing order. A data bit's
// syndrome contribution is simply its position index, so encode is an XOR of
// position indices over set bits and decode is a table lookup on the
// syndrome.
struct HammingTables {
  std::array<std::uint32_t, 64> position;  // data bit -> code position
  std::array<int, 72> data_at;             // code position -> data bit or -1
  HammingTables() {
    data_at.fill(-1);
    int i = 0;
    for (std::uint32_t pos = 1; pos <= 71; ++pos) {
      if ((pos & (pos - 1)) == 0) continue;  // power of two: check bit
      position[i] = pos;
      data_at[pos] = i;
      ++i;
    }
    BJ_CHECK(i == 64, "hamming table must cover 64 data positions");
  }
};

const HammingTables& hamming_tables() {
  static const HammingTables tables;
  return tables;
}

std::uint32_t hamming_encode(std::uint64_t data) {
  const HammingTables& t = hamming_tables();
  std::uint32_t check = 0;
  for (std::uint64_t rest = data; rest;) {
    const int bit = __builtin_ctzll(rest);
    rest &= rest - 1;
    check ^= t.position[bit];
  }
  return check;
}

EccDecode hamming_decode(std::uint64_t data, std::uint32_t check) {
  const HammingTables& t = hamming_tables();
  EccDecode out;
  out.data = data;
  const std::uint32_t syndrome = (hamming_encode(data) ^ check) & 0x7fu;
  if (syndrome == 0) return out;
  if ((syndrome & (syndrome - 1)) == 0) {
    // Error in a stored check bit; the data word itself is intact.
    out.corrected = true;
    return out;
  }
  if (syndrome <= 71 && t.data_at[syndrome] >= 0) {
    out.data = data ^ (1ull << t.data_at[syndrome]);
    out.corrected = true;
    return out;
  }
  // Syndrome points outside the code (only multi-bit errors land here —
  // most double errors alias to a valid position and miscorrect instead;
  // that blindness is why Hsiao exists).
  out.uncorrectable = true;
  return out;
}

// --- Hsiao(72,64) SEC-DED --------------------------------------------------
// Odd-weight-column code: the 64 data columns are the 56 weight-3 bytes in
// increasing order followed by the first 8 weight-5 bytes; check columns are
// the unit vectors. Any two distinct odd columns XOR to a nonzero even-weight
// syndrome, which matches no column — so every double-bit error is flagged
// uncorrectable rather than miscorrected.
struct HsiaoTables {
  std::array<std::uint32_t, 64> column;    // data bit -> 8-bit column
  std::array<int, 256> data_at;            // syndrome -> data bit or -1
  HsiaoTables() {
    data_at.fill(-1);
    int i = 0;
    for (std::uint32_t v = 0; v < 256 && i < 64; ++v) {
      if (popcount8(v) != 3) continue;
      column[i] = v;
      data_at[v] = i;
      ++i;
    }
    BJ_CHECK(i == 56, "hsiao table expects 56 weight-3 columns");
    for (std::uint32_t v = 0; v < 256 && i < 64; ++v) {
      if (popcount8(v) != 5) continue;
      column[i] = v;
      data_at[v] = i;
      ++i;
    }
    BJ_CHECK(i == 64, "hsiao table must cover 64 data columns");
  }
};

const HsiaoTables& hsiao_tables() {
  static const HsiaoTables tables;
  return tables;
}

std::uint32_t hsiao_encode(std::uint64_t data) {
  const HsiaoTables& t = hsiao_tables();
  std::uint32_t check = 0;
  for (std::uint64_t rest = data; rest;) {
    const int bit = __builtin_ctzll(rest);
    rest &= rest - 1;
    check ^= t.column[bit];
  }
  return check;
}

EccDecode hsiao_decode(std::uint64_t data, std::uint32_t check) {
  const HsiaoTables& t = hsiao_tables();
  EccDecode out;
  out.data = data;
  const std::uint32_t syndrome = (hsiao_encode(data) ^ check) & 0xffu;
  if (syndrome == 0) return out;
  if (popcount8(syndrome) == 1) {
    // Unit syndrome: a stored check bit flipped; data is intact.
    out.corrected = true;
    return out;
  }
  if (t.data_at[syndrome] >= 0) {
    out.data = data ^ (1ull << t.data_at[syndrome]);
    out.corrected = true;
    return out;
  }
  out.uncorrectable = true;
  return out;
}

}  // namespace

const char* ecc_codec_name(EccCodec codec) {
  switch (codec) {
    case EccCodec::kNone: return "none";
    case EccCodec::kHamming: return "hamming";
    case EccCodec::kHsiao: return "hsiao";
  }
  return "none";
}

bool parse_ecc_codec(std::string_view name, EccCodec* out) {
  if (name == "none") { *out = EccCodec::kNone; return true; }
  if (name == "hamming") { *out = EccCodec::kHamming; return true; }
  if (name == "hsiao") { *out = EccCodec::kHsiao; return true; }
  return false;
}

int ecc_check_bits(EccCodec codec) {
  switch (codec) {
    case EccCodec::kNone: return 0;
    case EccCodec::kHamming: return 7;
    case EccCodec::kHsiao: return 8;
  }
  return 0;
}

std::uint32_t ecc_encode(EccCodec codec, std::uint64_t data) {
  switch (codec) {
    case EccCodec::kNone: return 0;
    case EccCodec::kHamming: return hamming_encode(data);
    case EccCodec::kHsiao: return hsiao_encode(data);
  }
  return 0;
}

EccDecode ecc_decode(EccCodec codec, std::uint64_t data, std::uint32_t check) {
  switch (codec) {
    case EccCodec::kNone: {
      EccDecode out;
      out.data = data;
      return out;
    }
    case EccCodec::kHamming: return hamming_decode(data, check);
    case EccCodec::kHsiao: return hsiao_decode(data, check);
  }
  EccDecode out;
  out.data = data;
  return out;
}

std::uint64_t ecc_protected_read(EccCodec codec, std::uint64_t stored,
                                 std::uint64_t clean,
                                 std::uint64_t* corrected,
                                 std::uint64_t* uncorrectable) {
  if (codec == EccCodec::kNone || stored == clean) return stored;
  const EccDecode decode = ecc_decode(codec, stored, ecc_encode(codec, clean));
  if (decode.corrected) ++*corrected;
  if (decode.uncorrectable) ++*uncorrectable;
  return decode.data;
}

}  // namespace bj
