#include "mem/cache.h"

#include <algorithm>
#include <cassert>

namespace bj {

Cache::Cache(const CacheParams& params)
    : params_(params),
      sets_(params.size_bytes /
            (static_cast<std::uint64_t>(params.line_bytes) *
             static_cast<std::uint64_t>(params.assoc))),
      lines_(sets_ * static_cast<std::uint64_t>(params.assoc)) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 && "sets must be power of 2");
}

std::uint64_t Cache::set_of(std::uint64_t addr) const {
  return (addr / static_cast<std::uint64_t>(params_.line_bytes)) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return addr / (static_cast<std::uint64_t>(params_.line_bytes) * sets_);
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * static_cast<std::uint64_t>(params_.assoc)];
  Line* victim = base;
  for (int w = 0; w < params_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++lru_clock_;
  return false;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * static_cast<std::uint64_t>(params_.assoc)];
  for (int w = 0; w < params_.assoc; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  lru_clock_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const HierarchyParams& params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2) {}

int MemoryHierarchy::access_latency(Cache& l1, std::uint64_t addr) {
  if (l1.access(addr)) return l1.params().hit_latency;
  if (l2_.access(addr)) return l1.params().hit_latency + l2_.params().hit_latency;
  return l1.params().hit_latency + l2_.params().hit_latency +
         params_.memory_latency;
}

bool MemoryHierarchy::mshr_available(std::uint64_t cycle) {
  std::erase_if(mshr_done_, [cycle](std::uint64_t done) { return done <= cycle; });
  return static_cast<int>(mshr_done_.size()) < params_.mshrs;
}

void MemoryHierarchy::mshr_allocate(std::uint64_t done_cycle) {
  mshr_done_.push_back(done_cycle);
}

std::uint64_t MemoryHierarchy::load(std::uint64_t addr, std::uint64_t cycle) {
  // Check MSHR availability for the would-be miss before touching tags so a
  // rejected access does not perturb the LRU state.
  const bool is_l1_hit = l1d_.probe(addr);
  if (!is_l1_hit && !mshr_available(cycle)) return 0;
  const int latency = access_latency(l1d_, addr);
  const std::uint64_t done = cycle + static_cast<std::uint64_t>(latency);
  if (!is_l1_hit) mshr_allocate(done);
  return done;
}

void MemoryHierarchy::store(std::uint64_t addr) {
  (void)access_latency(l1d_, addr);  // write-allocate; latency not charged
}

std::uint64_t MemoryHierarchy::fetch(std::uint64_t pc_addr,
                                     std::uint64_t cycle) {
  if (l1i_.probe(pc_addr)) {
    l1i_.access(pc_addr);
    return cycle;  // hit latency is part of the pipelined fetch stage
  }
  if (!mshr_available(cycle)) return cycle + 1;  // retry shortly
  const int latency = access_latency(l1i_, pc_addr);
  const std::uint64_t done = cycle + static_cast<std::uint64_t>(latency);
  mshr_allocate(done);
  return done;
}

}  // namespace bj
