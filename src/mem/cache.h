// Timing model of one set-associative cache level. The cache stores tags
// only; data correctness lives in SparseMemory (loads are value-checked at a
// higher level). LRU replacement, write-allocate, write-back (eviction
// traffic is not charged — the paper's SimpleScalar configuration likewise
// dominates on read-miss latency).
#pragma once

#include <cstdint>
#include <vector>

namespace bj {

struct CacheParams {
  std::uint64_t size_bytes = 64 * 1024;
  int assoc = 4;
  int line_bytes = 64;
  int hit_latency = 2;
  const char* name = "cache";
};

class Cache {
 public:
  explicit Cache(const CacheParams& params);

  // Looks up `addr`; on miss, fills the line (evicting LRU). Returns true on
  // hit. This is the timing-model access used by the pipeline.
  bool access(std::uint64_t addr);

  // Lookup without side effects.
  bool probe(std::uint64_t addr) const;

  // Invalidate everything (used between benchmark phases in tests).
  void flush();

  const CacheParams& params() const { return params_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t sets() const { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::uint64_t set_of(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  CacheParams params_;
  std::uint64_t sets_;
  std::vector<Line> lines_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Table-1 hierarchy: split 2-cycle L1s (2 D-ports), unified L2, 350-cycle
// memory, with a bounded number of outstanding misses (MSHRs).
struct HierarchyParams {
  CacheParams l1i{64 * 1024, 4, 64, 2, "l1i"};
  CacheParams l1d{64 * 1024, 4, 64, 2, "l1d"};
  CacheParams l2{2 * 1024 * 1024, 8, 64, 12, "l2"};
  int memory_latency = 350;
  int mshrs = 8;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyParams& params = {});

  // Data-side load issued at `cycle`. Returns the cycle at which the value is
  // available, or 0 if no MSHR is free (the caller retries next cycle).
  std::uint64_t load(std::uint64_t addr, std::uint64_t cycle);

  // Data-side store performed at commit. Fills the line (write-allocate);
  // commit-side stores are not charged latency in this model.
  void store(std::uint64_t addr);

  // Instruction fetch of the block containing `pc_addr` at `cycle`.
  // Returns the cycle at which the block is available (== cycle for a hit
  // pipeline-wise; fetch charges no extra hit latency since the L1I hit is
  // part of the fetch stage).
  std::uint64_t fetch(std::uint64_t pc_addr, std::uint64_t cycle);

  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  int line_bytes() const { return params_.l1d.line_bytes; }

 private:
  // Returns latency of a data/instruction access through the hierarchy.
  int access_latency(Cache& l1, std::uint64_t addr);
  bool mshr_available(std::uint64_t cycle);
  void mshr_allocate(std::uint64_t done_cycle);

  HierarchyParams params_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  std::vector<std::uint64_t> mshr_done_;  // completion cycles of outstanding misses
};

}  // namespace bj
