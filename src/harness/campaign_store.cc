#include "harness/campaign_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

#include "blackjack/shuffle.h"
#include "common/check.h"
#include "harness/golden_trace.h"

namespace bj {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Checked binary container. Every binary artifact in the store (golden
// trace, shuffle table) is wrapped in one: a fixed header binding the bytes
// to this store format, the owning campaign's digest, and a checksum of the
// payload. Validation failures quarantine the file instead of feeding
// half-written or foreign bytes into a warm start.

constexpr std::uint64_t kStoreMagic = 0x3145524F54534A42ull;  // "BJSTORE1"
constexpr std::uint32_t kStoreSchema = 1;

std::uint64_t fnv64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out->push_back(static_cast<char>(v >> (8 * b)));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out->push_back(static_cast<char>(v >> (8 * b)));
}

struct ByteReader {
  std::string_view bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() { return read(8); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read(4)); }
  std::uint8_t u8() { return static_cast<std::uint8_t>(read(1)); }

  std::uint64_t read(std::size_t n) {
    if (!ok || bytes.size() - pos < n) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < n; ++b) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + b]))
           << (8 * b);
    }
    pos += n;
    return v;
  }
};

std::string container_wrap(std::uint64_t digest, std::string_view payload) {
  std::string out;
  out.reserve(36 + payload.size());
  put_u64(&out, kStoreMagic);
  put_u32(&out, kStoreSchema);
  put_u64(&out, digest);
  put_u64(&out, payload.size());
  put_u64(&out, fnv64(payload));
  out.append(payload);
  return out;
}

bool container_unwrap(std::string_view bytes, std::uint64_t digest,
                      std::string_view* payload) {
  ByteReader in{bytes};
  const std::uint64_t magic = in.u64();
  const std::uint32_t schema = in.u32();
  const std::uint64_t owner = in.u64();
  const std::uint64_t size = in.u64();
  const std::uint64_t sum = in.u64();
  if (!in.ok || magic != kStoreMagic || schema != kStoreSchema ||
      owner != digest || bytes.size() - in.pos != size) {
    return false;
  }
  *payload = bytes.substr(in.pos);
  return fnv64(*payload) == sum;
}

// ---------------------------------------------------------------------------
// File I/O. All writes go through temp + rename so a kill at any instant
// leaves either the previous file or the new one, never a torn hybrid.

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void atomic_write(const fs::path& path, std::string_view bytes) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    BJ_CHECK(static_cast<bool>(out), "campaign store: cannot open temp file");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    BJ_CHECK(static_cast<bool>(out), "campaign store: short write");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  BJ_CHECK(!ec, "campaign store: atomic rename failed");
}

// Moves a failed-validation artifact aside (never deletes: the bytes are
// evidence) and reports whether anything was actually quarantined.
bool quarantine(const fs::path& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  const fs::path target = path.string() + ".corrupt";
  fs::remove(target, ec);
  fs::rename(path, target, ec);
  return !ec;
}

// ---------------------------------------------------------------------------
// Canonical JSONL plumbing.

std::string header_line(const Program& program, const CampaignConfig& config) {
  std::ostringstream os;
  write_campaign_jsonl_header(os, program, config);
  return os.str();  // includes the trailing newline
}

std::string footer_line(std::size_t runs) {
  std::ostringstream os;
  os << "{\"record\":\"footer\",\"complete\":true,\"runs\":" << runs << "}\n";
  return os.str();
}

bool is_footer(const std::string& line) {
  return line.find("\"record\":\"footer\"") != std::string::npos;
}

// Flat-JSON field extraction. The records are machine-written single-line
// objects with no nested braces or escaped strings, so a key search is
// exact; parse_canonical_record's re-serialization check backstops any case
// this simplicity would misread.
bool find_uint_field(const std::string& line, const std::string& key,
                     std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  std::uint64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

bool find_string_field(const std::string& line, const std::string& key,
                       std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool find_bool_field(const std::string& line, const std::string& key,
                     bool* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = line.compare(at + needle.size(), 4, "true") == 0;
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));  // truncated tail, no newline
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string digest_hex(std::uint64_t digest) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << digest;
  return os.str();
}

// ---------------------------------------------------------------------------
// Golden-trace snapshot payload: steps, halted flag, then the store pairs.

std::string golden_payload(const GoldenTraceSnapshot& snapshot) {
  std::string out;
  out.reserve(17 + snapshot.stores.size() * 16 + 8);
  put_u64(&out, snapshot.steps);
  out.push_back(snapshot.halted ? 1 : 0);
  put_u64(&out, snapshot.stores.size());
  for (const auto& [addr, data] : snapshot.stores) {
    put_u64(&out, addr);
    put_u64(&out, data);
  }
  return out;
}

bool parse_golden_payload(std::string_view payload,
                          GoldenTraceSnapshot* snapshot) {
  ByteReader in{payload};
  snapshot->steps = in.u64();
  snapshot->halted = in.u8() != 0;
  const std::uint64_t count = in.u64();
  if (!in.ok || count > payload.size() / 16 + 1) return false;
  snapshot->stores.clear();
  snapshot->stores.reserve(count);
  for (std::uint64_t i = 0; i < count && in.ok; ++i) {
    const std::uint64_t addr = in.u64();
    const std::uint64_t data = in.u64();
    snapshot->stores.emplace_back(addr, data);
  }
  return in.ok && in.pos == payload.size();
}

// Loads one checked artifact; on validation failure the file is quarantined
// and `*quarantined` bumped. Returns the payload when (and only when) the
// container validated.
bool load_artifact(const fs::path& path, std::uint64_t digest,
                   std::string* payload_bytes, int* quarantined) {
  std::string bytes;
  if (!read_file(path, &bytes)) return false;
  std::string_view payload;
  if (!container_unwrap(bytes, digest, &payload)) {
    if (quarantine(path)) ++*quarantined;
    return false;
  }
  *payload_bytes = std::string(payload);
  return true;
}

}  // namespace

std::string campaign_store_dir(const std::string& root,
                               const CampaignConfig& config,
                               const Program& program,
                               const ShardSpec& shard) {
  std::string name = digest_hex(campaign_config_digest(config, program));
  if (shard.active()) {
    name += "-s" + std::to_string(shard.index) + "of" +
            std::to_string(shard.count);
  }
  return (fs::path(root) / name).string();
}

bool validate_campaign_jsonl_header(const std::string& line,
                                    std::string* error) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r')) {
    trimmed.pop_back();
  }
  std::string record;
  if (!find_string_field(trimmed, "record", &record) || record != "header") {
    if (error != nullptr) *error = "first line is not a campaign header";
    return false;
  }
  std::uint64_t schema = 0;
  if (!find_uint_field(trimmed, "schema_version", &schema)) {
    if (error != nullptr) *error = "campaign header has no schema_version";
    return false;
  }
  if (schema != static_cast<std::uint64_t>(kMetricsSchemaVersion)) {
    if (error != nullptr) {
      *error = "campaign header schema_version " + std::to_string(schema) +
               " does not match this build's " +
               std::to_string(kMetricsSchemaVersion);
    }
    return false;
  }
  return true;
}

bool parse_canonical_record(const std::string& line,
                            const CampaignConfig& config,
                            const std::vector<HardFault>& labels,
                            const std::string& workload, std::size_t* index,
                            FaultRun* run) {
  std::uint64_t idx = 0;
  if (!find_uint_field(line, "index", &idx) || idx >= labels.size()) {
    return false;
  }
  FaultRun parsed;
  parsed.fault = labels[idx];

  std::string outcome;
  if (!find_string_field(line, "outcome", &outcome)) return false;
  if (!parse_fault_outcome(outcome, &parsed.outcome)) return false;

  if (!find_uint_field(line, "activations", &parsed.activations)) return false;
  if (!find_uint_field(line, "corrupt_stores",
                       &parsed.corrupt_stores_released)) {
    return false;
  }
  find_bool_field(line, "oracle_violated", &parsed.oracle_violated);
  // ECC counters ride along only when nonzero (field presence keeps default
  // campaigns byte-identical to the pre-ECC format).
  find_uint_field(line, "ecc_corrected", &parsed.ecc_corrected);
  find_uint_field(line, "ecc_detected", &parsed.ecc_detected);
  // Field presence carries the provenance booleans: an absent field means
  // the event never happened, a present field with value 0 means cycle 0.
  parsed.activated = find_uint_field(line, "first_activation_cycle",
                                     &parsed.first_activation_cycle);
  parsed.corrupted = find_uint_field(line, "first_corruption_cycle",
                                     &parsed.first_corruption_cycle);
  // Canonical producers always attach provenance, so the booleans agree
  // with the counters; a record where they disagree was tampered with (the
  // re-serialization check below cannot see this because both the counter
  // and the derived field presence round-trip individually).
  if (parsed.activated != (parsed.activations > 0)) return false;
  if (parsed.corrupted != (parsed.corrupt_stores_released > 0)) return false;
  std::string kind;
  if (find_string_field(line, "detection_kind", &kind)) {
    bool kind_known = false;
    for (int k = 0; k <= static_cast<int>(DetectionKind::kEccUncorrectable);
         ++k) {
      if (kind == detection_kind_name(static_cast<DetectionKind>(k))) {
        parsed.detection_kind = static_cast<DetectionKind>(k);
        kind_known = true;
        break;
      }
    }
    if (!kind_known) return false;
    find_uint_field(line, "detection_cycle", &parsed.detection_cycle);
    find_uint_field(line, "detection_latency", &parsed.detection_latency);
  }

  // Self-verification: a record the reconstructed run does not re-serialize
  // to byte-for-byte was corrupted, hand-edited, or written by a different
  // configuration — reject it rather than adopt a wrong result.
  std::string round = canonical_jsonl_record(workload, config, idx, parsed);
  if (!round.empty() && round.back() == '\n') round.pop_back();
  if (round != line) return false;

  *index = idx;
  *run = parsed;
  return true;
}

CampaignServiceReport run_campaign_service(
    const Program& program, const CampaignConfig& config,
    const CampaignServiceOptions& options) {
  CampaignServiceReport report;

  ParallelCampaignOptions engine;
  engine.jobs = options.jobs;
  engine.shard = options.shard;
  engine.jsonl = options.jsonl;
  engine.progress = options.progress;
  engine.trace = options.trace;

  if (options.store_root.empty()) {
    report.result =
        run_campaign_parallel(program, config, engine, &report.stats);
    if (options.autopsy) {
      AutopsyOptions autopsy_options;
      autopsy_options.select = options.autopsy_select;
      autopsy_options.jobs = options.jobs;
      report.autopsy =
          run_campaign_autopsy(program, config, report.result, autopsy_options);
      report.autopsy_records = report.autopsy.records.size();
    }
    return report;
  }

  const std::vector<HardFault> labels = campaign_fault_labels(config);
  const std::size_t total = labels.size();
  const std::uint64_t digest = campaign_config_digest(config, program);
  const fs::path dir =
      campaign_store_dir(options.store_root, config, program, options.shard);
  report.store_dir = dir.string();
  fs::create_directories(dir);

  const fs::path runs_path = dir / "runs.jsonl";
  const fs::path golden_path = dir / "golden.bin";
  const fs::path shuffle_path = dir / "shuffle.bin";
  const std::string header = header_line(program, config);

  // --- Adopt checkpointed runs. The canonical file is a header, records in
  // index order, and (when the campaign finished) one footer; a checkpoint
  // is the same file without the footer. Adoption stops at the first line
  // that fails the self-verifying parse — the valid prefix of a truncated
  // checkpoint is still good data — and a file whose *header* does not
  // match (different configuration, or corruption) is quarantined whole.
  std::vector<bool> mask(total, false);
  std::vector<FaultRun> adopted(total);
  std::map<std::size_t, std::string> canonical;  // owned index -> record line
  std::string previous;
  if (read_file(runs_path, &previous)) {
    const std::vector<std::string> lines = split_lines(previous);
    if (lines.empty() || lines[0] + "\n" != header) {
      if (quarantine(runs_path)) ++report.quarantined;
    } else {
      for (std::size_t li = 1; li < lines.size(); ++li) {
        if (is_footer(lines[li])) break;
        std::size_t idx = 0;
        FaultRun run;
        if (!parse_canonical_record(lines[li], config, labels, program.name,
                                    &idx, &run) ||
            !options.shard.owns(idx) || mask[idx]) {
          break;
        }
        mask[idx] = true;
        adopted[idx] = run;
        canonical[idx] = lines[li] + "\n";
      }
    }
  }

  std::size_t owned = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (options.shard.owns(i)) ++owned;
  }
  report.complete_on_entry = canonical.size() == owned;

  // --- Warm-start the golden trace cache and (BlackJack only) the shuffle
  // table from the store's checked artifacts.
  GoldenTraceCache cache(program);
  std::string payload;
  if (load_artifact(golden_path, digest, &payload, &report.quarantined)) {
    GoldenTraceSnapshot snapshot;
    if (parse_golden_payload(payload, &snapshot)) {
      cache.preload(std::move(snapshot));
    } else if (quarantine(golden_path)) {
      ++report.quarantined;
    }
  }
  SharedShuffleTable shuffle;
  if (config.mode == Mode::kBlackjack &&
      load_artifact(shuffle_path, digest, &payload, &report.quarantined)) {
    ShuffleCache::Map map;
    if (deserialize_shuffle_table(payload, &map)) {
      shuffle.merge(map);
    } else if (quarantine(shuffle_path)) {
      ++report.quarantined;
    }
  }

  engine.resume_mask = &mask;
  engine.resume_runs = &adopted;
  engine.golden = &cache;
  if (config.mode == Mode::kBlackjack) engine.shuffle = &shuffle;

  const auto write_runs = [&](bool complete) {
    std::string out = header;
    for (const auto& [i, line] : canonical) out += line;
    if (complete) out += footer_line(canonical.size());
    atomic_write(runs_path, out);
  };
  const auto write_artifacts = [&] {
    atomic_write(golden_path,
                 container_wrap(digest, golden_payload(cache.snapshot_state())));
    if (config.mode == Mode::kBlackjack) {
      atomic_write(shuffle_path,
                   container_wrap(digest,
                                  serialize_shuffle_table(*shuffle.snapshot())));
    }
  };

  // --- Checkpoint hook: runs the engine flushes become canonical records
  // immediately; every `checkpoint_every` of them the whole file (and the
  // warm-start artifacts) are atomically rewritten. Called under the
  // engine's report lock, so no extra synchronization is needed.
  const int every =
      options.checkpoint_every > 0 ? options.checkpoint_every : 64;
  int since_checkpoint = 0;
  engine.on_flush =
      [&](const std::vector<std::pair<std::size_t, FaultRun>>& batch) {
        for (const auto& [i, run] : batch) {
          canonical[i] = canonical_jsonl_record(program.name, config, i, run);
        }
        since_checkpoint += static_cast<int>(batch.size());
        if (since_checkpoint >= every) {
          since_checkpoint = 0;
          write_runs(/*complete=*/false);
          write_artifacts();
        }
      };

  report.result =
      run_campaign_parallel(program, config, engine, &report.stats);

  if (!report.complete_on_entry) {
    BJ_CHECK(canonical.size() == owned,
             "campaign service: all owned runs recorded");
    write_runs(/*complete=*/true);
    write_artifacts();
  }

  // --- Autopsy pass. Replays are deterministic, so regeneration always
  // produces the same bytes; an existing autopsy.jsonl whose header matches
  // ours, whose footer is complete, and whose select matches is adopted
  // without re-running the replays (the store directory is content-addressed
  // by the campaign digest, and the header byte-equality binds this file to
  // this exact configuration). Anything else is quarantined and regenerated.
  if (options.autopsy) {
    const fs::path autopsy_path = dir / "autopsy.jsonl";
    report.autopsy_path = autopsy_path.string();
    std::string existing;
    bool adopt = false;
    if (read_file(autopsy_path, &existing)) {
      const std::vector<std::string> lines = split_lines(existing);
      if (lines.size() >= 2 && lines[0] + "\n" == header &&
          is_footer(lines.back())) {
        bool complete = false;
        std::string select;
        std::uint64_t autopsies = 0;
        if (find_bool_field(lines.back(), "complete", &complete) && complete &&
            find_string_field(lines.back(), "select", &select) &&
            select == autopsy_select_name(options.autopsy_select) &&
            find_uint_field(lines.back(), "autopsies", &autopsies) &&
            autopsies + 2 == lines.size()) {
          adopt = true;
          report.autopsy_adopted = true;
          report.autopsy_records = autopsies;
        }
      }
      if (!adopt && quarantine(autopsy_path)) ++report.quarantined;
    }
    if (!adopt) {
      AutopsyOptions autopsy_options;
      autopsy_options.select = options.autopsy_select;
      autopsy_options.jobs = options.jobs;
      autopsy_options.golden = &cache;
      report.autopsy =
          run_campaign_autopsy(program, config, report.result, autopsy_options);
      report.autopsy_records = report.autopsy.records.size();
      atomic_write(autopsy_path,
                   autopsy_jsonl(program, config, report.autopsy));
    }
  }
  return report;
}

ShardMergeResult merge_campaign_shards(const std::vector<std::string>& paths) {
  ShardMergeResult merged;
  if (paths.empty()) {
    merged.error = "no shard files given";
    return merged;
  }
  std::string header;
  std::map<std::uint64_t, std::string> records;  // index -> line (with \n)
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, &text)) {
      merged.error = "cannot read " + path;
      return merged;
    }
    const std::vector<std::string> lines = split_lines(text);
    if (lines.empty() ||
        lines[0].find("\"record\":\"header\"") == std::string::npos) {
      merged.error = path + ": missing campaign header";
      return merged;
    }
    if (header.empty()) {
      header = lines[0] + "\n";
    } else if (lines[0] + "\n" != header) {
      merged.error = path + ": header differs from the first shard's " +
                     "(different campaign configuration?)";
      return merged;
    }
    bool complete = false;
    std::size_t shard_records = 0;
    for (std::size_t li = 1; li < lines.size(); ++li) {
      const std::string& line = lines[li];
      if (is_footer(line)) {
        std::uint64_t runs = 0;
        bool flag = false;
        if (li + 1 != lines.size() || !find_bool_field(line, "complete", &flag) ||
            !flag || !find_uint_field(line, "runs", &runs) ||
            runs != shard_records) {
          merged.error = path + ": malformed footer";
          return merged;
        }
        complete = true;
        break;
      }
      std::uint64_t index = 0;
      std::string outcome;
      std::uint64_t activations = 0;
      if (!find_uint_field(line, "index", &index) ||
          !find_string_field(line, "outcome", &outcome) ||
          !find_uint_field(line, "activations", &activations)) {
        merged.error = path + ": malformed record at line " +
                       std::to_string(li + 1);
        return merged;
      }
      if (records.count(index)) {
        merged.error = path + ": duplicate fault index " +
                       std::to_string(index);
        return merged;
      }
      records[index] = line + "\n";
      ++shard_records;

      FaultOutcome parsed = FaultOutcome::kBenign;
      if (!parse_fault_outcome(outcome, &parsed)) {
        merged.error = path + ": unknown outcome \"" + outcome + "\"";
        return merged;
      }
      ++merged.totals[parsed];
      if (activations > 0 && (parsed == FaultOutcome::kDetected ||
                              parsed == FaultOutcome::kDetectedLate ||
                              parsed == FaultOutcome::kWedged)) {
        std::uint64_t latency = 0;
        find_uint_field(line, "detection_latency", &latency);
        merged.detection_latency[parsed].add(latency);
      }
    }
    if (!complete) {
      merged.error = path + ": shard incomplete (no footer — still running, "
                            "or killed before its final checkpoint)";
      return merged;
    }
  }

  // The shards must tile the fault index space exactly: indices 0..K-1, each
  // once. A hole means a missing shard; the duplicate case was caught above.
  std::uint64_t expect = 0;
  for (const auto& [index, line] : records) {
    if (index != expect) {
      merged.error = "missing fault index " + std::to_string(expect) +
                     " (shard file absent from the merge?)";
      return merged;
    }
    ++expect;
  }

  merged.jsonl = header;
  for (const auto& [index, line] : records) merged.jsonl += line;
  merged.jsonl += footer_line(records.size());
  merged.runs = records.size();
  merged.ok = true;
  return merged;
}

bool fsck_campaign_store(const std::string& root, std::ostream& report) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    report << "store root is not a directory: " << root << "\n";
    return false;
  }
  bool ok = true;
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& dir : dirs) {
    const std::string name = dir.filename().string();
    const std::string prefix = name.substr(0, 16);
    std::uint64_t digest = 0;
    bool digest_ok = prefix.size() == 16;
    if (digest_ok) {
      try {
        digest = std::stoull(prefix, nullptr, 16);
      } catch (const std::exception&) {
        digest_ok = false;
      }
    }
    if (!digest_ok) {
      report << name << ": directory name is not a campaign digest\n";
      ok = false;
      continue;
    }

    std::string text;
    if (!read_file(dir / "runs.jsonl", &text)) {
      report << name << ": missing runs.jsonl\n";
      ok = false;
    } else {
      const std::vector<std::string> lines = split_lines(text);
      std::string stamped;
      if (lines.empty() ||
          lines[0].find("\"record\":\"header\"") == std::string::npos ||
          !find_string_field(lines[0], "config_digest", &stamped)) {
        report << name << ": runs.jsonl has no campaign header\n";
        ok = false;
      } else {
        std::ostringstream expect;
        expect << std::hex << digest;
        if (stamped != expect.str()) {
          report << name << ": header digest " << stamped
                 << " does not match directory name\n";
          ok = false;
        }
        std::uint64_t last_index = 0;
        bool have_index = false;
        std::size_t count = 0;
        for (std::size_t li = 1; li < lines.size(); ++li) {
          if (is_footer(lines[li])) {
            std::uint64_t runs = 0;
            bool complete = false;
            if (li + 1 != lines.size() ||
                !find_bool_field(lines[li], "complete", &complete) ||
                !find_uint_field(lines[li], "runs", &runs) || runs != count) {
              report << name << ": malformed or misplaced footer\n";
              ok = false;
            }
            break;
          }
          std::uint64_t index = 0;
          if (!find_uint_field(lines[li], "index", &index)) {
            report << name << ": unparseable record at line " << (li + 1)
                   << "\n";
            ok = false;
            break;
          }
          if (have_index && index <= last_index) {
            report << name << ": record indices not strictly increasing at "
                   << "line " << (li + 1) << "\n";
            ok = false;
            break;
          }
          last_index = index;
          have_index = true;
          ++count;
        }
      }
    }

    for (const char* artifact : {"golden.bin", "shuffle.bin"}) {
      const fs::path path = dir / artifact;
      std::string bytes;
      if (!read_file(path, &bytes)) continue;  // optional artifacts
      std::string_view payload;
      if (!container_unwrap(bytes, digest, &payload)) {
        report << name << ": " << artifact
               << " fails container validation (magic/schema/digest/"
                  "checksum)\n";
        ok = false;
      }
    }

    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".corrupt") {
        report << name << ": quarantined artifact "
               << entry.path().filename().string() << " (informational)\n";
      }
    }
  }
  return ok;
}

}  // namespace bj
