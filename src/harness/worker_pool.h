// Fixed-size worker pool for the harness layer. Campaigns, deconfiguration
// sweeps, and workload sweeps all consist of fully independent simulations
// (each worker builds its own Core and FaultInjector), so the only shared
// state is the work queue itself — a lock-free MPMC ring queue
// (common/mpmc_queue.h) pre-filled with every index and closed before the
// workers spawn — plus whatever the caller synchronizes in its own callback.
//
// Determinism contract: `parallel_for` partitions work dynamically, so the
// *order* in which items execute depends on scheduling; callers that need
// reproducible output must key results by item index (pre-sized vectors),
// never by completion order. With jobs <= 1 everything runs inline on the
// calling thread with no threads spawned.
#pragma once

#include <cstddef>
#include <functional>

namespace bj {

// Resolves a jobs request: 0 means "one per hardware thread", anything else
// is clamped to at least 1.
int resolve_jobs(int jobs);

// Runs fn(i) for every i in [0, count), distributing indices across
// `resolve_jobs(jobs)` worker threads pulling from a shared queue. Blocks
// until every item has run. If any fn throws, the first exception is
// rethrown on the calling thread after all workers have drained.
void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

// Like parallel_for, but fn also receives the calling worker's index in
// [0, min(resolve_jobs(jobs), count)), letting callers keep worker-private
// accumulators (batched report buffers, scratch state) in a pre-sized
// vector instead of thread_local storage. A given worker index is only ever
// used by one thread, but the set of items a worker sees is
// scheduling-dependent. Returns the number of workers actually used.
std::size_t parallel_for_workers(
    int jobs, std::size_t count,
    const std::function<void(std::size_t worker, std::size_t item)>& fn);

}  // namespace bj
