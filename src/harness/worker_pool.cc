#include "harness/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"

namespace bj {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(jobs, count,
                       [&fn](std::size_t, std::size_t i) { fn(i); });
}

std::size_t parallel_for_workers(
    int jobs, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return 0;
  const int workers = resolve_jobs(jobs);
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return 1;
  }

  // All indices are enqueued before any worker starts draining, and the
  // queue is closed before the threads spawn — so every push happens-before
  // close() as the queue's contract requires, and workers exit via
  // closed-and-drained rather than a sentinel per thread. Sizing the queue
  // to `count` up front means the steady-state path never grows.
  MpmcQueue<std::size_t> queue(count);
  for (std::size_t i = 0; i < count; ++i) queue.push(i);
  queue.close();

  // `stop` short-circuits remaining work after the first exception, exactly
  // like the old mutex pool's first_error check at claim time; the mutex
  // only guards the exception_ptr slot, never the work hand-off.
  std::atomic<bool> stop{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t w) {
    std::size_t i;
    while (!stop.load(std::memory_order_acquire) && queue.pop(&i)) {
      try {
        fn(w, i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t spawned =
      std::min(static_cast<std::size_t>(workers), count);
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return spawned;
}

}  // namespace bj
