#include "harness/worker_pool.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bj {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(jobs, count,
                       [&fn](std::size_t, std::size_t i) { fn(i); });
}

std::size_t parallel_for_workers(
    int jobs, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return 0;
  const int workers = resolve_jobs(jobs);
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return 1;
  }

  std::mutex queue_mu;
  std::size_t next = 0;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t w) {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (next >= count || first_error) return;
        i = next++;
      }
      try {
        fn(w, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t spawned =
      std::min(static_cast<std::size_t>(workers), count);
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return spawned;
}

}  // namespace bj
