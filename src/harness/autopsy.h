// Fault autopsy engine: divergence forensics for non-benign campaign runs.
//
// A campaign classifies each fault run by terminal outcome only (detected /
// sdc / wedged / ...). The autopsy engine explains *how*: it re-runs the
// faulty core deterministically with a lockstep architectural emulator
// attached at the leading commit point (CommitObserver) and reconstructs
//   * the first architectural divergence — the earliest committed
//     instruction whose pc, register value, memory address/data, or
//     control-flow target disagrees with the fault-free execution,
//   * the propagation chain of divergent commits from that point down to
//     the first released corrupt store or the detecting check (capped at
//     kAutopsyChainCap events; the total divergent-commit count is exact),
//   * the first corrupt store that escaped to memory, and
//   * the detection site (kind, cycle, pc, seq) when a check fired.
//
// Everything is derived from a deterministic replay, so autopsy records are
// wall-clock free and byte-identical across jobs counts, shards, and
// kill-and-resume — the same canonical-record contract runs.jsonl keeps.
// This is the per-fault evidence base the ROADMAP item-1 mode shoot-out
// needs (RepTFD-style replay localization + propagation-chain analysis).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/campaign.h"

namespace bj {

class MetricsRegistry;

// Which stored outcomes deserve an autopsy.
//   kEscapes:  runs where corruption got past the checks — sdc,
//              detected-late, oracle-divergence. The default: these are the
//              runs a detection architecture has to answer for.
//   kDetected: runs a check caught — detected, detected-late, wedged.
//   kAll:      every non-benign run (union of the above).
enum class AutopsySelect : std::uint8_t { kEscapes, kDetected, kAll };

const char* autopsy_select_name(AutopsySelect select);
bool parse_autopsy_select(std::string_view name, AutopsySelect* out);
// Whether a run with this outcome is selected. Benign runs never are.
bool autopsy_selects(AutopsySelect select, FaultOutcome outcome);

// What disagreed first at a divergent commit, in the comparison order the
// oracle check uses (pc, store, load, register value, control target).
enum class DivergenceKind : std::uint8_t {
  kPcStream,      // committed a different instruction address
  kStoreAddress,  // store to the wrong address (or a phantom/missing store)
  kStoreData,     // right store address, wrong data
  kLoadAddress,   // load from the wrong address (or phantom/missing load)
  kLoadValue,     // right load address, wrong value
  kRegValue,      // wrong register result
  kNextPc,        // wrong control-flow target
  kOracleHalted,  // the fault-free execution had already halted
};

const char* divergence_kind_name(DivergenceKind kind);

// One divergent leading commit: where the faulty machine and the fault-free
// execution disagreed, and on what.
struct DivergenceEvent {
  std::uint64_t seq = 0;    // leading program-order sequence number
  std::uint64_t cycle = 0;  // commit cycle
  std::uint64_t pc = 0;     // committed pc (the faulty machine's view)
  DivergenceKind kind = DivergenceKind::kRegValue;
  std::uint64_t expected = 0;  // fault-free value for `kind`
  std::uint64_t actual = 0;    // faulty machine's value
};

inline constexpr std::size_t kAutopsyChainCap = 16;

// Structured post-mortem of one fault run.
struct AutopsyRecord {
  std::size_t index = 0;  // fault index within the campaign
  HardFault fault;        // campaign bookkeeping label for this index
  // Re-derived outcome; run_campaign_autopsy verifies it matches the stored
  // run before emitting (a mismatch means the replay was not deterministic
  // and the autopsy would be fiction).
  FaultOutcome outcome = FaultOutcome::kBenign;
  bool activated = false;
  std::uint64_t first_activation_cycle = 0;

  bool diverged = false;       // any divergent leading commit observed
  DivergenceEvent first;       // valid when `diverged`
  // Divergent commits after `first`, truncated to kAutopsyChainCap events
  // and to events at or before the first corrupt store release / the
  // detection (the propagation window the record explains).
  std::vector<DivergenceEvent> chain;
  bool chain_truncated = false;
  std::uint64_t divergent_commits = 0;  // exact total, uncapped

  bool corrupt_store_released = false;
  std::uint64_t first_corrupt_store_ordinal = 0;
  std::uint64_t first_corrupt_store_addr = 0;
  std::uint64_t first_corrupt_store_data = 0;
  std::uint64_t first_corrupt_store_cycle = 0;

  bool detected = false;  // a check (or the watchdog) fired
  DetectionKind detection_kind = DetectionKind::kWatchdogTimeout;
  std::uint64_t detection_cycle = 0;
  std::uint64_t detection_pc = 0;
  std::uint64_t detection_seq = 0;
  std::uint64_t detection_latency = 0;  // detection − first activation
};

struct AutopsyOptions {
  AutopsySelect select = AutopsySelect::kEscapes;
  int jobs = 0;  // worker threads; 0 = one per hardware thread
  // Shared golden store-trace cache (campaign service warm start). Null =
  // the engine owns a private cache.
  GoldenTraceCache* golden = nullptr;
  // Called (serialized) after each completed autopsy re-run.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

struct AutopsyResult {
  AutopsySelect select = AutopsySelect::kEscapes;
  // Records for every selected run, in ascending fault-index order.
  std::vector<AutopsyRecord> records;
};

// Re-runs fault `index` of the campaign with the lockstep observer attached
// and returns its post-mortem. The re-run replicates the campaign engine's
// execution exactly (same injector, budget, cycle cap, oracle setting), so
// the re-derived outcome equals the campaign's for the same index.
AutopsyRecord autopsy_fault_run(const Program& program,
                                const CampaignConfig& config,
                                std::size_t index,
                                GoldenTraceCache* golden = nullptr);

// Lockstep post-mortem of one arbitrary injected run — the single-run
// `bjsim --fault ... --autopsy` path, where the hard fault comes from the
// command line instead of a campaign index. Uses config for the mode, core
// parameters, budget, and oracle setting; `label` is the fault being
// injected (also what the record reports).
AutopsyRecord autopsy_single_run(const Program& program,
                                 const CampaignConfig& config,
                                 const FaultInjector& injector,
                                 const HardFault& label);

// Autopsies every run of `result` selected by `options.select`, fanned out
// over the worker pool. Records land in a pre-sized, index-keyed vector, so
// the result is bit-identical for every jobs count. Throws
// std::runtime_error if a re-derived outcome disagrees with the stored run.
AutopsyResult run_campaign_autopsy(const Program& program,
                                   const CampaignConfig& config,
                                   const CampaignResult& result,
                                   const AutopsyOptions& options = {});

// One canonical JSONL line for an autopsy record (no trailing state, no
// wall-clock fields) — the autopsy.jsonl sibling of canonical_jsonl_record.
std::string canonical_autopsy_record(const std::string& workload,
                                     const CampaignConfig& config,
                                     const AutopsyRecord& record);

// The complete canonical autopsy.jsonl image: the campaign's JSONL header
// (same line as runs.jsonl), one record per selected run in index order, and
// a footer `{"record":"footer","complete":true,"select":...,"autopsies":N}`.
std::string autopsy_jsonl(const Program& program, const CampaignConfig& config,
                          const AutopsyResult& result);

// Registers autopsy aggregates under "campaign.autopsy.*": record counts,
// escape counts by fault site, divergence-kind counts, and
// divergence-to-detection latency quantiles.
void export_autopsy_metrics(MetricsRegistry& registry,
                            const CampaignConfig& config,
                            const AutopsyResult& result);

}  // namespace bj
