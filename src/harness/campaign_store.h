// Campaign persistence + distribution layer. run_campaign_parallel is a
// pure in-memory engine; this layer wraps it with everything a long-running
// injection study needs to survive the real world:
//
//   - a content-addressed on-disk store keyed by campaign_config_digest():
//     each (program, configuration) pair owns one directory holding the
//     golden store-trace snapshot, the safe-shuffle table, and the canonical
//     completed-run JSONL, so repeating a study warm-starts instantly
//     instead of re-running the emulator and the shuffle search;
//   - checkpointed, resumable campaigns: the canonical JSONL doubles as the
//     checkpoint (rewritten atomically every N completed runs), and a
//     resumed campaign adopts the checkpointed runs, finishes the rest, and
//     produces output byte-identical to an uninterrupted run;
//   - deterministic sharding: `--shard i/N` runs the fault indices the spec
//     owns into a shard-suffixed store directory, and
//     merge_campaign_shards() recombines N shard files into a file
//     bit-identical to the unsharded run's;
//   - integrity: every binary artifact lives in a checked container (magic,
//     schema, digest, length, payload checksum) written via temp+rename;
//     anything that fails validation is quarantined (renamed *.corrupt) and
//     the campaign falls back to recomputing it.
//
// Byte-identity is the design invariant: canonical records omit the only
// wall-clock field ("seconds"), are keyed by fault index, and are emitted
// index-sorted, so `cold == resumed == merged(shards)` holds at the byte
// level and tests can enforce it with a string compare.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/autopsy.h"
#include "harness/campaign.h"

namespace bj {

struct CampaignServiceOptions {
  // Root directory of the campaign store (one subdirectory per campaign
  // digest is created beneath it). Empty = no persistence: the service
  // degenerates to a plain run_campaign_parallel call.
  std::string store_root;
  int jobs = 0;
  ShardSpec shard;
  // Completed runs between checkpoint rewrites of the store's runs.jsonl
  // (and golden/shuffle snapshots). 0 = auto (64). Checkpoints are atomic
  // whole-file replacements, so a kill at any instant leaves a valid,
  // resumable store.
  int checkpoint_every = 0;
  // Live streaming JSONL (records carry the wall-clock "seconds" field);
  // independent of the store's canonical file.
  std::ostream* jsonl = nullptr;
  std::function<void(const CampaignProgress&)> progress;
  CampaignTraceLog* trace = nullptr;
  // Run the fault autopsy engine over the finished campaign and persist the
  // canonical autopsy.jsonl next to runs.jsonl (store-backed campaigns) or
  // keep the records in the report (store-less). Autopsy replays are
  // deterministic, so the file is byte-identical across jobs counts, shards,
  // and kill-and-resume. A store whose existing autopsy.jsonl carries the
  // same header, a complete footer, and the same select is adopted as-is
  // instead of re-running the replays.
  bool autopsy = false;
  AutopsySelect autopsy_select = AutopsySelect::kEscapes;
};

struct CampaignServiceReport {
  CampaignResult result;
  CampaignStats stats;
  // Resolved campaign directory ("" when no store was configured).
  std::string store_dir;
  // The store already held every owned run: nothing was simulated.
  bool complete_on_entry = false;
  // Store artifacts that failed validation and were quarantined (*.corrupt).
  int quarantined = 0;
  // Autopsy output (when CampaignServiceOptions::autopsy was set).
  // `autopsy.records` is populated when the replays actually ran;
  // `autopsy_adopted` means a complete, matching autopsy.jsonl was already
  // in the store and the replays were skipped.
  AutopsyResult autopsy;
  std::string autopsy_path;  // "" when no store was configured
  bool autopsy_adopted = false;
  std::size_t autopsy_records = 0;
};

// Runs one campaign (or one shard of one) through the persistence layer:
// load + validate store artifacts, adopt checkpointed runs, warm-start the
// golden-trace cache and shuffle table, execute what is left, checkpoint
// along the way, and leave the store complete and canonical on return.
CampaignServiceReport run_campaign_service(const Program& program,
                                           const CampaignConfig& config,
                                           const CampaignServiceOptions& options);

// The directory a campaign's artifacts live in: <root>/<16-hex-digest>, with
// a "-s<i>of<N>" suffix when the shard is active so concurrent shard
// processes never contend for one runs.jsonl.
std::string campaign_store_dir(const std::string& root,
                               const CampaignConfig& config,
                               const Program& program, const ShardSpec& shard);

// Parses one canonical JSONL record back into (index, FaultRun). The fault
// label is reconstructed from `labels` (the record only stores its
// description), and the parse is self-verifying: the reconstructed run must
// re-serialize to exactly the input line, so any field this parser missed,
// any hand-edited value, and any truncation is rejected rather than adopted.
// Validates a campaign JSONL header line: it must be a "header" record and
// its "schema_version" field must equal kMetricsSchemaVersion. Returns false
// with a one-line explanation in *error for a non-header line, a missing
// schema field, or a schema mismatch — consumers reject such files loudly instead
// of skipping them as if they held no data.
bool validate_campaign_jsonl_header(const std::string& line,
                                    std::string* error);

bool parse_canonical_record(const std::string& line,
                            const CampaignConfig& config,
                            const std::vector<HardFault>& labels,
                            const std::string& workload, std::size_t* index,
                            FaultRun* run);

struct ShardMergeResult {
  bool ok = false;
  std::string error;  // first validation failure when !ok
  // The merged canonical file: shared header, all records index-sorted, one
  // footer — byte-identical to the unsharded campaign's runs.jsonl.
  std::string jsonl;
  std::size_t runs = 0;
  // Outcome totals and detection-latency histograms recomputed from the
  // merged records; bit-identical to the unsharded CampaignResult::totals()
  // and CampaignStats::detection_latency.
  std::map<FaultOutcome, int> totals;
  std::map<FaultOutcome, Histogram> detection_latency;
};

// Recombines N canonical shard files (each complete, same header) into the
// unsharded campaign's canonical file. Fails (ok = false) on header
// mismatch, an incomplete shard, duplicate or missing fault indices, or a
// malformed record.
ShardMergeResult merge_campaign_shards(const std::vector<std::string>& paths);

// Store fsck: walks every campaign directory under `root` and validates the
// canonical JSONL (header shape, digest vs directory name, strictly
// increasing indices, footer accounting) and the binary artifact containers
// (magic, schema, digest, length, checksum). One line per finding on
// `report`; returns true when the store is clean.
bool fsck_campaign_store(const std::string& root, std::ostream& report);

}  // namespace bj
