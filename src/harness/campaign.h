// Fault-injection campaign: inject randomly placed hard faults and classify
// each run's outcome. This is the end-to-end validation of the coverage
// numbers — a fault whose instruction pairs were spatially diverse must be
// DETECTED by one of the checks, never silently corrupt data.
//
// Campaigns come in three flavours sharing one per-run classifier:
//   run_campaign_parallel — the engine: a fixed-size worker pool executes
//       independent fault runs concurrently, classifies them against a
//       shared golden store-trace cache, and streams observability records.
//   run_campaign           — the serial entry point (parallel engine pinned
//       to one job); bit-identical to any jobs count.
//   run_campaign_reference — the original single-threaded implementation
//       that replays the emulator for every run; kept as ground truth for
//       determinism tests and as the speedup baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "fault/fault_model.h"
#include "harness/driver.h"

namespace bj {

enum class FaultOutcome : std::uint8_t {
  kDetected,      // a check fired before any corrupt store reached memory
  kDetectedLate,  // a check fired, but corrupted data had already been
                  // released — the failure mode BlackJack exists to prevent
  kWedged,        // watchdog timeout (detected by last resort)
  kSdc,           // corrupt stores released and no check ever fired
  kBenign,        // no architectural effect within the run window
  kOracleDivergence,  // no check fired, but the per-commit oracle emulator
                      // disagreed with the core — latent state corruption
                      // that never reached memory as a store. Only produced
                      // when CampaignConfig::oracle_check is set.
};

const char* fault_outcome_name(FaultOutcome outcome);

struct CampaignConfig {
  Mode mode = Mode::kSrt;
  CoreParams params;
  int num_faults = 100;
  std::uint64_t seed = 1234;
  std::uint64_t budget_commits = 20000;
  // Restrict injection to these sites (empty = all sites).
  std::vector<FaultSite> sites;
  // Inject one-shot transient bit flips (soft errors) instead of permanent
  // stuck-at faults. SRT and BlackJack should both detect these — temporal
  // redundancy suffices; spatial diversity is only needed for hard faults.
  bool soft_errors = false;
  // Run the architectural oracle emulator alongside each faulty core and
  // surface silent divergences as a distinct outcome (kOracleDivergence)
  // instead of folding them into benign/SDC. Off by default: the oracle
  // costs an emulator step per leading commit, and classifications without
  // it stay bit-identical to historical campaigns.
  bool oracle_check = false;
};

struct FaultRun {
  HardFault fault;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::uint64_t activations = 0;
  std::uint64_t detection_cycle = 0;
  DetectionKind detection_kind = DetectionKind::kWatchdogTimeout;
  std::uint64_t corrupt_stores_released = 0;
  // Provenance chain (injection -> corruption -> detection), stamped by the
  // core's FaultProvenance hooks. first_activation_cycle is meaningful when
  // activations > 0, first_corruption_cycle when corrupt_stores_released >
  // 0, detection_latency (detection − first activation) for detected and
  // wedged outcomes.
  std::uint64_t first_activation_cycle = 0;
  std::uint64_t first_corruption_cycle = 0;
  std::uint64_t detection_latency = 0;
  // Whether the architectural oracle observed a divergence at some leading
  // commit (only ever true when CampaignConfig::oracle_check was set). Kept
  // separately from `outcome` because a detected run may *also* have
  // diverged before the check fired.
  bool oracle_violated = false;
};

struct CampaignResult {
  std::string workload;
  Mode mode = Mode::kSingle;
  std::vector<FaultRun> runs;

  std::map<FaultOutcome, int> totals() const;
  int count(FaultOutcome outcome) const;
  // Of the runs in which the fault was actually exercised (activations > 0),
  // the fraction that were detected (checks or watchdog).
  double detection_rate_of_activated() const;
  // Fraction of activated runs in which corrupted data reached memory —
  // whether or not a check eventually fired (kDetectedLate + kSdc).
  double corruption_rate_of_activated() const;
  double sdc_rate_of_activated() const;
};

// Snapshot handed to the progress callback after each completed run.
struct CampaignProgress {
  int completed = 0;  // runs whose records have been flushed to the sinks
  // Runs that have finished simulating, including those still buffered in a
  // worker's unflushed batch. Under report_batch > 1 this leads `completed`
  // by up to jobs × batch runs; the ETA is computed from it so large batches
  // don't report stale estimates.
  int finished = 0;
  int total = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;  // 0 when no estimate yet
  std::map<FaultOutcome, int> histogram;
};

// Wall-clock / throughput accounting for one campaign invocation.
struct CampaignStats {
  int jobs = 1;
  double wall_seconds = 0.0;
  // Sum of the individual runs' execution times — what the same work would
  // have cost end-to-end on one worker.
  double serial_estimate_seconds = 0.0;
  double runs_per_second = 0.0;
  // Per-outcome detection-latency distribution (cycles from the fault's
  // first activation to the check firing). Populated for detected,
  // detected-late, and wedged runs that activated.
  std::map<FaultOutcome, Histogram> detection_latency;
  double speedup() const {
    return wall_seconds > 0.0 ? serial_estimate_seconds / wall_seconds : 0.0;
  }
};

struct ParallelCampaignOptions {
  int jobs = 0;  // worker threads; 0 = one per hardware thread
  // When set, one JSON record per completed run is appended (JSONL). Writes
  // are serialized by the engine; completion order is scheduling-dependent,
  // so records carry their fault index.
  std::ostream* jsonl = nullptr;
  // Called (serialized) after a flush of completed runs — every run when
  // `report_batch` is 1, otherwise once per batch.
  std::function<void(const CampaignProgress&)> progress;
  // How many completed runs a worker accumulates before taking the report
  // lock to flush its JSONL records and progress update. 0 = auto: 1 when
  // the campaign runs on a single worker (per-run streaming, the historical
  // behaviour), 16 otherwise. Batching only affects *when* records reach
  // the sinks, never their content or count: every run still produces
  // exactly one JSONL record carrying its fault index, and the final
  // progress snapshot always reports completed == total.
  int report_batch = 0;
  // When set, the campaign records a Chrome trace-event span per fault run
  // on its worker's lane, plus golden-trace cache fill spans on the shared
  // lane. Null = no tracing (the default).
  CampaignTraceLog* trace = nullptr;
};

// Order-independent FNV-1a digest of everything that determines a
// campaign's records (mode, fault set parameters, budget, core parameters).
// Stamped into the JSONL header so downstream analysis can detect files
// mixing incompatible configurations.
std::uint64_t campaign_config_digest(const CampaignConfig& config);

// Registers campaign outcome counters, rates, throughput, and the
// per-outcome detection-latency histograms under "campaign.*".
void export_campaign_metrics(MetricsRegistry& registry,
                             const CampaignResult& result,
                             const CampaignStats* stats);

// Generates a deterministic set of fault sites (shared across modes so SRT
// and BlackJack face the *same* faults) and runs the campaign.
std::vector<HardFault> generate_faults(const CoreParams& params,
                                       int num_faults, std::uint64_t seed,
                                       const std::vector<FaultSite>& sites);

// The parallel campaign engine. Results are written into a pre-sized vector
// keyed by fault index, so `CampaignResult` is bit-identical for every jobs
// count (including the serial wrappers below) regardless of scheduling.
CampaignResult run_campaign_parallel(const Program& program,
                                     const CampaignConfig& config,
                                     const ParallelCampaignOptions& options = {},
                                     CampaignStats* stats = nullptr);

// Serial convenience wrapper: the engine pinned to one worker, run inline.
CampaignResult run_campaign(const Program& program,
                            const CampaignConfig& config);

// Reference implementation predating the worker pool and the golden-trace
// cache: one thread, one emulator replay per run. Ground truth for the
// determinism tests and the honest baseline for speedup measurements.
CampaignResult run_campaign_reference(const Program& program,
                                      const CampaignConfig& config);

// A ready-made progress callback: single-line n/total + ETA + outcome
// histogram on stderr, prefixed with `label`.
std::function<void(const CampaignProgress&)> stderr_campaign_progress(
    const std::string& label);

}  // namespace bj
