// Fault-injection campaign: inject randomly placed hard faults and classify
// each run's outcome. This is the end-to-end validation of the coverage
// numbers — a fault whose instruction pairs were spatially diverse must be
// DETECTED by one of the checks, never silently corrupt data.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "harness/driver.h"

namespace bj {

enum class FaultOutcome : std::uint8_t {
  kDetected,      // a check fired before any corrupt store reached memory
  kDetectedLate,  // a check fired, but corrupted data had already been
                  // released — the failure mode BlackJack exists to prevent
  kWedged,        // watchdog timeout (detected by last resort)
  kSdc,           // corrupt stores released and no check ever fired
  kBenign,        // no architectural effect within the run window
};

const char* fault_outcome_name(FaultOutcome outcome);

struct CampaignConfig {
  Mode mode = Mode::kSrt;
  CoreParams params;
  int num_faults = 100;
  std::uint64_t seed = 1234;
  std::uint64_t budget_commits = 20000;
  // Restrict injection to these sites (empty = all sites).
  std::vector<FaultSite> sites;
  // Inject one-shot transient bit flips (soft errors) instead of permanent
  // stuck-at faults. SRT and BlackJack should both detect these — temporal
  // redundancy suffices; spatial diversity is only needed for hard faults.
  bool soft_errors = false;
};

struct FaultRun {
  HardFault fault;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::uint64_t activations = 0;
  std::uint64_t detection_cycle = 0;
  DetectionKind detection_kind = DetectionKind::kWatchdogTimeout;
  std::uint64_t corrupt_stores_released = 0;
};

struct CampaignResult {
  std::string workload;
  Mode mode = Mode::kSingle;
  std::vector<FaultRun> runs;

  std::map<FaultOutcome, int> totals() const;
  int count(FaultOutcome outcome) const;
  // Of the runs in which the fault was actually exercised (activations > 0),
  // the fraction that were detected (checks or watchdog).
  double detection_rate_of_activated() const;
  // Fraction of activated runs in which corrupted data reached memory —
  // whether or not a check eventually fired (kDetectedLate + kSdc).
  double corruption_rate_of_activated() const;
  double sdc_rate_of_activated() const;
};

// Generates a deterministic set of fault sites (shared across modes so SRT
// and BlackJack face the *same* faults) and runs the campaign.
std::vector<HardFault> generate_faults(const CoreParams& params,
                                       int num_faults, std::uint64_t seed,
                                       const std::vector<FaultSite>& sites);

CampaignResult run_campaign(const Program& program,
                            const CampaignConfig& config);

}  // namespace bj
