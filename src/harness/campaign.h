// Fault-injection campaign: inject randomly placed hard faults and classify
// each run's outcome. This is the end-to-end validation of the coverage
// numbers — a fault whose instruction pairs were spatially diverse must be
// DETECTED by one of the checks, never silently corrupt data.
//
// Campaigns come in three flavours sharing one per-run classifier:
//   run_campaign_parallel — the engine: a fixed-size worker pool executes
//       independent fault runs concurrently, classifies them against a
//       shared golden store-trace cache, and streams observability records.
//   run_campaign           — the serial entry point (parallel engine pinned
//       to one job); bit-identical to any jobs count.
//   run_campaign_reference — the original single-threaded implementation
//       that replays the emulator for every run; kept as ground truth for
//       determinism tests and as the speedup baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "fault/fault_model.h"
#include "harness/driver.h"

namespace bj {

class GoldenTraceCache;
class SharedShuffleTable;

enum class FaultOutcome : std::uint8_t {
  kDetected,      // a check fired before any corrupt store reached memory
  kDetectedLate,  // a check fired, but corrupted data had already been
                  // released — the failure mode BlackJack exists to prevent
  kWedged,        // watchdog timeout (detected by last resort)
  kSdc,           // corrupt stores released and no check ever fired
  kBenign,        // no architectural effect within the run window
  kOracleDivergence,  // no check fired, but the per-commit oracle emulator
                      // disagreed with the core — latent state corruption
                      // that never reached memory as a store. Only produced
                      // when CampaignConfig::oracle_check is set.
};

const char* fault_outcome_name(FaultOutcome outcome);

// Inverse of fault_outcome_name. Returns false (leaving *out untouched) for
// a string naming no enumerator — JSONL parsers treat that as tampering,
// exactly like a record that fails re-serialization.
bool parse_fault_outcome(std::string_view name, FaultOutcome* out);

struct CampaignConfig {
  Mode mode = Mode::kSrt;
  CoreParams params;
  int num_faults = 100;
  std::uint64_t seed = 1234;
  std::uint64_t budget_commits = 20000;
  // Restrict injection to these sites (empty = all sites).
  std::vector<FaultSite> sites;
  // Inject one-shot transient bit flips (soft errors) instead of permanent
  // stuck-at faults. SRT and BlackJack should both detect these — temporal
  // redundancy suffices; spatial diversity is only needed for hard faults.
  bool soft_errors = false;
  // Run the architectural oracle emulator alongside each faulty core and
  // surface silent divergences as a distinct outcome (kOracleDivergence)
  // instead of folding them into benign/SDC. Off by default: the oracle
  // costs an emulator step per leading commit, and classifications without
  // it stay bit-identical to historical campaigns.
  bool oracle_check = false;
  // Full-factorial enumeration over the hard-fault space instead of random
  // sampling (mat_ecc_ram-style exhaustive injection studies): every
  // (site, way/unit/entry, bit, stuck-value) combination becomes one run and
  // num_faults is ignored. Only meaningful for hard faults — the transient
  // fault space is unbounded (any execution index), so soft-error campaigns
  // reject it.
  bool exhaustive = false;
  // With `exhaustive`: 0 runs the whole space; F > 0 draws F combinations
  // from it, each selected by an RNG stream derived from (campaign seed,
  // draw index) alone — never from worker count or arrival order — so the
  // sample is identical across jobs counts and shards.
  int test_count = 0;
};

// Size of the full-factorial hard-fault space for `params` restricted to
// `sites` (empty = the default three-site pool), and the fault at a given
// lexicographic index within it. The enumeration order is fixed (it is part
// of the campaign's deterministic identity): sites in pool order, then
// way/unit/entry, then bit, then stuck value.
std::uint64_t fault_space_size(const CoreParams& params,
                               const std::vector<FaultSite>& sites);
HardFault fault_space_at(const CoreParams& params,
                         const std::vector<FaultSite>& sites,
                         std::uint64_t index);

// One shard of a campaign: runs whose fault index i satisfies
// i % count == index - 1 (index is 1-based, as on the command line). The
// partition is a pure function of the fault index, so N shard processes
// produce disjoint, exhaustive, scheduling-independent subsets that merge
// bit-identical to the unsharded run.
struct ShardSpec {
  int index = 1;  // 1-based shard number in [1, count]
  int count = 1;  // total shards
  bool active() const { return count > 1; }
  bool owns(std::size_t run_index) const {
    return static_cast<int>(run_index % static_cast<std::size_t>(count)) ==
           index - 1;
  }
};

// Parses "i/N" (e.g. "2/4"). Throws std::runtime_error on malformed specs,
// i < 1, N < 1, or i > N.
ShardSpec parse_shard_spec(const std::string& spec);

struct FaultRun {
  HardFault fault;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::uint64_t activations = 0;
  std::uint64_t detection_cycle = 0;
  DetectionKind detection_kind = DetectionKind::kWatchdogTimeout;
  std::uint64_t corrupt_stores_released = 0;
  // Provenance chain (injection -> corruption -> detection), stamped by the
  // core's FaultProvenance hooks. The explicit booleans disambiguate a
  // legitimate cycle-0 timestamp from "never happened" (both serialize the
  // cycle as 0): first_activation_cycle is meaningful exactly when
  // `activated`, first_corruption_cycle exactly when `corrupted`,
  // detection_latency (detection − first activation) for detected and
  // wedged outcomes. JSONL emission and parsing key on the booleans —
  // field presence in a record IS the boolean.
  bool activated = false;
  bool corrupted = false;
  std::uint64_t first_activation_cycle = 0;
  std::uint64_t first_corruption_cycle = 0;
  std::uint64_t detection_latency = 0;
  // Whether the architectural oracle observed a divergence at some leading
  // commit (only ever true when CampaignConfig::oracle_check was set). Kept
  // separately from `outcome` because a detected run may *also* have
  // diverged before the check fired.
  bool oracle_violated = false;
  // ECC layer activity during the run (sums of the per-array CoreStats
  // counters): protected reads repaired / flagged uncorrectable. Both stay 0
  // unless CoreParams configures a codec and a storage fault was armed, so
  // historical records are unchanged (JSONL emits the fields only when
  // nonzero).
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
};

struct CampaignResult {
  std::string workload;
  Mode mode = Mode::kSingle;
  std::vector<FaultRun> runs;

  std::map<FaultOutcome, int> totals() const;
  int count(FaultOutcome outcome) const;
  // Of the runs in which the fault was actually exercised (activations > 0),
  // the fraction that were detected (checks or watchdog).
  double detection_rate_of_activated() const;
  // Fraction of activated runs in which corrupted data reached memory —
  // whether or not a check eventually fired (kDetectedLate + kSdc).
  double corruption_rate_of_activated() const;
  double sdc_rate_of_activated() const;
};

// Snapshot handed to the progress callback after each completed run.
struct CampaignProgress {
  int completed = 0;  // runs whose records have been flushed to the sinks
  // Runs that have finished simulating, including those still buffered in a
  // worker's unflushed batch. Under report_batch > 1 this leads `completed`
  // by up to jobs × batch runs; the ETA is computed from it so large batches
  // don't report stale estimates.
  int finished = 0;
  int total = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;  // 0 when no estimate yet
  std::map<FaultOutcome, int> histogram;
};

// Wall-clock / throughput accounting for one campaign invocation.
struct CampaignStats {
  int jobs = 1;
  double wall_seconds = 0.0;
  // Sum of the individual runs' execution times — what the same work would
  // have cost end-to-end on one worker.
  double serial_estimate_seconds = 0.0;
  double runs_per_second = 0.0;
  // Runs actually simulated by this invocation vs adopted from a resume
  // checkpoint. executed + resumed covers the indices this invocation's
  // shard owns; the rest of `CampaignResult::runs` stays default-initialized
  // when sharding.
  int executed_runs = 0;
  int resumed_runs = 0;
  // Golden-trace cache accounting: emulator instructions executed during
  // this invocation (0 when a warm-started store covered every request —
  // the observable "skipped regeneration" signal) and stores adopted from a
  // preloaded snapshot.
  std::uint64_t golden_steps = 0;
  std::uint64_t golden_preloaded_stores = 0;
  // Shuffle-table entries adopted from a preloaded snapshot.
  std::uint64_t shuffle_preloaded_entries = 0;
  // Per-outcome detection-latency distribution (cycles from the fault's
  // first activation to the check firing). Populated for detected,
  // detected-late, and wedged runs that activated.
  std::map<FaultOutcome, Histogram> detection_latency;
  double speedup() const {
    return wall_seconds > 0.0 ? serial_estimate_seconds / wall_seconds : 0.0;
  }
};

struct ParallelCampaignOptions {
  int jobs = 0;  // worker threads; 0 = one per hardware thread
  // When set, one JSON record per completed run is appended (JSONL). Writes
  // are serialized by the engine; completion order is scheduling-dependent,
  // so records carry their fault index.
  std::ostream* jsonl = nullptr;
  // Called (serialized, in flush order) after a flush of completed runs —
  // every run when `report_batch` is 1, otherwise once per batch. Invoked
  // OUTSIDE the report lock: a slow callback delays later callbacks, but
  // never a worker flushing its batch or the checkpoint hook.
  std::function<void(const CampaignProgress&)> progress;
  // How many completed runs a worker accumulates before taking the report
  // lock to flush its JSONL records and progress update. 0 = auto: 1 when
  // the campaign runs on a single worker (per-run streaming, the historical
  // behaviour), 16 otherwise. Batching only affects *when* records reach
  // the sinks, never their content or count: every run still produces
  // exactly one JSONL record carrying its fault index, and the final
  // progress snapshot always reports completed == total.
  int report_batch = 0;
  // When set, the campaign records a Chrome trace-event span per fault run
  // on its worker's lane, plus golden-trace cache fill spans on the shared
  // lane. Null = no tracing (the default).
  CampaignTraceLog* trace = nullptr;
  // Shard to execute: only fault indices the spec owns are simulated; the
  // rest of CampaignResult::runs stays default-initialized (activations 0,
  // so rate helpers and latency histograms ignore them). The engine
  // BJ_CHECKs that the spec partitions the index space disjointly and
  // exhaustively before running.
  ShardSpec shard;
  // Resume support: runs whose mask entry is true are adopted verbatim from
  // `resume_runs` instead of simulated (both vectors keyed by fault index,
  // sized to the campaign's run count when set). Adopted runs count toward
  // CampaignStats latency histograms exactly as if they had executed, so a
  // resumed campaign's stats are bit-identical to an uninterrupted one.
  const std::vector<bool>* resume_mask = nullptr;
  const std::vector<FaultRun>* resume_runs = nullptr;
  // External golden store-trace cache / shuffle table, for warm-starting
  // from a persistent store and serializing back after the campaign. Null =
  // the engine owns private instances (the historical behaviour).
  GoldenTraceCache* golden = nullptr;
  SharedShuffleTable* shuffle = nullptr;
  // Called under the report lock whenever a worker batch is flushed, with
  // the (fault index, run) pairs that just became durable-visible. This is
  // the checkpoint hook: the campaign store appends canonical records and
  // periodically writes an atomic checkpoint file from inside it.
  std::function<void(
      const std::vector<std::pair<std::size_t, FaultRun>>&)> on_flush;
};

// FNV-1a digest of everything that determines a campaign's records: the
// workload identity (program name, code, and data image) and the full
// configuration (mode, fault set parameters, budget, core parameters).
// Variable-length sequences are length-prefixed so configurations that only
// differ in where a field boundary falls can never collide — this digest
// keys the on-disk campaign store, where a collision would silently
// warm-start one study from another's state. Stamped into the JSONL header
// so downstream analysis can detect files mixing incompatible
// configurations.
std::uint64_t campaign_config_digest(const CampaignConfig& config,
                                     const Program& program);

// First line of every campaign JSONL file (streamed or canonical):
// identifies the build, the workload, the configuration, and its digest.
void write_campaign_jsonl_header(std::ostream& os, const Program& program,
                                 const CampaignConfig& config);

// One canonical JSONL line for a completed run: identical to the streamed
// record minus the wall-clock "seconds" field. Checkpoints, shard outputs,
// and merges are built from canonical records so a resumed or merged
// campaign's file is byte-identical to the uninterrupted run's.
std::string canonical_jsonl_record(const std::string& workload,
                                   const CampaignConfig& config,
                                   std::size_t index, const FaultRun& run);

// Registers campaign outcome counters, rates, throughput, and the
// per-outcome detection-latency histograms under "campaign.*".
void export_campaign_metrics(MetricsRegistry& registry,
                             const CampaignResult& result,
                             const CampaignStats* stats);

// Generates a deterministic set of fault sites (shared across modes so SRT
// and BlackJack face the *same* faults) and runs the campaign.
std::vector<HardFault> generate_faults(const CoreParams& params,
                                       int num_faults, std::uint64_t seed,
                                       const std::vector<FaultSite>& sites);

// The campaign's per-run fault labels in fault-index order — exactly the
// list the engine builds internally, so the persistence layer can
// reconstruct any run's label from its index instead of serializing labels.
// size() is the campaign's total run count (num_faults, or the enumerated /
// sampled space under `exhaustive`).
std::vector<HardFault> campaign_fault_labels(const CampaignConfig& config);

// The campaign's per-run armed injectors in fault-index order (parallel to
// campaign_fault_labels). The autopsy engine re-runs individual indices
// outside the campaign engine and must inject exactly what the campaign
// injected.
std::vector<FaultInjector> campaign_fault_injectors(
    const CampaignConfig& config);

// The parallel campaign engine. Results are written into a pre-sized vector
// keyed by fault index, so `CampaignResult` is bit-identical for every jobs
// count (including the serial wrappers below) regardless of scheduling.
CampaignResult run_campaign_parallel(const Program& program,
                                     const CampaignConfig& config,
                                     const ParallelCampaignOptions& options = {},
                                     CampaignStats* stats = nullptr);

// Serial convenience wrapper: the engine pinned to one worker, run inline.
CampaignResult run_campaign(const Program& program,
                            const CampaignConfig& config);

// Reference implementation predating the worker pool and the golden-trace
// cache: one thread, one emulator replay per run. Ground truth for the
// determinism tests and the honest baseline for speedup measurements.
CampaignResult run_campaign_reference(const Program& program,
                                      const CampaignConfig& config);

// A ready-made progress callback: single-line n/total + ETA + outcome
// histogram on stderr, prefixed with `label`.
std::function<void(const CampaignProgress&)> stderr_campaign_progress(
    const std::string& label);

}  // namespace bj
