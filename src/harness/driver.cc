#include "harness/driver.h"

#include "common/rng.h"

namespace bj {

SimResult run_simulation(const Program& program, const SimRequest& request) {
  FaultInjector injector =
      request.fault.has_value() ? FaultInjector(*request.fault)
                                : FaultInjector();
  Core core(program, request.mode, request.params, &injector);
  core.set_oracle_check(request.oracle_check);
  core.set_profiler(request.profiler);
  core.set_tracer(request.tracer);

  const std::uint64_t max_cycles =
      request.max_cycles != 0
          ? request.max_cycles
          : (request.warmup_commits + request.budget_commits) * 64 +
                request.params.watchdog_cycles * 4;

  // Warm-up window: run, then zero the statistics.
  core.run(request.warmup_commits, max_cycles);
  core.reset_stats();
  const std::uint64_t cycles_before = core.cycle();
  const RunOutcome outcome = core.run(request.budget_commits, max_cycles);

  SimResult r;
  r.workload = program.name;
  r.mode = request.mode;
  r.cycles = outcome.cycles - cycles_before;
  r.commits = core.stats().leading_commits;
  r.ipc = r.cycles ? static_cast<double>(r.commits) /
                         static_cast<double>(r.cycles)
                   : 0.0;

  const CoreStats& s = core.stats();
  r.coverage_total = s.coverage.total_coverage();
  r.coverage_frontend = s.coverage.frontend_coverage();
  r.coverage_backend = s.coverage.backend_coverage();
  r.coverage_pairs = s.coverage.pairs();
  r.lt_interference = s.lt_interference_fraction();
  r.tt_interference = s.tt_interference_fraction();
  r.other_diversity_loss =
      s.issue_cycles ? static_cast<double>(s.other_diversity_loss_cycles) /
                           static_cast<double>(s.issue_cycles)
                     : 0.0;
  r.burstiness = s.burstiness();
  r.shuffle_nops = s.shuffle_nops;
  r.packet_splits = s.packet_splits;
  r.packets = s.packets_shuffled;
  r.branch_mispredicts = s.branch_mispredicts;

  r.finished = outcome.program_finished;
  r.wedged = outcome.wedged;
  r.detected = outcome.detected;
  r.detections = outcome.detections;
  r.oracle_violated = core.oracle_violated();
  r.oracle_detail = core.oracle_violation_detail();
  return r;
}

SimResult run_workload(const WorkloadProfile& profile,
                       const SimRequest& request) {
  const Program program = generate_workload(profile);
  SimResult result = run_simulation(program, request);
  result.workload = profile.name;
  return result;
}

AggregateResult run_workload_seeds(const WorkloadProfile& profile,
                                   const SimRequest& request, int seeds) {
  AggregateResult agg;
  agg.workload = profile.name;
  agg.mode = request.mode;
  agg.seeds = seeds;
  // Seed 0 means "derive from the name"; an explicit nonzero seed is the
  // profile's effective seed and must anchor the perturbation, not be
  // silently replaced by the name hash.
  const std::uint64_t base_seed =
      profile.seed != 0 ? profile.seed : hash_name(profile.name);
  for (int i = 0; i < seeds; ++i) {
    WorkloadProfile variant = profile;
    // Keep the canonical instance as the first sample and perturb
    // deterministically afterwards.
    if (i > 0) variant.seed = base_seed + static_cast<std::uint64_t>(i);
    const SimResult r = run_workload(variant, request);
    agg.ipc.add(r.ipc);
    agg.coverage_total.add(r.coverage_total);
    agg.coverage_backend.add(r.coverage_backend);
    agg.lt_interference.add(r.lt_interference);
    agg.tt_interference.add(r.tt_interference);
    agg.burstiness.add(r.burstiness);
  }
  return agg;
}

}  // namespace bj
