// Hard-fault diagnosis by deconfiguration (extension; cf. the paper's
// related work: Bower et al.'s online diagnosis, Rescue's isolate-and-avoid,
// and Srinivasan et al.'s structural duplication).
//
// Once BlackJack has *detected* a hard error, the natural next question is
// "which unit?". Backend ways are redundant (4 int ALUs, 2 of everything
// else), so a diagnosis pass can rerun the detecting workload with one way
// disabled at a time: the configuration in which detections disappear names
// the faulty unit, and the chip can keep running in degraded mode with that
// way fenced off.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault_model.h"
#include "isa/program.h"
#include "pipeline/core.h"

namespace bj {

struct DiagnosisTrial {
  FuClass fu = FuClass::kIntAlu;
  int way = 0;
  bool detected = false;  // did the redundancy checks still fire?
};

struct DiagnosisResult {
  // The localized faulty unit, if exactly one deconfiguration silenced the
  // detections. nullopt: the fault is not in a (deconfigurable) backend way
  // — e.g., a decoder-lane fault.
  std::optional<std::pair<FuClass, int>> suspect;
  bool baseline_detected = false;  // sanity: fault visible at all?
  std::vector<DiagnosisTrial> trials;

  // Degraded-mode performance with the suspect fenced off, relative to the
  // healthy machine (1.0 = no loss). Only meaningful when suspect is set.
  double degraded_performance = 0.0;
};

// Runs the diagnosis sweep: a baseline run (expects a detection), then one
// run per backend way with that way disabled. `budget_commits` bounds each
// trial. The injector's fault is the ground truth being localized; the
// diagnosis itself never looks at it.
//
// Deconfiguration trials are independent simulations, so they fan out over
// the harness worker pool: `jobs` threads (0 = one per hardware thread,
// 1 = serial). The known-answer store trace is shared through one
// GoldenTraceCache, and trials land in `DiagnosisResult::trials` by index,
// so the result is identical for every jobs count.
//
// `oracle_check` threads the campaign's oracle setting into every trial
// (instead of the historical hard-coded off): with it on, a trial whose
// deconfigured core silently diverges from the architectural oracle counts
// as still-faulty even if no corrupt store was released within the budget.
DiagnosisResult diagnose_backend_fault(const Program& program, Mode mode,
                                       const CoreParams& params,
                                       const HardFault& fault,
                                       std::uint64_t budget_commits,
                                       int jobs = 1,
                                       bool oracle_check = false);

}  // namespace bj
