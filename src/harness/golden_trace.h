// Shared golden store-trace cache. Classifying a fault run as corrupt vs
// benign requires the fault-free store trace of the same program; computing
// it used to mean replaying the architectural emulator once per fault run.
// Every run in a campaign replays the *same prefix* of the same program, so
// one cache per Program suffices: a single emulator instance is advanced
// lazily, under a lock, exactly as far as the longest prefix any run has
// asked for, and never re-executes an instruction.
//
// Thread safety: all state (emulator, store vector, step count) is guarded
// by one mutex; `prefix()` returns a copy taken under the lock so callers
// never observe the vector mid-growth. Growth is monotonic and the emulator
// is deterministic, so the first k stores handed to any caller are identical
// regardless of which run triggered the growth — this is what makes the
// parallel campaign bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "arch/emulator.h"
#include "isa/program.h"

namespace bj {

class GoldenTraceCache {
 public:
  explicit GoldenTraceCache(const Program& program) : emu_(program) {}

  GoldenTraceCache(const GoldenTraceCache&) = delete;
  GoldenTraceCache& operator=(const GoldenTraceCache&) = delete;

  // Returns the first `min_count` golden (addr, data) store pairs — fewer if
  // the program halts or the cumulative step cap `max_instructions` is
  // reached first. The cap bounds total emulator work for endless programs;
  // callers within one campaign must pass the same cap so every run sees the
  // same trace a fresh capped emulator would have produced.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> prefix(
      std::size_t min_count, std::uint64_t max_instructions);

  // Emulator instructions retired so far (for throughput reporting).
  std::uint64_t steps() const;

 private:
  mutable std::mutex mu_;
  Emulator emu_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores_;
  std::uint64_t steps_ = 0;
};

}  // namespace bj
