// Shared golden store-trace cache. Classifying a fault run as corrupt vs
// benign requires the fault-free store trace of the same program; computing
// it used to mean replaying the architectural emulator once per fault run.
// Every run in a campaign replays the *same prefix* of the same program, so
// one cache per Program suffices: a single emulator instance is advanced
// lazily, under a lock, exactly as far as the longest prefix any run has
// asked for, and never re-executes an instruction.
//
// Thread safety: all state (emulator, store vector, step count) is guarded
// by one mutex; `prefix()` returns a copy taken under the lock so callers
// never observe the vector mid-growth. Growth is monotonic and the emulator
// is deterministic, so the first k stores handed to any caller are identical
// regardless of which run triggered the growth — this is what makes the
// parallel campaign bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "arch/emulator.h"
#include "isa/program.h"

namespace bj {

// Persistable image of a cache's progress: the stores computed so far, how
// many emulator instructions they cover, and whether the program halted
// within them (in which case the trace is complete and can never grow).
// This is what the campaign store serializes so repeated studies of the
// same workload warm-start without re-running the emulator.
struct GoldenTraceSnapshot {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
  std::uint64_t steps = 0;
  bool halted = false;
};

class GoldenTraceCache {
 public:
  explicit GoldenTraceCache(const Program& program) : emu_(program) {}

  GoldenTraceCache(const GoldenTraceCache&) = delete;
  GoldenTraceCache& operator=(const GoldenTraceCache&) = delete;

  // Returns the first `min_count` golden (addr, data) store pairs — fewer if
  // the program halts or the cumulative step cap `max_instructions` is
  // reached first. The cap bounds total emulator work for endless programs;
  // callers within one campaign must pass the same cap so every run sees the
  // same trace a fresh capped emulator would have produced.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> prefix(
      std::size_t min_count, std::uint64_t max_instructions);

  // Adopts a previously snapshotted trace. The emulator is deterministic, so
  // the adopted prefix is byte-identical to what this cache would have
  // computed itself; if a later request outgrows the snapshot (and the
  // program had not halted), the live emulator fast-forwards through the
  // covered prefix once and continues from there. Only valid before the
  // first prefix() call.
  void preload(GoldenTraceSnapshot snapshot);

  // Current progress, for serialization into the campaign store.
  GoldenTraceSnapshot snapshot_state() const;

  // Emulator instructions covered by the cached trace so far (preloaded +
  // executed; for throughput reporting and fill spans).
  std::uint64_t steps() const;

  // Instructions the live emulator actually executed in this process — a
  // warm-started campaign whose snapshot covered every request reports 0,
  // which is how tests observe that regeneration was skipped.
  std::uint64_t executed_steps() const;

  // Stores adopted from preload() (0 for a cold cache).
  std::uint64_t preloaded_stores() const;

 private:
  mutable std::mutex mu_;
  Emulator emu_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores_;
  std::uint64_t steps_ = 0;      // instructions covered by stores_
  std::uint64_t emu_steps_ = 0;  // instructions emu_ has executed
  std::uint64_t preloaded_ = 0;
  bool halted_hint_ = false;  // snapshot said the program halted in-prefix
};

}  // namespace bj
