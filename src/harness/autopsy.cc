#include "harness/autopsy.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "arch/emulator.h"
#include "common/check.h"
#include "harness/golden_trace.h"
#include "harness/worker_pool.h"
#include "pipeline/core.h"

namespace bj {

const char* autopsy_select_name(AutopsySelect select) {
  switch (select) {
    case AutopsySelect::kEscapes: return "escapes";
    case AutopsySelect::kDetected: return "detected";
    case AutopsySelect::kAll: return "all";
  }
  return "?";
}

bool parse_autopsy_select(std::string_view name, AutopsySelect* out) {
  for (const AutopsySelect candidate :
       {AutopsySelect::kEscapes, AutopsySelect::kDetected,
        AutopsySelect::kAll}) {
    if (name == autopsy_select_name(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

bool autopsy_selects(AutopsySelect select, FaultOutcome outcome) {
  switch (select) {
    case AutopsySelect::kEscapes:
      return outcome == FaultOutcome::kSdc ||
             outcome == FaultOutcome::kDetectedLate ||
             outcome == FaultOutcome::kOracleDivergence;
    case AutopsySelect::kDetected:
      return outcome == FaultOutcome::kDetected ||
             outcome == FaultOutcome::kDetectedLate ||
             outcome == FaultOutcome::kWedged;
    case AutopsySelect::kAll:
      return outcome != FaultOutcome::kBenign;
  }
  return false;
}

const char* divergence_kind_name(DivergenceKind kind) {
  switch (kind) {
    case DivergenceKind::kPcStream: return "pc-stream";
    case DivergenceKind::kStoreAddress: return "store-address";
    case DivergenceKind::kStoreData: return "store-data";
    case DivergenceKind::kLoadAddress: return "load-address";
    case DivergenceKind::kLoadValue: return "load-value";
    case DivergenceKind::kRegValue: return "reg-value";
    case DivergenceKind::kNextPc: return "next-pc";
    case DivergenceKind::kOracleHalted: return "oracle-halted";
  }
  return "?";
}

namespace {

// Lockstep comparator: its own architectural emulator advanced once per
// committed leading instruction, mirroring Core::check_against_oracle's
// comparison — but recording structured events instead of a single boolean.
// The aspect order (pc, store, load, register, control target) matches the
// oracle check, so "what diverged first" means the same thing in both.
class LockstepObserver : public CommitObserver {
 public:
  explicit LockstepObserver(const Program& program) : oracle_(program) {}

  void on_leading_commit(const DynInst& inst, std::uint64_t cycle) override {
    DivergenceEvent ev;
    ev.seq = inst.seq;
    ev.cycle = cycle;
    ev.pc = inst.pc;

    const std::optional<RetireRecord> rec = oracle_.step();
    bool diverged = false;
    if (!rec.has_value()) {
      diverged = true;
      ev.kind = DivergenceKind::kOracleHalted;
      ev.actual = inst.pc;
    } else {
      const DecodedInst& d = inst.di();
      const bool want_store = rec->store.has_value();
      const bool want_load = rec->load.has_value();
      if (rec->pc != inst.pc) {
        diverged = true;
        ev.kind = DivergenceKind::kPcStream;
        ev.expected = rec->pc;
        ev.actual = inst.pc;
      } else if (want_store != d.is_store() ||
                 (want_store && rec->store->first != inst.mem_addr)) {
        // A phantom or missing store (decode fault flipped the opcode class)
        // is an address divergence with the absent side reading 0.
        diverged = true;
        ev.kind = DivergenceKind::kStoreAddress;
        ev.expected = want_store ? rec->store->first : 0;
        ev.actual = d.is_store() ? inst.mem_addr : 0;
      } else if (want_store && rec->store->second != inst.result) {
        diverged = true;
        ev.kind = DivergenceKind::kStoreData;
        ev.expected = rec->store->second;
        ev.actual = inst.result;
      } else if (want_load != d.is_load() ||
                 (want_load && rec->load->first != inst.mem_addr)) {
        diverged = true;
        ev.kind = DivergenceKind::kLoadAddress;
        ev.expected = want_load ? rec->load->first : 0;
        ev.actual = d.is_load() ? inst.mem_addr : 0;
      } else if (want_load && rec->load->second != inst.result) {
        diverged = true;
        ev.kind = DivergenceKind::kLoadValue;
        ev.expected = rec->load->second;
        ev.actual = inst.result;
      } else if (rec->wrote_reg && !rec->inst.is_load() &&
                 inst.result != rec->dst_value) {
        diverged = true;
        ev.kind = DivergenceKind::kRegValue;
        ev.expected = rec->dst_value;
        ev.actual = inst.result;
      } else if (rec->inst.is_control()) {
        const std::uint64_t next = (d.valid && d.is_control() && inst.taken)
                                       ? inst.target
                                       : inst.pc + 1;
        if (next != rec->next_pc) {
          diverged = true;
          ev.kind = DivergenceKind::kNextPc;
          ev.expected = rec->next_pc;
          ev.actual = next;
        }
      }
    }
    if (!diverged) return;
    ++divergent_commits_;
    if (!has_first_) {
      has_first_ = true;
      first_ = ev;
      return;
    }
    if (chain_.size() < kAutopsyChainCap) {
      chain_.push_back(ev);
    } else {
      chain_truncated_ = true;
    }
  }

  bool diverged() const { return has_first_; }
  const DivergenceEvent& first() const { return first_; }
  std::vector<DivergenceEvent>&& take_chain() { return std::move(chain_); }
  bool chain_truncated() const { return chain_truncated_; }
  std::uint64_t divergent_commits() const { return divergent_commits_; }

 private:
  Emulator oracle_;
  bool has_first_ = false;
  DivergenceEvent first_;
  std::vector<DivergenceEvent> chain_;
  bool chain_truncated_ = false;
  std::uint64_t divergent_commits_ = 0;
};

// The campaign engine's classification step cap and cycle budget, replicated
// verbatim (campaign.cc keeps them internal): the autopsy replay must ask
// the golden cache for exactly the prefix the campaign's classifier saw, or
// the re-derived outcome could disagree at the cap boundary.
std::uint64_t autopsy_golden_step_cap(const CampaignConfig& config) {
  return config.budget_commits * 4 + 1000000;
}
std::uint64_t autopsy_max_cycles(const CampaignConfig& config) {
  return config.budget_commits * 64 + config.params.watchdog_cycles * 4;
}

// One lockstep re-run. Mirrors campaign.cc's execute_fault_run exactly —
// same injector, oracle setting, provenance attachment, budget, and golden
// prefix — with the observer riding along (pure observation, so the
// simulated behaviour and therefore the re-derived outcome are identical to
// the campaign's run for this index).
AutopsyRecord autopsy_one(const Program& program, const CampaignConfig& config,
                          std::size_t index, FaultInjector injector,
                          const HardFault& label, GoldenTraceCache& golden) {
  Core core(program, config.mode, config.params, &injector);
  core.set_oracle_check(config.oracle_check);
  FaultProvenance provenance;
  core.set_provenance(&provenance);
  LockstepObserver observer(program);
  core.set_commit_observer(&observer);
  const RunOutcome outcome =
      core.run(config.budget_commits, autopsy_max_cycles(config));

  AutopsyRecord rec;
  rec.index = index;
  rec.fault = label;
  rec.diverged = observer.diverged();
  rec.first = observer.first();
  rec.chain = observer.take_chain();
  rec.chain_truncated = observer.chain_truncated();
  rec.divergent_commits = observer.divergent_commits();

  // Corrupt-store analysis, identical to the campaign classifier.
  const auto& released = core.released_stores();
  const auto& release_cycles = core.released_store_cycles();
  const auto golden_prefix =
      golden.prefix(released.size(), autopsy_golden_step_cap(config));
  std::uint64_t corrupt_stores = 0;
  for (std::size_t i = 0; i < released.size(); ++i) {
    const bool wrong = i >= golden_prefix.size() ||
                       released[i].addr != golden_prefix[i].first ||
                       released[i].data != golden_prefix[i].second;
    if (!wrong) continue;
    if (corrupt_stores == 0 && i < release_cycles.size()) {
      rec.corrupt_store_released = true;
      rec.first_corrupt_store_ordinal = released[i].ordinal;
      rec.first_corrupt_store_addr = released[i].addr;
      rec.first_corrupt_store_data = released[i].data;
      rec.first_corrupt_store_cycle = release_cycles[i];
      if (!provenance.corrupted) {
        provenance.corrupted = true;
        provenance.first_corruption_cycle = release_cycles[i];
      }
    }
    ++corrupt_stores;
  }
  rec.activated = provenance.activated;
  rec.first_activation_cycle = provenance.first_activation_cycle;

  if (!outcome.detections.empty()) {
    const DetectionEvent& first = outcome.detections.front();
    rec.detected = true;
    rec.detection_kind = first.kind;
    rec.detection_cycle = first.cycle;
    rec.detection_pc = first.pc;
    rec.detection_seq = first.seq;
    rec.detection_latency = provenance.detection_latency();
    if (first.kind == DetectionKind::kWatchdogTimeout) {
      rec.outcome = FaultOutcome::kWedged;
    } else {
      rec.outcome = corrupt_stores == 0 ? FaultOutcome::kDetected
                                        : FaultOutcome::kDetectedLate;
    }
  } else if (corrupt_stores > 0) {
    rec.outcome = FaultOutcome::kSdc;
  } else if (core.oracle_violated()) {
    rec.outcome = FaultOutcome::kOracleDivergence;
  } else {
    rec.outcome = FaultOutcome::kBenign;
  }

  // The chain explains propagation *up to* the terminal event — the first
  // corrupt store's release or the detecting check. Later divergent commits
  // (possible when the watchdog let the machine run on) stay in
  // divergent_commits but out of the chain.
  std::uint64_t window_end = ~0ull;
  if (rec.corrupt_store_released) {
    window_end = rec.first_corrupt_store_cycle;
  }
  if (rec.detected && rec.detection_cycle < window_end) {
    window_end = rec.detection_cycle;
  }
  if (window_end != ~0ull) {
    const auto past = std::remove_if(
        rec.chain.begin(), rec.chain.end(),
        [window_end](const DivergenceEvent& e) { return e.cycle > window_end; });
    if (past != rec.chain.end()) {
      rec.chain.erase(past, rec.chain.end());
      rec.chain_truncated = true;
    }
  }
  return rec;
}

void write_divergence_event(std::ostream& os, const DivergenceEvent& ev) {
  os << "{\"seq\":" << ev.seq << ",\"cycle\":" << ev.cycle << ",\"pc\":"
     << ev.pc << ",\"kind\":\"" << divergence_kind_name(ev.kind)
     << "\",\"expected\":" << ev.expected << ",\"actual\":" << ev.actual
     << "}";
}

}  // namespace

AutopsyRecord autopsy_single_run(const Program& program,
                                 const CampaignConfig& config,
                                 const FaultInjector& injector,
                                 const HardFault& label) {
  GoldenTraceCache golden(program);
  return autopsy_one(program, config, 0, injector, label, golden);
}

AutopsyRecord autopsy_fault_run(const Program& program,
                                const CampaignConfig& config,
                                std::size_t index, GoldenTraceCache* golden) {
  const std::vector<FaultInjector> injectors =
      campaign_fault_injectors(config);
  const std::vector<HardFault> labels = campaign_fault_labels(config);
  if (index >= injectors.size()) {
    throw std::runtime_error("autopsy: fault index out of range");
  }
  GoldenTraceCache local(program);
  return autopsy_one(program, config, index, injectors[index], labels[index],
                     golden != nullptr ? *golden : local);
}

AutopsyResult run_campaign_autopsy(const Program& program,
                                   const CampaignConfig& config,
                                   const CampaignResult& result,
                                   const AutopsyOptions& options) {
  const std::vector<FaultInjector> injectors =
      campaign_fault_injectors(config);
  const std::vector<HardFault> labels = campaign_fault_labels(config);
  if (result.runs.size() != injectors.size()) {
    throw std::runtime_error(
        "autopsy: campaign result does not match the configuration's fault "
        "space");
  }

  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    if (autopsy_selects(options.select, result.runs[i].outcome)) {
      selected.push_back(i);
    }
  }

  AutopsyResult out;
  out.select = options.select;
  out.records.resize(selected.size());

  GoldenTraceCache local(program);
  GoldenTraceCache& golden =
      options.golden != nullptr ? *options.golden : local;

  // Worker threads only write their own index-keyed slot; mismatches are
  // collected under the mutex and thrown after the pool joins.
  std::mutex mu;
  std::size_t done = 0;
  std::string mismatch;
  parallel_for_workers(
      options.jobs, selected.size(), [&](std::size_t, std::size_t k) {
        const std::size_t index = selected[k];
        AutopsyRecord rec = autopsy_one(program, config, index,
                                        injectors[index], labels[index],
                                        golden);
        const FaultOutcome stored = result.runs[index].outcome;
        out.records[k] = std::move(rec);
        std::lock_guard<std::mutex> lock(mu);
        if (out.records[k].outcome != stored && mismatch.empty()) {
          mismatch = std::string("autopsy replay of fault ") +
                     std::to_string(index) + " re-derived outcome " +
                     fault_outcome_name(out.records[k].outcome) +
                     " but the campaign recorded " +
                     fault_outcome_name(stored);
        }
        ++done;
        if (options.progress) options.progress(done, selected.size());
      });
  if (!mismatch.empty()) throw std::runtime_error(mismatch);
  return out;
}

std::string canonical_autopsy_record(const std::string& workload,
                                     const CampaignConfig& config,
                                     const AutopsyRecord& record) {
  std::ostringstream os;
  os << "{\"record\":\"autopsy\",\"index\":" << record.index
     << ",\"workload\":\"" << workload << "\",\"mode\":\""
     << mode_name(config.mode) << "\",\"fault\":\""
     << (config.soft_errors
             ? "transient bit " + std::to_string(record.fault.bit)
             : record.fault.describe())
     << "\",\"outcome\":\"" << fault_outcome_name(record.outcome) << "\"";
  // Field presence encodes the booleans, exactly as in runs.jsonl records.
  if (record.activated) {
    os << ",\"first_activation_cycle\":" << record.first_activation_cycle;
  }
  os << ",\"divergent_commits\":" << record.divergent_commits;
  if (record.diverged) {
    os << ",\"divergence\":";
    write_divergence_event(os, record.first);
  }
  if (!record.chain.empty()) {
    os << ",\"chain\":[";
    for (std::size_t i = 0; i < record.chain.size(); ++i) {
      if (i > 0) os << ",";
      write_divergence_event(os, record.chain[i]);
    }
    os << "]";
  }
  if (record.chain_truncated) os << ",\"chain_truncated\":true";
  if (record.corrupt_store_released) {
    os << ",\"first_corrupt_store\":{\"ordinal\":"
       << record.first_corrupt_store_ordinal << ",\"addr\":"
       << record.first_corrupt_store_addr << ",\"data\":"
       << record.first_corrupt_store_data << ",\"cycle\":"
       << record.first_corrupt_store_cycle << "}";
  }
  if (record.detected) {
    os << ",\"detection\":{\"kind\":\""
       << detection_kind_name(record.detection_kind) << "\",\"cycle\":"
       << record.detection_cycle << ",\"pc\":" << record.detection_pc
       << ",\"seq\":" << record.detection_seq << "},\"detection_latency\":"
       << record.detection_latency;
  }
  os << "}\n";
  return os.str();
}

std::string autopsy_jsonl(const Program& program, const CampaignConfig& config,
                          const AutopsyResult& result) {
  std::ostringstream os;
  write_campaign_jsonl_header(os, program, config);
  for (const AutopsyRecord& record : result.records) {
    os << canonical_autopsy_record(program.name, config, record);
  }
  os << "{\"record\":\"footer\",\"complete\":true,\"select\":\""
     << autopsy_select_name(result.select) << "\",\"autopsies\":"
     << result.records.size() << "}\n";
  return os.str();
}

void export_autopsy_metrics(MetricsRegistry& registry,
                            const CampaignConfig& config,
                            const AutopsyResult& result) {
  registry.text("campaign.autopsy.select",
                autopsy_select_name(result.select));
  registry.counter("campaign.autopsy.records", result.records.size());

  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> escapes_by_site;
  Histogram divergence_to_detection;
  for (const AutopsyRecord& record : result.records) {
    if (record.diverged) {
      ++by_kind[divergence_kind_name(record.first.kind)];
    }
    if (autopsy_selects(AutopsySelect::kEscapes, record.outcome)) {
      const std::string site = config.soft_errors
                                   ? "transient"
                                   : fault_site_name(record.fault.site);
      ++escapes_by_site[site];
    }
    if (record.detected && record.diverged &&
        record.detection_cycle >= record.first.cycle) {
      divergence_to_detection.add(record.detection_cycle -
                                  record.first.cycle);
    }
  }
  for (const auto& [kind, n] : by_kind) {
    registry.counter("campaign.autopsy.divergence." + kind, n);
  }
  for (const auto& [site, n] : escapes_by_site) {
    registry.counter("campaign.autopsy.escapes.site." + site, n);
  }
  if (divergence_to_detection.count() > 0) {
    registry.histogram("campaign.autopsy.divergence_to_detection",
                       divergence_to_detection);
    registry.gauge("campaign.autopsy.divergence_to_detection.p50",
                   divergence_to_detection.quantile(0.50));
    registry.gauge("campaign.autopsy.divergence_to_detection.p90",
                   divergence_to_detection.quantile(0.90));
    registry.gauge("campaign.autopsy.divergence_to_detection.p99",
                   divergence_to_detection.quantile(0.99));
  }
}

}  // namespace bj
