#include "harness/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "arch/emulator.h"
#include "blackjack/shuffle.h"
#include "common/check.h"
#include "common/env.h"
#include "common/rng.h"
#include "harness/golden_trace.h"
#include "harness/worker_pool.h"

namespace bj {

const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kDetectedLate: return "detected-late";
    case FaultOutcome::kWedged: return "wedged";
    case FaultOutcome::kSdc: return "sdc";
    case FaultOutcome::kBenign: return "benign";
    case FaultOutcome::kOracleDivergence: return "oracle-divergence";
  }
  return "?";
}

bool parse_fault_outcome(std::string_view name, FaultOutcome* out) {
  for (const FaultOutcome candidate :
       {FaultOutcome::kDetected, FaultOutcome::kDetectedLate,
        FaultOutcome::kWedged, FaultOutcome::kSdc, FaultOutcome::kBenign,
        FaultOutcome::kOracleDivergence}) {
    if (name == fault_outcome_name(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

std::map<FaultOutcome, int> CampaignResult::totals() const {
  std::map<FaultOutcome, int> t;
  for (const FaultRun& run : runs) ++t[run.outcome];
  return t;
}

int CampaignResult::count(FaultOutcome outcome) const {
  const auto t = totals();
  const auto it = t.find(outcome);
  return it == t.end() ? 0 : it->second;
}

namespace {

// One pass over the activated runs, shared by every rate helper.
struct ActivatedTally {
  int activated = 0;
  int detected = 0;
  int corrupted = 0;
  int sdc = 0;
};

ActivatedTally tally_activated(const std::vector<FaultRun>& runs) {
  ActivatedTally t;
  for (const FaultRun& run : runs) {
    if (run.activations == 0) continue;
    ++t.activated;
    if (run.outcome == FaultOutcome::kDetected ||
        run.outcome == FaultOutcome::kDetectedLate ||
        run.outcome == FaultOutcome::kWedged) {
      ++t.detected;
    }
    if (run.corrupt_stores_released > 0) ++t.corrupted;
    if (run.outcome == FaultOutcome::kSdc) ++t.sdc;
  }
  return t;
}

double rate(int numerator, int denominator) {
  return denominator ? static_cast<double>(numerator) / denominator : 0.0;
}

}  // namespace

double CampaignResult::detection_rate_of_activated() const {
  const ActivatedTally t = tally_activated(runs);
  return rate(t.detected, t.activated);
}

double CampaignResult::corruption_rate_of_activated() const {
  const ActivatedTally t = tally_activated(runs);
  return rate(t.corrupted, t.activated);
}

double CampaignResult::sdc_rate_of_activated() const {
  const ActivatedTally t = tally_activated(runs);
  return rate(t.sdc, t.activated);
}

namespace {

// The site pool an empty `sites` restriction stands for, shared by the
// sampling generator and the exhaustive enumerator so both agree on what
// "all sites" means.
std::vector<FaultSite> site_pool(const std::vector<FaultSite>& sites) {
  if (!sites.empty()) return sites;
  return {FaultSite::kFrontendDecoder, FaultSite::kBackendResult,
          FaultSite::kIqPayload};
}

// Bit ranges of the enumerable fault space per site, matching the ranges
// generate_faults() samples from.
constexpr std::uint64_t kDecoderBits = 32;   // 32-bit instruction word
constexpr std::uint64_t kBackendBits = 64;   // 64-bit result path
constexpr std::uint64_t kPayloadBits = 16;   // immediate payload slice
constexpr std::uint64_t kRegfileBits = 64;   // stored register value
constexpr std::uint64_t kLvqBits = 64;       // stored load value
constexpr std::uint64_t kDtqBits = 32;       // stored instruction word
constexpr std::uint64_t kStuckValues = 2;
// Mem-port faults hit the address path, and the injector re-aligns the
// forced address to 8 bytes (`& ~7ull`) — so stuck-ats on bits 0–2 are
// guaranteed no-ops. They must not be enumerated: counting them both wastes
// exhaustive-campaign runs and inflates every coverage denominator computed
// from the space size. Only bits [3, 64) are real mem-way faults.
constexpr std::uint64_t kMemAddrAlignedBits = 3;
constexpr std::uint64_t kMemBackendBits = kBackendBits - kMemAddrAlignedBits;

std::uint64_t backend_bits_for(FuClass cls) {
  return cls == FuClass::kMem ? kMemBackendBits : kBackendBits;
}

// Combinations contributed by one site of the pool.
std::uint64_t site_space_size(const CoreParams& params, FaultSite site) {
  switch (site) {
    case FaultSite::kFrontendDecoder:
      return static_cast<std::uint64_t>(params.fetch_width) * kDecoderBits *
             kStuckValues;
    case FaultSite::kBackendResult: {
      std::uint64_t total = 0;
      for (int c = 0; c < kNumFuClasses; ++c) {
        const auto cls = static_cast<FuClass>(c);
        total += static_cast<std::uint64_t>(params.fu_count(cls)) *
                 backend_bits_for(cls) * kStuckValues;
      }
      return total;
    }
    case FaultSite::kIqPayload:
      return static_cast<std::uint64_t>(params.issue_queue_entries) *
             kPayloadBits * kStuckValues;
    case FaultSite::kRegfileEntry:
      return static_cast<std::uint64_t>(params.phys_int_regs +
                                        params.phys_fp_regs) *
             kRegfileBits * kStuckValues;
    case FaultSite::kLvqSlot:
      return static_cast<std::uint64_t>(params.lvq_entries) * kLvqBits *
             kStuckValues;
    case FaultSite::kDtqSlot:
      return static_cast<std::uint64_t>(params.dtq_entries) * kDtqBits *
             kStuckValues;
  }
  return 0;
}

}  // namespace

std::uint64_t fault_space_size(const CoreParams& params,
                               const std::vector<FaultSite>& sites) {
  std::uint64_t total = 0;
  for (const FaultSite site : site_pool(sites)) {
    total += site_space_size(params, site);
  }
  return total;
}

HardFault fault_space_at(const CoreParams& params,
                         const std::vector<FaultSite>& sites,
                         std::uint64_t index) {
  for (const FaultSite site : site_pool(sites)) {
    const std::uint64_t space = site_space_size(params, site);
    if (index >= space) {
      index -= space;
      continue;
    }
    HardFault f;
    f.site = site;
    f.stuck_value = (index % kStuckValues) != 0;
    const std::uint64_t rest = index / kStuckValues;
    switch (site) {
      case FaultSite::kFrontendDecoder:
        f.bit = static_cast<int>(rest % kDecoderBits);
        f.frontend_way = static_cast<int>(rest / kDecoderBits);
        break;
      case FaultSite::kBackendResult: {
        // Per-class blocks (in FuClass order) because the mem ports
        // enumerate fewer bits than the computation units: the injector's
        // 8-byte re-alignment erases address bits 0–2, so those are not
        // part of the space. kMem is the last class, which keeps every
        // non-mem index decoding exactly as it did when all classes used
        // kBackendBits — the sampled-campaign RNG mapping is pinned by the
        // campaign fingerprint.
        std::uint64_t r = rest;
        for (int c = 0; c < kNumFuClasses; ++c) {
          const auto cls = static_cast<FuClass>(c);
          const std::uint64_t bits = backend_bits_for(cls);
          const std::uint64_t block =
              static_cast<std::uint64_t>(params.fu_count(cls)) * bits;
          if (r < block) {
            f.fu = cls;
            f.bit = static_cast<int>(r % bits);
            if (cls == FuClass::kMem) {
              f.bit += static_cast<int>(kMemAddrAlignedBits);
            }
            f.backend_way = static_cast<int>(r / bits);
            break;
          }
          r -= block;
        }
        break;
      }
      case FaultSite::kIqPayload:
        f.bit = static_cast<int>(rest % kPayloadBits);
        f.iq_entry = static_cast<int>(rest / kPayloadBits);
        break;
      case FaultSite::kRegfileEntry:
        f.bit = static_cast<int>(rest % kRegfileBits);
        f.storage_index = static_cast<int>(rest / kRegfileBits);
        break;
      case FaultSite::kLvqSlot:
        f.bit = static_cast<int>(rest % kLvqBits);
        f.storage_index = static_cast<int>(rest / kLvqBits);
        break;
      case FaultSite::kDtqSlot:
        f.bit = static_cast<int>(rest % kDtqBits);
        f.storage_index = static_cast<int>(rest / kDtqBits);
        break;
    }
    return f;
  }
  BJ_CHECK(false, "fault_space_at index out of range");
  return {};
}

ShardSpec parse_shard_spec(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw std::runtime_error("malformed shard spec: " + spec +
                             " (expected i/N, e.g. 2/4)");
  }
  ShardSpec shard;
  try {
    shard.index = std::stoi(spec.substr(0, slash));
    shard.count = std::stoi(spec.substr(slash + 1));
  } catch (const std::exception&) {
    throw std::runtime_error("malformed shard spec: " + spec);
  }
  if (shard.count < 1 || shard.index < 1 || shard.index > shard.count) {
    throw std::runtime_error("shard index out of range: " + spec);
  }
  return shard;
}

std::vector<HardFault> generate_faults(const CoreParams& params,
                                       int num_faults, std::uint64_t seed,
                                       const std::vector<FaultSite>& sites) {
  std::vector<FaultSite> pool = site_pool(sites);
  Rng rng(seed);
  std::vector<HardFault> faults;
  faults.reserve(static_cast<std::size_t>(num_faults));
  for (int i = 0; i < num_faults; ++i) {
    HardFault f;
    f.site = pool[rng.next_below(pool.size())];
    f.stuck_value = rng.chance(0.5);
    switch (f.site) {
      case FaultSite::kFrontendDecoder:
        f.frontend_way = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.fetch_width)));
        f.bit = static_cast<int>(rng.next_below(32));
        break;
      case FaultSite::kBackendResult: {
        f.fu = static_cast<FuClass>(rng.next_below(kNumFuClasses));
        f.backend_way = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.fu_count(f.fu))));
        // Bias toward low-order bits so more faults are architecturally
        // visible within a short run.
        f.bit = static_cast<int>(rng.next_below(rng.chance(0.5) ? 16 : 64));
        break;
      }
      case FaultSite::kIqPayload:
        f.iq_entry = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.issue_queue_entries)));
        f.bit = static_cast<int>(rng.next_below(16));
        break;
      // Storage-array sites are never in the default pool (the historical
      // three-site RNG stream is pinned by the campaign fingerprint); they
      // are drawn only when the caller restricts --fault-site to them.
      case FaultSite::kRegfileEntry:
        f.storage_index = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.phys_int_regs +
                                       params.phys_fp_regs)));
        // Same low-bit bias as the backend result path: low bits of a stored
        // value are far more often architecturally live in a short run.
        f.bit = static_cast<int>(rng.next_below(rng.chance(0.5) ? 16 : 64));
        break;
      case FaultSite::kLvqSlot:
        f.storage_index = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.lvq_entries)));
        f.bit = static_cast<int>(rng.next_below(rng.chance(0.5) ? 16 : 64));
        break;
      case FaultSite::kDtqSlot:
        f.storage_index = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.dtq_entries)));
        f.bit = static_cast<int>(rng.next_below(32));
        break;
    }
    faults.push_back(f);
  }
  return faults;
}

namespace {

// Golden store trace from the architectural emulator, long enough to cover
// anything the faulty run may have released. Used only by the reference
// implementation; the engine goes through GoldenTraceCache.
std::vector<std::pair<std::uint64_t, std::uint64_t>> golden_stores(
    const Program& program, std::size_t min_count,
    std::uint64_t max_instructions) {
  Emulator emu(program);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
  std::uint64_t steps = 0;
  while (stores.size() < min_count && steps < max_instructions &&
         !emu.halted()) {
    const auto rec = emu.step();
    if (!rec.has_value()) break;
    ++steps;
    if (rec->store.has_value()) stores.push_back(*rec->store);
  }
  return stores;
}

// The campaign's fault list, as (injector, bookkeeping label) pairs.
void build_injectors(const CampaignConfig& config,
                     std::vector<FaultInjector>* injectors,
                     std::vector<HardFault>* labels) {
  if (config.exhaustive) {
    if (config.soft_errors) {
      throw std::runtime_error(
          "--exhaustive enumerates the hard-fault space; the transient "
          "space is unbounded (drop --soft-errors)");
    }
    const std::uint64_t space =
        fault_space_size(config.params, config.sites);
    const auto want = static_cast<std::uint64_t>(
        config.test_count > 0 ? config.test_count : 0);
    if (want == 0 || want >= space) {
      // Full factorial: every combination, in enumeration order.
      for (std::uint64_t i = 0; i < space; ++i) {
        const HardFault f = fault_space_at(config.params, config.sites, i);
        injectors->emplace_back(f);
        labels->push_back(f);
      }
    } else {
      // Sampled factorial (mat_ecc_ram's `test_count F`): each draw's RNG
      // stream is derived from (campaign seed, draw index) alone, so the
      // sample never depends on worker count, scheduling, or shard layout.
      for (std::uint64_t i = 0; i < want; ++i) {
        std::uint64_t stream = config.seed + 0x9e3779b97f4a7c15ull * (i + 1);
        Rng rng(splitmix64(stream));
        const HardFault f = fault_space_at(config.params, config.sites,
                                           rng.next_below(space));
        injectors->emplace_back(f);
        labels->push_back(f);
      }
    }
    return;
  }
  if (config.soft_errors) {
    Rng rng(config.seed);
    // Executions roughly track commits, and redundant modes execute every
    // instruction twice — size the trigger window to the run's actual
    // execution budget, not a fixed constant, or small-budget campaigns
    // would place every trigger past the end of the run and misreport the
    // whole campaign as benign.
    const std::uint64_t exec_budget =
        config.budget_commits * (mode_is_redundant(config.mode) ? 2 : 1);
    // Skip the kernel's warm-up prologue (whose values are mostly dead) but
    // stay clamped inside the run even when the budget is small.
    const std::uint64_t warmup = std::min<std::uint64_t>(10000, exec_budget / 4);
    // With an explicit --fault-site restriction, soft errors are drawn over
    // that pool: storage sites become deposited flips (upset stored cells,
    // triggered by the Nth write to the array) instead of execution-indexed
    // result flips. The default (empty) pool keeps the historical
    // backend-only stream bit-for-bit — it is pinned by the campaign
    // fingerprint.
    const std::vector<FaultSite> soft_pool =
        config.sites.empty()
            ? std::vector<FaultSite>{FaultSite::kBackendResult}
            : config.sites;
    for (int i = 0; i < config.num_faults; ++i) {
      TransientFault t;
      t.site = soft_pool.size() == 1 ? soft_pool[0]
                                     : soft_pool[rng.next_below(soft_pool.size())];
      t.trigger_execution = warmup + rng.next_below(exec_budget - warmup);
      switch (t.site) {
        case FaultSite::kIqPayload:
          t.bit = static_cast<int>(rng.next_below(16));
          break;
        case FaultSite::kDtqSlot:
          t.bit = static_cast<int>(rng.next_below(32));
          break;
        case FaultSite::kRegfileEntry:
        case FaultSite::kLvqSlot:
          t.bit = 3 + static_cast<int>(rng.next_below(40));
          break;
        case FaultSite::kFrontendDecoder:
        case FaultSite::kBackendResult:
          // Decoder lanes have no stored word; a "transient" there is just a
          // result flip on the backend path (the historical model).
          t.site = FaultSite::kBackendResult;
          t.bit = 3 + static_cast<int>(rng.next_below(40));
          break;
      }
      injectors->emplace_back(t);
      HardFault label;  // campaign bookkeeping reuses the HardFault slot
      label.site = t.site;
      label.bit = t.bit;
      labels->push_back(label);
    }
  } else {
    for (const HardFault& f : generate_faults(config.params, config.num_faults,
                                              config.seed, config.sites)) {
      injectors->emplace_back(f);
      labels->push_back(f);
    }
  }
}

// Classification step caps, shared by every run of a campaign (the cache
// relies on all callers passing the same cap).
std::uint64_t golden_step_cap(const CampaignConfig& config) {
  return config.budget_commits * 4 + 1000000;
}

// Runs one fault simulation and classifies its outcome against the golden
// trace supplied by `golden_prefix` (a function so the serial reference and
// the cached engine share this code verbatim).
FaultRun execute_fault_run(
    const Program& program, const CampaignConfig& config,
    FaultInjector injector, const HardFault& label,
    const std::function<std::vector<std::pair<std::uint64_t, std::uint64_t>>(
        std::size_t)>& golden_prefix,
    SharedShuffleTable* shuffle_table = nullptr) {
  Core core(program, config.mode, config.params, &injector);
  core.set_oracle_check(config.oracle_check);
  // Provenance is purely observational (the core only stamps cycle numbers
  // into it), so every campaign run carries it: detection latency and the
  // corruption chain are first-class campaign outputs, not a trace-only
  // extra. The simulated behaviour — and thus every fingerprinted outcome —
  // is unchanged.
  FaultProvenance provenance;
  core.set_provenance(&provenance);
  if (shuffle_table != nullptr) {
    // Warm-start the worker's shuffle cache from results computed by earlier
    // runs. Pure memoization: safe_shuffle is a pure function, so warm hits
    // return bit-identical results and the simulation is unaffected.
    core.warm_start_shuffle(shuffle_table->snapshot());
  }
  const std::uint64_t max_cycles =
      config.budget_commits * 64 + config.params.watchdog_cycles * 4;
  const RunOutcome outcome = core.run(config.budget_commits, max_cycles);
  if (shuffle_table != nullptr) {
    // Merge-on-retire: publish whatever this run computed that the shared
    // table did not already have, so later runs start warmer.
    shuffle_table->merge(core.shuffle_cache().local_entries());
  }

  FaultRun run;
  run.fault = label;
  run.activations = injector.activations();
  run.oracle_violated = core.oracle_violated();
  run.ecc_corrected = core.stats().ecc_corrected_total();
  run.ecc_detected = core.stats().ecc_detected_total();

  // Corruption analysis: did any wrong store reach memory? The release-cycle
  // vector the provenance hook filled dates the first architectural
  // corruption.
  const auto& released = core.released_stores();
  const auto& release_cycles = core.released_store_cycles();
  const auto golden = golden_prefix(released.size());
  for (std::size_t i = 0; i < released.size(); ++i) {
    const bool wrong = i >= golden.size() ||
                       released[i].addr != golden[i].first ||
                       released[i].data != golden[i].second;
    if (wrong) {
      if (!provenance.corrupted && i < release_cycles.size()) {
        provenance.corrupted = true;
        provenance.first_corruption_cycle = release_cycles[i];
      }
      ++run.corrupt_stores_released;
    }
  }
  run.activated = provenance.activated;
  run.first_activation_cycle = provenance.first_activation_cycle;
  run.corrupted = provenance.corrupted;
  run.first_corruption_cycle = provenance.first_corruption_cycle;
  run.detection_latency = provenance.detection_latency();

  if (!outcome.detections.empty()) {
    const DetectionEvent& first = outcome.detections.front();
    run.detection_cycle = first.cycle;
    run.detection_kind = first.kind;
    if (first.kind == DetectionKind::kWatchdogTimeout) {
      run.outcome = FaultOutcome::kWedged;
    } else {
      run.outcome = run.corrupt_stores_released == 0
                        ? FaultOutcome::kDetected
                        : FaultOutcome::kDetectedLate;
    }
  } else if (run.corrupt_stores_released > 0) {
    run.outcome = FaultOutcome::kSdc;
  } else if (run.oracle_violated) {
    // No check fired and no corrupt store escaped, but the architectural
    // oracle saw the core diverge: latent corruption the store-trace
    // comparison alone cannot see. Kept distinct from both SDC (nothing
    // reached memory) and benign (the run was not actually clean).
    run.outcome = FaultOutcome::kOracleDivergence;
  } else {
    run.outcome = FaultOutcome::kBenign;
  }
  return run;
}

// One run record. `run_seconds` is the only wall-clock-dependent field;
// canonical records (checkpoints, shard outputs, merges) omit it by passing
// null so files from different executions can be compared byte-for-byte.
void write_jsonl_record(std::ostream& os, const std::string& workload,
                        std::size_t index, const FaultRun& run,
                        const CampaignConfig& config,
                        const double* run_seconds) {
  // Soft-error labels historically read "transient bit N" (backend result
  // flips); storage-site transients name the array so records from a
  // restricted-pool campaign stay distinguishable.
  const std::string fault_text =
      !config.soft_errors ? run.fault.describe()
      : run.fault.site == FaultSite::kBackendResult
          ? "transient bit " + std::to_string(run.fault.bit)
          : "transient " + std::string(fault_site_name(run.fault.site)) +
                " bit " + std::to_string(run.fault.bit);
  os << "{\"index\":" << index << ",\"workload\":\"" << workload
     << "\",\"mode\":\"" << mode_name(config.mode) << "\",\"fault\":\""
     << fault_text << "\",\"outcome\":\"" << fault_outcome_name(run.outcome)
     << "\",\"activations\":" << run.activations
     << ",\"corrupt_stores\":" << run.corrupt_stores_released;
  if (config.oracle_check) {
    os << ",\"oracle_violated\":" << (run.oracle_violated ? "true" : "false");
  }
  // ECC activity rides along only when nonzero: default campaigns (no codec,
  // no storage fault) stay byte-identical to the historical record format.
  if (run.ecc_corrected > 0) os << ",\"ecc_corrected\":" << run.ecc_corrected;
  if (run.ecc_detected > 0) os << ",\"ecc_detected\":" << run.ecc_detected;
  // Presence of these fields encodes the provenance booleans: a fault that
  // bit on cycle 0 still emits the field, and a record without it parses
  // back as "never happened" — not as cycle 0.
  if (run.activated) {
    os << ",\"first_activation_cycle\":" << run.first_activation_cycle;
  }
  if (run.corrupted) {
    os << ",\"first_corruption_cycle\":" << run.first_corruption_cycle;
  }
  if (run.outcome == FaultOutcome::kDetected ||
      run.outcome == FaultOutcome::kDetectedLate ||
      run.outcome == FaultOutcome::kWedged) {
    os << ",\"detection_kind\":\"" << detection_kind_name(run.detection_kind)
       << "\",\"detection_cycle\":" << run.detection_cycle
       << ",\"detection_latency\":" << run.detection_latency;
  }
  if (run_seconds != nullptr) os << ",\"seconds\":" << *run_seconds;
  os << "}\n";
}

// FNV-1a over the byte-serialized fields that determine a campaign's
// records. Every variable-length sequence is length-prefixed: without the
// prefix, two configurations that distribute the same values across a field
// boundary differently (e.g. one trailing site vs a shifted parameter list)
// hash the same byte stream — a real collision class once the digest keys
// an on-disk store.
struct ConfigDigest {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  void mix_bytes(const void* data, std::size_t size) {
    mix(size);
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::uint64_t campaign_config_digest(const CampaignConfig& config,
                                     const Program& program) {
  ConfigDigest d;
  // Workload identity first: two workloads with identical campaign
  // parameters must never share a store key. Name, code image, initial data,
  // and entry point cover everything a Program is.
  d.mix_bytes(program.name.data(), program.name.size());
  d.mix(program.code.size());
  for (const std::uint32_t word : program.code) d.mix(word);
  d.mix(program.data.size());
  for (const auto& [addr, value] : program.data) {
    d.mix(addr);
    d.mix(value);
  }
  d.mix(program.entry);
  d.mix(static_cast<std::uint64_t>(config.mode));
  d.mix(static_cast<std::uint64_t>(config.num_faults));
  d.mix(config.seed);
  d.mix(config.budget_commits);
  d.mix(config.soft_errors ? 1 : 0);
  d.mix(config.oracle_check ? 1 : 0);
  d.mix(config.exhaustive ? 1 : 0);
  d.mix(static_cast<std::uint64_t>(config.test_count));
  d.mix(config.sites.size());
  for (const FaultSite site : config.sites) {
    d.mix(static_cast<std::uint64_t>(site));
  }
  const CoreParams& p = config.params;
  const auto mi = [&](int v) { d.mix(static_cast<std::uint64_t>(v)); };
  mi(p.fetch_width);
  mi(p.issue_width);
  mi(p.commit_width);
  mi(p.active_list_entries);
  mi(p.lsq_entries);
  mi(p.issue_queue_entries);
  mi(p.fetch_buffer_entries);
  mi(p.int_alu_units);
  mi(p.int_mul_units);
  mi(p.fp_alu_units);
  mi(p.fp_mul_units);
  mi(p.mem_ports);
  mi(p.frontend_stages);
  mi(p.slack);
  mi(p.dtq_entries);
  mi(p.store_buffer_entries);
  mi(p.lvq_entries);
  mi(p.boq_entries);
  mi(p.separate_payload_rams ? 1 : 0);
  mi(p.one_packet_per_cycle ? 1 : 0);
  mi(p.packet_serial_dispatch ? 1 : 0);
  mi(p.combine_packets ? 1 : 0);
  d.mix(p.disabled_backend_ways.size());
  for (const std::uint32_t mask : p.disabled_backend_ways) d.mix(mask);
  d.mix(p.watchdog_cycles);
  // Storage-array extension block. Mixed only when a codec is configured or
  // a storage-array site is targeted, so every historical configuration
  // keeps its digest (the on-disk store stays warm across this change).
  // The physical register counts join here because the kRegfileEntry space
  // depends on them and they were never part of the base digest.
  bool storage_active = p.any_ecc();
  for (const FaultSite site : config.sites) {
    if (site == FaultSite::kRegfileEntry || site == FaultSite::kLvqSlot ||
        site == FaultSite::kDtqSlot) {
      storage_active = true;
    }
  }
  if (storage_active) {
    d.mix(0x5ec5ed51ull);  // block tag
    d.mix(static_cast<std::uint64_t>(p.payload_ecc));
    d.mix(static_cast<std::uint64_t>(p.regfile_ecc));
    d.mix(static_cast<std::uint64_t>(p.lvq_ecc));
    d.mix(static_cast<std::uint64_t>(p.dtq_ecc));
    d.mix(static_cast<std::uint64_t>(p.phys_int_regs));
    d.mix(static_cast<std::uint64_t>(p.phys_fp_regs));
  }
  return d.h;
}

std::vector<HardFault> campaign_fault_labels(const CampaignConfig& config) {
  std::vector<FaultInjector> injectors;
  std::vector<HardFault> labels;
  build_injectors(config, &injectors, &labels);
  return labels;
}

std::vector<FaultInjector> campaign_fault_injectors(
    const CampaignConfig& config) {
  std::vector<FaultInjector> injectors;
  std::vector<HardFault> labels;
  build_injectors(config, &injectors, &labels);
  return injectors;
}

std::string canonical_jsonl_record(const std::string& workload,
                                   const CampaignConfig& config,
                                   std::size_t index, const FaultRun& run) {
  std::ostringstream os;
  write_jsonl_record(os, workload, index, run, config, nullptr);
  return os.str();
}

void export_campaign_metrics(MetricsRegistry& registry,
                             const CampaignResult& result,
                             const CampaignStats* stats) {
  registry.text("campaign.workload", result.workload);
  registry.text("campaign.mode", mode_name(result.mode));
  registry.counter("campaign.runs", result.runs.size());
  for (const auto& [outcome, n] : result.totals()) {
    registry.counter(std::string("campaign.outcome.") +
                         fault_outcome_name(outcome),
                     static_cast<std::uint64_t>(n));
  }
  registry.gauge("campaign.detection_rate_of_activated",
                 result.detection_rate_of_activated());
  registry.gauge("campaign.corruption_rate_of_activated",
                 result.corruption_rate_of_activated());
  registry.gauge("campaign.sdc_rate_of_activated",
                 result.sdc_rate_of_activated());
  if (stats != nullptr) {
    registry.gauge("campaign.jobs", stats->jobs);
    registry.gauge("campaign.wall_seconds", stats->wall_seconds);
    registry.gauge("campaign.runs_per_second", stats->runs_per_second);
    for (const auto& [outcome, hist] : stats->detection_latency) {
      const std::string base = std::string("campaign.detection_latency.") +
                               fault_outcome_name(outcome);
      registry.histogram(base, hist);
      // Scrape-friendly per-outcome quantiles: Prometheus can derive these
      // from the bucket series, but --metrics-out JSON consumers and quick
      // dashboards want them precomputed.
      if (hist.count() > 0) {
        registry.gauge(base + ".p50", hist.quantile(0.50));
        registry.gauge(base + ".p90", hist.quantile(0.90));
        registry.gauge(base + ".p99", hist.quantile(0.99));
      }
    }
  }
}

namespace {

// Report records a worker has completed but not yet pushed to the shared
// sinks. Workers accumulate into their private buffer and flush under the
// report mutex every `report_batch` runs, so the lock is taken O(count /
// batch) times instead of once per run.
struct WorkerReportBuffer {
  std::ostringstream jsonl;
  int pending = 0;
  double seconds = 0.0;
  std::map<FaultOutcome, int> histogram;
  // (fault index, run) pairs for the checkpoint hook; only collected when
  // the campaign has an on_flush consumer.
  std::vector<std::pair<std::size_t, FaultRun>> runs;
};

int resolve_report_batch(const ParallelCampaignOptions& options) {
  if (options.report_batch > 0) return options.report_batch;
  // Auto: per-run streaming when serial (the historical behaviour, and the
  // contract run_campaign's callers rely on); modest batches when parallel,
  // where per-run locking measurably serializes short runs.
  return resolve_jobs(options.jobs) <= 1 ? 1 : 16;
}

}  // namespace

void write_campaign_jsonl_header(std::ostream& os, const Program& program,
                                 const CampaignConfig& config) {
  std::ostringstream digest;
  digest << std::hex << campaign_config_digest(config, program);
  os << "{\"record\":\"header\",\"schema_version\":" << kMetricsSchemaVersion
     << ",\"bjsim_version\":\"" << kBjsimVersion << "\",\"workload\":\""
     << program.name << "\",\"mode\":\"" << mode_name(config.mode)
     << "\",\"seed\":" << config.seed
     << ",\"num_faults\":" << config.num_faults
     << ",\"budget_commits\":" << config.budget_commits
     << ",\"soft_errors\":" << (config.soft_errors ? "true" : "false")
     << ",\"oracle_check\":" << (config.oracle_check ? "true" : "false")
     << ",\"config_digest\":\"" << digest.str() << "\"}\n";
}

CampaignResult run_campaign_parallel(const Program& program,
                                     const CampaignConfig& config,
                                     const ParallelCampaignOptions& options,
                                     CampaignStats* stats) {
  using Clock = std::chrono::steady_clock;

  CampaignResult result;
  result.workload = program.name;
  result.mode = config.mode;

  std::vector<FaultInjector> injectors;
  std::vector<HardFault> labels;
  build_injectors(config, &injectors, &labels);
  const std::size_t total_runs = injectors.size();
  result.runs.resize(total_runs);

  // The shard partition must be disjoint and exhaustive over the fault
  // index space — a hole or an overlap would silently corrupt the merged
  // study. Checked against the spec's own ownership predicate so a future
  // partition-function change cannot drift past this guard.
  const ShardSpec shard = options.shard;
  BJ_CHECK(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
           "campaign shard spec");
  if (shard.active()) {
    for (std::size_t i = 0; i < total_runs; ++i) {
      int owners = 0;
      for (int s = 1; s <= shard.count; ++s) {
        owners += ShardSpec{s, shard.count}.owns(i) ? 1 : 0;
      }
      BJ_CHECK(owners == 1, "campaign shard partition disjoint+exhaustive");
    }
  }

  // Adopt checkpointed runs, then collect what is left to simulate: the
  // indices this shard owns minus the resumed ones.
  int resumed = 0;
  if (options.resume_mask != nullptr) {
    BJ_CHECK(options.resume_runs != nullptr &&
                 options.resume_mask->size() == total_runs &&
                 options.resume_runs->size() == total_runs,
             "campaign resume vectors sized to the run count");
    for (std::size_t i = 0; i < total_runs; ++i) {
      if (!(*options.resume_mask)[i]) continue;
      result.runs[i] = (*options.resume_runs)[i];
      ++resumed;
    }
  }
  std::vector<std::size_t> exec_indices;
  exec_indices.reserve(total_runs);
  for (std::size_t i = 0; i < total_runs; ++i) {
    if (!shard.owns(i)) continue;
    if (options.resume_mask != nullptr && (*options.resume_mask)[i]) continue;
    exec_indices.push_back(i);
  }

  GoldenTraceCache local_cache(program);
  GoldenTraceCache& cache =
      options.golden != nullptr ? *options.golden : local_cache;
  const std::uint64_t golden_steps_before = cache.executed_steps();
  const std::uint64_t step_cap = golden_step_cap(config);

  // Safe-shuffle results are a pure function of packet shape, and every run
  // of a campaign simulates the same workload — so workers share one
  // read-mostly table instead of each recomputing the same shapes. Only the
  // shuffling mode benefits; the other modes never call the shuffler. An
  // external (store-warmed) table takes precedence over a private one.
  SharedShuffleTable* shuffle_table = nullptr;
  std::unique_ptr<SharedShuffleTable> local_shuffle;
  std::size_t shuffle_preloaded = 0;
  if (config.mode == Mode::kBlackjack) {
    if (options.shuffle != nullptr) {
      shuffle_table = options.shuffle;
      shuffle_preloaded = shuffle_table->size();
    } else {
      local_shuffle = std::make_unique<SharedShuffleTable>();
      shuffle_table = local_shuffle.get();
    }
  }

  // Serializes everything that is not a worker-private simulation: the
  // completed-run counter, histogram, JSONL sink, checkpoint hook, and the
  // queue of progress snapshots awaiting delivery. The progress callback
  // itself runs OUTSIDE this mutex (see deliver_progress below) so a slow
  // observer cannot stall workers flushing their batches.
  std::mutex report_mu;
  CampaignProgress progress;
  progress.total = static_cast<int>(exec_indices.size());
  double serial_estimate = 0.0;
  // Runs finished simulating, including those still sitting in a worker's
  // unflushed batch. Bumped lock-free right after each run so the ETA below
  // tracks actual completion instead of lagging a whole batch behind.
  std::atomic<int> finished{0};
  const auto campaign_start = Clock::now();
  if (options.jsonl) {
    write_campaign_jsonl_header(*options.jsonl, program, config);
  }

  const int report_batch = resolve_report_batch(options);
  std::vector<WorkerReportBuffer> buffers(
      std::min<std::size_t>(static_cast<std::size_t>(
                                std::max(1, resolve_jobs(options.jobs))),
                            std::max<std::size_t>(1, exec_indices.size())));

  // Progress snapshots queued by flush_locked (under report_mu) and
  // delivered by deliver_progress (outside it). progress_mu serializes
  // delivery so callbacks stay single-threaded and in flush order.
  std::deque<CampaignProgress> pending_progress;
  std::mutex progress_mu;

  // Pushes one worker's buffered records to the shared sinks. Caller must
  // hold report_mu — and must call deliver_progress() after releasing it.
  auto flush_locked = [&](WorkerReportBuffer& buf) {
    if (buf.pending == 0) return;
    serial_estimate += buf.seconds;
    progress.completed += buf.pending;
    if (options.on_flush) options.on_flush(buf.runs);
    for (const auto& [outcome, n] : buf.histogram) {
      progress.histogram[outcome] += n;
    }
    progress.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - campaign_start).count();
    // ETA from `finished`, not `completed`: with report_batch > 1 each
    // worker's last `batch − 1` runs are invisible to `completed` until the
    // next flush, which under large batches made the ETA wildly pessimistic
    // early in the campaign (few flushes, much elapsed time).
    progress.finished = finished.load(std::memory_order_relaxed);
    progress.eta_seconds =
        progress.finished > 0
            ? progress.elapsed_seconds / progress.finished *
                  (progress.total - progress.finished)
            : 0.0;
    if (options.jsonl) *options.jsonl << buf.jsonl.str();
    buf = WorkerReportBuffer{};
    // Queue the snapshot; the caller delivers it after dropping report_mu.
    if (options.progress) pending_progress.push_back(progress);
  };

  // Delivers queued progress snapshots outside any lock, combiner-style:
  // whichever thread wins the progress_mu try-lock drains the queue in
  // order; losers return immediately, knowing the holder delivers their
  // snapshot too. Callbacks therefore stay serialized and in flush order —
  // exactly the old under-the-lock semantics — but a slow callback now only
  // delays other *callbacks*, never a worker's flush or drain.
  // std::unique_lock (not a bare try_lock) so a throwing callback unwinds
  // the lock cleanly and the exception propagates through parallel_for's
  // usual first-error path.
  auto deliver_progress = [&]() {
    if (!options.progress) return;
    for (;;) {
      std::unique_lock<std::mutex> delivery(progress_mu, std::try_to_lock);
      if (!delivery.owns_lock()) return;  // current holder delivers for us
      for (;;) {
        CampaignProgress snap;
        {
          std::lock_guard<std::mutex> lock(report_mu);
          if (pending_progress.empty()) break;
          snap = std::move(pending_progress.front());
          pending_progress.pop_front();
        }
        options.progress(snap);
      }
      delivery.unlock();
      // Close the missed-wakeup window: a snapshot enqueued between the
      // empty-check above and the unlock saw us as holder and returned, so
      // re-check and go around again if anything slipped in.
      std::lock_guard<std::mutex> lock(report_mu);
      if (pending_progress.empty()) return;
    }
  };

  const auto micros_since_start = [&campaign_start](Clock::time_point t) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t -
                                                              campaign_start)
            .count());
  };
  if (options.trace != nullptr) {
    options.trace->set_lane_name(CampaignTraceLog::kSharedLane,
                                 "golden-trace-cache");
  }

  const std::size_t workers_used = parallel_for_workers(
      options.jobs, exec_indices.size(),
      [&](std::size_t worker, std::size_t item) {
        const std::size_t i = exec_indices[item];
        const auto run_start = Clock::now();
        // Each worker owns its injector copy and Core; the golden cache and
        // shuffle table are the only cross-run state and synchronize
        // internally.
        const FaultRun run = execute_fault_run(
            program, config, injectors[i], labels[i],
            [&](std::size_t min_count) {
              if (options.trace == nullptr) {
                return cache.prefix(min_count, step_cap);
              }
              // Date cache fills: a prefix() call that advanced the emulator
              // becomes a span on the shared lane. Steps only grow, so a
              // delta is a fill this call performed (or at least waited on).
              const std::uint64_t steps_before = cache.steps();
              const auto fill_start = Clock::now();
              auto golden = cache.prefix(min_count, step_cap);
              const std::uint64_t advanced = cache.steps() - steps_before;
              if (advanced > 0) {
                const auto fill_end = Clock::now();
                const std::uint64_t ts = micros_since_start(fill_start);
                options.trace->add_span(
                    "golden-fill", "cache", CampaignTraceLog::kSharedLane, ts,
                    micros_since_start(fill_end) - ts,
                    "\"steps\":" + std::to_string(advanced) +
                        ",\"stores\":" + std::to_string(golden.size()));
              }
              return golden;
            },
            shuffle_table);
        finished.fetch_add(1, std::memory_order_relaxed);
        const auto run_end = Clock::now();
        const double run_seconds =
            std::chrono::duration<double>(run_end - run_start).count();
        result.runs[i] = run;
        if (options.trace != nullptr) {
          const std::uint64_t ts = micros_since_start(run_start);
          options.trace->add_span(
              "run " + std::to_string(i), fault_outcome_name(run.outcome),
              static_cast<int>(worker), ts, micros_since_start(run_end) - ts,
              "\"index\":" + std::to_string(i) + ",\"outcome\":\"" +
                  fault_outcome_name(run.outcome) +
                  "\",\"activations\":" + std::to_string(run.activations) +
                  ",\"corrupt_stores\":" +
                  std::to_string(run.corrupt_stores_released));
        }

        WorkerReportBuffer& buf = buffers[worker];
        if (options.jsonl) {
          write_jsonl_record(buf.jsonl, result.workload, i, run, config,
                             &run_seconds);
        }
        if (options.on_flush) buf.runs.emplace_back(i, run);
        buf.seconds += run_seconds;
        ++buf.pending;
        ++buf.histogram[run.outcome];
        if (buf.pending >= report_batch) {
          {
            std::lock_guard<std::mutex> lock(report_mu);
            flush_locked(buf);
          }
          deliver_progress();
        }
      });
  if (options.trace != nullptr) {
    for (std::size_t w = 0; w < workers_used; ++w) {
      options.trace->set_lane_name(static_cast<int>(w),
                                   "worker " + std::to_string(w));
    }
  }

  // Workers have joined; drain whatever partial batches remain, in worker
  // order, so the last progress snapshot reports completed == total.
  {
    std::lock_guard<std::mutex> lock(report_mu);
    for (WorkerReportBuffer& buf : buffers) flush_locked(buf);
  }
  deliver_progress();

  if (stats) {
    stats->jobs = resolve_jobs(options.jobs);
    stats->wall_seconds =
        std::chrono::duration<double>(Clock::now() - campaign_start).count();
    stats->serial_estimate_seconds = serial_estimate;
    stats->runs_per_second =
        stats->wall_seconds > 0.0
            ? static_cast<double>(exec_indices.size()) / stats->wall_seconds
            : 0.0;
    stats->executed_runs = static_cast<int>(exec_indices.size());
    stats->resumed_runs = resumed;
    stats->golden_steps = cache.executed_steps() - golden_steps_before;
    stats->golden_preloaded_stores = cache.preloaded_stores();
    stats->shuffle_preloaded_entries = shuffle_preloaded;
    for (const FaultRun& run : result.runs) {
      if (run.activations == 0) continue;
      if (run.outcome == FaultOutcome::kDetected ||
          run.outcome == FaultOutcome::kDetectedLate ||
          run.outcome == FaultOutcome::kWedged) {
        stats->detection_latency[run.outcome].add(run.detection_latency);
      }
    }
  }
  return result;
}

CampaignResult run_campaign(const Program& program,
                            const CampaignConfig& config) {
  ParallelCampaignOptions serial;
  serial.jobs = 1;
  return run_campaign_parallel(program, config, serial);
}

CampaignResult run_campaign_reference(const Program& program,
                                      const CampaignConfig& config) {
  CampaignResult result;
  result.workload = program.name;
  result.mode = config.mode;

  std::vector<FaultInjector> injectors;
  std::vector<HardFault> labels;
  build_injectors(config, &injectors, &labels);

  for (std::size_t fi = 0; fi < injectors.size(); ++fi) {
    result.runs.push_back(execute_fault_run(
        program, config, injectors[fi], labels[fi], [&](std::size_t n) {
          return golden_stores(program, n, golden_step_cap(config));
        }));
  }
  return result;
}

std::function<void(const CampaignProgress&)> stderr_campaign_progress(
    const std::string& label) {
  return [label](const CampaignProgress& p) {
    // Redraw a single status line; finish it with a newline on the last run.
    std::cerr << '\r' << label << ": " << p.completed << '/' << p.total;
    if (p.completed < p.total && p.eta_seconds > 0.0) {
      std::cerr << " (eta " << static_cast<int>(p.eta_seconds + 0.5) << "s)";
    }
    for (const auto& [outcome, n] : p.histogram) {
      std::cerr << ' ' << fault_outcome_name(outcome) << '=' << n;
    }
    std::cerr << "   ";
    if (p.completed == p.total) std::cerr << '\n';
    std::cerr.flush();
  };
}

}  // namespace bj
