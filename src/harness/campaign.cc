#include "harness/campaign.h"

#include <algorithm>

#include "arch/emulator.h"
#include "common/rng.h"

namespace bj {

const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kDetectedLate: return "detected-late";
    case FaultOutcome::kWedged: return "wedged";
    case FaultOutcome::kSdc: return "sdc";
    case FaultOutcome::kBenign: return "benign";
  }
  return "?";
}

std::map<FaultOutcome, int> CampaignResult::totals() const {
  std::map<FaultOutcome, int> t;
  for (const FaultRun& run : runs) ++t[run.outcome];
  return t;
}

int CampaignResult::count(FaultOutcome outcome) const {
  int n = 0;
  for (const FaultRun& run : runs) {
    if (run.outcome == outcome) ++n;
  }
  return n;
}

double CampaignResult::detection_rate_of_activated() const {
  int activated = 0;
  int detected = 0;
  for (const FaultRun& run : runs) {
    if (run.activations == 0) continue;
    ++activated;
    if (run.outcome == FaultOutcome::kDetected ||
        run.outcome == FaultOutcome::kDetectedLate ||
        run.outcome == FaultOutcome::kWedged) {
      ++detected;
    }
  }
  return activated ? static_cast<double>(detected) / activated : 0.0;
}

double CampaignResult::corruption_rate_of_activated() const {
  int activated = 0;
  int corrupted = 0;
  for (const FaultRun& run : runs) {
    if (run.activations == 0) continue;
    ++activated;
    if (run.corrupt_stores_released > 0) ++corrupted;
  }
  return activated ? static_cast<double>(corrupted) / activated : 0.0;
}

double CampaignResult::sdc_rate_of_activated() const {
  int activated = 0;
  int sdc = 0;
  for (const FaultRun& run : runs) {
    if (run.activations == 0) continue;
    ++activated;
    if (run.outcome == FaultOutcome::kSdc) ++sdc;
  }
  return activated ? static_cast<double>(sdc) / activated : 0.0;
}

std::vector<HardFault> generate_faults(const CoreParams& params,
                                       int num_faults, std::uint64_t seed,
                                       const std::vector<FaultSite>& sites) {
  std::vector<FaultSite> pool = sites;
  if (pool.empty()) {
    pool = {FaultSite::kFrontendDecoder, FaultSite::kBackendResult,
            FaultSite::kIqPayload};
  }
  Rng rng(seed);
  std::vector<HardFault> faults;
  faults.reserve(static_cast<std::size_t>(num_faults));
  for (int i = 0; i < num_faults; ++i) {
    HardFault f;
    f.site = pool[rng.next_below(pool.size())];
    f.stuck_value = rng.chance(0.5);
    switch (f.site) {
      case FaultSite::kFrontendDecoder:
        f.frontend_way = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.fetch_width)));
        f.bit = static_cast<int>(rng.next_below(32));
        break;
      case FaultSite::kBackendResult: {
        f.fu = static_cast<FuClass>(rng.next_below(kNumFuClasses));
        f.backend_way = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.fu_count(f.fu))));
        // Bias toward low-order bits so more faults are architecturally
        // visible within a short run.
        f.bit = static_cast<int>(rng.next_below(rng.chance(0.5) ? 16 : 64));
        break;
      }
      case FaultSite::kIqPayload:
        f.iq_entry = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(params.issue_queue_entries)));
        f.bit = static_cast<int>(rng.next_below(16));
        break;
    }
    faults.push_back(f);
  }
  return faults;
}

namespace {

// Golden store trace from the architectural emulator, long enough to cover
// anything the faulty run may have released.
std::vector<std::pair<std::uint64_t, std::uint64_t>> golden_stores(
    const Program& program, std::size_t min_count,
    std::uint64_t max_instructions) {
  Emulator emu(program);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
  std::uint64_t steps = 0;
  while (stores.size() < min_count && steps < max_instructions &&
         !emu.halted()) {
    const auto rec = emu.step();
    if (!rec.has_value()) break;
    ++steps;
    if (rec->store.has_value()) stores.push_back(*rec->store);
  }
  return stores;
}

}  // namespace

CampaignResult run_campaign(const Program& program,
                            const CampaignConfig& config) {
  CampaignResult result;
  result.workload = program.name;
  result.mode = config.mode;

  std::vector<FaultInjector> injectors;
  std::vector<HardFault> fault_labels;
  if (config.soft_errors) {
    Rng rng(config.seed);
    for (int i = 0; i < config.num_faults; ++i) {
      TransientFault t;
      // Trigger somewhere inside the run, past typical kernel warm-up
      // prologues (executions roughly track commits; redundant modes
      // execute each instruction twice).
      t.trigger_execution = 10000 + rng.next_below(config.budget_commits);
      t.bit = 3 + static_cast<int>(rng.next_below(40));
      injectors.emplace_back(t);
      HardFault label;  // campaign bookkeeping reuses the HardFault slot
      label.bit = t.bit;
      fault_labels.push_back(label);
    }
  } else {
    for (const HardFault& f : generate_faults(config.params, config.num_faults,
                                              config.seed, config.sites)) {
      injectors.emplace_back(f);
      fault_labels.push_back(f);
    }
  }

  for (std::size_t fi = 0; fi < injectors.size(); ++fi) {
    FaultInjector injector = injectors[fi];
    const HardFault& fault = fault_labels[fi];
    Core core(program, config.mode, config.params, &injector);
    core.set_oracle_check(false);
    const std::uint64_t max_cycles =
        config.budget_commits * 64 + config.params.watchdog_cycles * 4;
    const RunOutcome outcome = core.run(config.budget_commits, max_cycles);

    FaultRun run;
    run.fault = fault;
    run.activations = injector.activations();

    // Corruption analysis: did any wrong store reach memory?
    const auto& released = core.released_stores();
    const auto golden = golden_stores(program, released.size(),
                                      config.budget_commits * 4 + 1000000);
    for (std::size_t i = 0; i < released.size(); ++i) {
      const bool wrong = i >= golden.size() ||
                         released[i].addr != golden[i].first ||
                         released[i].data != golden[i].second;
      if (wrong) ++run.corrupt_stores_released;
    }

    if (!outcome.detections.empty()) {
      const DetectionEvent& first = outcome.detections.front();
      run.detection_cycle = first.cycle;
      run.detection_kind = first.kind;
      if (first.kind == DetectionKind::kWatchdogTimeout) {
        run.outcome = FaultOutcome::kWedged;
      } else {
        run.outcome = run.corrupt_stores_released == 0
                          ? FaultOutcome::kDetected
                          : FaultOutcome::kDetectedLate;
      }
    } else {
      run.outcome = run.corrupt_stores_released > 0 ? FaultOutcome::kSdc
                                                    : FaultOutcome::kBenign;
    }
    result.runs.push_back(run);
  }
  return result;
}

}  // namespace bj
