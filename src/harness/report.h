// Offline campaign report builder: the library behind tools/bj_report.
//
// Consumes stored campaign JSONL — runs.jsonl and its autopsy.jsonl sibling,
// loose files or whole store directories (shard directories included) — and
// aggregates the paper-shaped summaries without re-simulating anything:
//
//   * per-(workload, mode, fault-site) coverage matrix (Figure 4/5 shape:
//     detection coverage of activated faults, SDC rate, outcome counts),
//   * the SDC-escape table (every sdc / detected-late / oracle-divergence
//     run, enriched with its autopsy's first-divergence forensics when an
//     autopsy.jsonl covered it),
//   * detection-latency percentiles per outcome (Figure 7 shape), rebuilt
//     from the stored per-run latencies into the same log2 Histogram the
//     live campaign uses, and
//   * autopsy aggregates (first-divergence kind counts, divergence-to-
//     detection latency).
//
// Ingestion is all-or-nothing per file: the header must validate
// (validate_campaign_jsonl_header — schema mismatches are loud errors, not
// silent skips), every record must parse, and the footer must account for
// the records, or the file contributes nothing and lands in `errors`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/autopsy.h"
#include "harness/campaign.h"

namespace bj {

// Aggregation key of the coverage matrix.
struct CoverageKey {
  std::string workload;
  std::string mode;
  std::string site;  // first token of the fault description ("transient"
                     // for soft-error campaigns)
  bool operator<(const CoverageKey& other) const {
    if (workload != other.workload) return workload < other.workload;
    if (mode != other.mode) return mode < other.mode;
    return site < other.site;
  }
};

struct CoverageCell {
  std::uint64_t runs = 0;
  std::uint64_t activated = 0;
  // Outcome-name -> count over all runs in the cell.
  std::map<std::string, std::uint64_t> outcomes;
  // Of the activated runs: how many any check (or the watchdog) caught, how
  // many released corrupt data (detected-late + sdc), how many were silent.
  std::uint64_t detected_of_activated = 0;
  std::uint64_t corrupt_of_activated = 0;
  std::uint64_t sdc_of_activated = 0;
  // Runs in which the storage-array ECC layer repaired / flagged at least
  // one read (0 for all historical records, which carry no ecc fields).
  std::uint64_t ecc_corrected_runs = 0;
  std::uint64_t ecc_detected_runs = 0;

  double detection_coverage() const {
    return activated > 0 ? static_cast<double>(detected_of_activated) /
                               static_cast<double>(activated)
                         : 0.0;
  }
  double sdc_rate() const {
    return activated > 0 ? static_cast<double>(sdc_of_activated) /
                               static_cast<double>(activated)
                         : 0.0;
  }
};

// One row of the SDC-escape table.
struct EscapeRow {
  std::uint64_t index = 0;
  std::string workload;
  std::string mode;
  std::string site;
  std::string fault;    // full fault description
  std::string outcome;  // sdc / detected-late / oracle-divergence
  std::uint64_t activations = 0;
  std::uint64_t corrupt_stores = 0;
  bool has_first_corruption = false;
  std::uint64_t first_corruption_cycle = 0;
  // Autopsy enrichment (when an ingested autopsy.jsonl covered this run).
  bool has_autopsy = false;
  std::string divergence_kind;
  std::uint64_t divergence_cycle = 0;
  std::uint64_t divergence_pc = 0;
  std::uint64_t divergent_commits = 0;
};

// Autopsy forensics kept per run for escape-row enrichment.
struct AutopsyLite {
  bool diverged = false;
  std::string divergence_kind;
  std::uint64_t divergence_cycle = 0;
  std::uint64_t divergence_pc = 0;
  std::uint64_t divergent_commits = 0;
};

struct CampaignReport {
  std::size_t files = 0;       // files ingested successfully
  std::size_t runs = 0;        // run records aggregated
  std::size_t autopsies = 0;   // autopsy records aggregated
  std::vector<std::string> errors;  // one per rejected file

  std::map<CoverageKey, CoverageCell> coverage;
  // Outcome-name -> latency histogram, rebuilt from stored per-run
  // detection_latency fields exactly as CampaignStats builds it live.
  std::map<std::string, Histogram> detection_latency;
  std::vector<EscapeRow> escapes;  // index-sorted within each source file
  // "workload|mode|index" -> forensics, for escape enrichment + join tests.
  std::map<std::string, AutopsyLite> autopsy_by_run;
  std::map<std::string, std::uint64_t> divergence_kinds;
  Histogram divergence_to_detection;

  bool ok() const { return errors.empty(); }
};

// Ingests one JSONL image (runs.jsonl or autopsy.jsonl; record kinds are
// distinguished per line) given as a string. `name` labels errors. The file
// contributes all-or-nothing.
void report_ingest_content(const std::string& name, const std::string& content,
                           CampaignReport* report);

// Ingests a path: a JSONL file, a campaign store directory (runs.jsonl +
// optional autopsy.jsonl inside), or a store root (every subdirectory
// holding a runs.jsonl — so shard roots aggregate in one call).
void report_ingest_path(const std::string& path, CampaignReport* report);

// Joins escape rows with their autopsy forensics. Called by
// build_campaign_report; call manually after a bare ingest sequence.
void finalize_campaign_report(CampaignReport* report);

// Ingest every path, then finalize.
CampaignReport build_campaign_report(const std::vector<std::string>& paths);

// The same aggregation computed from an in-memory campaign, bypassing JSONL
// entirely. Anchor for the regeneration tests: a report built from a stored
// campaign's files must equal the report built from the CampaignResult the
// store was written from.
CampaignReport report_from_result(const CampaignResult& result,
                                  const CampaignConfig& config,
                                  const AutopsyResult* autopsy = nullptr);

// Renderers. JSON is machine-readable (schema_version-stamped); HTML is a
// self-contained heatmap page (inline CSS, no scripts, no external fetches).
std::string campaign_report_json(const CampaignReport& report);
std::string campaign_report_html(const CampaignReport& report);

// Hermetic self-check of the parser, aggregation, join, and renderers over
// synthetic JSONL (including a schema-tampered header and an unknown
// outcome, both of which must be rejected). Returns true on success; details
// of any failure go to stderr. Wired as `bj_report --selftest` in tier 2.
bool report_selftest();

}  // namespace bj
