#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/campaign_store.h"

namespace bj {

namespace fs = std::filesystem;

namespace {

// Flat-JSON field extraction, mirroring the campaign store's reader: the
// inputs are machine-written single-line objects whose strings never contain
// escapes, so a key search is exact. Nested objects (autopsy divergence /
// detection) are cut out as substrings first so their "cycle"/"kind" keys
// can't shadow the top level.

bool find_uint_field(const std::string& line, const std::string& key,
                     std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t pos = at + needle.size();
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  std::uint64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  *out = v;
  return true;
}

bool find_string_field(const std::string& line, const std::string& key,
                       std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool find_bool_field(const std::string& line, const std::string& key,
                     bool* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = line.compare(at + needle.size(), 4, "true") == 0;
  return true;
}

// Cuts out `"key":{...}`. The autopsy objects contain no nested braces.
bool find_object_field(const std::string& line, const std::string& key,
                       std::string* out) {
  const std::string needle = "\"" + key + "\":{";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size() - 1;
  const std::size_t end = line.find('}', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start + 1);
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string site_of(const std::string& fault) {
  const std::size_t space = fault.find(' ');
  if (space == std::string::npos) return fault;
  const std::string head = fault.substr(0, space);
  // Storage-site transients read "transient <site> bit N"; keep the array in
  // the cell key so a restricted-pool soft campaign doesn't collapse into
  // the historical backend-flip "transient" cell (whose records read
  // "transient bit N" — second token "bit" — and are unaffected here).
  if (head == "transient") {
    const std::size_t site_end = fault.find(' ', space + 1);
    const std::string second = fault.substr(
        space + 1,
        site_end == std::string::npos ? std::string::npos
                                      : site_end - space - 1);
    if (second != "bit") return head + "-" + second;
  }
  return head;
}

std::string run_key(const std::string& workload, const std::string& mode,
                    std::uint64_t index) {
  return workload + "|" + mode + "|" + std::to_string(index);
}

// Staged parse of one file: validated completely before anything is
// committed to the report, so a rejected file contributes nothing.

struct ParsedRun {
  std::uint64_t index = 0;
  std::string workload;
  std::string mode;
  std::string fault;
  FaultOutcome outcome = FaultOutcome::kBenign;
  std::uint64_t activations = 0;
  std::uint64_t corrupt_stores = 0;
  bool has_first_corruption = false;
  std::uint64_t first_corruption_cycle = 0;
  std::uint64_t detection_latency = 0;
  // ECC layer activity (absent from historical records; parses as 0).
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
};

struct ParsedAutopsy {
  std::uint64_t index = 0;
  std::string workload;
  std::string mode;
  bool diverged = false;
  std::string divergence_kind;
  std::uint64_t divergence_cycle = 0;
  std::uint64_t divergence_pc = 0;
  std::uint64_t divergent_commits = 0;
  bool detected = false;
  std::uint64_t detection_cycle = 0;
};

bool detectedish(FaultOutcome o) {
  return o == FaultOutcome::kDetected || o == FaultOutcome::kDetectedLate ||
         o == FaultOutcome::kWedged;
}

bool escapeish(FaultOutcome o) {
  return o == FaultOutcome::kSdc || o == FaultOutcome::kDetectedLate ||
         o == FaultOutcome::kOracleDivergence;
}

void commit_run(const ParsedRun& run, CampaignReport* report) {
  CoverageCell& cell =
      report->coverage[{run.workload, run.mode, site_of(run.fault)}];
  ++cell.runs;
  ++cell.outcomes[fault_outcome_name(run.outcome)];
  if (run.ecc_corrected > 0) ++cell.ecc_corrected_runs;
  if (run.ecc_detected > 0) ++cell.ecc_detected_runs;
  if (run.activations > 0) {
    ++cell.activated;
    if (detectedish(run.outcome)) ++cell.detected_of_activated;
    if (run.outcome == FaultOutcome::kDetectedLate ||
        run.outcome == FaultOutcome::kSdc) {
      ++cell.corrupt_of_activated;
    }
    if (run.outcome == FaultOutcome::kSdc) ++cell.sdc_of_activated;
    if (detectedish(run.outcome)) {
      report->detection_latency[fault_outcome_name(run.outcome)].add(
          run.detection_latency);
    }
  }
  if (escapeish(run.outcome)) {
    EscapeRow row;
    row.index = run.index;
    row.workload = run.workload;
    row.mode = run.mode;
    row.site = site_of(run.fault);
    row.fault = run.fault;
    row.outcome = fault_outcome_name(run.outcome);
    row.activations = run.activations;
    row.corrupt_stores = run.corrupt_stores;
    row.has_first_corruption = run.has_first_corruption;
    row.first_corruption_cycle = run.first_corruption_cycle;
    report->escapes.push_back(std::move(row));
  }
  ++report->runs;
}

void commit_autopsy(const ParsedAutopsy& record, CampaignReport* report) {
  if (record.diverged) {
    ++report->divergence_kinds[record.divergence_kind];
    if (record.detected && record.detection_cycle >= record.divergence_cycle) {
      report->divergence_to_detection.add(record.detection_cycle -
                                          record.divergence_cycle);
    }
  }
  AutopsyLite& lite =
      report->autopsy_by_run[run_key(record.workload, record.mode,
                                     record.index)];
  lite.diverged = record.diverged;
  lite.divergence_kind = record.divergence_kind;
  lite.divergence_cycle = record.divergence_cycle;
  lite.divergence_pc = record.divergence_pc;
  lite.divergent_commits = record.divergent_commits;
  ++report->autopsies;
}

// Deterministic double formatting for the JSON renderer.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void write_histogram_json(std::ostream& os, const Histogram& hist) {
  os << "{\"count\":" << hist.count() << ",\"min\":" << hist.min()
     << ",\"max\":" << hist.max() << ",\"p50\":" << json_double(hist.quantile(0.50))
     << ",\"p90\":" << json_double(hist.quantile(0.90))
     << ",\"p99\":" << json_double(hist.quantile(0.99)) << "}";
}

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Heatmap cell color: red (coverage 0) through amber to green (coverage 1).
std::string coverage_color(double coverage) {
  const double c = std::min(1.0, std::max(0.0, coverage));
  const int r = static_cast<int>(220 - 120 * c);
  const int g = static_cast<int>(80 + 140 * c);
  char buf[32];
  std::snprintf(buf, sizeof buf, "rgb(%d,%d,72)", r, g);
  return buf;
}

}  // namespace

void report_ingest_content(const std::string& name, const std::string& content,
                           CampaignReport* report) {
  const std::vector<std::string> lines = split_lines(content);
  if (lines.empty()) {
    report->errors.push_back(name + ": empty file");
    return;
  }
  std::string header_error;
  if (!validate_campaign_jsonl_header(lines[0], &header_error)) {
    report->errors.push_back(name + ": " + header_error);
    return;
  }

  std::vector<ParsedRun> runs;
  std::vector<ParsedAutopsy> autopsies;
  bool footer_seen = false;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    if (line.empty()) continue;
    std::string record_kind;
    find_string_field(line, "record", &record_kind);
    if (record_kind == "footer") {
      bool complete = false;
      std::uint64_t count = 0;
      const bool counts_runs = find_uint_field(line, "runs", &count);
      const bool counts_autopsies =
          !counts_runs && find_uint_field(line, "autopsies", &count);
      if (li + 1 != lines.size() ||
          !find_bool_field(line, "complete", &complete) || !complete ||
          (!counts_runs && !counts_autopsies) ||
          (counts_runs && count != runs.size()) ||
          (counts_autopsies && count != autopsies.size())) {
        report->errors.push_back(name + ": malformed or misplaced footer");
        return;
      }
      footer_seen = true;
      break;
    }
    if (record_kind == "autopsy") {
      ParsedAutopsy parsed;
      std::string outcome;
      FaultOutcome parsed_outcome = FaultOutcome::kBenign;
      if (!find_uint_field(line, "index", &parsed.index) ||
          !find_string_field(line, "workload", &parsed.workload) ||
          !find_string_field(line, "mode", &parsed.mode) ||
          !find_string_field(line, "outcome", &outcome) ||
          !parse_fault_outcome(outcome, &parsed_outcome) ||
          !find_uint_field(line, "divergent_commits",
                           &parsed.divergent_commits)) {
        report->errors.push_back(name + ": malformed autopsy record at line " +
                                 std::to_string(li + 1));
        return;
      }
      std::string object;
      if (find_object_field(line, "divergence", &object)) {
        parsed.diverged = true;
        find_string_field(object, "kind", &parsed.divergence_kind);
        find_uint_field(object, "cycle", &parsed.divergence_cycle);
        find_uint_field(object, "pc", &parsed.divergence_pc);
      }
      if (find_object_field(line, "detection", &object)) {
        parsed.detected = true;
        find_uint_field(object, "cycle", &parsed.detection_cycle);
      }
      autopsies.push_back(std::move(parsed));
      continue;
    }
    if (!record_kind.empty()) {
      report->errors.push_back(name + ": unknown record kind \"" +
                               record_kind + "\" at line " +
                               std::to_string(li + 1));
      return;
    }
    ParsedRun parsed;
    std::string outcome;
    if (!find_uint_field(line, "index", &parsed.index) ||
        !find_string_field(line, "workload", &parsed.workload) ||
        !find_string_field(line, "mode", &parsed.mode) ||
        !find_string_field(line, "fault", &parsed.fault) ||
        !find_string_field(line, "outcome", &outcome) ||
        !find_uint_field(line, "activations", &parsed.activations) ||
        !find_uint_field(line, "corrupt_stores", &parsed.corrupt_stores)) {
      report->errors.push_back(name + ": malformed run record at line " +
                               std::to_string(li + 1));
      return;
    }
    if (!parse_fault_outcome(outcome, &parsed.outcome)) {
      report->errors.push_back(name + ": unknown outcome \"" + outcome +
                               "\" at line " + std::to_string(li + 1));
      return;
    }
    parsed.has_first_corruption = find_uint_field(
        line, "first_corruption_cycle", &parsed.first_corruption_cycle);
    find_uint_field(line, "detection_latency", &parsed.detection_latency);
    find_uint_field(line, "ecc_corrected", &parsed.ecc_corrected);
    find_uint_field(line, "ecc_detected", &parsed.ecc_detected);
    runs.push_back(std::move(parsed));
  }
  if (!footer_seen) {
    report->errors.push_back(name +
                             ": no footer (file incomplete or truncated)");
    return;
  }

  for (const ParsedRun& run : runs) commit_run(run, report);
  for (const ParsedAutopsy& record : autopsies) commit_autopsy(record, report);
  ++report->files;
}

void report_ingest_path(const std::string& path, CampaignReport* report) {
  const auto ingest_file = [&](const fs::path& file) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      report->errors.push_back(file.string() + ": cannot read");
      return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    report_ingest_content(file.string(), buffer.str(), report);
  };
  const auto ingest_store_dir = [&](const fs::path& dir) {
    ingest_file(dir / "runs.jsonl");
    std::error_code ec;
    if (fs::exists(dir / "autopsy.jsonl", ec)) {
      ingest_file(dir / "autopsy.jsonl");
    }
  };

  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    ingest_file(path);
    return;
  }
  if (fs::exists(fs::path(path) / "runs.jsonl", ec)) {
    ingest_store_dir(path);
    return;
  }
  // A store root: every subdirectory holding a runs.jsonl is one campaign
  // (shard directories included), ingested in sorted order so the report is
  // path-order independent.
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (entry.is_directory() &&
        fs::exists(entry.path() / "runs.jsonl", ec)) {
      dirs.push_back(entry.path());
    }
  }
  if (dirs.empty()) {
    report->errors.push_back(path + ": no runs.jsonl found here or in any "
                                    "subdirectory");
    return;
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& dir : dirs) ingest_store_dir(dir);
}

void finalize_campaign_report(CampaignReport* report) {
  std::sort(report->escapes.begin(), report->escapes.end(),
            [](const EscapeRow& a, const EscapeRow& b) {
              if (a.workload != b.workload) return a.workload < b.workload;
              if (a.mode != b.mode) return a.mode < b.mode;
              return a.index < b.index;
            });
  for (EscapeRow& row : report->escapes) {
    const auto it = report->autopsy_by_run.find(
        run_key(row.workload, row.mode, row.index));
    if (it == report->autopsy_by_run.end()) continue;
    row.has_autopsy = true;
    row.divergence_kind = it->second.divergence_kind;
    row.divergence_cycle = it->second.divergence_cycle;
    row.divergence_pc = it->second.divergence_pc;
    row.divergent_commits = it->second.divergent_commits;
  }
}

CampaignReport build_campaign_report(const std::vector<std::string>& paths) {
  CampaignReport report;
  for (const std::string& path : paths) report_ingest_path(path, &report);
  finalize_campaign_report(&report);
  return report;
}

CampaignReport report_from_result(const CampaignResult& result,
                                  const CampaignConfig& config,
                                  const AutopsyResult* autopsy) {
  CampaignReport report;
  const std::string mode = mode_name(result.mode);
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const FaultRun& run = result.runs[i];
    ParsedRun parsed;
    parsed.index = i;
    parsed.workload = result.workload;
    parsed.mode = mode;
    // Mirrors canonical_jsonl_record's fault text exactly — the
    // regeneration anchor depends on it.
    parsed.fault =
        !config.soft_errors ? run.fault.describe()
        : run.fault.site == FaultSite::kBackendResult
            ? "transient bit " + std::to_string(run.fault.bit)
            : "transient " + std::string(fault_site_name(run.fault.site)) +
                  " bit " + std::to_string(run.fault.bit);
    parsed.outcome = run.outcome;
    parsed.activations = run.activations;
    parsed.corrupt_stores = run.corrupt_stores_released;
    parsed.has_first_corruption = run.corrupted;
    parsed.first_corruption_cycle = run.first_corruption_cycle;
    parsed.detection_latency = run.detection_latency;
    parsed.ecc_corrected = run.ecc_corrected;
    parsed.ecc_detected = run.ecc_detected;
    commit_run(parsed, &report);
  }
  if (autopsy != nullptr) {
    for (const AutopsyRecord& record : autopsy->records) {
      ParsedAutopsy parsed;
      parsed.index = record.index;
      parsed.workload = result.workload;
      parsed.mode = mode;
      parsed.diverged = record.diverged;
      if (record.diverged) {
        parsed.divergence_kind = divergence_kind_name(record.first.kind);
        parsed.divergence_cycle = record.first.cycle;
        parsed.divergence_pc = record.first.pc;
      }
      parsed.divergent_commits = record.divergent_commits;
      parsed.detected = record.detected;
      parsed.detection_cycle = record.detection_cycle;
      commit_autopsy(parsed, &report);
    }
  }
  finalize_campaign_report(&report);
  return report;
}

std::string campaign_report_json(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kMetricsSchemaVersion
     << ",\"record\":\"bj_report\",\"files\":" << report.files
     << ",\"runs\":" << report.runs << ",\"autopsies\":" << report.autopsies;
  os << ",\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << report.errors[i] << "\"";
  }
  os << "]";
  os << ",\"coverage\":[";
  bool first = true;
  for (const auto& [key, cell] : report.coverage) {
    if (!first) os << ",";
    first = false;
    os << "{\"workload\":\"" << key.workload << "\",\"mode\":\"" << key.mode
       << "\",\"site\":\"" << key.site << "\",\"runs\":" << cell.runs
       << ",\"activated\":" << cell.activated
       << ",\"detected_of_activated\":" << cell.detected_of_activated
       << ",\"corrupt_of_activated\":" << cell.corrupt_of_activated
       << ",\"sdc_of_activated\":" << cell.sdc_of_activated
       << ",\"ecc_corrected_runs\":" << cell.ecc_corrected_runs
       << ",\"ecc_detected_runs\":" << cell.ecc_detected_runs
       << ",\"detection_coverage\":" << json_double(cell.detection_coverage())
       << ",\"sdc_rate\":" << json_double(cell.sdc_rate()) << ",\"outcomes\":{";
    bool first_outcome = true;
    for (const auto& [outcome, n] : cell.outcomes) {
      if (!first_outcome) os << ",";
      first_outcome = false;
      os << "\"" << outcome << "\":" << n;
    }
    os << "}}";
  }
  os << "]";
  os << ",\"detection_latency\":{";
  first = true;
  for (const auto& [outcome, hist] : report.detection_latency) {
    if (!first) os << ",";
    first = false;
    os << "\"" << outcome << "\":";
    write_histogram_json(os, hist);
  }
  os << "}";
  os << ",\"escapes\":[";
  for (std::size_t i = 0; i < report.escapes.size(); ++i) {
    const EscapeRow& row = report.escapes[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << row.index << ",\"workload\":\"" << row.workload
       << "\",\"mode\":\"" << row.mode << "\",\"site\":\"" << row.site
       << "\",\"fault\":\"" << row.fault << "\",\"outcome\":\"" << row.outcome
       << "\",\"activations\":" << row.activations
       << ",\"corrupt_stores\":" << row.corrupt_stores;
    if (row.has_first_corruption) {
      os << ",\"first_corruption_cycle\":" << row.first_corruption_cycle;
    }
    if (row.has_autopsy) {
      os << ",\"autopsy\":{\"kind\":\"" << row.divergence_kind
         << "\",\"cycle\":" << row.divergence_cycle << ",\"pc\":"
         << row.divergence_pc << ",\"divergent_commits\":"
         << row.divergent_commits << "}";
    }
    os << "}";
  }
  os << "]";
  os << ",\"divergence_kinds\":{";
  first = true;
  for (const auto& [kind, n] : report.divergence_kinds) {
    if (!first) os << ",";
    first = false;
    os << "\"" << kind << "\":" << n;
  }
  os << "},\"divergence_to_detection\":";
  write_histogram_json(os, report.divergence_to_detection);
  os << "}\n";
  return os.str();
}

std::string campaign_report_html(const CampaignReport& report) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>bjsim campaign report</title>\n<style>\n"
     << "body{font-family:sans-serif;margin:2em;background:#fafafa;}\n"
     << "table{border-collapse:collapse;margin-bottom:2em;}\n"
     << "th,td{border:1px solid #999;padding:4px 10px;text-align:right;}\n"
     << "th{background:#e8e8e8;}\n"
     << "td.l,th.l{text-align:left;}\n"
     << "td.cov{color:#fff;font-weight:bold;}\n"
     << "</style>\n</head>\n<body>\n<h1>bjsim campaign report</h1>\n"
     << "<p>" << report.files << " file(s), " << report.runs << " run(s), "
     << report.autopsies << " autops" << (report.autopsies == 1 ? "y" : "ies")
     << ".</p>\n";
  if (!report.errors.empty()) {
    os << "<h2>Errors</h2>\n<ul>\n";
    for (const std::string& error : report.errors) {
      os << "<li>" << html_escape(error) << "</li>\n";
    }
    os << "</ul>\n";
  }

  os << "<h2>Coverage heatmap (workload &times; mode &times; site)</h2>\n"
     << "<table>\n<tr><th class=\"l\">workload</th><th class=\"l\">mode</th>"
     << "<th class=\"l\">site</th><th>runs</th><th>activated</th>"
     << "<th>detection coverage</th><th>SDC rate</th></tr>\n";
  for (const auto& [key, cell] : report.coverage) {
    char cov[32];
    char sdc[32];
    std::snprintf(cov, sizeof cov, "%.1f%%", 100.0 * cell.detection_coverage());
    std::snprintf(sdc, sizeof sdc, "%.1f%%", 100.0 * cell.sdc_rate());
    os << "<tr><td class=\"l\">" << html_escape(key.workload)
       << "</td><td class=\"l\">" << html_escape(key.mode)
       << "</td><td class=\"l\">" << html_escape(key.site) << "</td><td>"
       << cell.runs << "</td><td>" << cell.activated
       << "</td><td class=\"cov\" style=\"background:"
       << coverage_color(cell.detection_coverage()) << "\">" << cov
       << "</td><td>" << sdc << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Detection latency (cycles)</h2>\n<table>\n"
     << "<tr><th class=\"l\">outcome</th><th>count</th><th>p50</th>"
     << "<th>p90</th><th>p99</th><th>max</th></tr>\n";
  for (const auto& [outcome, hist] : report.detection_latency) {
    os << "<tr><td class=\"l\">" << html_escape(outcome) << "</td><td>"
       << hist.count() << "</td><td>" << json_double(hist.quantile(0.50))
       << "</td><td>" << json_double(hist.quantile(0.90)) << "</td><td>"
       << json_double(hist.quantile(0.99)) << "</td><td>" << hist.max()
       << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Escapes (" << report.escapes.size() << ")</h2>\n<table>\n"
     << "<tr><th>index</th><th class=\"l\">workload</th>"
     << "<th class=\"l\">mode</th><th class=\"l\">fault</th>"
     << "<th class=\"l\">outcome</th><th>corrupt stores</th>"
     << "<th class=\"l\">first divergence</th></tr>\n";
  for (const EscapeRow& row : report.escapes) {
    os << "<tr><td>" << row.index << "</td><td class=\"l\">"
       << html_escape(row.workload) << "</td><td class=\"l\">"
       << html_escape(row.mode) << "</td><td class=\"l\">"
       << html_escape(row.fault) << "</td><td class=\"l\">"
       << html_escape(row.outcome) << "</td><td>" << row.corrupt_stores
       << "</td><td class=\"l\">";
    if (row.has_autopsy && !row.divergence_kind.empty()) {
      os << html_escape(row.divergence_kind) << " @ cycle "
         << row.divergence_cycle << " (" << row.divergent_commits
         << " divergent commits)";
    } else {
      os << "&mdash;";
    }
    os << "</td></tr>\n";
  }
  os << "</table>\n";

  if (!report.divergence_kinds.empty()) {
    os << "<h2>First-divergence kinds</h2>\n<table>\n"
       << "<tr><th class=\"l\">kind</th><th>count</th></tr>\n";
    for (const auto& [kind, n] : report.divergence_kinds) {
      os << "<tr><td class=\"l\">" << html_escape(kind) << "</td><td>" << n
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  os << "</body>\n</html>\n";
  return os.str();
}

bool report_selftest() {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "bj_report selftest: %s\n", what);
    return false;
  };

  const std::string header =
      "{\"record\":\"header\",\"schema_version\":" +
      std::to_string(kMetricsSchemaVersion) +
      ",\"bjsim_version\":\"selftest\",\"workload\":\"w\",\"mode\":\"srt\","
      "\"seed\":1,\"num_faults\":3,\"budget_commits\":100,"
      "\"soft_errors\":false,\"oracle_check\":false,"
      "\"config_digest\":\"0\"}\n";
  const std::string detected = fault_outcome_name(FaultOutcome::kDetected);
  const std::string sdc = fault_outcome_name(FaultOutcome::kSdc);
  const std::string benign = fault_outcome_name(FaultOutcome::kBenign);

  std::string runs = header;
  runs += "{\"index\":0,\"workload\":\"w\",\"mode\":\"srt\","
          "\"fault\":\"frontend-decoder way 0 bit 1 stuck-at-1\","
          "\"outcome\":\"" + detected + "\",\"activations\":3,"
          "\"corrupt_stores\":0,\"first_activation_cycle\":5,"
          "\"detection_latency\":10}\n";
  runs += "{\"index\":1,\"workload\":\"w\",\"mode\":\"srt\","
          "\"fault\":\"frontend-decoder way 1 bit 2 stuck-at-0\","
          "\"outcome\":\"" + sdc + "\",\"activations\":2,"
          "\"corrupt_stores\":1,\"first_activation_cycle\":4,"
          "\"first_corruption_cycle\":12}\n";
  runs += "{\"index\":2,\"workload\":\"w\",\"mode\":\"srt\","
          "\"fault\":\"backend-result alu way 0 bit 3 stuck-at-1\","
          "\"outcome\":\"" + benign + "\",\"activations\":0,"
          "\"corrupt_stores\":0}\n";
  runs += "{\"record\":\"footer\",\"complete\":true,\"runs\":3}\n";

  std::string autopsy = header;
  autopsy += "{\"record\":\"autopsy\",\"index\":1,\"workload\":\"w\","
             "\"mode\":\"srt\",\"fault\":\"frontend-decoder way 1 bit 2 "
             "stuck-at-0\",\"outcome\":\"" + sdc + "\","
             "\"first_activation_cycle\":4,\"divergent_commits\":4,"
             "\"divergence\":{\"seq\":7,\"cycle\":9,\"pc\":64,"
             "\"kind\":\"reg-value\",\"expected\":1,\"actual\":2},"
             "\"first_corrupt_store\":{\"ordinal\":3,\"addr\":8,\"data\":1,"
             "\"cycle\":12}}\n";
  autopsy += "{\"record\":\"footer\",\"complete\":true,\"select\":"
             "\"escapes\",\"autopsies\":1}\n";

  CampaignReport report;
  report_ingest_content("runs", runs, &report);
  report_ingest_content("autopsy", autopsy, &report);
  finalize_campaign_report(&report);

  if (!report.ok()) return fail("clean inputs were rejected");
  if (report.files != 2 || report.runs != 3 || report.autopsies != 1) {
    return fail("ingest counts wrong");
  }
  const auto frontend = report.coverage.find({"w", "srt", "frontend-decoder"});
  if (frontend == report.coverage.end()) {
    return fail("frontend coverage cell missing");
  }
  if (frontend->second.runs != 2 || frontend->second.activated != 2 ||
      frontend->second.detected_of_activated != 1 ||
      frontend->second.sdc_of_activated != 1) {
    return fail("frontend coverage cell miscounted");
  }
  if (report.coverage.count({"w", "srt", "backend-result"}) != 1) {
    return fail("backend coverage cell missing");
  }
  const auto latency = report.detection_latency.find(detected);
  if (latency == report.detection_latency.end() ||
      latency->second.count() != 1) {
    return fail("detection latency histogram miscounted");
  }
  if (report.escapes.size() != 1 || !report.escapes[0].has_autopsy ||
      report.escapes[0].divergence_kind != "reg-value" ||
      report.escapes[0].divergence_cycle != 9 ||
      report.escapes[0].divergent_commits != 4) {
    return fail("escape row missing its autopsy join");
  }
  if (report.divergence_kinds["reg-value"] != 1) {
    return fail("divergence kind counter wrong");
  }

  const std::string json = campaign_report_json(report);
  if (json.find("\"detection_coverage\":0.5") == std::string::npos ||
      json.find("\"record\":\"bj_report\"") == std::string::npos) {
    return fail("JSON renderer output unexpected");
  }
  const std::string html = campaign_report_html(report);
  if (html.find("<!DOCTYPE html>") != 0 ||
      html.find("frontend-decoder") == std::string::npos ||
      html.find("reg-value") == std::string::npos) {
    return fail("HTML renderer output unexpected");
  }

  // A header whose schema_version disagrees with this build must reject the
  // whole file — loudly, not by skipping records.
  std::string tampered = runs;
  const std::string schema_key = "\"schema_version\":";
  tampered.replace(tampered.find(schema_key) + schema_key.size(), 1, "9");
  CampaignReport rejected;
  report_ingest_content("tampered", tampered, &rejected);
  if (rejected.errors.size() != 1 || rejected.runs != 0 ||
      rejected.errors[0].find("schema_version") == std::string::npos) {
    return fail("schema-tampered header was not rejected");
  }

  // Unknown outcome strings are tampering, not data.
  std::string unknown = runs;
  const std::string outcome_key = "\"outcome\":\"" + detected + "\"";
  unknown.replace(unknown.find(outcome_key), outcome_key.size(),
                  "\"outcome\":\"mystery\"");
  CampaignReport rejected2;
  report_ingest_content("unknown-outcome", unknown, &rejected2);
  if (rejected2.errors.size() != 1 || rejected2.runs != 0 ||
      rejected2.errors[0].find("mystery") == std::string::npos) {
    return fail("unknown outcome was not rejected");
  }

  return true;
}

}  // namespace bj
