// Experiment driver: builds a core in the requested mode, runs warm-up and a
// measured window, and returns the aggregate statistics the benches print.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/profiler.h"
#include "common/stats.h"
#include "fault/fault_model.h"
#include "isa/program.h"
#include "pipeline/core.h"
#include "workload/profile.h"

namespace bj {

struct SimRequest {
  Mode mode = Mode::kSingle;
  CoreParams params;
  std::uint64_t warmup_commits = 10000;
  std::uint64_t budget_commits = 150000;
  std::uint64_t max_cycles = 0;  // 0 = derived from the budget
  bool oracle_check = true;
  std::optional<HardFault> fault;
  // When set, the core charges each pipeline stage's wall time to this
  // profiler (warm-up included). Null keeps the timer-free fast path.
  StageProfiler* profiler = nullptr;
  // When set, the core records a TraceRecord for every instruction that
  // leaves the pipeline (warm-up included). Null keeps the untraced path.
  PipelineTracer* tracer = nullptr;
};

struct SimResult {
  std::string workload;
  Mode mode = Mode::kSingle;

  // Measured window.
  std::uint64_t cycles = 0;
  std::uint64_t commits = 0;
  double ipc = 0.0;

  // Coverage (Figure 4).
  double coverage_total = 0.0;
  double coverage_frontend = 0.0;
  double coverage_backend = 0.0;
  std::uint64_t coverage_pairs = 0;

  // Interference / burstiness (Figures 5, 6).
  double lt_interference = 0.0;      // fraction of issue cycles
  double tt_interference = 0.0;
  double other_diversity_loss = 0.0;
  double burstiness = 0.0;

  // Shuffle behaviour.
  std::uint64_t shuffle_nops = 0;
  std::uint64_t packet_splits = 0;
  std::uint64_t packets = 0;

  // Branch prediction.
  std::uint64_t branch_mispredicts = 0;

  // Outcome flags.
  bool finished = false;
  bool wedged = false;
  bool detected = false;
  std::vector<DetectionEvent> detections;
  bool oracle_violated = false;
  std::string oracle_detail;
};

// Runs one simulation of `program` under `request`.
SimResult run_simulation(const Program& program, const SimRequest& request);

// Convenience: generates the named profile's kernel and runs it.
SimResult run_workload(const WorkloadProfile& profile,
                       const SimRequest& request);

// Statistical variant: runs `seeds` kernel instantiations of the same
// profile (seed-perturbed instruction streams) and aggregates the metrics.
// Quantifies how much of a reported number is workload-instance noise.
struct AggregateResult {
  std::string workload;
  Mode mode = Mode::kSingle;
  int seeds = 0;
  RunningStat ipc;
  RunningStat coverage_total;
  RunningStat coverage_backend;
  RunningStat lt_interference;
  RunningStat tt_interference;
  RunningStat burstiness;
};

AggregateResult run_workload_seeds(const WorkloadProfile& profile,
                                   const SimRequest& request, int seeds);

}  // namespace bj
