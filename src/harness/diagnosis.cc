#include "harness/diagnosis.h"

#include "harness/golden_trace.h"
#include "harness/worker_pool.h"

namespace bj {
namespace {

enum class TrialOutcome {
  kDetected,        // checks still fire: the faulty unit is still in use
  kSilentCorrupt,   // no check fires but output is wrong — deconfiguring a
                    // *healthy* way can do this in a 2-way class: both copies
                    // then share the faulty unit and agree on the corruption
  kClean,           // no detection and correct output: the fault is fenced
};

// The known-answer reference. In the field this corresponds to a stored
// self-test with precomputed answers (testers are not available, but test
// vectors are); in the simulator the architectural emulator supplies it,
// computed once per diagnosis and shared by every trial through the cache.
TrialOutcome run_trial(const Program& program, Mode mode,
                       const CoreParams& params, const HardFault& fault,
                       std::uint64_t budget, GoldenTraceCache& golden_cache,
                       bool oracle_check) {
  FaultInjector injector(fault);
  Core core(program, mode, params, &injector);
  core.set_oracle_check(oracle_check);
  const std::uint64_t max_cycles = budget * 64 + params.watchdog_cycles * 4;
  const RunOutcome outcome = core.run(budget, max_cycles);
  if (outcome.detected) return TrialOutcome::kDetected;
  // Latent state corruption the store trace never sees: the deconfigured
  // machine is still faulty even though nothing corrupt was released yet.
  if (oracle_check && core.oracle_violated()) {
    return TrialOutcome::kSilentCorrupt;
  }

  const auto& released = core.released_stores();
  const auto golden =
      golden_cache.prefix(released.size(), budget * 4 + 1000000);
  for (std::size_t i = 0; i < released.size(); ++i) {
    if (i >= golden.size() || released[i].addr != golden[i].first ||
        released[i].data != golden[i].second) {
      return TrialOutcome::kSilentCorrupt;
    }
  }
  return TrialOutcome::kClean;
}

std::uint64_t run_cycles(const Program& program, Mode mode,
                         const CoreParams& params, std::uint64_t budget,
                         bool oracle_check) {
  Core core(program, mode, params);
  core.set_oracle_check(oracle_check);
  const std::uint64_t max_cycles = budget * 64 + params.watchdog_cycles * 4;
  core.run(budget, max_cycles);
  return core.cycle();
}

}  // namespace

DiagnosisResult diagnose_backend_fault(const Program& program, Mode mode,
                                       const CoreParams& params,
                                       const HardFault& fault,
                                       std::uint64_t budget_commits,
                                       int jobs, bool oracle_check) {
  DiagnosisResult result;
  GoldenTraceCache golden_cache(program);
  result.baseline_detected =
      run_trial(program, mode, params, fault, budget_commits, golden_cache,
                oracle_check) != TrialOutcome::kClean;
  if (!result.baseline_detected) return result;  // nothing to localize

  // Enumerate the deconfigurable ways up front so the trials can fan out
  // over the worker pool; each trial writes its slot by index.
  for (int c = 0; c < kNumFuClasses; ++c) {
    const auto cls = static_cast<FuClass>(c);
    const int ways = params.fu_count(cls);
    // A class with a single enabled way cannot be deconfigured (the machine
    // could no longer execute that class at all); with the paper's Table 1
    // every class has at least two ways.
    if (ways < 2) continue;
    for (int w = 0; w < ways; ++w) {
      DiagnosisTrial trial;
      trial.fu = cls;
      trial.way = w;
      result.trials.push_back(trial);
    }
  }

  parallel_for(jobs, result.trials.size(), [&](std::size_t i) {
    DiagnosisTrial& trial = result.trials[i];
    CoreParams trial_params = params;
    trial_params.disabled_backend_ways[static_cast<std::size_t>(trial.fu)] |=
        1u << static_cast<unsigned>(trial.way);
    const TrialOutcome outcome =
        run_trial(program, mode, trial_params, fault, budget_commits,
                  golden_cache, oracle_check);
    trial.detected = outcome != TrialOutcome::kClean;
  });

  std::vector<std::pair<FuClass, int>> fixed;
  for (const DiagnosisTrial& trial : result.trials) {
    if (!trial.detected) fixed.emplace_back(trial.fu, trial.way);
  }

  if (fixed.size() == 1) {
    result.suspect = fixed.front();
    // Quantify degraded-mode cost: healthy vs fenced-off performance on the
    // same (fault-free) machine.
    CoreParams degraded = params;
    degraded.disabled_backend_ways[static_cast<std::size_t>(
        fixed.front().first)] |= 1u << static_cast<unsigned>(fixed.front().second);
    const std::uint64_t healthy =
        run_cycles(program, mode, params, budget_commits, oracle_check);
    const std::uint64_t fenced =
        run_cycles(program, mode, degraded, budget_commits, oracle_check);
    result.degraded_performance =
        fenced ? static_cast<double>(healthy) / static_cast<double>(fenced)
               : 0.0;
  }
  return result;
}

}  // namespace bj
