#include "harness/diagnosis.h"

#include "arch/emulator.h"

namespace bj {
namespace {

enum class TrialOutcome {
  kDetected,        // checks still fire: the faulty unit is still in use
  kSilentCorrupt,   // no check fires but output is wrong — deconfiguring a
                    // *healthy* way can do this in a 2-way class: both copies
                    // then share the faulty unit and agree on the corruption
  kClean,           // no detection and correct output: the fault is fenced
};

// The known-answer reference. In the field this corresponds to a stored
// self-test with precomputed answers (testers are not available, but test
// vectors are); in the simulator the architectural emulator supplies it.
std::vector<std::pair<std::uint64_t, std::uint64_t>> golden_stores(
    const Program& program, std::size_t count, std::uint64_t max_steps) {
  Emulator emu(program);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;
  std::uint64_t steps = 0;
  while (stores.size() < count && steps < max_steps && !emu.halted()) {
    const auto rec = emu.step();
    if (!rec.has_value()) break;
    ++steps;
    if (rec->store.has_value()) stores.push_back(*rec->store);
  }
  return stores;
}

TrialOutcome run_trial(const Program& program, Mode mode,
                       const CoreParams& params, const HardFault& fault,
                       std::uint64_t budget) {
  FaultInjector injector(fault);
  Core core(program, mode, params, &injector);
  core.set_oracle_check(false);
  const std::uint64_t max_cycles = budget * 64 + params.watchdog_cycles * 4;
  const RunOutcome outcome = core.run(budget, max_cycles);
  if (outcome.detected) return TrialOutcome::kDetected;

  const auto& released = core.released_stores();
  const auto golden =
      golden_stores(program, released.size(), budget * 4 + 1000000);
  for (std::size_t i = 0; i < released.size(); ++i) {
    if (i >= golden.size() || released[i].addr != golden[i].first ||
        released[i].data != golden[i].second) {
      return TrialOutcome::kSilentCorrupt;
    }
  }
  return TrialOutcome::kClean;
}

std::uint64_t run_cycles(const Program& program, Mode mode,
                         const CoreParams& params, std::uint64_t budget) {
  Core core(program, mode, params);
  core.set_oracle_check(false);
  const std::uint64_t max_cycles = budget * 64 + params.watchdog_cycles * 4;
  core.run(budget, max_cycles);
  return core.cycle();
}

}  // namespace

DiagnosisResult diagnose_backend_fault(const Program& program, Mode mode,
                                       const CoreParams& params,
                                       const HardFault& fault,
                                       std::uint64_t budget_commits) {
  DiagnosisResult result;
  result.baseline_detected =
      run_trial(program, mode, params, fault, budget_commits) !=
      TrialOutcome::kClean;
  if (!result.baseline_detected) return result;  // nothing to localize

  std::vector<std::pair<FuClass, int>> fixed;
  for (int c = 0; c < kNumFuClasses; ++c) {
    const auto cls = static_cast<FuClass>(c);
    const int ways = params.fu_count(cls);
    // A class with a single enabled way cannot be deconfigured (the machine
    // could no longer execute that class at all); with the paper's Table 1
    // every class has at least two ways.
    if (ways < 2) continue;
    for (int w = 0; w < ways; ++w) {
      CoreParams trial_params = params;
      trial_params.disabled_backend_ways[static_cast<std::size_t>(c)] |=
          1u << static_cast<unsigned>(w);
      DiagnosisTrial trial;
      trial.fu = cls;
      trial.way = w;
      const TrialOutcome outcome =
          run_trial(program, mode, trial_params, fault, budget_commits);
      trial.detected = outcome != TrialOutcome::kClean;
      if (outcome == TrialOutcome::kClean) fixed.emplace_back(cls, w);
      result.trials.push_back(trial);
    }
  }

  if (fixed.size() == 1) {
    result.suspect = fixed.front();
    // Quantify degraded-mode cost: healthy vs fenced-off performance on the
    // same (fault-free) machine.
    CoreParams degraded = params;
    degraded.disabled_backend_ways[static_cast<std::size_t>(
        fixed.front().first)] |= 1u << static_cast<unsigned>(fixed.front().second);
    const std::uint64_t healthy =
        run_cycles(program, mode, params, budget_commits);
    const std::uint64_t fenced =
        run_cycles(program, mode, degraded, budget_commits);
    result.degraded_performance =
        fenced ? static_cast<double>(healthy) / static_cast<double>(fenced)
               : 0.0;
  }
  return result;
}

}  // namespace bj
