#include "harness/golden_trace.h"

namespace bj {

std::vector<std::pair<std::uint64_t, std::uint64_t>> GoldenTraceCache::prefix(
    std::size_t min_count, std::uint64_t max_instructions) {
  std::lock_guard<std::mutex> lock(mu_);
  while (stores_.size() < min_count && steps_ < max_instructions &&
         !emu_.halted()) {
    const auto rec = emu_.step();
    if (!rec.has_value()) break;
    ++steps_;
    if (rec->store.has_value()) stores_.push_back(*rec->store);
  }
  const std::size_t n = std::min(min_count, stores_.size());
  return {stores_.begin(), stores_.begin() + static_cast<std::ptrdiff_t>(n)};
}

std::uint64_t GoldenTraceCache::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

}  // namespace bj
