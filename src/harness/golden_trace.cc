#include "harness/golden_trace.h"

#include "common/check.h"

namespace bj {

std::vector<std::pair<std::uint64_t, std::uint64_t>> GoldenTraceCache::prefix(
    std::size_t min_count, std::uint64_t max_instructions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stores_.size() < min_count && steps_ < max_instructions &&
      !halted_hint_) {
    // A preloaded snapshot may not cover this request: fast-forward the
    // live emulator through the instructions the snapshot already covers
    // (it has never executed them in this process), then grow normally.
    // The emulator is deterministic, so the replayed prefix reproduces
    // exactly the stores we already hold and is discarded.
    while (emu_steps_ < steps_ && !emu_.halted()) {
      const auto rec = emu_.step();
      if (!rec.has_value()) break;
      ++emu_steps_;
    }
    BJ_CHECK(emu_steps_ == steps_ || emu_.halted(),
             "golden-trace fast-forward must reach the snapshot's coverage");
    while (stores_.size() < min_count && steps_ < max_instructions &&
           !emu_.halted()) {
      const auto rec = emu_.step();
      if (!rec.has_value()) break;
      ++steps_;
      ++emu_steps_;
      if (rec->store.has_value()) stores_.push_back(*rec->store);
    }
  }
  const std::size_t n = std::min(min_count, stores_.size());
  return {stores_.begin(), stores_.begin() + static_cast<std::ptrdiff_t>(n)};
}

void GoldenTraceCache::preload(GoldenTraceSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  BJ_CHECK(stores_.empty() && steps_ == 0 && emu_steps_ == 0,
           "golden-trace preload only into a fresh cache");
  stores_ = std::move(snapshot.stores);
  steps_ = snapshot.steps;
  preloaded_ = stores_.size();
  halted_hint_ = snapshot.halted;
}

GoldenTraceSnapshot GoldenTraceCache::snapshot_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  GoldenTraceSnapshot snapshot;
  snapshot.stores = stores_;
  snapshot.steps = steps_;
  snapshot.halted = halted_hint_ || emu_.halted();
  return snapshot;
}

std::uint64_t GoldenTraceCache::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

std::uint64_t GoldenTraceCache::executed_steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emu_steps_;
}

std::uint64_t GoldenTraceCache::preloaded_stores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return preloaded_;
}

}  // namespace bj
