// In-order architectural emulator. Serves three roles:
//   1. Oracle for pipeline verification: the pipeline's leading-thread commit
//      stream is checked instruction-by-instruction against the emulator.
//   2. Golden store-trace producer for classifying fault-injection outcomes
//      (silent data corruption vs benign).
//   3. A simple way for examples/tests to know what a program *should* do.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "arch/memory.h"
#include "isa/exec.h"
#include "isa/program.h"

namespace bj {

struct ArchState {
  std::uint64_t int_regs[kNumIntRegs] = {};
  std::uint64_t fp_regs[kNumFpRegs] = {};
  std::uint64_t pc = 0;
  bool halted = false;

  std::uint64_t read(RegRef r) const {
    if (!r.valid()) return 0;
    if (r.cls == RegClass::kInt) {
      return r.idx == kZeroReg ? 0 : int_regs[r.idx];
    }
    return fp_regs[r.idx];
  }
  void write(RegRef r, std::uint64_t value) {
    if (!r.valid()) return;
    if (r.cls == RegClass::kInt) {
      if (r.idx != kZeroReg) int_regs[r.idx] = value;
    } else {
      fp_regs[r.idx] = value;
    }
  }
};

// What one retired instruction did — the emulator's unit of observable
// behaviour, comparable against a pipeline commit record.
struct RetireRecord {
  std::uint64_t pc = 0;
  DecodedInst inst;
  std::uint64_t dst_value = 0;       // value written, if any
  bool wrote_reg = false;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> store;  // addr, data
  std::optional<std::pair<std::uint64_t, std::uint64_t>> load;   // addr, data
  bool branch_taken = false;
  std::uint64_t next_pc = 0;
};

class Emulator {
 public:
  explicit Emulator(const Program& program);

  // Executes one instruction; returns what it did. Returns std::nullopt when
  // already halted.
  std::optional<RetireRecord> step();

  // Runs up to `max_instructions`; returns the number actually retired.
  std::uint64_t run(std::uint64_t max_instructions);

  const ArchState& state() const { return state_; }
  ArchState& state() { return state_; }
  const SparseMemory& memory() const { return memory_; }
  SparseMemory& memory() { return memory_; }
  std::uint64_t retired() const { return retired_; }
  bool halted() const { return state_.halted; }

 private:
  // Held by value so an Emulator may outlive the expression that built the
  // program.
  const Program program_;
  ArchState state_;
  SparseMemory memory_;
  std::uint64_t retired_ = 0;
};

}  // namespace bj
