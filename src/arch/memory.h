// Flat sparse data memory shared by the emulator and the pipeline's memory
// hierarchy. Backed by 4 KiB pages allocated on demand; unwritten locations
// read as zero, so fault-corrupted wild addresses are well defined.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

namespace bj {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageBytes = 4096;
  static constexpr std::uint64_t kWordsPerPage = kPageBytes / 8;

  // 8-byte aligned accesses; the low 3 address bits are ignored.
  std::uint64_t load(std::uint64_t addr) const {
    const auto it = pages_.find(page_of(addr));
    if (it == pages_.end()) return 0;
    return it->second[word_of(addr)];
  }

  void store(std::uint64_t addr, std::uint64_t value) {
    pages_[page_of(addr)][word_of(addr)] = value;
  }

  std::size_t touched_pages() const { return pages_.size(); }
  void clear() { pages_.clear(); }

 private:
  static std::uint64_t page_of(std::uint64_t addr) { return addr / kPageBytes; }
  static std::uint64_t word_of(std::uint64_t addr) {
    return (addr % kPageBytes) / 8;
  }

  std::unordered_map<std::uint64_t, std::array<std::uint64_t, kWordsPerPage>>
      pages_;
};

}  // namespace bj
