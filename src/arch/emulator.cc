#include "arch/emulator.h"

namespace bj {

Emulator::Emulator(const Program& program) : program_(program) {
  state_.pc = program.entry;
  for (const auto& [addr, value] : program.data) memory_.store(addr, value);
}

std::optional<RetireRecord> Emulator::step() {
  if (state_.halted) return std::nullopt;

  RetireRecord rec;
  rec.pc = state_.pc;
  rec.inst = program_.fetch(state_.pc);
  const DecodedInst& inst = rec.inst;

  if (inst.op == Opcode::kHalt) {
    state_.halted = true;
    rec.next_pc = state_.pc;
    ++retired_;
    return rec;
  }

  const std::uint64_t s1 = state_.read(inst.src1);
  const std::uint64_t s2 = state_.read(inst.src2);
  ExecOutcome out = eval(inst, s1, s2, state_.pc);

  if (inst.is_load()) {
    const std::uint64_t data = memory_.load(out.mem_addr);
    rec.load = {out.mem_addr, data};
    state_.write(inst.dst, data);
    rec.dst_value = data;
    rec.wrote_reg = inst.writes_reg();
  } else if (inst.is_store()) {
    memory_.store(out.mem_addr, out.store_value);
    rec.store = {out.mem_addr, out.store_value};
  } else if (inst.dst.valid()) {
    state_.write(inst.dst, out.value);
    rec.dst_value = out.value;
    rec.wrote_reg = inst.writes_reg();
  }

  rec.branch_taken = out.taken;
  rec.next_pc = out.target;
  state_.pc = out.target;
  ++retired_;
  return rec;
}

std::uint64_t Emulator::run(std::uint64_t max_instructions) {
  std::uint64_t n = 0;
  while (n < max_instructions && !state_.halted) {
    if (!step()) break;
    ++n;
  }
  return n;
}

}  // namespace bj
