// Ablations of the design choices DESIGN.md calls out, on a representative
// benchmark subset:
//   A1 slack sweep (Section 3: slack enables branch/miss resolution ahead
//      of the trailing thread);
//   A2 one-packet-per-cycle trailing fetch off (Section 4.3.1: the simple
//      mechanism that curbs trailing-trailing interference);
//   A3 packet-serial trailing dispatch off (this reproduction's realization
//      of "only one trailing packet resides in the issue queue");
//   A4 shared issue-queue payload RAMs (Section 4.5's vulnerability, versus
//      the separate-RAM fix) under payload-fault injection;
//   A5 shuffle cost accounting: NOPs inserted and packets split.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/campaign.h"
#include "harness/diagnosis.h"

namespace {

const char* kWorkloads[] = {"equake", "gcc", "sixtrack"};

}  // namespace

int main() {
  using namespace bj;
  using namespace bj::bench;

  // --- A1: slack sweep ------------------------------------------------------
  {
    std::cout << "=== Ablation A1: slack sweep (BlackJack) ===\n";
    Table t({"workload", "slack", "normalized perf %", "coverage %"});
    for (const char* name : kWorkloads) {
      const WorkloadProfile& profile = profile_by_name(name);
      SimRequest single = default_request(Mode::kSingle);
      const double base =
          static_cast<double>(run_workload(profile, single).cycles);
      for (int slack : {16, 64, 256, 512}) {
        SimRequest req = default_request(Mode::kBlackjack);
        req.params.slack = slack;
        const SimResult r = run_workload(profile, req);
        t.begin_row();
        t.add(name);
        t.add_int(slack);
        t.add_percent(base / static_cast<double>(r.cycles));
        t.add_percent(r.coverage_total);
      }
    }
    std::cout << t.to_text() << '\n';
  }

  // --- A2 + A3: trailing fetch/dispatch gating ------------------------------
  {
    std::cout << "=== Ablations A2/A3: trailing packet gating (BlackJack) "
                 "===\n";
    Table t({"workload", "config", "perf vs gated %", "coverage %", "TT %",
             "LT %"});
    for (const char* name : kWorkloads) {
      const WorkloadProfile& profile = profile_by_name(name);
      SimRequest gated = default_request(Mode::kBlackjack);
      const SimResult base = run_workload(profile, gated);

      auto row = [&](const char* label, const SimResult& r) {
        t.begin_row();
        t.add(name);
        t.add(label);
        t.add_percent(static_cast<double>(base.cycles) /
                      static_cast<double>(r.cycles));
        t.add_percent(r.coverage_total);
        t.add_percent(r.tt_interference, 2);
        t.add_percent(r.lt_interference, 2);
      };
      row("default (both gates)", base);

      SimRequest multi = default_request(Mode::kBlackjack);
      multi.params.one_packet_per_cycle = false;
      row("multi-packet fetch", run_workload(profile, multi));

      SimRequest noserial = default_request(Mode::kBlackjack);
      noserial.params.packet_serial_dispatch = false;
      row("no packet-serial dispatch", run_workload(profile, noserial));

      SimRequest neither = default_request(Mode::kBlackjack);
      neither.params.one_packet_per_cycle = false;
      neither.params.packet_serial_dispatch = false;
      row("neither gate", run_workload(profile, neither));
    }
    std::cout << t.to_text()
              << "\nExpected shape: removing the gates raises "
                 "trailing-trailing interference (most on low-IPC FP "
                 "workloads, cf. the paper's equake discussion) and lowers "
                 "coverage.\n\n";
  }

  // --- A4: issue-queue payload RAM sharing ----------------------------------
  {
    std::cout << "=== Ablation A4: shared vs separate IQ payload RAMs "
                 "(payload faults, BlackJack) ===\n";
    Table t({"config", "corrupted (leading copy)",
             "corrupted identically in BOTH copies"});
    const Program program = generate_workload(profile_by_name("gcc"));
    for (const bool separate : {true, false}) {
      // Sum exposure over several payload-entry faults.
      std::uint64_t lead_total = 0;
      std::uint64_t both_total = 0;
      for (int entry = 0; entry < 32; entry += 4) {
        HardFault fault;
        fault.site = FaultSite::kIqPayload;
        fault.iq_entry = entry;
        fault.bit = 1;
        fault.stuck_value = true;
        FaultInjector injector(fault);
        CoreParams params;
        params.separate_payload_rams = separate;
        Core core(program, Mode::kBlackjack, params, &injector);
        core.set_oracle_check(false);
        core.set_halt_on_detection(false);  // measure full exposure
        core.run(8000, 2000000);
        lead_total += core.stats().payload_corrupted_leading;
        both_total += core.stats().payload_corrupted_both;
      }
      t.begin_row();
      t.add(separate ? "separate RAMs (paper's fix)" : "shared RAM");
      t.add_int(static_cast<long long>(lead_total));
      t.add_int(static_cast<long long>(both_total));
    }
    std::cout << t.to_text()
              << "\nAn instruction pair corrupted identically in both copies "
                 "agrees on the wrong result — no check can see it (Section "
                 "4.5). With separate per-thread payload RAMs that count is "
                 "zero by construction; with a shared RAM it is nonzero "
                 "whenever both copies happen to occupy the faulty entry.\n\n";
  }

  // --- A6: packet combining (the paper's future-work extension) -------------
  {
    std::cout << "=== Ablation A6: packet combining (future-work extension) "
                 "===\n";
    Table t({"workload", "config", "perf vs single %", "coverage %"});
    for (const char* name : kWorkloads) {
      const WorkloadProfile& profile = profile_by_name(name);
      const double base = static_cast<double>(
          run_workload(profile, default_request(Mode::kSingle)).cycles);
      SimRequest plain = default_request(Mode::kBlackjack);
      const SimResult r_plain = run_workload(profile, plain);
      SimRequest combined = default_request(Mode::kBlackjack);
      combined.params.combine_packets = true;
      const SimResult r_comb = run_workload(profile, combined);
      SimRequest srt = default_request(Mode::kSrt);
      const SimResult r_srt = run_workload(profile, srt);

      auto row = [&](const char* label, const SimResult& r) {
        t.begin_row();
        t.add(name);
        t.add(label);
        t.add_percent(base / static_cast<double>(r.cycles));
        t.add_percent(r.coverage_total);
      };
      row("SRT (reference)", r_srt);
      row("BlackJack (paper)", r_plain);
      row("BlackJack + combining", r_comb);
    }
    std::cout << t.to_text()
              << "\nSection 6: \"it is possible for more complex shuffle "
                 "algorithms to use this additional [inter-packet "
                 "dependence] information to close the gap between BlackJack "
                 "and SRT.\" Combining register-independent adjacent packets "
                 "is exactly that.\n\n";
  }

  // --- A7: diagnosis by deconfiguration + degraded-mode cost -----------------
  {
    std::cout << "=== Ablation A7: fault localization and degraded "
                 "operation (extension) ===\n";
    Table t({"injected fault", "localized as", "degraded perf %"});
    const Program program = generate_workload(profile_by_name("eon"));
    std::vector<HardFault> faults;
    for (auto [fu, way] : std::vector<std::pair<FuClass, int>>{
             {FuClass::kIntAlu, 2},
             {FuClass::kFpAlu, 1},
             {FuClass::kMem, 0},
             {FuClass::kIntMul, 1}}) {
      HardFault f;
      f.site = FaultSite::kBackendResult;
      f.fu = fu;
      f.backend_way = way;
      f.bit = 3;
      f.stuck_value = true;
      faults.push_back(f);
    }
    for (const HardFault& fault : faults) {
      const DiagnosisResult r = diagnose_backend_fault(
          program, Mode::kBlackjack, CoreParams{}, fault, 10000);
      t.begin_row();
      t.add(fault.describe());
      if (r.suspect.has_value()) {
        t.add(std::string(fu_class_name(r.suspect->first)) + " way " +
              std::to_string(r.suspect->second));
        t.add_percent(r.degraded_performance);
      } else {
        t.add(r.baseline_detected ? "ambiguous" : "not detected");
        t.add("");
      }
    }
    std::cout << t.to_text()
              << "\nOnce BlackJack detects a hard error, a deconfiguration "
                 "sweep (with a known-answer self-test) names the faulty "
                 "unit, and the chip can keep running with that way fenced "
                 "off — quantifying the degraded-operation alternative the "
                 "paper's related-work section debates.\n\n";
  }

  // --- A5: shuffle cost ------------------------------------------------------
  {
    std::cout << "=== Ablation A5: safe-shuffle packet cost ===\n";
    Table t({"workload", "packets", "splits", "split %", "NOPs",
             "NOPs/packet"});
    for (const char* name : kWorkloads) {
      const SimResult r = run_workload(profile_by_name(name),
                                       default_request(Mode::kBlackjack));
      t.begin_row();
      t.add(name);
      t.add_int(static_cast<long long>(r.packets));
      t.add_int(static_cast<long long>(r.packet_splits));
      t.add_percent(r.packets ? static_cast<double>(r.packet_splits) /
                                    static_cast<double>(r.packets)
                              : 0.0);
      t.add_int(static_cast<long long>(r.shuffle_nops));
      t.add(r.packets ? static_cast<double>(r.shuffle_nops) /
                            static_cast<double>(r.packets)
                      : 0.0,
            2);
    }
    std::cout << t.to_text()
              << "\nThe paper attributes BlackJack's ~5% slowdown over "
                 "BlackJack-NS to these splits and NOPs.\n";
  }
  return 0;
}
