// Table 1: processor parameters. Prints the configuration this reproduction
// simulates next to the values the paper reports, as a sanity anchor for all
// other benches.
#include <iostream>

#include "common/table.h"
#include "pipeline/params.h"

int main() {
  using bj::CoreParams;
  const CoreParams p;
  bj::Table t({"Parameter", "Paper (Table 1)", "This reproduction"});

  auto row = [&](const std::string& name, const std::string& paper,
                 const std::string& ours) {
    t.begin_row();
    t.add(name);
    t.add(paper);
    t.add(ours);
  };

  row("Out-of-order issue", "4 instructions/cycle",
      std::to_string(p.issue_width) + " instructions/cycle");
  row("Active list", "512 entries (64-entry LSQ)",
      std::to_string(p.active_list_entries) + " entries (" +
          std::to_string(p.lsq_entries) + "-entry LSQ)");
  row("Issue queue", "32 entries",
      std::to_string(p.issue_queue_entries) + " entries");
  row("L1 caches", "64KB 4-way 2-cycle (2 ports)",
      std::to_string(p.memory.l1d.size_bytes / 1024) + "KB " +
          std::to_string(p.memory.l1d.assoc) + "-way " +
          std::to_string(p.memory.l1d.hit_latency) + "-cycle (" +
          std::to_string(p.mem_ports) + " ports)");
  row("L2 cache", "2M 8-way unified",
      std::to_string(p.memory.l2.size_bytes / (1024 * 1024)) + "M " +
          std::to_string(p.memory.l2.assoc) + "-way unified");
  row("Memory", "350 cycles", std::to_string(p.memory.memory_latency) +
                                  " cycles");
  row("Int ALUs", "4 int ALUs, 2 int multipliers",
      std::to_string(p.int_alu_units) + " int ALUs, " +
          std::to_string(p.int_mul_units) + " int multipliers");
  row("FP ALUs", "2 FP ALUs, 2 FP multipliers",
      std::to_string(p.fp_alu_units) + " FP ALUs, " +
          std::to_string(p.fp_mul_units) + " FP multipliers");
  row("Store buffer", "64 entries",
      std::to_string(p.store_buffer_entries) + " entries");
  row("LVQ", "128 entries", std::to_string(p.lvq_entries) + " entries");
  row("BOQ", "96 entries", std::to_string(p.boq_entries) + " entries");
  row("Slack", "256 instructions",
      std::to_string(p.slack) + " instructions");
  row("DTQ", "1024 instructions",
      std::to_string(p.dtq_entries) + " instructions");

  std::cout << "=== Table 1: Processor Parameters ===\n" << t.to_text();
  return 0;
}
