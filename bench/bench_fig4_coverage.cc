// Figure 4: hard-error instruction coverage of SRT vs BlackJack.
//   (a) whole pipeline (0.34 x frontend diversity + 0.66 x backend diversity)
//   (b) backend only
// One row per benchmark plus the average, with the paper's anchors.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  std::cout << "=== Figure 4: hard-error instruction coverage (SRT vs "
               "BlackJack) ===\n"
            << "paper anchors: SRT avg 34% (sixtrack worst 25%, vortex best "
               "41%); BlackJack avg 97% (bzip worst 94%, vortex best 99%);\n"
            << "SRT frontend coverage is 0% by construction, BlackJack's is "
               "100% by construction.\n\n";

  SweepStats srt_stats, bj_stats;
  const std::vector<SimResult> srt = run_all(Mode::kSrt, &srt_stats);
  const std::vector<SimResult> blackjack =
      run_all(Mode::kBlackjack, &bj_stats);

  Table a({"benchmark", "SRT total %", "BJ total %", "SRT fe %", "BJ fe %"});
  Table b({"benchmark", "SRT backend %", "BJ backend %"});
  std::vector<double> srt_tot, bj_tot, srt_be, bj_be;
  for (std::size_t i = 0; i < srt.size(); ++i) {
    a.begin_row();
    a.add(srt[i].workload);
    a.add_percent(srt[i].coverage_total);
    a.add_percent(blackjack[i].coverage_total);
    a.add_percent(srt[i].coverage_frontend);
    a.add_percent(blackjack[i].coverage_frontend);
    b.begin_row();
    b.add(srt[i].workload);
    b.add_percent(srt[i].coverage_backend);
    b.add_percent(blackjack[i].coverage_backend);
    srt_tot.push_back(srt[i].coverage_total);
    bj_tot.push_back(blackjack[i].coverage_total);
    srt_be.push_back(srt[i].coverage_backend);
    bj_be.push_back(blackjack[i].coverage_backend);
  }
  a.begin_row();
  a.add("average");
  a.add_percent(average(srt_tot));
  a.add_percent(average(bj_tot));
  a.add_percent(0.0);
  a.add_percent(1.0);
  b.begin_row();
  b.add("average");
  b.add_percent(average(srt_be));
  b.add_percent(average(bj_be));

  std::cout << "--- Figure 4a: entire pipeline ---\n" << a.to_text() << '\n';
  std::cout << "--- Figure 4b: backend only ---\n" << b.to_text() << '\n';
  std::cout << "csv:fig4a\n" << a.to_csv() << "csv:fig4b\n" << b.to_csv();

  const double wall = srt_stats.wall_seconds + bj_stats.wall_seconds;
  const double serial =
      srt_stats.serial_estimate_seconds + bj_stats.serial_estimate_seconds;
  std::cout << "\nharness parallelism: " << srt_stats.jobs << " jobs, wall "
            << wall << " s, est. serial " << serial << " s, speedup "
            << (wall > 0 ? serial / wall : 0.0) << "x\n";
  return 0;
}
