// End-to-end fault-injection campaign (beyond the paper's analytic coverage
// metric): inject the same randomly placed hard faults into single-thread,
// SRT, and BlackJack machines and classify each run. The paper's claim
// cashes out here as: BlackJack detects activated faults before corrupted
// data reaches memory; SRT misses or detects late far more often; the
// single-threaded machine silently corrupts.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/campaign.h"

int main() {
  using namespace bj;
  using namespace bj::bench;

  const int faults = static_cast<int>(env_int("BJ_CAMPAIGN_FAULTS", 60));
  const auto budget =
      static_cast<std::uint64_t>(env_int("BJ_CAMPAIGN_COMMITS", 12000));

  std::cout << "=== Fault-injection campaign (extra experiment) ===\n"
            << faults << " stuck-at hard faults per workload, identical "
            << "fault sets across modes, " << budget
            << " committed instructions per run.\n\n";

  Table t({"workload", "mode", "activated", "detected", "detected-late",
           "sdc", "wedged", "benign", "mean detect cycle"});

  for (const char* name : {"gcc", "sixtrack"}) {
    WorkloadProfile profile = profile_by_name(name);
    const Program program = generate_workload(profile);
    for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
      CampaignConfig config;
      config.mode = mode;
      config.num_faults = faults;
      config.seed = 20070625;  // DSN 2007
      config.budget_commits = budget;
      const CampaignResult result = run_campaign(program, config);

      int activated = 0;
      double latency_sum = 0;
      int latency_n = 0;
      for (const FaultRun& run : result.runs) {
        if (run.activations > 0) ++activated;
        if (run.outcome == FaultOutcome::kDetected ||
            run.outcome == FaultOutcome::kDetectedLate) {
          latency_sum += static_cast<double>(run.detection_cycle);
          ++latency_n;
        }
      }
      t.begin_row();
      t.add(name);
      t.add(mode_name(mode));
      t.add_int(activated);
      t.add_int(result.count(FaultOutcome::kDetected));
      t.add_int(result.count(FaultOutcome::kDetectedLate));
      t.add_int(result.count(FaultOutcome::kSdc));
      t.add_int(result.count(FaultOutcome::kWedged));
      t.add_int(result.count(FaultOutcome::kBenign));
      t.add(latency_n ? latency_sum / latency_n : 0.0, 0);
    }
  }

  std::cout << t.to_text()
            << "\nReading guide: 'detected' = caught before any corrupt "
               "store released; 'detected-late' = caught, but corruption "
               "already reached memory; 'sdc' = silent data corruption. The "
               "single-threaded machine has no checks, so every activated "
               "architectural fault is an sdc.\n";
  std::cout << "\ncsv:fault_injection\n" << t.to_csv();

  // --- soft errors: temporal redundancy suffices -----------------------------
  std::cout << "\n=== Soft-error campaign (transient bit flips) ===\n"
            << "The paper's premise: SRT already detects soft errors; "
               "spatial diversity is only needed for HARD errors. Both "
               "redundant modes should detect transients equally well.\n\n";
  Table s({"workload", "mode", "activated", "detected", "sdc", "benign"});
  for (const char* name : {"gcc", "sixtrack"}) {
    const Program program = generate_workload(profile_by_name(name));
    for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
      CampaignConfig config;
      config.mode = mode;
      config.num_faults = faults / 2;
      config.seed = 20000512;  // ISCA 2000, the SRT paper
      config.budget_commits = budget;
      config.soft_errors = true;
      const CampaignResult result = run_campaign(program, config);
      int activated = 0;
      for (const FaultRun& run : result.runs) activated += run.activations > 0;
      s.begin_row();
      s.add(name);
      s.add(mode_name(mode));
      s.add_int(activated);
      s.add_int(result.count(FaultOutcome::kDetected) +
                result.count(FaultOutcome::kDetectedLate));
      s.add_int(result.count(FaultOutcome::kSdc));
      s.add_int(result.count(FaultOutcome::kBenign));
    }
  }
  std::cout << s.to_text() << "\ncsv:soft_errors\n" << s.to_csv();
  return 0;
}
