// End-to-end fault-injection campaign (beyond the paper's analytic coverage
// metric): inject the same randomly placed hard faults into single-thread,
// SRT, and BlackJack machines and classify each run. The paper's claim
// cashes out here as: BlackJack detects activated faults before corrupted
// data reaches memory; SRT misses or detects late far more often; the
// single-threaded machine silently corrupts.
//
// Campaigns run on the parallel engine (worker pool + shared golden-trace
// cache); BJ_JOBS selects the worker count (0 = one per hardware thread).
// The final section re-runs one campaign with the legacy reference runner
// (serial, one emulator replay per run) and reports the measured speedup.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/campaign.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical_runs(const bj::CampaignResult& a, const bj::CampaignResult& b) {
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const bj::FaultRun& x = a.runs[i];
    const bj::FaultRun& y = b.runs[i];
    if (x.outcome != y.outcome || x.activations != y.activations ||
        x.detection_cycle != y.detection_cycle ||
        x.detection_kind != y.detection_kind ||
        x.corrupt_stores_released != y.corrupt_stores_released) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace bj;
  using namespace bj::bench;

  const int faults = static_cast<int>(env_int("BJ_CAMPAIGN_FAULTS", 60));
  const auto budget =
      static_cast<std::uint64_t>(env_int("BJ_CAMPAIGN_COMMITS", 12000));
  const int jobs = bench_jobs();

  std::cout << "=== Fault-injection campaign (extra experiment) ===\n"
            << faults << " stuck-at hard faults per workload, identical "
            << "fault sets across modes, " << budget
            << " committed instructions per run, "
            << resolve_jobs(jobs) << " jobs.\n\n";

  Table t({"workload", "mode", "activated", "detected", "detected-late",
           "sdc", "wedged", "benign", "mean detect cycle"});

  double wall_total = 0.0;
  double serial_total = 0.0;
  for (const char* name : {"gcc", "sixtrack"}) {
    WorkloadProfile profile = profile_by_name(name);
    const Program program = generate_workload(profile);
    for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
      CampaignConfig config;
      config.mode = mode;
      config.num_faults = faults;
      config.seed = 20070625;  // DSN 2007
      config.budget_commits = budget;
      ParallelCampaignOptions options;
      options.jobs = jobs;
      CampaignStats stats;
      const CampaignResult result =
          run_campaign_parallel(program, config, options, &stats);
      wall_total += stats.wall_seconds;
      serial_total += stats.serial_estimate_seconds;

      int activated = 0;
      double latency_sum = 0;
      int latency_n = 0;
      for (const FaultRun& run : result.runs) {
        if (run.activations > 0) ++activated;
        if (run.outcome == FaultOutcome::kDetected ||
            run.outcome == FaultOutcome::kDetectedLate) {
          latency_sum += static_cast<double>(run.detection_cycle);
          ++latency_n;
        }
      }
      t.begin_row();
      t.add(name);
      t.add(mode_name(mode));
      t.add_int(activated);
      t.add_int(result.count(FaultOutcome::kDetected));
      t.add_int(result.count(FaultOutcome::kDetectedLate));
      t.add_int(result.count(FaultOutcome::kSdc));
      t.add_int(result.count(FaultOutcome::kWedged));
      t.add_int(result.count(FaultOutcome::kBenign));
      t.add(latency_n ? latency_sum / latency_n : 0.0, 0);
    }
  }

  std::cout << t.to_text()
            << "\nReading guide: 'detected' = caught before any corrupt "
               "store released; 'detected-late' = caught, but corruption "
               "already reached memory; 'sdc' = silent data corruption. The "
               "single-threaded machine has no checks, so every activated "
               "architectural fault is an sdc.\n";
  std::cout << "engine: wall " << wall_total << " s, est. serial "
            << serial_total << " s, pool speedup "
            << (wall_total > 0 ? serial_total / wall_total : 0.0) << "x\n";
  std::cout << "\ncsv:fault_injection\n" << t.to_csv();

  // --- soft errors: temporal redundancy suffices -----------------------------
  std::cout << "\n=== Soft-error campaign (transient bit flips) ===\n"
            << "The paper's premise: SRT already detects soft errors; "
               "spatial diversity is only needed for HARD errors. Both "
               "redundant modes should detect transients equally well.\n\n";
  Table s({"workload", "mode", "activated", "detected", "sdc", "benign"});
  for (const char* name : {"gcc", "sixtrack"}) {
    const Program program = generate_workload(profile_by_name(name));
    for (Mode mode : {Mode::kSingle, Mode::kSrt, Mode::kBlackjack}) {
      CampaignConfig config;
      config.mode = mode;
      config.num_faults = faults / 2;
      config.seed = 20000512;  // ISCA 2000, the SRT paper
      config.budget_commits = budget;
      config.soft_errors = true;
      ParallelCampaignOptions options;
      options.jobs = jobs;
      const CampaignResult result =
          run_campaign_parallel(program, config, options);
      int activated = 0;
      for (const FaultRun& run : result.runs) activated += run.activations > 0;
      s.begin_row();
      s.add(name);
      s.add(mode_name(mode));
      s.add_int(activated);
      s.add_int(result.count(FaultOutcome::kDetected) +
                result.count(FaultOutcome::kDetectedLate));
      s.add_int(result.count(FaultOutcome::kSdc));
      s.add_int(result.count(FaultOutcome::kBenign));
    }
  }
  std::cout << s.to_text() << "\ncsv:soft_errors\n" << s.to_csv();

  // --- engine vs legacy reference: correctness and speedup -------------------
  std::cout << "\n=== Campaign engine vs serial reference ===\n"
            << "Same gcc/blackjack campaign via the legacy serial runner "
               "(one emulator replay per run) and via the worker pool with "
               "the shared golden-trace cache.\n";
  {
    const Program program = generate_workload(profile_by_name("gcc"));
    CampaignConfig config;
    config.mode = Mode::kBlackjack;
    config.num_faults = faults;
    config.seed = 20070625;
    config.budget_commits = budget;

    const auto ref_start = Clock::now();
    const CampaignResult reference = run_campaign_reference(program, config);
    const double ref_seconds = seconds_since(ref_start);

    ParallelCampaignOptions options;
    options.jobs = jobs;
    CampaignStats stats;
    const auto par_start = Clock::now();
    const CampaignResult parallel =
        run_campaign_parallel(program, config, options, &stats);
    const double par_seconds = seconds_since(par_start);

    std::cout << "reference: " << ref_seconds << " s, engine: " << par_seconds
              << " s with " << stats.jobs << " jobs ("
              << stats.runs_per_second << " runs/s)\n"
              << "bit-identical results: "
              << (identical_runs(reference, parallel) ? "yes" : "NO")
              << "\nspeedup: "
              << (par_seconds > 0 ? ref_seconds / par_seconds : 0.0) << "x\n";
  }
  return 0;
}
